#!/usr/bin/env python
"""SIGKILL crash/resume acceptance check (used by the CI ``crash-resume`` job).

Three runs of one seeded, fault-injected study (stragglers, dropped jobs,
retries):

1. **reference** — uninterrupted; records journal, telemetry, Chrome trace.
2. **victim** — identical run in a subprocess whose journal SIGKILLs the
   process after half the reference's ``tell`` records hit the disk.  The
   subprocess must die with ``-SIGKILL`` — no cleanup handlers run.
3. **resumed** — ``Study.resume`` on the victim's journal (scheduler rebuilt
   from the journal header's recipe), run to completion.

The check passes iff the resumed journal, telemetry stream, and Chrome
trace are **byte-identical** to the reference's.

Usage::

    PYTHONPATH=src python scripts/crash_resume_check.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.backend import RetryPolicy, SimulatedCluster
from repro.core import build_scheduler
from repro.experiments.toys import toy_objective, toy_space
from repro.study import Journal, Study, build_spec, read_journal
from repro.telemetry import JSONLSink, TelemetryHub

SCENARIO = dict(min_resource=1.0, max_resource=9.0, eta=3, seed=7)
SCHEDULER_KWARGS = {"max_trials": 8}
CLUSTER = dict(straggler_std=0.3, drop_probability=0.05, seed=11)
NUM_WORKERS = 2
TIME_LIMIT = 200.0


class KillingJournal(Journal):
    """A journal that SIGKILLs its own process after N ``tell`` appends.

    The kill happens *after* the append returns, i.e. after the record was
    flushed — modelling a crash at the worst honest moment: the result is
    durable, everything in memory is lost.
    """

    def __init__(self, path, kill_after_tells: int, **kwargs):
        self._remaining = kill_after_tells
        super().__init__(path, **kwargs)

    def append(self, record):
        super().append(record)
        if record.get("kind") == "tell":
            self._remaining -= 1
            if self._remaining <= 0:
                os.kill(os.getpid(), signal.SIGKILL)


def make_study(journal) -> Study:
    scheduler = build_scheduler(
        "asha",
        toy_space(),
        np.random.default_rng(SCENARIO["seed"]),
        min_resource=SCENARIO["min_resource"],
        max_resource=SCENARIO["max_resource"],
        eta=SCENARIO["eta"],
        kwargs=dict(SCHEDULER_KWARGS),
    )
    spec = build_spec(
        scheduler="asha",
        space=toy_space(),
        seed=SCENARIO["seed"],
        min_resource=SCENARIO["min_resource"],
        max_resource=SCENARIO["max_resource"],
        eta=SCENARIO["eta"],
        scheduler_kwargs=SCHEDULER_KWARGS,
    )
    if isinstance(journal, Journal):
        return Study(scheduler, journal=journal)
    return Study(scheduler, journal=journal, spec=spec)


def run(study: Study, events_path):
    hub = TelemetryHub([JSONLSink(events_path)])
    result = SimulatedCluster(NUM_WORKERS, **CLUSTER).run(
        study,
        toy_objective(),
        time_limit=TIME_LIMIT,
        telemetry=hub,
        retry_policy=RetryPolicy(max_attempts=2, backoff=0.5),
        trace=True,
    )
    hub.close()
    study.close()
    return json.dumps(result.trace.to_chrome_trace(), sort_keys=True)


def child(workdir: Path, kill_after: int) -> None:
    journal = KillingJournal(
        workdir / "victim.journal.jsonl",
        kill_after,
        spec=build_spec(
            scheduler="asha",
            space=toy_space(),
            seed=SCENARIO["seed"],
            min_resource=SCENARIO["min_resource"],
            max_resource=SCENARIO["max_resource"],
            eta=SCENARIO["eta"],
            scheduler_kwargs=SCHEDULER_KWARGS,
        ),
    )
    run(make_study(journal), workdir / "victim.events.jsonl")
    print("child survived its own kill switch", file=sys.stderr)
    sys.exit(3)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", type=Path, default=None)
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--kill-after", type=int, default=0, help=argparse.SUPPRESS)
    args = parser.parse_args()
    workdir = args.workdir or Path(tempfile.mkdtemp(prefix="crash-resume-"))
    workdir.mkdir(parents=True, exist_ok=True)

    if args.child:
        child(workdir, args.kill_after)
        return 3  # unreachable

    # 1. Reference run.
    ref_trace = run(make_study(workdir / "ref.journal.jsonl"), workdir / "ref.events.jsonl")
    ref_journal = (workdir / "ref.journal.jsonl").read_bytes()
    ref_events = (workdir / "ref.events.jsonl").read_bytes()
    records, _, _ = read_journal(workdir / "ref.journal.jsonl")
    tells = sum(1 for r in records if r.get("kind") == "tell")
    kill_after = max(1, tells // 2)
    print(f"reference: {len(records) - 1} records, {tells} tells; "
          f"killing victim after tell #{kill_after}")

    # 2. Victim run, SIGKILLed mid-flight.
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child",
         "--kill-after", str(kill_after), "--workdir", str(workdir)],
        env={**os.environ, "PYTHONPATH": os.environ.get("PYTHONPATH", "src")},
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != -signal.SIGKILL:
        print(f"FAIL: victim exited {proc.returncode}, expected {-signal.SIGKILL}")
        print(proc.stderr)
        return 1
    victim_records, _, _ = read_journal(workdir / "victim.journal.jsonl")
    print(f"victim: died with SIGKILL after {len(victim_records) - 1} records")
    if len(victim_records) >= len(records):
        print("FAIL: victim was not actually interrupted")
        return 1

    # 3. Resume from the victim's journal — scheduler rebuilt from the header.
    resumed = Study.resume(workdir / "victim.journal.jsonl")
    resumed_trace = run(resumed, workdir / "resumed.events.jsonl")

    ok = True
    for label, got, want in [
        ("journal", (workdir / "victim.journal.jsonl").read_bytes(), ref_journal),
        ("telemetry", (workdir / "resumed.events.jsonl").read_bytes(), ref_events),
        ("chrome-trace", resumed_trace.encode(), ref_trace.encode()),
    ]:
        match = got == want
        ok &= match
        print(f"{label}: {'byte-identical' if match else 'MISMATCH'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
