"""Snapshot round-trips: a restored study continues exactly like the original.

Each case drives a scheduler partway through a seeded run, snapshots,
pushes the snapshot through a JSON round-trip (the serialisation a process
boundary or a file would impose), restores it onto a *freshly constructed*
scheduler, and checks that original and restoree produce the identical
job/loss sequence from there on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backend.checkpoint import CheckpointStore
from repro.core import build_scheduler
from repro.experiments.toys import toy_objective
from repro.searchers import build_searcher
from repro.study import Study

CASES = {
    "asha": ("asha", {"max_trials": 14}, None),
    "sha": ("sha", {"n": 9}, None),
    "hyperband": ("hyperband", {"max_loops": 1}, None),
    "asha_kde": ("asha", {"max_trials": 14}, "kde"),
}


def make_study(case: str) -> Study:
    name, kwargs, searcher_name = CASES[case]
    objective = toy_objective()
    searcher = build_searcher(searcher_name, {}) if searcher_name else None
    scheduler = build_scheduler(
        name,
        objective.space,
        np.random.default_rng(3),
        min_resource=1.0,
        max_resource=9.0,
        eta=3,
        kwargs=dict(kwargs),
        searcher=searcher,
    )
    return Study(scheduler)


def step(study: Study, store: CheckpointStore, objective) -> tuple | None:
    job = study.ask()
    if job is None:
        return None
    loss = store.run_job(job, objective)
    study.tell(job, loss)
    return (job.job_id, job.trial_id, job.resource, job.rung, job.bracket, round(loss, 12))


@pytest.mark.parametrize("case", sorted(CASES))
def test_snapshot_restore_continues_identically(case):
    objective = toy_objective()
    study = make_study(case)
    store = CheckpointStore()
    for _ in range(7):
        if step(study, store, objective) is None:
            break

    snapshot = json.loads(json.dumps(study.snapshot()))  # must survive JSON
    restored = Study.restore(snapshot, scheduler=make_study(case).scheduler)
    # The restoree's backend is fresh: placeholder checkpoints stand in for
    # the training states the original accumulated.
    restored_store = CheckpointStore()
    restored_store.seed_from_trials(restored.trials)

    original_tail, restored_tail = [], []
    for driven, tail, st in ((study, original_tail, store),
                             (restored, restored_tail, restored_store)):
        for _ in range(30):
            result = step(driven, st, objective)
            if result is None:
                break
            tail.append(result)
    assert original_tail, f"{case}: snapshot taken after the run already ended"
    assert restored_tail == original_tail


@pytest.mark.parametrize("case", sorted(CASES))
def test_snapshot_preserves_trial_table_and_best(case):
    objective = toy_objective()
    study = make_study(case)
    store = CheckpointStore()
    for _ in range(7):
        if step(study, store, objective) is None:
            break
    snapshot = json.loads(json.dumps(study.snapshot()))
    restored = Study.restore(snapshot, scheduler=make_study(case).scheduler)
    assert restored.num_trials == study.num_trials
    assert set(restored.trials) == set(study.trials)
    best, rbest = study.best_trial(), restored.best_trial()
    assert (best is None) == (rbest is None)
    if best is not None:
        assert rbest.trial_id == best.trial_id
        assert rbest.last_loss == best.last_loss
    for trial_id, trial in study.trials.items():
        rtrial = restored.trials[trial_id]
        assert rtrial.config == trial.config
        assert [
            (m.resource, m.loss) for m in rtrial.measurements
        ] == [(m.resource, m.loss) for m in trial.measurements]


def test_snapshot_preserves_pause_flag():
    study = make_study("asha")
    study.pause()
    snapshot = json.loads(json.dumps(study.snapshot()))
    restored = Study.restore(snapshot, scheduler=make_study("asha").scheduler)
    assert restored.paused
    assert restored.ask() is None
