"""Batched ask/tell must be byte-for-byte equivalent to the single path.

``Study.ask_batch`` / ``tell_batch`` (and the ``Scheduler.next_job_batch`` /
``report_batch`` APIs underneath) exist purely to amortise per-call overhead
— the jobs handed out, the rng draws consumed, the journal bytes written,
and the telemetry stream emitted must be *identical* to driving the same
seeded scheduler one ask and one tell at a time.  These tests pin that
contract for ASHA, synchronous SHA, and Hyperband, and for the simulated
and threaded backends' batched consumption.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.backend.simulation import SimulatedCluster
from repro.backend.threaded import ThreadPoolBackend
from repro.core import build_scheduler
from repro.experiments.toys import toy_objective, toy_space
from repro.study import Study
from repro.telemetry import InMemorySink, TelemetryHub

SCHEDULER_NAMES = ["asha", "sha", "hyperband"]


def make_scheduler(name: str):
    kwargs = {"max_trials": 64} if name == "asha" else {}
    return build_scheduler(
        name,
        toy_space(),
        np.random.default_rng(7),
        min_resource=1.0,
        max_resource=9.0,
        eta=3,
        kwargs=kwargs,
    )


def fake_loss(job) -> float:
    # Deterministic, config-dependent, rng-free: equivalence must hold for
    # any loss stream, so keep the one thing under test isolated.
    return job.config["quality"] * (1.0 + 1.0 / (1.0 + job.resource))


def job_key(job):
    return (job.job_id, job.trial_id, job.rung, job.bracket, job.resource, dict(job.config))


def drive(scheduler, n_jobs: int, batch: int, *, batched: bool):
    """Ask ``batch`` jobs, tell their losses, repeat — identical interleaving
    on both paths; only the API (batch calls vs loops of single calls)
    differs, which is exactly the equivalence under test."""
    sink = InMemorySink()
    scheduler.attach_telemetry(TelemetryHub([sink]))
    seen = []
    while len(seen) < n_jobs and not scheduler.is_done():
        k = min(batch, n_jobs - len(seen))
        if batched:
            jobs = scheduler.next_job_batch(k)
        else:
            jobs = []
            for _ in range(k):
                job = scheduler.next_job()
                if job is None:
                    break
                jobs.append(job)
        if not jobs:
            break
        seen.extend(job_key(j) for j in jobs)
        results = [(j, fake_loss(j)) for j in jobs]
        if batched:
            scheduler.report_batch(results)
        else:
            for job, loss in results:
                scheduler.report(job, loss)
    return seen, [e.to_dict() for e in sink.events], _statuses(scheduler)


def _statuses(scheduler):
    return {tid: t.status for tid, t in scheduler.trials.items()}


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
@pytest.mark.parametrize("batch", [2, 7, 32])
def test_scheduler_batch_matches_single(name, batch):
    ref = drive(make_scheduler(name), 400, batch, batched=False)
    got = drive(make_scheduler(name), 400, batch, batched=True)
    assert got[0] == ref[0]  # identical job sequence (ids, rungs, configs)
    assert got[1] == ref[1]  # identical telemetry stream, event for event
    assert got[2] == ref[2]  # identical final trial statuses


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_study_batch_journal_bytes_identical(name, tmp_path):
    def run(path: Path, batched: bool) -> bytes:
        study = Study(make_scheduler(name), journal=path)
        done = 0
        while done < 300 and not study.is_done():
            if batched:
                jobs = study.ask_batch(9)
            else:
                jobs, job = [], study.ask()
                while job is not None and len(jobs) < 9:
                    jobs.append(job)
                    job = None if len(jobs) == 9 or study.is_done() else study.ask()
            if not jobs:
                break
            done += len(jobs)
            results = [(j, fake_loss(j)) for j in jobs]
            if batched:
                study.tell_batch(results, time=float(done))
            else:
                for j, loss in results:
                    study.tell(j, loss, time=float(done))
        study.finalize()
        return path.read_bytes()

    single = run(tmp_path / "single.journal.jsonl", batched=False)
    batch = run(tmp_path / "batch.journal.jsonl", batched=True)
    assert batch == single


def test_orphaned_jobs_drain_fifo_after_restore(tmp_path):
    # Asked-but-untold jobs recorded in the journal come back as orphans on
    # resume; both ask() and ask_batch() must re-issue them in the exact
    # order they were first handed out (the deque regression test — the old
    # list.pop(0) was quadratic but order-correct, so order is the contract).
    path = tmp_path / "run.journal.jsonl"
    study = Study(make_scheduler("asha"), journal=path)
    asked = [study.ask() for _ in range(8)]
    study.finalize()

    resumed = Study.resume(path, scheduler=make_scheduler("asha"), mode="restore")
    assert [j.job_id for j in resumed.orphaned_jobs] == [j.job_id for j in asked]
    redone = [resumed.ask() for _ in range(3)]
    assert [j.job_id for j in redone] == [j.job_id for j in asked[:3]]

    resumed2 = Study.resume(path, scheduler=make_scheduler("asha"), mode="restore")
    batch = resumed2.ask_batch(5)
    assert [j.job_id for j in batch] == [j.job_id for j in asked[:5]]


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_simulator_batched_fill_matches_recorded_run(name):
    # With a hub attached the simulator asks one job per worker (dispatch
    # events must interleave); without one it fills all free workers per
    # ask_batch.  Both must produce the same measurements, completions, and
    # dispatch count for the same seeded run.
    def run(with_hub: bool):
        hub = TelemetryHub([InMemorySink()]) if with_hub else None
        cluster = SimulatedCluster(4, seed=11, straggler_std=0.2)
        return cluster.run(
            make_scheduler(name),
            toy_objective(max_resource=9.0),
            time_limit=200.0,
            telemetry=hub,
        )

    recorded, batched = run(True), run(False)
    assert batched.measurements == recorded.measurements
    assert batched.completions == recorded.completions
    assert batched.jobs_dispatched == recorded.jobs_dispatched


def test_threaded_prefetch_matches_single_ask():
    # One worker, result-independent scheduler (random search): prefetching
    # must hand out the same jobs and losses as ask-per-worker.  Schedulers
    # whose decisions depend on results (ASHA promotions) legitimately see
    # staler state through the prefetch queue — that trade is documented on
    # ``ask_batch_size`` — so the identity contract is pinned where it holds.
    def run(batch_size: int):
        scheduler = build_scheduler(
            "random",
            toy_space(),
            np.random.default_rng(7),
            min_resource=1.0,
            max_resource=9.0,
            eta=3,
            kwargs={"max_trials": 40},
        )
        backend = ThreadPoolBackend(1, ask_batch_size=batch_size)
        result = backend.run(
            scheduler,
            toy_objective(max_resource=9.0),
            time_limit=30.0,
            max_measurements=40,
        )
        return [(m.trial_id, m.resource, m.loss) for m in result.measurements]

    assert run(4) == run(1)


def test_threaded_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        ThreadPoolBackend(1, ask_batch_size=0)
