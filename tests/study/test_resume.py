"""Crash/resume byte-identity: the journal's central guarantee.

A run killed at *any* point and resumed must finish with the same journal,
telemetry stream, and Chrome trace — byte for byte — as a run that was
never interrupted.  The scenario here includes stragglers, dropped jobs,
and a retry policy, so the fault paths (requeue/abandon records) are pinned
too.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro.backend import RetryPolicy, SimulatedCluster, ThreadPoolBackend
from repro.backend.process_pool import ProcessPoolBackend
from repro.core import ASHA, build_scheduler
from repro.experiments.toys import toy_objective, toy_space
from repro.study import Study, read_journal
from repro.telemetry import JSONLSink, TelemetryHub

GOLDEN_TRACE_DIR = Path(__file__).parents[1] / "integration" / "golden"


def make_scheduler():
    return build_scheduler(
        "asha",
        toy_space(),
        np.random.default_rng(7),
        min_resource=1.0,
        max_resource=9.0,
        eta=3,
        kwargs={"max_trials": 6},
    )


def run_scenario(
    journal,
    *,
    cluster_cls=SimulatedCluster,
    telemetry_path=None,
    trace=False,
    resume=False,
    objective=None,
):
    """One seeded faulty run (2 workers, drops, stragglers, retries)."""
    objective = objective if objective is not None else toy_objective()
    if resume:
        study = Study.resume(journal, scheduler=make_scheduler(), mode="replay")
    else:
        study = Study(make_scheduler(), journal=journal)
    cluster = cluster_cls(2, straggler_std=0.3, drop_probability=0.1, seed=11)
    hub = TelemetryHub([JSONLSink(telemetry_path)]) if telemetry_path else None
    result = cluster.run(
        study,
        objective,
        time_limit=200.0,
        telemetry=hub,
        retry_policy=RetryPolicy(max_attempts=2, backoff=0.5),
        trace=trace,
    )
    if hub is not None:
        hub.close()
    study.close()
    return result


class CountingObjective:
    """Delegating wrapper that counts real training calls."""

    def __init__(self, inner):
        self.inner = inner
        self.space = inner.space
        self.max_resource = inner.max_resource
        self.train_calls = 0

    def initial_state(self, config):
        return self.inner.initial_state(config)

    def train(self, state, config, from_resource, to_resource):
        self.train_calls += 1
        return self.inner.train(state, config, from_resource, to_resource)

    def cost(self, config, from_resource, to_resource):
        return self.inner.cost(config, from_resource, to_resource)


def test_kill_at_every_record_resumes_byte_identical(tmp_path):
    """The acceptance sweep: cut the journal after every record (and again

    with a torn half-record appended), resume, and demand byte equality."""
    reference_path = tmp_path / "ref.journal.jsonl"
    run_scenario(reference_path)
    reference = reference_path.read_bytes()
    lines = reference.splitlines(keepends=True)
    assert len(lines) >= 10, "scenario too small to exercise the sweep"

    kinds = [r.get("kind") for r in (json.loads(ln) for ln in lines)]
    assert "requeue" in kinds or "abandon" in kinds or "fail" in kinds, (
        "scenario exercises no fault path; the sweep would not cover "
        "requeue/abandon records"
    )

    for cut in range(1, len(lines)):
        for torn in (False, True):
            path = tmp_path / f"cut{cut}{'t' if torn else ''}.journal.jsonl"
            content = b"".join(lines[:cut])
            if torn:
                content += lines[cut][: max(1, len(lines[cut]) // 2)].rstrip(b"\n")
            path.write_bytes(content)
            run_scenario(path, resume=True)
            assert path.read_bytes() == reference, (
                f"resume after cut at record {cut} (torn={torn}) diverged"
            )


@pytest.mark.parametrize("cluster_cls", [SimulatedCluster, ProcessPoolBackend])
def test_resume_telemetry_and_trace_byte_identical(tmp_path, cluster_cls):
    ref_journal = tmp_path / "ref.journal.jsonl"
    ref_events = tmp_path / "ref.events.jsonl"
    ref = run_scenario(
        ref_journal, cluster_cls=cluster_cls, telemetry_path=ref_events, trace=True
    )
    ref_trace = json.dumps(ref.trace.to_chrome_trace(), sort_keys=True)

    lines = ref_journal.read_bytes().splitlines(keepends=True)
    cut = max(2, (2 * len(lines)) // 5)
    cut_journal = tmp_path / "cut.journal.jsonl"
    cut_journal.write_bytes(b"".join(lines[:cut]) + lines[cut][:7])

    resumed_events = tmp_path / "res.events.jsonl"
    resumed = run_scenario(
        cut_journal, cluster_cls=cluster_cls, telemetry_path=resumed_events,
        trace=True, resume=True,
    )
    assert cut_journal.read_bytes() == ref_journal.read_bytes()
    assert resumed_events.read_bytes() == ref_events.read_bytes()
    assert json.dumps(resumed.trace.to_chrome_trace(), sort_keys=True) == ref_trace
    assert len(resumed.measurements) == len(ref.measurements)


def test_replay_of_complete_run_trains_nothing(tmp_path):
    """Journalled losses are reused: a full replay never calls train()."""
    path = tmp_path / "run.journal.jsonl"
    run_scenario(path)
    counting = CountingObjective(toy_objective())
    run_scenario(path, resume=True, objective=counting)
    assert counting.train_calls == 0


def test_journaling_leaves_the_golden_telemetry_stream_unchanged(tmp_path):
    """Turning the journal on must not move a single telemetry byte.

    The golden ASHA trace was recorded before studies existed; the same
    scenario run through a journal-backed Study must still match it.
    """
    golden = (GOLDEN_TRACE_DIR / "asha.jsonl").read_text(encoding="utf-8")
    scheduler = ASHA(
        toy_space(),
        np.random.default_rng(3),
        min_resource=1,
        max_resource=9,
        eta=3,
        max_trials=30,
    )
    study = Study(scheduler, journal=tmp_path / "golden.journal.jsonl")
    buffer = io.StringIO()
    hub = TelemetryHub([JSONLSink(buffer)])
    SimulatedCluster(4, straggler_std=0.3, drop_probability=0.02, seed=7).run(
        study, toy_objective(max_resource=9.0), time_limit=60.0, telemetry=hub
    )
    hub.close()
    assert buffer.getvalue() == golden


def test_thread_backend_restore_mode_resumes(tmp_path):
    """Wall-clock runs cannot replay; restore mode catches the scheduler up."""
    path = tmp_path / "threads.journal.jsonl"
    objective = toy_objective()

    def fresh_scheduler():
        return build_scheduler(
            "asha", toy_space(), np.random.default_rng(3),
            min_resource=1.0, max_resource=9.0, eta=3, kwargs={"max_trials": 8},
        )

    ThreadPoolBackend(2).run(Study(fresh_scheduler(), journal=path), objective, time_limit=30.0)
    records, _, _ = read_journal(path)
    body = records[1:]
    told_before = sum(1 for r in body if r["kind"] == "tell")
    assert told_before >= 8

    # Cut mid-run, leaving a torn tail and at least one in-flight ask.
    lines = path.read_bytes().splitlines(keepends=True)
    cut = len(lines) // 2
    path.write_bytes(b"".join(lines[:cut]) + lines[cut][:6])

    restored = Study.resume(path, scheduler=fresh_scheduler(), mode="restore")
    carried = restored.num_trials
    assert carried > 0
    result = ThreadPoolBackend(2).run(restored, objective, time_limit=30.0)
    restored.close()
    records, _, terminated = read_journal(path)
    assert terminated
    finished_tells = sum(1 for r in records[1:] if r["kind"] == "tell")
    assert finished_tells >= told_before - 2  # crash forfeits at most in-flight work
    assert restored.best_trial() is not None
    assert result.measurements


def test_resume_missing_header_raises(tmp_path):
    path = tmp_path / "empty.journal.jsonl"
    path.write_bytes(b"")
    with pytest.raises(Exception, match="header"):
        Study.resume(path, scheduler=make_scheduler())
