"""Study ask/tell semantics: manual driving, registry parity, pause, wrappers.

The golden fixture under ``tests/study/golden/`` pins the journal a manual
ask/tell loop writes for the seeded ASHA scenario below; the same bytes must
come out of ``tune()`` driving the identical configuration through the
simulated backend at one worker.  Regenerate (ONLY for an intentional
behaviour change):

    PYTHONPATH=src python tests/study/test_study.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.backend.checkpoint import CheckpointStore
from repro.core import SCHEDULERS, ContractChecker, build_scheduler
from repro.experiments.toys import toy_space
from repro.study import Journal, Study, build_spec, read_journal
from repro.tune import FunctionObjective, tune

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_JOURNAL = GOLDEN_DIR / "asha_manual.journal.jsonl"

#: The pinned scenario: seeded ASHA on the 1-d toy space, n=12 trials.
SCENARIO = dict(min_resource=1.0, max_resource=9.0, eta=3, seed=7)
SCHEDULER_KWARGS = {"max_trials": 12}


def train_fn(config, state, from_resource, to_resource):
    """Deterministic resumable training: loss decays toward ``quality``."""
    assert state is None or state == from_resource, "checkpoint handed back wrong state"
    loss = config["quality"] * (1.0 + 1.0 / (1.0 + to_resource))
    return to_resource, loss


def make_scheduler():
    return build_scheduler(
        "asha",
        toy_space(),
        np.random.default_rng(SCENARIO["seed"]),
        min_resource=SCENARIO["min_resource"],
        max_resource=SCENARIO["max_resource"],
        eta=SCENARIO["eta"],
        kwargs=dict(SCHEDULER_KWARGS),
    )


def make_spec():
    return build_spec(
        scheduler="asha",
        space=toy_space(),
        seed=SCENARIO["seed"],
        min_resource=SCENARIO["min_resource"],
        max_resource=SCENARIO["max_resource"],
        eta=SCENARIO["eta"],
        scheduler_kwargs=SCHEDULER_KWARGS,
    )


def drive_manually(study: Study, objective) -> float:
    """The quick-start loop from ``docs/study.md``: one worker, inline training.

    Tracks the simulated clock exactly like ``SimulatedCluster`` at
    ``num_workers=1``: each job completes at the running sum of job costs.
    """
    store = CheckpointStore()
    clock = 0.0
    while not study.is_done():
        job = study.ask()
        if job is None:
            break
        clock += store.job_cost(job, objective)
        loss = store.run_job(job, objective)
        study.tell(job, loss, time=clock)
    study.finalize()
    return clock


def record_manual_journal(path) -> bytes:
    objective = FunctionObjective(train_fn, toy_space(), SCENARIO["max_resource"])
    study = Study(make_scheduler(), journal=path, spec=make_spec())
    drive_manually(study, objective)
    study.close()
    return Path(path).read_bytes()


def test_manual_journal_matches_golden(tmp_path):
    recorded = record_manual_journal(tmp_path / "manual.journal.jsonl")
    assert recorded == GOLDEN_JOURNAL.read_bytes()


def test_tune_reproduces_manual_ask_tell_journal(tmp_path):
    """Acceptance: a manual ask/tell loop == tune()'s exact seeded trace."""
    path = tmp_path / "tune.journal.jsonl"
    result = tune(
        train_fn,
        toy_space(),
        max_resource=SCENARIO["max_resource"],
        min_resource=SCENARIO["min_resource"],
        eta=SCENARIO["eta"],
        scheduler="asha",
        scheduler_kwargs=dict(SCHEDULER_KWARGS),
        num_workers=1,
        time_limit=10_000.0,
        seed=SCENARIO["seed"],
        journal=path,
    )
    assert result.study is not None and result.study.journal is not None
    assert path.read_bytes() == GOLDEN_JOURNAL.read_bytes()


def test_golden_journal_is_nontrivial():
    records, _, terminated = read_journal(GOLDEN_JOURNAL)
    assert terminated
    kinds = [r["kind"] for r in records]
    assert kinds[0] == "journal_header"
    assert kinds.count("ask") == kinds.count("tell") >= 12
    assert records[0]["spec"]["scheduler"] == "asha"


def test_registry_covers_the_old_ladder():
    """Satellite: the SCHEDULERS registry replaces tune's if/elif ladder."""
    assert set(SCHEDULERS) >= {
        "asha",
        "sha",
        "hyperband",
        "async_hyperband",
        "bohb",
        "pbt",
        "random",
        "gp",
    }
    space = toy_space()
    for name in SCHEDULERS:
        sched = build_scheduler(
            name,
            space,
            np.random.default_rng(0),
            min_resource=1.0,
            max_resource=9.0,
            eta=3,
            kwargs={},
        )
        assert sched.space is space or sched.space is not None


def test_unknown_scheduler_name_raises():
    with pytest.raises(KeyError, match="unknown scheduler"):
        build_scheduler(
            "nope", toy_space(), np.random.default_rng(0),
            min_resource=1.0, max_resource=9.0, eta=3, kwargs={},
        )


def test_pause_gates_ask(tmp_path):
    objective = FunctionObjective(train_fn, toy_space(), 9.0)
    study = Study(make_scheduler())
    study.pause()
    assert study.paused
    assert study.ask() is None
    study.unpause()
    job = study.ask()
    assert job is not None
    state, loss = objective.train(None, job.config, 0.0, job.resource)
    study.tell(job, loss)
    assert study.num_trials == 1


def test_contract_checker_wrapped_study_is_transparent(tmp_path):
    """Wrapping the scheduler in ContractChecker must not change the journal."""
    objective = FunctionObjective(train_fn, toy_space(), SCENARIO["max_resource"])
    path = tmp_path / "checked.journal.jsonl"
    study = Study(ContractChecker(make_scheduler()), journal=path, spec=make_spec())
    drive_manually(study, objective)
    study.close()
    assert path.read_bytes() == GOLDEN_JOURNAL.read_bytes()


def test_journal_instance_can_be_passed_directly(tmp_path):
    path = tmp_path / "inst.journal.jsonl"
    journal = Journal(path, spec=make_spec())
    objective = FunctionObjective(train_fn, toy_space(), SCENARIO["max_resource"])
    study = Study(make_scheduler(), journal=journal)
    drive_manually(study, objective)
    study.close()
    assert path.read_bytes() == GOLDEN_JOURNAL.read_bytes()


def test_bare_resume_rebuilds_scheduler_from_header_spec(tmp_path):
    """``Study.resume(path)`` with no scheduler uses the journal's recipe."""
    path = tmp_path / "run.journal.jsonl"
    reference = record_manual_journal(path)
    lines = reference.splitlines(keepends=True)
    cut = len(lines) // 2
    path.write_bytes(b"".join(lines[:cut]))
    study = Study.resume(path)  # no scheduler argument: spec path
    assert study.replaying
    objective = FunctionObjective(train_fn, toy_space(), SCENARIO["max_resource"])
    store = CheckpointStore()
    clock = 0.0
    while not study.is_done():
        job = study.ask()
        if job is None:
            break
        clock += store.job_cost(job, objective)
        loss = study.cached_loss(job)
        if loss is not None:
            store.replay_complete(job)
        else:
            loss = store.run_job(job, objective)
        study.tell(job, loss, time=clock)
    study.finalize()
    study.close()
    assert path.read_bytes() == reference


if __name__ == "__main__":
    GOLDEN_DIR.mkdir(exist_ok=True)
    content = record_manual_journal(GOLDEN_JOURNAL)
    newline = b"\n"
    print(f"recorded {GOLDEN_JOURNAL} ({content.count(newline)} records)")
