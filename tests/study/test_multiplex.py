"""StudyMultiplexer: per-study byte-identity against solo runs.

The multiplexer's whole contract is that sharing the loop is unobservable:
a study driven next to thousands of others produces the same journal bytes,
the same BackendResult records, the same telemetry stream, and the same
trace as the same study run alone.  These tests pin that against the solo
:meth:`SimulatedCluster.run` oracle under every shared-machinery knob
(fair-share caps, commit cadence, fault physics, replay resume).
"""

from __future__ import annotations

import io
import os

import numpy as np
import pytest

from repro.backend.faults import RetryPolicy
from repro.backend.simulation import SimulatedCluster
from repro.core import build_scheduler
from repro.experiments.toys import toy_objective, toy_space
from repro.study import Journal, Study, StudyMultiplexer, read_journal, read_wal
from repro.telemetry import JSONLSink, TelemetryHub

OBJECTIVE = toy_objective()

#: Cluster physics exercising every failure path (stragglers, drops, churn).
ROUGH = dict(
    straggler_std=0.3, drop_probability=0.01, churn_rate=0.05, churn_downtime=2.0
)


def make_scheduler(seed: int):
    return build_scheduler(
        "asha",
        toy_space(),
        np.random.default_rng(seed),
        min_resource=1.0,
        max_resource=9.0,
        eta=3,
    )


def make_cluster(seed: int, **physics):
    return SimulatedCluster(4, seed=1000 + seed, **physics)


def run_solo(tmp_path, i: int, *, physics=ROUGH, **run_kwargs):
    study = Study(make_scheduler(i), journal=Journal(tmp_path / f"solo_{i}.jsonl"))
    cluster = make_cluster(i, **physics)
    result = cluster.run(study, OBJECTIVE, time_limit=60.0, **run_kwargs)
    return result


def run_multiplexed(tmp_path, n: int, *, physics=ROUGH, mux_kwargs=None, **run_kwargs):
    mux = StudyMultiplexer(**(mux_kwargs or {}))
    for i in range(n):
        study = Study(
            make_scheduler(i),
            journal=Journal(tmp_path / f"mux_{i}.jsonl", writer=mux.journal_writer),
        )
        mux.add(
            study, OBJECTIVE, cluster=make_cluster(i, **physics), time_limit=60.0, **run_kwargs
        )
    return mux, mux.run()


def journal_bytes(path) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def assert_results_equal(solo, muxed) -> None:
    assert solo.measurements == muxed.measurements
    assert solo.completions == muxed.completions
    assert solo.failures == muxed.failures
    assert solo.failure_log == muxed.failure_log
    assert solo.jobs_dispatched == muxed.jobs_dispatched
    assert solo.jobs_retried == muxed.jobs_retried
    assert solo.trials_abandoned == muxed.trials_abandoned
    assert solo.elapsed == muxed.elapsed
    assert solo.utilization == muxed.utilization


def test_journals_and_results_byte_identical_to_solo(tmp_path):
    n = 6
    solos = [run_solo(tmp_path, i) for i in range(n)]
    _, out = run_multiplexed(
        tmp_path, n, mux_kwargs=dict(fair_share=2, commit_interval=4)
    )
    assert len(out) == n
    for i in range(n):
        assert journal_bytes(tmp_path / f"solo_{i}.jsonl") == journal_bytes(
            tmp_path / f"mux_{i}.jsonl"
        )
        assert_results_equal(solos[i], out[i])


@pytest.mark.parametrize("fair_share", [1, 3, None])
def test_fair_share_cap_never_changes_bytes(tmp_path, fair_share):
    """Chunked round-robin fills are invisible: all caps give solo bytes."""
    n = 4
    for i in range(n):
        run_solo(tmp_path, i)
    run_multiplexed(tmp_path, n, mux_kwargs=dict(fair_share=fair_share))
    for i in range(n):
        assert journal_bytes(tmp_path / f"solo_{i}.jsonl") == journal_bytes(
            tmp_path / f"mux_{i}.jsonl"
        )


@pytest.mark.parametrize("commit_interval", [1, 1000])
def test_commit_cadence_never_changes_bytes(tmp_path, commit_interval):
    n = 3
    for i in range(n):
        run_solo(tmp_path, i)
    mux, out = run_multiplexed(
        tmp_path, n, mux_kwargs=dict(commit_interval=commit_interval)
    )
    assert out.journal_commits == mux.journal_writer.commits
    for i in range(n):
        assert journal_bytes(tmp_path / f"solo_{i}.jsonl") == journal_bytes(
            tmp_path / f"mux_{i}.jsonl"
        )


def test_retry_policy_byte_identity(tmp_path):
    """Fault tolerance (retries, timeouts, abandonment) multiplexes cleanly."""
    policy = RetryPolicy(max_attempts=3, backoff=0.5, timeout_factor=10.0)
    n = 4
    solos = [run_solo(tmp_path, i, retry_policy=policy) for i in range(n)]
    _, out = run_multiplexed(tmp_path, n, retry_policy=policy)
    for i in range(n):
        assert journal_bytes(tmp_path / f"solo_{i}.jsonl") == journal_bytes(
            tmp_path / f"mux_{i}.jsonl"
        )
        assert_results_equal(solos[i], out[i])


def test_telemetry_stream_byte_identity(tmp_path):
    """Per-study hubs under the mux emit solo-identical JSONL streams.

    Telemetry flips the fill path to one-ask-per-worker (event interleaving
    order is recorded), so this covers the branch the journal tests don't.
    """
    n = 3

    def run(i, mux=None):
        buf = io.StringIO()
        hub = TelemetryHub()
        hub.add_sink(JSONLSink(buf))
        study = Study(make_scheduler(i))
        cluster = make_cluster(i, **ROUGH)
        if mux is None:
            cluster.run(study, OBJECTIVE, time_limit=60.0, telemetry=hub)
        else:
            mux.add(study, OBJECTIVE, cluster=cluster, time_limit=60.0, telemetry=hub)
        return buf

    solo_bufs = [run(i) for i in range(n)]
    mux = StudyMultiplexer(fair_share=2)
    mux_bufs = [run(i, mux) for i in range(n)]
    mux.run()
    for i in range(n):
        assert solo_bufs[i].getvalue() == mux_bufs[i].getvalue()
        assert solo_bufs[i].getvalue()  # not trivially empty


def test_trace_byte_identity(tmp_path):
    """Reconstructed chrome traces match the solo run exactly."""
    solo = run_solo(tmp_path, 0, trace=True)
    _, out = run_multiplexed(tmp_path, 2, trace=True)
    assert solo.trace is not None and out[0].trace is not None
    assert solo.trace.chrome_trace_json() == out[0].trace.chrome_trace_json()


def test_replay_resume_inside_multiplexer(tmp_path):
    """A crash-truncated journal resumed *inside* the mux converges to solo bytes."""
    run_solo(tmp_path, 0, physics=dict(straggler_std=0.3))
    full = journal_bytes(tmp_path / "solo_0.jsonl")

    # Simulate a crash: keep only a prefix of whole records.
    torn = tmp_path / "torn_0.jsonl"
    lines = full.splitlines(keepends=True)
    torn.write_bytes(b"".join(lines[: len(lines) // 2]))

    mux = StudyMultiplexer()
    resumed = Study.resume(
        torn, scheduler=make_scheduler(0), journal_writer=mux.journal_writer
    )
    mux.add(
        resumed,
        OBJECTIVE,
        cluster=make_cluster(0, straggler_std=0.3),
        time_limit=60.0,
    )
    mux.run()
    assert journal_bytes(torn) == full


def test_group_commit_buffers_until_commit(tmp_path):
    """Journal bytes stay pending between commits; crash window is bounded."""
    n = 2
    mux = StudyMultiplexer(commit_interval=10**9)  # never auto-commit
    paths = [tmp_path / f"j{i}.jsonl" for i in range(n)]
    for i in range(n):
        study = Study(
            make_scheduler(i), journal=Journal(paths[i], writer=mux.journal_writer)
        )
        mux.add(study, OBJECTIVE, cluster=make_cluster(i), time_limit=20.0)
    # Nothing committed yet: even the headers are still buffered.
    for p in paths:
        assert journal_bytes(p) == b""
    mux.run()
    # run() finalizes: everything lands, files parse cleanly.
    for p in paths:
        records, _, terminated = read_journal(p)
        assert terminated
        assert records[0]["kind"] == "journal_header"
        assert any(r["kind"] == "tell" for r in records)


def test_wal_mode_keeps_solo_bytes_and_reconstructs(tmp_path):
    """WAL-backed group commit: solo-identical files, fully replayable log."""
    n = 4
    for i in range(n):
        run_solo(tmp_path, i)
    wal_path = tmp_path / "journals.wal"
    _, out = run_multiplexed(
        tmp_path, n, mux_kwargs=dict(commit_interval=8, wal_path=str(wal_path))
    )
    assert len(out) == n
    replayed = read_wal(wal_path)
    assert len(replayed) == n
    for i in range(n):
        mux_bytes = journal_bytes(tmp_path / f"mux_{i}.jsonl")
        assert mux_bytes == journal_bytes(tmp_path / f"solo_{i}.jsonl")
        # Every journal is rebuildable from the shared log alone.
        assert replayed[os.fspath(tmp_path / f"mux_{i}.jsonl")] == mux_bytes


def test_add_rejects_shared_cluster(tmp_path):
    mux = StudyMultiplexer()
    cluster = make_cluster(0)
    mux.add(make_scheduler(0), OBJECTIVE, cluster=cluster, time_limit=10.0)
    with pytest.raises(ValueError, match="own SimulatedCluster"):
        mux.add(make_scheduler(1), OBJECTIVE, cluster=cluster, time_limit=10.0)


def test_run_is_single_use(tmp_path):
    mux = StudyMultiplexer()
    mux.add(make_scheduler(0), OBJECTIVE, cluster=make_cluster(0), time_limit=10.0)
    mux.run()
    with pytest.raises(RuntimeError, match="already called"):
        mux.run()
    with pytest.raises(RuntimeError, match="already called"):
        mux.add(make_scheduler(1), OBJECTIVE, cluster=make_cluster(1), time_limit=10.0)


def test_run_requires_studies():
    with pytest.raises(ValueError, match="no studies"):
        StudyMultiplexer().run()


def test_knob_validation():
    with pytest.raises(ValueError, match="fair_share"):
        StudyMultiplexer(fair_share=0)
    with pytest.raises(ValueError, match="commit_interval"):
        StudyMultiplexer(commit_interval=0)


def test_many_studies_one_process(tmp_path):
    """A few hundred journal-backed studies complete without fd exhaustion.

    Group-commit mode never holds a journal fd between commits, so the
    concurrent-study count is bounded by memory, not ``ulimit -n``.  (The
    full 10k-study load lives in the perf benchmark; this is the fast
    functional pin.)
    """
    n = 300
    mux = StudyMultiplexer(fair_share=4, commit_interval=256)
    for i in range(n):
        study = Study(
            make_scheduler(i),
            journal=Journal(tmp_path / f"m{i}.jsonl", writer=mux.journal_writer),
        )
        mux.add(
            study,
            OBJECTIVE,
            cluster=SimulatedCluster(2, seed=i),
            time_limit=20.0,
            max_measurements=10,
        )
    out = mux.run()
    assert len(out) == n
    assert all(r.measurements for r in out)
    assert out.journal_commits >= 1
    for i in range(n):
        records, _, terminated = read_journal(tmp_path / f"m{i}.jsonl")
        assert terminated and records[0]["kind"] == "journal_header"


# ---------------------------------------------------------------------------
# Runtime observability: the fair-share starvation accounting must tell the
# truth — a throttled study's starvation age climbs, a dispatching study's
# stays zero.  (The probe layer itself is covered in telemetry/test_runtime.)
# ---------------------------------------------------------------------------


def test_starvation_accounting_under_fair_share(tmp_path):
    import json

    from repro.telemetry.runtime import (
        RuntimeScraper,
        install_runtime_registry,
        uninstall_runtime_registry,
    )

    registry = install_runtime_registry()
    try:
        scraper = RuntimeScraper(registry, tmp_path / "snap.jsonl", every=4)
        mux = StudyMultiplexer(fair_share=1, scraper=scraper)
        # Study 0 dispatches freely; study 1 is paused, so it holds a free
        # worker for the whole run without ever asking a job — the extreme
        # slow study.
        mux.add(
            Study(make_scheduler(0)),
            OBJECTIVE,
            cluster=make_cluster(0, **ROUGH),
            time_limit=60.0,
        )
        starved = Study(make_scheduler(1))
        starved.pause()
        mux.add(starved, OBJECTIVE, cluster=make_cluster(1), time_limit=60.0)
        mux.run()
    finally:
        uninstall_runtime_registry()

    lines = [
        json.loads(line)
        for line in (tmp_path / "snap.jsonl").read_text().splitlines()
    ]
    assert len(lines) >= 3
    gauges = [rec["snapshot"]["gauges"] for rec in lines]
    starved_ages = [g['mux_starvation_age_ticks{study="1"}'] for g in gauges]
    active_ages = [g['mux_starvation_age_ticks{study="0"}'] for g in gauges]
    # The throttled study's starvation age climbs monotonically for the
    # whole run — it always has a free worker and never dispatches.
    assert starved_ages == sorted(starved_ages)
    assert starved_ages[0] > 0
    assert starved_ages[-1] > starved_ages[0]
    # All four of the paused study's workers sit free the whole run.
    assert all(g['mux_pending_asks{study="1"}'] == 4.0 for g in gauges)
    # The dispatching study never reads as starving: its free workers are
    # refilled within the same instant they open up.
    assert active_ages == [0.0] * len(active_ages)
    # And the fair_share=1 cap demonstrably cut fill rounds short.
    final = lines[-1]["snapshot"]
    assert final["counters"]["mux_throttle_total"] > 0
    assert final["counters"]["mux_dispatched_jobs_total"] > 0
