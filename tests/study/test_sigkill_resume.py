"""Drive ``scripts/crash_resume_check.py``: a real SIGKILL, then resume.

This is the whole-process version of the in-process sweep in
``test_resume.py`` — the victim dies with no cleanup handlers, exactly like
a preempted worker or an OOM kill.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parents[2]
SCRIPT = REPO_ROOT / "scripts" / "crash_resume_check.py"


def test_sigkill_mid_run_then_resume_is_byte_identical(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--workdir", str(tmp_path)],
        env=env,
        capture_output=True,
        text=True,
        timeout=280,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "died with SIGKILL" in proc.stdout
    assert proc.stdout.count("byte-identical") == 3
    # The victim's partial artefacts are really there (it did do work).
    assert (tmp_path / "victim.journal.jsonl").exists()
    assert (tmp_path / "victim.events.jsonl").exists()
