"""Unit tests for the write-ahead journal file format and its healing rules."""

from __future__ import annotations

import json
import os

import pytest

from repro.study import (
    JOURNAL_VERSION,
    Journal,
    JournalError,
    JournalWriter,
    encode_record,
    read_journal,
    read_wal,
)
from repro.telemetry import JSONLSink

RECORDS = [
    {"kind": "ask", "job_id": 0, "trial_id": 0, "resource": 1.0},
    {"kind": "tell", "job_id": 0, "trial_id": 0, "loss": 0.5, "time": 1.0},
    {"kind": "ask", "job_id": 1, "trial_id": 1, "resource": 1.0},
]


def write_journal(path, records=RECORDS, spec=None):
    journal = Journal(path, spec=spec)
    for record in records:
        journal.append(record)
    journal.close()


def test_append_read_round_trip(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    write_journal(path)
    records, valid, terminated = read_journal(path)
    assert records[0]["kind"] == "journal_header"
    assert records[0]["version"] == JOURNAL_VERSION
    assert records[1:] == RECORDS
    assert terminated
    assert valid == path.stat().st_size


def test_encoding_is_canonical(tmp_path):
    """Sorted keys, no whitespace — byte-comparable across runs."""
    line = encode_record({"b": 1, "a": {"d": 2, "c": 3}})
    assert line == '{"a":{"c":3,"d":2},"b":1}'


def test_append_flushes_immediately(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    journal = Journal(path)
    journal.append(RECORDS[0])
    # Visible on disk before close: the WAL property a crash relies on.
    on_disk, _, _ = read_journal(path)
    assert on_disk[1:] == RECORDS[:1]
    journal.close()


def test_torn_trailing_line_is_dropped(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    write_journal(path)
    whole = path.read_bytes()
    lines = whole.splitlines(keepends=True)
    path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
    records, valid, terminated = read_journal(path)
    assert records[1:] == RECORDS[:-1]
    assert valid == sum(len(line) for line in lines[:-1])
    assert terminated


def test_unterminated_parseable_tail_is_accepted(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    write_journal(path)
    path.write_bytes(path.read_bytes().rstrip(b"\n"))
    records, valid, terminated = read_journal(path)
    assert records[1:] == RECORDS
    assert not terminated
    assert valid == path.stat().st_size


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    write_journal(path)
    lines = path.read_bytes().splitlines(keepends=True)
    lines[1] = b"{garbage\n"
    path.write_bytes(b"".join(lines))
    with pytest.raises(JournalError, match="line 2"):
        read_journal(path)


def test_reopen_append_heals_torn_tail(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    write_journal(path)
    lines = path.read_bytes().splitlines(keepends=True)
    path.write_bytes(b"".join(lines) + b'{"kind":"tel')  # torn mid-record
    journal = Journal(path, mode="a")
    journal.append({"kind": "tell", "job_id": 1, "trial_id": 1, "loss": 0.25, "time": 2.0})
    journal.close()
    records, _, terminated = read_journal(path)
    assert records[1:] == RECORDS + [
        {"kind": "tell", "job_id": 1, "trial_id": 1, "loss": 0.25, "time": 2.0}
    ]
    assert terminated


def test_reopen_append_terminates_unterminated_tail(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    write_journal(path)
    path.write_bytes(path.read_bytes().rstrip(b"\n"))
    journal = Journal(path, mode="a")
    journal.append({"kind": "abandon", "job_id": 2, "trial_id": 2})
    journal.close()
    records, _, _ = read_journal(path)
    assert records[-2] == RECORDS[-1]
    assert records[-1] == {"kind": "abandon", "job_id": 2, "trial_id": 2}


def test_append_mode_on_missing_file_writes_fresh_header(tmp_path):
    path = tmp_path / "fresh.journal.jsonl"
    journal = Journal(path, mode="a", spec={"scheduler": "asha"})
    journal.close()
    records, _, _ = read_journal(path)
    assert records == [
        {"kind": "journal_header", "version": JOURNAL_VERSION, "spec": {"scheduler": "asha"}}
    ]


def test_header_spec_round_trips(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    spec = {"scheduler": "asha", "seed": 7, "eta": 3}
    write_journal(path, spec=spec)
    records, _, _ = read_journal(path)
    assert records[0]["spec"] == spec


def test_append_after_close_raises(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    journal = Journal(path)
    journal.close()
    with pytest.raises(ValueError):
        journal.append(RECORDS[0])


def test_finalize_fsyncs_and_is_idempotent(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    journal = Journal(path)
    journal.append(RECORDS[0])
    journal.finalize()
    journal.finalize()  # second call must not raise
    journal.close()
    journal.finalize()  # nor after close
    records, _, _ = read_journal(path)
    assert records[1:] == RECORDS[:1]


def test_jsonl_sink_finalize_flushes_and_survives_close(tmp_path):
    """Satellite: JSONLSink.finalize makes the event file durable."""
    from repro.telemetry.events import EventKind, TelemetryEvent

    path = tmp_path / "events.jsonl"
    sink = JSONLSink(path)
    sink.write(TelemetryEvent(seq=0, kind=EventKind.JOB_STARTED, time=0.0, wall_time=0.0))
    sink.finalize()
    assert json.loads(path.read_text().splitlines()[0])["seq"] == 0
    sink.close()
    sink.finalize()  # finalize after close must be a harmless no-op
    os.stat(path)  # file still present and intact


# ---------------------------------------------------------------- group commit


def test_group_commit_buffers_until_commit(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    writer = JournalWriter()
    journal = Journal(path, writer=writer)
    journal.append(RECORDS[0])
    journal.append_batch(RECORDS[1:])
    # Nothing on disk yet — not even the header.
    assert path.read_bytes() == b""
    writer.commit()
    records, _, terminated = read_journal(path)
    assert terminated
    assert records[0]["kind"] == "journal_header"
    assert records[1:] == RECORDS
    assert writer.commits == 1


def test_group_commit_bytes_match_immediate_mode(tmp_path):
    immediate, buffered = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_journal(immediate, spec={"s": 1})
    writer = JournalWriter()
    journal = Journal(buffered, writer=writer, spec={"s": 1})
    for record in RECORDS:
        journal.append(record)
        writer.commit()  # commit cadence must not change the bytes
    journal.close()
    assert immediate.read_bytes() == buffered.read_bytes()


def test_group_commit_finalize_lands_pending(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    writer = JournalWriter()
    journal = Journal(path, writer=writer)
    journal.append(RECORDS[0])
    writer.finalize_all()
    records, _, _ = read_journal(path)
    assert records[1:] == RECORDS[:1]
    journal.finalize()  # idempotent with nothing pending


def test_group_commit_close_commits_tail(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    journal = Journal(path, writer=JournalWriter())
    journal.append(RECORDS[0])
    journal.close()
    records, _, _ = read_journal(path)
    assert records[1:] == RECORDS[:1]
    with pytest.raises(ValueError):
        journal.append(RECORDS[1])


def test_group_commit_append_mode_heals_torn_tail(tmp_path):
    path = tmp_path / "run.journal.jsonl"
    write_journal(path)
    with open(path, "ab") as fh:
        fh.write(b'{"kind": "tell", "job_id": 1, "tr')  # torn mid-append
    writer = JournalWriter()
    journal = Journal(path, mode="a", writer=writer)
    journal.append({"kind": "tell", "job_id": 1, "trial_id": 1, "loss": 0.25, "time": 2.0})
    writer.commit()
    records, _, _ = read_journal(path)
    assert [r["kind"] for r in records[1:]] == ["ask", "tell", "ask", "tell"]


def test_group_commit_holds_no_fd_between_commits(tmp_path):
    """Journal count is not bounded by the process fd limit."""

    def open_fds() -> int:
        return len(os.listdir("/proc/self/fd"))

    writer = JournalWriter()
    before = open_fds()
    journals = [Journal(tmp_path / f"j{i}.jsonl", writer=writer) for i in range(64)]
    for journal in journals:
        journal.append(RECORDS[0])
    assert open_fds() <= before + 1  # the /proc listing itself may cost one
    writer.commit()
    assert open_fds() <= before + 1
    for journal in journals:
        records, _, _ = read_journal(journal.path)
        assert records[1:] == RECORDS[:1]


# ---------------------------------------------------------------------------
# WAL mode: database-style group commit — one shared log, one fsync per
# commit window, per-journal files as replayable caches.
# ---------------------------------------------------------------------------


def test_wal_reconstructs_every_journal(tmp_path):
    wal_path = tmp_path / "journals.wal"
    writer = JournalWriter(wal_path=wal_path)
    journals = [Journal(tmp_path / f"j{i}.jsonl", writer=writer) for i in range(3)]
    for i, journal in enumerate(journals):
        journal.append(RECORDS[i])
    writer.commit()
    journals[0].append(RECORDS[1])  # second window, one dirty journal
    writer.finalize_all()
    replayed = read_wal(wal_path)
    assert len(replayed) == 3
    for journal in journals:
        file_bytes = open(journal.path, "rb").read()
        assert replayed[journal.path] == file_bytes
    # And the files themselves are byte-identical to immediate mode.
    solo = Journal(tmp_path / "solo.jsonl")
    solo.append(RECORDS[0])
    solo.append(RECORDS[1])
    solo.close()
    assert open(journals[0].path, "rb").read() == open(solo.path, "rb").read()


def test_wal_torn_final_frame_is_dropped(tmp_path):
    wal_path = tmp_path / "journals.wal"
    writer = JournalWriter(wal_path=wal_path)
    journal = Journal(tmp_path / "j.jsonl", writer=writer)
    journal.append(RECORDS[0])
    writer.commit()
    full = read_wal(wal_path)
    with open(wal_path, "ab") as fh:
        fh.write(b"=wal 7 999\npartial")  # commit a crash interrupted
    assert read_wal(wal_path) == full
    with open(wal_path, "r+b") as fh:
        fh.seek(0, os.SEEK_END)
    # Corruption before the tail is loud, not silently skipped.
    with open(wal_path, "r+b") as fh:
        fh.seek(0)
        fh.write(b"XXXX")
    with pytest.raises(JournalError):
        read_wal(wal_path)


def test_wal_defers_tail_fsync_to_group_commit(tmp_path, monkeypatch):
    """finalize_all in WAL mode costs one fsync total, not one per journal."""
    fsyncs: list[int] = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (fsyncs.append(fd), real_fsync(fd))[1])
    wal_path = tmp_path / "journals.wal"
    writer = JournalWriter(wal_path=wal_path)
    journals = [Journal(tmp_path / f"j{i}.jsonl", writer=writer) for i in range(8)]
    for journal in journals:
        journal.append(RECORDS[0])
        journal.finalize()  # defers: the tail stays buffered for the writer
        assert read_journal(journal.path)[0] == []  # nothing written yet
    writer.finalize_all()
    assert len(fsyncs) == 1  # the WAL, once — never the 8 journal files
    for journal in journals:
        records, _, _ = read_journal(journal.path)
        assert records[1:] == RECORDS[:1]


def test_wal_corruption_error_names_byte_offset_and_frame_index(tmp_path):
    """A corrupt frame is located precisely: byte offset AND frame index.

    Ops recovering a crashed multiplexer need to know *where* the WAL went
    bad — `dd`-style surgery on the file needs the byte offset, while the
    frame index says how many commits were replayable before the damage.
    """
    wal_path = tmp_path / "journals.wal"
    writer = JournalWriter(wal_path=wal_path)
    journals = [Journal(tmp_path / f"j{i}.jsonl", writer=writer) for i in range(2)]
    for record in RECORDS:
        for journal in journals:
            journal.append(record)
        writer.commit()  # one frame per journal per window -> 6 frames
    intact = wal_path.read_bytes()

    # Find the third frame's header offset by walking the intact file the
    # same way read_wal does, then stomp its magic in place.
    offsets = []
    pos = 0
    while pos < len(intact):
        offsets.append(pos)
        header_end = intact.index(b"\n", pos)
        name_len, data_len = map(int, intact[pos + 5 : header_end].split())
        pos = header_end + 1 + name_len + data_len
    assert len(offsets) == 6
    target = offsets[2]

    corrupt = bytearray(intact)
    corrupt[target : target + 4] = b"XXXX"
    wal_path.write_bytes(bytes(corrupt))
    with pytest.raises(JournalError) as excinfo:
        read_wal(wal_path)
    message = str(excinfo.value)
    assert f"byte {target}" in message
    assert "(frame 2)" in message
    assert str(wal_path) in message

    # An unparseable length field is the other corruption class: same
    # byte/frame coordinates, different diagnosis.
    corrupt = bytearray(intact)
    header_end = intact.index(b"\n", target)
    corrupt[target + 5 : header_end] = b"x" * (header_end - target - 5)
    wal_path.write_bytes(bytes(corrupt))
    with pytest.raises(JournalError) as excinfo:
        read_wal(wal_path)
    message = str(excinfo.value)
    assert f"byte {target}" in message
    assert "(frame 2)" in message
    assert "<name_len> <data_len>" in message
