"""ThreadPoolBackend.run_many: one worker pool serving many studies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.faults import FailureInjectingObjective, RetryPolicy
from repro.backend.threaded import ThreadPoolBackend
from repro.core import build_scheduler
from repro.experiments.toys import toy_objective, toy_space
from repro.study import Journal, Study, read_journal


def make_scheduler(seed: int):
    return build_scheduler(
        "asha",
        toy_space(),
        np.random.default_rng(seed),
        min_resource=1.0,
        max_resource=9.0,
        eta=3,
    )


def test_run_many_completes_every_study():
    backend = ThreadPoolBackend(num_workers=4, poll_interval=0.001)
    objective = toy_objective()
    tasks = [(make_scheduler(i), objective) for i in range(5)]
    results = backend.run_many(tasks, time_limit=30.0, max_measurements=12)
    assert len(results) == 5
    for result in results:
        assert result.measurements
        assert result.jobs_dispatched >= len(result.measurements)
    # Per-study utilization is a share of the shared pool: sums to <= 1.
    assert sum(r.utilization for r in results) <= 1.0 + 1e-9


def test_run_many_journals_each_study_separately(tmp_path):
    backend = ThreadPoolBackend(num_workers=3, poll_interval=0.001)
    objective = toy_objective()
    tasks = []
    for i in range(3):
        study = Study(make_scheduler(i), journal=Journal(tmp_path / f"s{i}.jsonl"))
        tasks.append((study, objective))
    results = backend.run_many(tasks, time_limit=30.0, max_measurements=8)
    for i, result in enumerate(results):
        records, _, terminated = read_journal(tmp_path / f"s{i}.jsonl")
        assert terminated
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "journal_header"
        # Every reported measurement has its tell in this study's journal.
        assert kinds.count("tell") == len(result.measurements)


def test_run_many_batched_asks():
    backend = ThreadPoolBackend(num_workers=2, poll_interval=0.001, ask_batch_size=4)
    objective = toy_objective()
    results = backend.run_many(
        [(make_scheduler(i), objective) for i in range(3)],
        time_limit=30.0,
        max_measurements=8,
    )
    assert all(r.measurements for r in results)


def test_run_many_retries_crashed_jobs():
    objective = FailureInjectingObjective(
        toy_objective(), seed=0, crash_probability=0.3
    )
    backend = ThreadPoolBackend(num_workers=3, poll_interval=0.001)
    results = backend.run_many(
        [(make_scheduler(i), objective) for i in range(2)],
        time_limit=30.0,
        max_measurements=6,
        retry_policy=RetryPolicy(max_attempts=5, backoff=0.0),
    )
    assert all(r.measurements for r in results)
    assert sum(r.jobs_retried for r in results) > 0


def test_run_many_validations():
    backend = ThreadPoolBackend(num_workers=1)
    with pytest.raises(ValueError, match="no tasks"):
        backend.run_many([], time_limit=1.0)
    with pytest.raises(ValueError, match="time_limit"):
        backend.run_many([(make_scheduler(0), toy_objective())], time_limit=0.0)
    with pytest.raises(ValueError, match="watchdog"):
        backend.run_many(
            [(make_scheduler(0), toy_objective())],
            time_limit=1.0,
            retry_policy=RetryPolicy(timeout=1.0),
        )
