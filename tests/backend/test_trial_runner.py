"""Unit tests for the shared backend plumbing (BackendResult, record_report)."""

from __future__ import annotations


from repro.backend.trial_runner import BackendResult, record_report
from repro.core import RandomSearch


class TestBackendResult:
    def test_first_completion_time(self):
        result = BackendResult()
        assert result.first_completion_time() is None
        result.completions = [(5.0, 1), (9.0, 2)]
        assert result.first_completion_time() == 5.0

    def test_num_completions_by_time(self):
        result = BackendResult(completions=[(5.0, 1), (9.0, 2), (20.0, 3)])
        assert result.num_completions() == 3
        assert result.num_completions(by_time=9.0) == 2
        assert result.num_completions(by_time=1.0) == 0


class TestRecordReport:
    def test_routes_to_scheduler_and_logs(self, one_d_space, rng):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        job = rs.next_job()
        result = BackendResult()
        record_report(result, rs, job, loss=0.4, time=7.0, max_resource=9.0)
        assert len(result.measurements) == 1
        m = result.measurements[0]
        assert (m.trial_id, m.resource, m.loss, m.time) == (job.trial_id, 9.0, 0.4, 7.0)
        assert result.completions == [(7.0, job.trial_id)]
        # The scheduler recorded its own copy on the trial.
        assert rs.trials[job.trial_id].last_loss == 0.4

    def test_partial_resource_not_a_completion(self, one_d_space, rng):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        job = rs.next_job()
        result = BackendResult()
        record_report(result, rs, job, loss=0.4, time=7.0, max_resource=20.0)
        assert result.completions == []

    def test_bracket_snapshots_parallel_to_measurements(self, one_d_space, rng):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        result = BackendResult()
        for _ in range(3):
            job = rs.next_job()
            record_report(result, rs, job, loss=0.5, time=1.0, max_resource=None)
        assert len(result.bracket_snapshots) == len(result.measurements) == 3
        assert result.bracket_snapshots == [None, None, None]  # no bracket notion
