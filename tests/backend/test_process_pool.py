"""Tests for the GIL-free process-pool backend.

The contract: :class:`ProcessPoolBackend` may change *where* training
computes — never *what* the run produces.  Records, telemetry metric
reports, JSONL event streams, and fault-tolerance behaviour must all be
byte-identical to :class:`SimulatedCluster` under the same seed, and
anything the pool cannot execute safely (stateful objectives, nested
workers, a fork-less platform) must silently run inline.
"""

from __future__ import annotations

import io
import pickle

import numpy as np
import pytest

from repro.backend import (
    FailureInjectingObjective,
    ProcessPoolBackend,
    RetryPolicy,
    SimulatedCluster,
)
from repro.backend.checkpoint import CheckpointStore
from repro.backend.process_pool import _InlineExecution, _ProcessPoolExecution
from repro.core import ASHA, PBT
from repro.experiments.runner import run_trials
from repro.experiments.toys import toy_objective, toy_space
from repro.objectives import mlp_real
from repro.telemetry import JSONLSink, TelemetryHub
from repro.tune import tune


def _asha(seed: int = 3, max_trials: int = 30):
    return ASHA(
        toy_space(),
        np.random.default_rng(seed),
        min_resource=1,
        max_resource=9,
        eta=3,
        max_trials=max_trials,
    )


def _run(cluster, scheduler=None, objective=None, *, time_limit=60.0, **run_kwargs):
    buffer = io.StringIO()
    hub = TelemetryHub.with_metrics(JSONLSink(buffer))
    result = cluster.run(
        scheduler if scheduler is not None else _asha(),
        objective if objective is not None else toy_objective(max_resource=9.0),
        time_limit=time_limit,
        telemetry=hub,
        **run_kwargs,
    )
    hub.close()
    return result, buffer.getvalue()


CLUSTER_KWARGS = dict(straggler_std=0.3, drop_probability=0.02, seed=7)


class TestByteParity:
    def test_records_and_events_identical_to_inline(self):
        seq, seq_events = _run(SimulatedCluster(4, **CLUSTER_KWARGS))
        par, par_events = _run(ProcessPoolBackend(4, n_procs=4, **CLUSTER_KWARGS))
        assert par_events == seq_events
        assert pickle.dumps(par) == pickle.dumps(seq)

    def test_parity_under_churn(self):
        kwargs = dict(straggler_std=0.3, churn_rate=0.15, churn_downtime=5.0, seed=23)
        seq, seq_events = _run(SimulatedCluster(4, **kwargs))
        par, par_events = _run(ProcessPoolBackend(4, n_procs=4, **kwargs))
        assert par_events == seq_events
        assert pickle.dumps(par) == pickle.dumps(seq)

    def test_parity_with_retry_policy_and_timeouts(self):
        # Timeout kills discard in-flight speculative work; retries
        # re-dispatch — the pool must neither lose nor duplicate training.
        policy = RetryPolicy(max_attempts=3, backoff=1.0, timeout_factor=4.0)
        kwargs = dict(straggler_std=0.5, drop_probability=0.05, seed=11)
        seq, seq_events = _run(SimulatedCluster(4, **kwargs), retry_policy=policy)
        par, par_events = _run(
            ProcessPoolBackend(4, n_procs=4, **kwargs), retry_policy=policy
        )
        assert par_events == seq_events
        assert pickle.dumps(par) == pickle.dumps(seq)

    def test_parity_with_pbt_inheritance(self):
        # PBT exploit jobs inherit dispatch-time donor snapshots; the pool
        # resolves them at submit, the inline path at collect — the golden
        # check is that checkpoint_restored events and losses still match.
        def pbt(seed=5):
            return PBT(
                toy_space(),
                np.random.default_rng(seed),
                max_resource=9.0,
                interval=3.0,
                population_size=6,
            )

        seq, seq_events = _run(SimulatedCluster(4, seed=9), scheduler=pbt())
        par, par_events = _run(ProcessPoolBackend(4, n_procs=4, seed=9), scheduler=pbt())
        assert par_events == seq_events
        assert pickle.dumps(par) == pickle.dumps(seq)

    def test_parity_on_real_mlp_objective(self):
        # The CPU-bound numpy workload the backend exists for: same losses,
        # same events, bit-for-bit, with states crossing process boundaries.
        def run(cls, **kw):
            objective = mlp_real.make_objective(seed=0, max_epochs=4, num_train=96, num_val=48)
            scheduler = ASHA(
                objective.space,
                np.random.default_rng(2),
                min_resource=1.0,
                max_resource=4.0,
                eta=2,
                max_trials=8,
            )
            return _run(cls(2, seed=5, **kw), scheduler, objective, time_limit=200.0)

        seq, seq_events = run(SimulatedCluster)
        par, par_events = run(ProcessPoolBackend, n_procs=2)
        assert par_events == seq_events
        assert pickle.dumps(par) == pickle.dumps(seq)


class TestInlineFallbacks:
    def test_single_proc_runs_inline(self):
        backend = ProcessPoolBackend(4, n_procs=1)
        execution = backend._make_execution(CheckpointStore(), toy_objective())
        assert isinstance(execution, _InlineExecution)

    def test_process_unsafe_objective_runs_inline(self):
        # The failure injector's RNG and counters live in the master;
        # forked copies would diverge, so it must never enter the pool.
        objective = FailureInjectingObjective(toy_objective(), crash_probability=0.1)
        assert objective.process_safe is False
        backend = ProcessPoolBackend(4, n_procs=4)
        execution = backend._make_execution(CheckpointStore(), objective)
        assert isinstance(execution, _InlineExecution)

    def test_no_fork_runs_inline(self, monkeypatch):
        import repro.backend.process_pool as pp

        monkeypatch.setattr(pp, "_can_fork", lambda: False)
        backend = ProcessPoolBackend(4, n_procs=4)
        execution = backend._make_execution(CheckpointStore(), toy_objective())
        assert isinstance(execution, _InlineExecution)

    def test_inside_experiment_worker_runs_inline(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_IN_WORKER", True)
        backend = ProcessPoolBackend(4, n_procs=4)
        execution = backend._make_execution(CheckpointStore(), toy_objective())
        assert isinstance(execution, _InlineExecution)

    def test_pool_path_chosen_when_safe(self):
        backend = ProcessPoolBackend(4, n_procs=2)
        execution = backend._make_execution(CheckpointStore(), toy_objective())
        try:
            assert isinstance(execution, _ProcessPoolExecution)
        finally:
            execution.close()

    def test_fault_injection_run_matches_simulated_cluster(self):
        # End to end: a process-pool run over an injected-failure objective
        # degrades to inline execution and reproduces the inline stream.
        def run(cls):
            objective = FailureInjectingObjective(
                toy_objective(max_resource=9.0), crash_probability=0.15, seed=21
            )
            return _run(
                cls(4, straggler_std=0.3, seed=7),
                _asha(max_trials=40),
                objective,
                retry_policy=RetryPolicy(max_attempts=3, backoff=1.0),
            )

        seq, seq_events = run(SimulatedCluster)
        par, par_events = run(ProcessPoolBackend)
        assert par_events == seq_events
        assert pickle.dumps(par) == pickle.dumps(seq)


class TestConstruction:
    def test_rejects_bad_n_procs(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(4, n_procs=0)

    def test_default_n_procs_capped_by_cores_and_workers(self):
        backend = ProcessPoolBackend(4)
        assert backend.n_procs is None  # resolved lazily per run


class TestWiring:
    def test_tune_accepts_processes_backend(self):
        def train(config, state, from_resource, to_resource):
            return state, config["quality"] + 1.0 / (1.0 + to_resource)

        kwargs = dict(
            max_resource=8.0,
            min_resource=1.0,
            eta=2,
            num_workers=4,
            seed=5,
            scheduler_kwargs={"max_trials": 12},
        )
        seq = tune(train, toy_space(), backend="simulated", **kwargs)
        par = tune(train, toy_space(), backend="processes", **kwargs)
        assert par.best_loss == seq.best_loss
        assert par.best_config == seq.best_config
        assert len(par.backend_result.measurements) == len(seq.backend_result.measurements)

    def test_tune_rejects_unknown_backend(self):
        with pytest.raises(KeyError, match="processes"):
            tune(
                lambda config, state, a, b: (state, 1.0),
                toy_space(),
                max_resource=4.0,
                backend="nope",
            )

    def test_run_trials_processes_backend_matches_simulated(self):
        def make_scheduler(objective, rng):
            return ASHA(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)

        def make_objective(seed):  # noqa: ARG001 — the surrogate is seed-free
            return toy_objective(max_resource=9.0)

        kwargs = dict(num_workers=4, time_limit=60.0, seeds=[0, 1])
        seq = run_trials("ASHA", make_scheduler, make_objective, **kwargs)
        par = run_trials(
            "ASHA", make_scheduler, make_objective, **kwargs, backend="processes"
        )
        for a, b in zip(seq, par):
            assert pickle.dumps(a.backend) == pickle.dumps(b.backend)

    def test_run_trials_rejects_unknown_backend(self):
        def make_scheduler(objective, rng):
            return ASHA(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)

        with pytest.raises(KeyError, match="unknown trial backend"):
            run_trials(
                "ASHA",
                make_scheduler,
                lambda seed: toy_objective(),
                num_workers=2,
                time_limit=10.0,
                seeds=[0],
                backend="threads",
            )
