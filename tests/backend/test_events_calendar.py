"""Calendar-queue ``EventQueue`` vs the reference heap: lockstep equivalence.

The calendar queue replaced the binary heap on the simulator's hottest path
(PR: batched ask/tell + calendar core).  Its entire contract is
*indistinguishability*: identical delivery order (strict ``(time, seq)``
FIFO tie-break), identical clock advancement, and identical discard
semantics under any interleaving of operations.  ``HeapEventQueue`` is kept
in-tree as the behavioural oracle; hypothesis drives both in lockstep.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.events import EventQueue, HeapEventQueue, SimEvent

# Times drawn tie-heavy (coarse grid) and wide (up to 1e9 simulated
# seconds), plus sub-second jitter — covering one-giant-bucket,
# many-sparse-buckets, and every-event-ties regimes.
_times = st.one_of(
    st.integers(min_value=0, max_value=20).map(float),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
)

# An operation script: push a delta past the clock, or pop/peek/discard.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times),
        st.sampled_from([("pop", None), ("peek", None), ("discard", None)]),
    ),
    max_size=200,
)


def test_sim_event_is_hashable_consistent_with_eq():
    # Regression: defining __eq__ on the slotted class silently dropped the
    # inherited __hash__, so events could no longer live in sets or key the
    # simulator's dead-event bookkeeping.
    a = SimEvent(time=1.5, seq=3, kind="job_finished", payload={"job": 1})
    b = SimEvent(time=1.5, seq=3, kind="worker_churn", payload=None)
    c = SimEvent(time=1.5, seq=4, kind="job_finished", payload=None)
    assert a == b and hash(a) == hash(b)  # kind/payload never participate
    assert a != c
    assert len({a, b, c}) == 2
    assert {a: "x"}[b] == "x"


@pytest.mark.parametrize("width", [1e-3, 1.0, 1e6])
def test_drain_order_matches_heap(width):
    heap, calendar = HeapEventQueue(), EventQueue(bucket_width=width)
    times = [3.0, 1.0, 1.0, 2.5, 1.0, 0.0, 3.0, 2.5]
    for i, t in enumerate(times):
        heap.push(t, f"k{i}")
        calendar.push(t, f"k{i}")
    drained = []
    while calendar:
        a, b = heap.pop(), calendar.pop()
        assert (a.time, a.seq, a.kind) == (b.time, b.seq, b.kind)
        assert heap.clock == calendar.clock
        drained.append(b.time)
    assert drained == sorted(times)


@settings(max_examples=300, deadline=None)
@given(ops=_ops)
def test_lockstep_equivalence_with_heap(ops):
    heap, calendar = HeapEventQueue(), EventQueue()
    for op, delta in ops:
        if op == "push":
            # Push relative to the clock so scripts stay valid after pops.
            t = heap.clock + delta
            a = heap.push(t, "k")
            b = calendar.push(t, "k")
            assert (a.time, a.seq) == (b.time, b.seq)
        elif op == "pop":
            if not heap:
                with pytest.raises(IndexError):
                    calendar.pop()
                continue
            a, b = heap.pop(), calendar.pop()
            assert (a.time, a.seq) == (b.time, b.seq)
        elif op == "peek":
            a, b = heap.peek(), calendar.peek()
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.time, a.seq) == (b.time, b.seq)
            assert heap.peek_time() == calendar.peek_time()
        else:  # discard
            if not heap:
                with pytest.raises(IndexError):
                    calendar.discard_next()
                continue
            heap.discard_next()
            calendar.discard_next()
        assert heap.clock == calendar.clock
        assert len(heap) == len(calendar)
    # Drain whatever is left: full delivery order must agree.
    while heap:
        a, b = heap.pop(), calendar.pop()
        assert (a.time, a.seq) == (b.time, b.seq)
    assert not calendar


def test_rebucketing_preserves_order_across_resizes():
    # Push far past the resize threshold (64) with a pathological initial
    # width so the adaptive rebucketing fires repeatedly, then drain.
    calendar, heap = EventQueue(bucket_width=1e9), HeapEventQueue()
    for i in range(1000):
        t = float((i * 7919) % 97) + (i % 13) * 0.125
        calendar.push(t, "k")
        heap.push(t, "k")
    while heap:
        a, b = heap.pop(), calendar.pop()
        assert (a.time, a.seq) == (b.time, b.seq)
    assert not calendar


def test_push_below_active_bucket_reorders_correctly():
    # Activate a far-future bucket, then push an earlier event: the active
    # remainder must spill back and the earlier event must deliver first.
    q = EventQueue(bucket_width=1.0)
    q.push(10.0, "late")
    q.push(10.5, "later")
    assert q.peek().kind == "late"  # activates bucket 10
    q.push(2.0, "early")
    assert [q.pop().kind for _ in range(3)] == ["early", "late", "later"]
    assert q.clock == 10.5


def test_push_before_clock_rejected():
    q = EventQueue()
    q.push(5.0, "k")
    q.pop()
    with pytest.raises(ValueError):
        q.push(4.0, "k")


def test_invalid_bucket_width_rejected():
    with pytest.raises(ValueError):
        EventQueue(bucket_width=0.0)


# ---------------------------------------------------------------------------
# Multiplexed regime: one queue, events tagged by study.  These pin the
# contracts ``StudyMultiplexer`` leans on — per-study FIFO order survives
# interleaving with other studies' events, and ``discard_next`` (the lazy
# dead-event mechanism for finished studies) never perturbs what the
# surviving studies observe.
# ---------------------------------------------------------------------------

# A tagged stream: each op carries the study id it belongs to.
_tagged_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(min_value=0, max_value=3), _times),
        st.tuples(st.just("pop"), st.just(None), st.just(None)),
        st.tuples(st.just("discard"), st.just(None), st.just(None)),
    ),
    max_size=200,
)


@settings(max_examples=300, deadline=None)
@given(ops=_tagged_ops)
def test_tagged_streams_lockstep_with_heap(ops):
    """Study-tagged payloads ride through both queues untouched and in the
    same order, and the per-study projection of the delivery stream is FIFO
    in (time, seq) — exactly what byte-identical multiplexed journals need.
    """
    heap, calendar = HeapEventQueue(), EventQueue()
    delivered: dict[int, list[tuple[float, int]]] = {s: [] for s in range(4)}
    for op, study, delta in ops:
        if op == "push":
            t = heap.clock + delta
            payload = (study, {"study": study})
            a = heap.push(t, "job_finished", payload)
            b = calendar.push(t, "job_finished", payload)
            assert a.payload is payload and b.payload is payload
        elif op == "pop":
            if not heap:
                continue
            a, b = heap.pop(), calendar.pop()
            assert (a.time, a.seq) == (b.time, b.seq)
            assert a.payload == b.payload
            tag = b.payload[0]
            delivered[tag].append((b.time, b.seq))
        else:  # discard
            if not heap:
                continue
            heap.discard_next()
            calendar.discard_next()
        assert heap.clock == calendar.clock
        assert len(heap) == len(calendar)
    while heap:
        a, b = heap.pop(), calendar.pop()
        assert (a.time, a.seq) == (b.time, b.seq) and a.payload == b.payload
        delivered[b.payload[0]].append((b.time, b.seq))
    # Each study's projection of the shared stream is itself sorted: a
    # study multiplexed with others sees its own events in solo order.
    for stream in delivered.values():
        assert stream == sorted(stream)


@settings(max_examples=200, deadline=None)
@given(
    widths=st.floats(min_value=1e-6, max_value=1e12, allow_nan=False),
    times=st.lists(_times, min_size=65, max_size=300),
)
def test_resize_and_wraparound_preserve_order(widths, times):
    """Any initial bucket width — including ones forcing repeated adaptive
    resizes and year-ring wraparound (times far beyond width * num_buckets)
    — yields heap-identical delivery."""
    heap, calendar = HeapEventQueue(), EventQueue(bucket_width=widths)
    for t in times:
        heap.push(t, "k")
        calendar.push(t, "k")
    while heap:
        a, b = heap.pop(), calendar.pop()
        assert (a.time, a.seq) == (b.time, b.seq)
        assert heap.clock == calendar.clock
    assert not calendar


def test_adaptive_resize_recomputes_width():
    # White-box: crossing the resize threshold (64) with a pathological
    # width must actually change ``_width`` — otherwise every event sits in
    # one giant bucket and pop degrades to a full sort per activation.
    q, heap = EventQueue(bucket_width=1e9), HeapEventQueue()
    for i in range(65):
        t = float(i)
        q.push(t, "k")
        heap.push(t, "k")
    assert q._width != 1e9  # resize fired and fit the observed span
    while heap:
        a, b = heap.pop(), q.pop()
        assert (a.time, a.seq) == (b.time, b.seq)


def test_huge_times_with_tiny_width_stay_ordered():
    # Bucket ids are int(time / width): huge times over a tiny width make
    # astronomically large ids.  The rebucket guard (hi/width < 1e15)
    # must refuse precision-losing widths while delivery stays exact.
    q, heap = EventQueue(bucket_width=1e-6), HeapEventQueue()
    times = [1e12, 3.0, 1e12 + 0.5, 7.0, 2e12, 0.25]
    for t in times:
        q.push(t, "k")
        heap.push(t, "k")
    drained = []
    while q:
        a, b = heap.pop(), q.pop()
        assert (a.time, a.seq) == (b.time, b.seq)
        drained.append(b.time)
    assert drained == sorted(times)


def test_discard_by_study_interleaving():
    """The multiplexer's finished-study pattern: discard the head whenever
    it belongs to a dead study.  Survivors' order and the clock must match
    a queue that never contained the dead study at all."""
    dead, live = 0, 1
    witness = EventQueue()  # only ever sees the live study's events
    q = EventQueue()
    times = [1.0, 1.0, 2.0, 3.0, 3.0, 4.0, 5.0, 5.0]
    for i, t in enumerate(times):
        study = dead if i % 2 == 0 else live
        q.push(t, "job_finished", (study, i))
        if study == live:
            witness.push(t, "job_finished", (study, i))
    survivors = []
    while q:
        head = q.peek()
        if head.payload[0] == dead:
            before = q.clock
            q.discard_next()
            assert q.clock == before  # discard never advances the clock
            continue
        survivors.append(q.pop().payload)
    assert survivors == [witness.pop().payload for _ in range(len(witness))]
    assert q.clock == witness.clock == 5.0
