"""Calendar-queue ``EventQueue`` vs the reference heap: lockstep equivalence.

The calendar queue replaced the binary heap on the simulator's hottest path
(PR: batched ask/tell + calendar core).  Its entire contract is
*indistinguishability*: identical delivery order (strict ``(time, seq)``
FIFO tie-break), identical clock advancement, and identical discard
semantics under any interleaving of operations.  ``HeapEventQueue`` is kept
in-tree as the behavioural oracle; hypothesis drives both in lockstep.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.events import EventQueue, HeapEventQueue, SimEvent

# Times drawn tie-heavy (coarse grid) and wide (up to 1e9 simulated
# seconds), plus sub-second jitter — covering one-giant-bucket,
# many-sparse-buckets, and every-event-ties regimes.
_times = st.one_of(
    st.integers(min_value=0, max_value=20).map(float),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
)

# An operation script: push a delta past the clock, or pop/peek/discard.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times),
        st.sampled_from([("pop", None), ("peek", None), ("discard", None)]),
    ),
    max_size=200,
)


def test_sim_event_is_hashable_consistent_with_eq():
    # Regression: defining __eq__ on the slotted class silently dropped the
    # inherited __hash__, so events could no longer live in sets or key the
    # simulator's dead-event bookkeeping.
    a = SimEvent(time=1.5, seq=3, kind="job_finished", payload={"job": 1})
    b = SimEvent(time=1.5, seq=3, kind="worker_churn", payload=None)
    c = SimEvent(time=1.5, seq=4, kind="job_finished", payload=None)
    assert a == b and hash(a) == hash(b)  # kind/payload never participate
    assert a != c
    assert len({a, b, c}) == 2
    assert {a: "x"}[b] == "x"


@pytest.mark.parametrize("width", [1e-3, 1.0, 1e6])
def test_drain_order_matches_heap(width):
    heap, calendar = HeapEventQueue(), EventQueue(bucket_width=width)
    times = [3.0, 1.0, 1.0, 2.5, 1.0, 0.0, 3.0, 2.5]
    for i, t in enumerate(times):
        heap.push(t, f"k{i}")
        calendar.push(t, f"k{i}")
    drained = []
    while calendar:
        a, b = heap.pop(), calendar.pop()
        assert (a.time, a.seq, a.kind) == (b.time, b.seq, b.kind)
        assert heap.clock == calendar.clock
        drained.append(b.time)
    assert drained == sorted(times)


@settings(max_examples=300, deadline=None)
@given(ops=_ops)
def test_lockstep_equivalence_with_heap(ops):
    heap, calendar = HeapEventQueue(), EventQueue()
    for op, delta in ops:
        if op == "push":
            # Push relative to the clock so scripts stay valid after pops.
            t = heap.clock + delta
            a = heap.push(t, "k")
            b = calendar.push(t, "k")
            assert (a.time, a.seq) == (b.time, b.seq)
        elif op == "pop":
            if not heap:
                with pytest.raises(IndexError):
                    calendar.pop()
                continue
            a, b = heap.pop(), calendar.pop()
            assert (a.time, a.seq) == (b.time, b.seq)
        elif op == "peek":
            a, b = heap.peek(), calendar.peek()
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.time, a.seq) == (b.time, b.seq)
            assert heap.peek_time() == calendar.peek_time()
        else:  # discard
            if not heap:
                with pytest.raises(IndexError):
                    calendar.discard_next()
                continue
            heap.discard_next()
            calendar.discard_next()
        assert heap.clock == calendar.clock
        assert len(heap) == len(calendar)
    # Drain whatever is left: full delivery order must agree.
    while heap:
        a, b = heap.pop(), calendar.pop()
        assert (a.time, a.seq) == (b.time, b.seq)
    assert not calendar


def test_rebucketing_preserves_order_across_resizes():
    # Push far past the resize threshold (64) with a pathological initial
    # width so the adaptive rebucketing fires repeatedly, then drain.
    calendar, heap = EventQueue(bucket_width=1e9), HeapEventQueue()
    for i in range(1000):
        t = float((i * 7919) % 97) + (i % 13) * 0.125
        calendar.push(t, "k")
        heap.push(t, "k")
    while heap:
        a, b = heap.pop(), calendar.pop()
        assert (a.time, a.seq) == (b.time, b.seq)
    assert not calendar


def test_push_below_active_bucket_reorders_correctly():
    # Activate a far-future bucket, then push an earlier event: the active
    # remainder must spill back and the earlier event must deliver first.
    q = EventQueue(bucket_width=1.0)
    q.push(10.0, "late")
    q.push(10.5, "later")
    assert q.peek().kind == "late"  # activates bucket 10
    q.push(2.0, "early")
    assert [q.pop().kind for _ in range(3)] == ["early", "late", "later"]
    assert q.clock == 10.5


def test_push_before_clock_rejected():
    q = EventQueue()
    q.push(5.0, "k")
    q.pop()
    with pytest.raises(ValueError):
        q.push(4.0, "k")


def test_invalid_bucket_width_rejected():
    with pytest.raises(ValueError):
        EventQueue(bucket_width=0.0)
