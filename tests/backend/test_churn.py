"""Tests for simulated worker churn (workers dying and rejoining)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import ASHA, RandomSearch
from repro.experiments.toys import toy_objective


def test_validation():
    with pytest.raises(ValueError):
        SimulatedCluster(2, churn_rate=-1.0)
    with pytest.raises(ValueError):
        SimulatedCluster(2, churn_downtime=-1.0)


def test_churn_kills_jobs(one_d_space, rng, toy_obj):
    rs = RandomSearch(one_d_space, rng, max_resource=9.0)
    cluster = SimulatedCluster(4, seed=1, churn_rate=0.1, churn_downtime=3.0)
    result = cluster.run(rs, toy_obj, time_limit=500.0)
    assert result.failures  # churn really killed jobs
    assert result.measurements  # and the search still progressed


def test_churn_reduces_throughput(one_d_space, toy_obj):
    def completions(churn_rate):
        rng = np.random.default_rng(0)
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        cluster = SimulatedCluster(
            4, seed=2, churn_rate=churn_rate, churn_downtime=10.0
        )
        result = cluster.run(rs, toy_obj, time_limit=500.0)
        return len(result.completions)

    assert completions(0.2) < completions(0.0)


def test_asha_survives_heavy_churn():
    objective = toy_objective(max_resource=16.0, constant=False)
    rng = np.random.default_rng(3)
    asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=16.0, eta=4)
    cluster = SimulatedCluster(4, seed=3, churn_rate=0.2, churn_downtime=5.0)
    result = cluster.run(asha, objective, time_limit=800.0)
    assert len(result.failures) > 10
    assert asha.best_trial() is not None
    assert asha.best_trial().last_loss < 0.4


def test_churn_deterministic():
    def trace():
        objective = toy_objective(max_resource=16.0, constant=False)
        rng = np.random.default_rng(5)
        asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=16.0, eta=4)
        cluster = SimulatedCluster(3, seed=5, churn_rate=0.1, churn_downtime=2.0)
        result = cluster.run(asha, objective, time_limit=300.0)
        return [(m.trial_id, m.time) for m in result.measurements]

    assert trace() == trace()


def test_worker_count_restored_after_downtime(one_d_space, rng, toy_obj):
    """With downtime 0+, churn costs only the killed jobs, not capacity."""
    rs = RandomSearch(one_d_space, rng, max_resource=9.0)
    cluster = SimulatedCluster(2, seed=7, churn_rate=0.05, churn_downtime=1e-6)
    result = cluster.run(rs, toy_obj, time_limit=300.0)
    # Two workers over 300 units at cost 9/job: near 66 jobs minus kills.
    total = len(result.measurements) + len(result.failures)
    assert total >= 55
