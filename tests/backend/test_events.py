"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import EventQueue


def test_orders_by_time():
    q = EventQueue()
    q.push(3.0, "c")
    q.push(1.0, "a")
    q.push(2.0, "b")
    assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]


def test_fifo_tie_break():
    q = EventQueue()
    q.push(1.0, "first")
    q.push(1.0, "second")
    q.push(1.0, "third")
    assert [q.pop().kind for _ in range(3)] == ["first", "second", "third"]


def test_clock_advances_monotonically():
    q = EventQueue()
    for t in (5.0, 1.0, 3.0):
        q.push(t, "e")
    times = [q.pop().time for _ in range(3)]
    assert times == sorted(times)
    assert q.clock == 5.0


def test_rejects_past_events():
    q = EventQueue()
    q.push(2.0, "e")
    q.pop()
    with pytest.raises(ValueError):
        q.push(1.0, "late")


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_peek_and_len():
    q = EventQueue()
    assert q.peek_time() is None
    assert not q
    q.push(1.5, "e")
    assert q.peek_time() == 1.5
    assert len(q) == 1


@settings(max_examples=50, deadline=None)
@given(times=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50))
def test_drain_order_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, "e", payload=t)
    drained = [q.pop().payload for _ in range(len(times))]
    assert drained == sorted(times)
