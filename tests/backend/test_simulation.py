"""Tests for the simulated cluster."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import SimulatedCluster
from repro.core import ASHA, RandomSearch
from repro.experiments.toys import toy_objective


def test_validation():
    with pytest.raises(ValueError):
        SimulatedCluster(0)
    with pytest.raises(ValueError):
        SimulatedCluster(1, straggler_std=-1.0)
    with pytest.raises(ValueError):
        SimulatedCluster(1, drop_probability=1.0)
    with pytest.raises(ValueError):
        SimulatedCluster(1).run(None, None, time_limit=0.0)  # type: ignore[arg-type]


class TestTiming:
    def test_sequential_timing_exact(self, one_d_space, rng, toy_obj):
        """One worker, jobs of cost 9 each: completions at 9, 18, 27, ..."""
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=3)
        result = SimulatedCluster(1, seed=0).run(rs, toy_obj, time_limit=1e6)
        times = [m.time for m in result.measurements]
        assert times == [9.0, 18.0, 27.0]

    def test_parallel_timing_exact(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=4)
        result = SimulatedCluster(2, seed=0).run(rs, toy_obj, time_limit=1e6)
        times = sorted(m.time for m in result.measurements)
        assert times == [9.0, 9.0, 18.0, 18.0]

    def test_time_limit_respected(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        result = SimulatedCluster(1, seed=0).run(rs, toy_obj, time_limit=20.0)
        assert all(m.time <= 20.0 for m in result.measurements)
        assert len(result.measurements) == 2
        assert result.elapsed == 20.0

    def test_utilization_full_for_anytime_scheduler(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        result = SimulatedCluster(4, seed=0).run(rs, toy_obj, time_limit=100.0)
        assert result.utilization == pytest.approx(1.0, abs=0.05)

    def test_stragglers_stretch_durations(self, one_d_space, toy_obj):
        rng = np.random.default_rng(0)
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=5)
        result = SimulatedCluster(1, seed=3, straggler_std=1.0).run(
            rs, toy_obj, time_limit=1e6
        )
        gaps = np.diff([0.0] + [m.time for m in result.measurements])
        assert np.all(gaps >= 9.0)  # (1 + |z|) multiplier never shrinks a job
        assert np.any(gaps > 9.0)


class TestDrops:
    def test_drop_probability_zero_no_failures(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=20)
        result = SimulatedCluster(2, seed=0).run(rs, toy_obj, time_limit=1e6)
        assert result.failures == []

    def test_drops_happen_and_are_reported(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=200)
        result = SimulatedCluster(4, seed=1, drop_probability=0.05).run(
            rs, toy_obj, time_limit=1e6
        )
        # Survival over 9 units at p=0.05 is ~0.63: expect many drops.
        assert len(result.failures) > 20
        assert len(result.measurements) + len(result.failures) == 200

    def test_drop_time_before_completion(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=100)
        result = SimulatedCluster(1, seed=2, drop_probability=0.1).run(
            rs, toy_obj, time_limit=1e6
        )
        # A dropped job frees the worker *early*: the run must take strictly
        # less total time than 100 successful jobs would have.
        assert result.failures
        assert result.elapsed < 100 * 9.0


class TestCompletionLog:
    def test_completions_at_max_resource_only(self, one_d_space, rng, toy_obj):
        asha = ASHA(one_d_space, rng, min_resource=1.0, max_resource=9.0, eta=3, max_trials=9)
        result = SimulatedCluster(3, seed=0).run(asha, toy_obj, time_limit=1e6)
        assert len(result.completions) == 1
        assert result.num_completions() == 1
        assert result.first_completion_time() is not None

    def test_stop_on_first_completion(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        result = SimulatedCluster(2, seed=0).run(
            rs, toy_obj, time_limit=1e6, stop_on_first_completion=True
        )
        assert len(result.completions) == 1

    def test_max_measurements_cap(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        result = SimulatedCluster(2, seed=0).run(
            rs, toy_obj, time_limit=1e6, max_measurements=7
        )
        assert len(result.measurements) == 7


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_simulation_fully_deterministic(seed):
    """Identical seeds produce bit-identical traces."""
    def run_once():
        objective = toy_objective(max_resource=9.0, constant=False)
        rng = np.random.default_rng(seed)
        asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)
        cluster = SimulatedCluster(3, seed=seed, straggler_std=0.5, drop_probability=0.01)
        result = cluster.run(asha, objective, time_limit=100.0)
        return [(m.trial_id, m.resource, m.loss, m.time) for m in result.measurements]

    assert run_once() == run_once()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), workers=st.integers(1, 8))
def test_measurement_times_nondecreasing(seed, workers):
    objective = toy_objective(max_resource=9.0, constant=False)
    rng = np.random.default_rng(seed)
    asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)
    cluster = SimulatedCluster(workers, seed=seed, straggler_std=0.3)
    result = cluster.run(asha, objective, time_limit=60.0)
    times = [m.time for m in result.measurements]
    assert times == sorted(times)
