"""Tests for the checkpoint store's resume semantics."""

from __future__ import annotations

import pytest

from repro.backend import CheckpointStore
from repro.core.types import Job
from repro.experiments.toys import toy_objective


def job(job_id=0, trial_id=0, resource=3.0, checkpoint=0.0, inherit=None, q=0.4):
    return Job(
        job_id=job_id,
        trial_id=trial_id,
        config={"quality": q},
        resource=resource,
        checkpoint_resource=checkpoint,
        inherit_from=inherit,
    )


@pytest.fixture
def objective():
    return toy_objective(max_resource=9.0, constant=False)


class TestStartingState:
    def test_fresh_start(self, objective):
        store = CheckpointStore()
        resource, state = store.starting_state(job(), objective)
        assert resource == 0.0
        assert state.clean_loss == pytest.approx(0.9)  # quality + 0.5

    def test_resume_from_own_checkpoint(self, objective):
        store = CheckpointStore()
        store.run_job(job(job_id=0, resource=3.0), objective)
        resource, state = store.starting_state(
            job(job_id=1, resource=9.0, checkpoint=3.0), objective
        )
        assert resource == 3.0

    def test_resume_without_checkpoint_raises(self, objective):
        store = CheckpointStore()
        with pytest.raises(KeyError):
            store.starting_state(job(resource=9.0, checkpoint=3.0), objective)

    def test_inherit_requires_donor_checkpoint(self, objective):
        store = CheckpointStore()
        with pytest.raises(KeyError):
            store.prepare(job(inherit=42))


class TestTrainingAndCosts:
    def test_run_job_persists_checkpoint(self, objective):
        store = CheckpointStore()
        loss = store.run_job(job(resource=3.0), objective)
        assert 0 in store
        assert store.resource_of(0) == 3.0
        assert loss < 0.9  # the curve decayed

    def test_resume_equals_from_scratch(self, objective):
        """Checkpointed resume reaches the same loss as training straight."""
        store = CheckpointStore()
        store.run_job(job(job_id=0, resource=3.0), objective)
        resumed = store.run_job(job(job_id=1, resource=9.0, checkpoint=3.0), objective)
        direct = objective.evaluate({"quality": 0.4}, 9.0)
        assert resumed == pytest.approx(direct, rel=1e-9)

    def test_job_cost_linear_in_delta(self, objective):
        store = CheckpointStore()
        assert store.job_cost(job(resource=9.0), objective) == 9.0
        store.run_job(job(job_id=0, resource=3.0), objective)
        assert store.job_cost(job(job_id=1, resource=9.0, checkpoint=3.0), objective) == 6.0


class TestInheritanceSnapshots:
    def test_snapshot_frozen_at_prepare(self, objective):
        store = CheckpointStore()
        store.run_job(job(job_id=0, trial_id=0, resource=3.0), objective)
        clone_job = job(job_id=1, trial_id=1, resource=6.0, checkpoint=3.0, inherit=0)
        store.prepare(clone_job)
        # Donor trains further after the snapshot...
        store.run_job(job(job_id=2, trial_id=0, resource=9.0, checkpoint=3.0), objective)
        # ...but the clone resumes from the snapshot at resource 3.
        resource, _ = store.starting_state(clone_job, objective)
        assert resource == 3.0

    def test_snapshot_costing(self, objective):
        store = CheckpointStore()
        store.run_job(job(job_id=0, trial_id=0, resource=3.0), objective)
        clone_job = job(job_id=1, trial_id=1, resource=6.0, inherit=0)
        store.prepare(clone_job)
        assert store.job_cost(clone_job, objective) == 3.0  # 6 - snapshot(3)

    def test_discard_drops_snapshot(self, objective):
        store = CheckpointStore()
        store.run_job(job(job_id=0, trial_id=0, resource=3.0), objective)
        clone_job = job(job_id=1, trial_id=1, resource=6.0, inherit=0)
        store.prepare(clone_job)
        store.discard(clone_job)
        assert clone_job.job_id not in store._snapshots

    def test_inherited_state_is_deep_copy(self, objective):
        store = CheckpointStore()
        store.run_job(job(job_id=0, trial_id=0, resource=3.0), objective)
        clone_job = job(job_id=1, trial_id=1, resource=6.0, inherit=0)
        store.prepare(clone_job)
        _, state = store.starting_state(clone_job, objective)
        state.clean_loss = -1.0
        assert store._store[0][1].clean_loss != -1.0


def test_evict(objective):
    store = CheckpointStore()
    store.run_job(job(resource=3.0), objective)
    store.evict(0)
    assert 0 not in store
    store.evict(0)  # idempotent
