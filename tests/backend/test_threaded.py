"""Tests for the real thread-pool backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import ThreadPoolBackend
from repro.core import ASHA, RandomSearch
from repro.objectives import mlp_real


def test_validation():
    with pytest.raises(ValueError):
        ThreadPoolBackend(0)
    with pytest.raises(ValueError):
        ThreadPoolBackend(2).run(None, None, time_limit=0.0)  # type: ignore[arg-type]


def test_runs_surrogate_search_to_done(one_d_space, rng, toy_obj):
    rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=10)
    backend = ThreadPoolBackend(4, poll_interval=0.001)
    result = backend.run(rs, toy_obj, time_limit=30.0)
    assert rs.is_done()
    assert len(result.measurements) == 10


def test_asha_on_real_mlp():
    """End to end: ASHA really trains numpy MLPs in parallel threads."""
    objective = mlp_real.make_objective(max_epochs=8, num_train=96, num_val=64)
    rng = np.random.default_rng(0)
    asha = ASHA(
        objective.space, rng, min_resource=1.0, max_resource=8.0, eta=2, max_trials=12
    )
    backend = ThreadPoolBackend(4, poll_interval=0.001)
    result = backend.run(asha, objective, time_limit=120.0)
    assert asha.is_done()
    assert result.measurements
    best = asha.best_trial()
    assert best is not None
    assert best.last_loss < 0.5  # better than coin-flipping on two spirals


def test_objective_exception_reported_as_failure(one_d_space, rng):
    class ExplodingObjective:
        space = one_d_space
        max_resource = 9.0

        def initial_state(self, config):
            return None

        def train(self, state, config, from_resource, to_resource):
            raise RuntimeError("boom")

        def cost(self, config, a, b):
            return b - a

    rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=3)
    backend = ThreadPoolBackend(2, poll_interval=0.001)
    result = backend.run(rs, ExplodingObjective(), time_limit=10.0)
    assert len(result.failures) == 3
    assert result.measurements == []
