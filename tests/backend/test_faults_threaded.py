"""Fault tolerance on the real thread pool: retries, watchdog timeouts,
exception capture, and the bounded-shutdown fix."""

from __future__ import annotations

import time as _time

import numpy as np

from repro.backend import (
    FailureInjectingObjective,
    RetryPolicy,
    ThreadPoolBackend,
)
from repro.core import RandomSearch
from repro.core.contract import ContractChecker
from repro.experiments.toys import toy_objective

R = 9.0


def make_search(max_trials: int, seed: int = 0):
    objective = toy_objective(max_resource=R, constant=False)
    rs = RandomSearch(
        objective.space, np.random.default_rng(seed), max_resource=R, max_trials=max_trials
    )
    return objective, rs


class TestThreadedRetries:
    def test_first_crash_retried_then_succeeds(self):
        objective, rs = make_search(4)
        flaky = FailureInjectingObjective(objective, crash_first=1)
        checked = ContractChecker(rs)
        backend = ThreadPoolBackend(2, poll_interval=0.001)
        result = backend.run(
            checked, flaky, time_limit=30.0, retry_policy=RetryPolicy(max_attempts=3)
        )
        assert len(result.measurements) == 4
        assert result.jobs_retried == 4  # one injected crash per config
        assert result.trials_abandoned == 0
        assert checked.outstanding_jobs == 0
        assert all(rec.action == "retried" for rec in result.failure_log)
        assert all(
            rec.error is not None and "InjectedFailure" in rec.error
            for rec in result.failure_log
        )

    def test_always_crashing_trials_abandoned(self):
        objective, rs = make_search(3)
        doomed = FailureInjectingObjective(objective, crash_first=10**6)
        backend = ThreadPoolBackend(2, poll_interval=0.001)
        result = backend.run(
            ContractChecker(rs),
            doomed,
            time_limit=30.0,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        assert result.measurements == []
        assert result.trials_abandoned == 3
        assert result.jobs_retried == 3  # one retry each before quarantine
        assert rs.is_done()

    def test_exception_repr_captured_without_policy(self):
        """Satellite fix: the bare `except Exception` used to discard the
        traceback; the failure record and event now carry repr(exc)."""
        objective, rs = make_search(2)
        doomed = FailureInjectingObjective(objective, crash_first=10**6)
        backend = ThreadPoolBackend(2, poll_interval=0.001)
        result = backend.run(ContractChecker(rs), doomed, time_limit=30.0)
        assert len(result.failure_log) == 2
        for rec in result.failure_log:
            assert rec.action == "forfeited"
            assert rec.reason == "exception"
            assert rec.error is not None
            assert "InjectedFailure" in rec.error
            assert "injected crash" in rec.error


class TestThreadedTimeouts:
    def test_watchdog_kills_and_retries_hung_job(self):
        """A job sleeping past the wall-clock deadline is failed by the
        watchdog, the scheduler is released immediately (the sleeping thread
        cannot be preempted), and the retry completes on another worker."""
        objective, rs = make_search(2)
        hung = FailureInjectingObjective(
            objective, hang_first=1, hang_duration=1.0, real_sleep=True
        )
        backend = ThreadPoolBackend(2, poll_interval=0.001)
        result = backend.run(
            ContractChecker(rs),
            hung,
            time_limit=20.0,
            retry_policy=RetryPolicy(max_attempts=3, timeout=0.15),
        )
        assert len(result.measurements) == 2
        timeouts = [rec for rec in result.failure_log if rec.reason == "timeout"]
        assert len(timeouts) == 2  # each config's first attempt hung
        assert all(rec.action == "retried" for rec in timeouts)
        assert result.jobs_retried == 2
        # The watchdog acted near the deadline, well before the 1 s sleep.
        for rec in timeouts:
            assert 0.15 <= rec.lost < 0.8

    def test_timed_out_result_is_discarded(self):
        """When the hung thread finally returns, its stale result must not
        be double-reported."""
        objective, rs = make_search(1)
        hung = FailureInjectingObjective(
            objective, hang_first=1, hang_duration=0.3, real_sleep=True
        )
        backend = ThreadPoolBackend(2, poll_interval=0.001)
        result = backend.run(
            ContractChecker(rs),
            hung,
            time_limit=20.0,
            retry_policy=RetryPolicy(max_attempts=3, timeout=0.1),
        )
        # One live measurement despite the hung attempt eventually finishing.
        assert len(result.measurements) == 1
        assert result.jobs_dispatched == 2


class TestShutdown:
    def test_join_deadline_is_shared_not_per_thread(self):
        """Satellite fix: shutdown used to join each thread with its own
        `time_limit + 5 s` timeout — a pool of stuck workers took
        num_workers x that to return.  All joins now share one deadline."""
        objective, rs = make_search(8)

        class Sleeper(FailureInjectingObjective):
            def train(self, state, config, from_resource, to_resource):
                _time.sleep(30.0)
                return super().train(state, config, from_resource, to_resource)

        sleeper = Sleeper(objective)
        backend = ThreadPoolBackend(4, poll_interval=0.001, shutdown_grace=0.5)
        t0 = _time.monotonic()
        result = backend.run(rs, sleeper, time_limit=0.5)
        wall = _time.monotonic() - t0
        # Old behaviour: ~4 x (0.5 + 5) = 22 s.  New: time_limit + grace.
        assert wall < 4.0
        assert result.measurements == []

    def test_shutdown_grace_validation(self):
        import pytest

        with pytest.raises(ValueError):
            ThreadPoolBackend(2, shutdown_grace=-1.0)
