"""Unit tests for the fault-tolerance layer (repro.backend.faults)."""

from __future__ import annotations

import math

import pytest

from repro.backend.faults import (
    FailureInjectingObjective,
    FaultManager,
    InjectedFailure,
    RetryPolicy,
)
from repro.core.types import Job
from repro.experiments.toys import toy_objective


def job_for(trial_id: int, job_id: int | None = None) -> Job:
    return Job(
        trial_id=trial_id,
        job_id=job_id if job_id is not None else trial_id,
        config={"quality": 0.5},
        resource=9.0,
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_factor=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)

    def test_backoff_schedule_is_exponential_and_clamped(self):
        policy = RetryPolicy(backoff=2.0, backoff_factor=3.0, max_backoff=10.0)
        assert policy.backoff_for(1) == 2.0
        assert policy.backoff_for(2) == 6.0
        assert policy.backoff_for(3) == 10.0  # 18 clamped
        assert RetryPolicy(backoff=0.0).backoff_for(5) == 0.0

    def test_sim_deadline(self):
        assert RetryPolicy().sim_deadline(9.0) is None
        assert RetryPolicy(timeout_factor=3.0).sim_deadline(9.0) == 27.0


class TestFaultManager:
    def test_retry_until_budget_then_abandon(self):
        manager = FaultManager(RetryPolicy(max_attempts=3))
        job = job_for(0)
        first = manager.record_failure(job, reason="dropped")
        second = manager.record_failure(job, reason="dropped")
        third = manager.record_failure(job, reason="dropped")
        assert (first.action, second.action, third.action) == ("retry", "retry", "abandon")
        assert third.failures == 3
        assert 0 in manager.abandoned

    def test_success_resets_consecutive_count(self):
        manager = FaultManager(RetryPolicy(max_attempts=2))
        job = job_for(0)
        assert manager.record_failure(job, reason="dropped").retry
        manager.record_success(job)
        # The budget refreshed: the next failure is the first of a new streak.
        assert manager.record_failure(job, reason="dropped").retry

    def test_max_attempts_one_never_retries(self):
        manager = FaultManager(RetryPolicy(max_attempts=1))
        assert manager.record_failure(job_for(0), reason="churn").action == "abandon"

    def test_timeouts_not_retryable_when_disabled(self):
        manager = FaultManager(RetryPolicy(max_attempts=5, retry_timeouts=False))
        assert manager.record_failure(job_for(0), reason="timeout").action == "abandon"
        # Other reasons still retry under the same policy.
        assert manager.record_failure(job_for(1), reason="exception").retry

    def test_budget_shared_across_jobs_of_one_trial(self):
        manager = FaultManager(RetryPolicy(max_attempts=2))
        assert manager.record_failure(job_for(7, job_id=100), reason="dropped").retry
        # A *different* job for the same trial inherits the streak.
        assert manager.record_failure(job_for(7, job_id=101), reason="dropped").action == "abandon"

    def test_time_lost_accumulates(self):
        manager = FaultManager(RetryPolicy())
        manager.record_failure(job_for(0), reason="dropped", lost=3.0)
        manager.record_failure(job_for(1), reason="churn", lost=4.5)
        assert manager.time_lost == pytest.approx(7.5)

    def test_attempt_number(self):
        manager = FaultManager(RetryPolicy(max_attempts=5))
        job = job_for(0)
        assert manager.attempt_number(job) == 1
        manager.record_failure(job, reason="dropped")
        assert manager.attempt_number(job) == 2


class TestFailureInjectingObjective:
    def test_validation(self):
        inner = toy_objective()
        with pytest.raises(ValueError):
            FailureInjectingObjective(inner, crash_probability=1.5)
        with pytest.raises(ValueError):
            FailureInjectingObjective(inner, crash_first=-1)
        with pytest.raises(ValueError):
            FailureInjectingObjective(inner, hang_duration=0.0)

    def test_crash_first_then_recover(self):
        objective = FailureInjectingObjective(toy_objective(), crash_first=2)
        config = {"quality": 0.3}
        state = objective.initial_state(config)
        for _ in range(2):
            with pytest.raises(InjectedFailure):
                objective.train(state, config, 0.0, 9.0)
        _, loss = objective.train(state, config, 0.0, 9.0)
        assert math.isfinite(loss)
        assert objective.crashes_injected == 2

    def test_crashes_are_per_config(self):
        objective = FailureInjectingObjective(toy_objective(), crash_first=1)
        poisoned, healthy = {"quality": 0.3}, {"quality": 0.7}
        with pytest.raises(InjectedFailure):
            objective.train(objective.initial_state(poisoned), poisoned, 0.0, 9.0)
        # A different config has its own (so far untouched) crash budget...
        with pytest.raises(InjectedFailure):
            objective.train(objective.initial_state(healthy), healthy, 0.0, 9.0)
        # ...and both recover afterwards.
        objective.train(objective.initial_state(poisoned), poisoned, 0.0, 9.0)
        objective.train(objective.initial_state(healthy), healthy, 0.0, 9.0)

    def test_target_predicate_restricts_injection(self):
        objective = FailureInjectingObjective(
            toy_objective(), crash_first=100, target=lambda c: c["quality"] > 0.5
        )
        safe = {"quality": 0.2}
        objective.train(objective.initial_state(safe), safe, 0.0, 9.0)  # no raise
        doomed = {"quality": 0.9}
        with pytest.raises(InjectedFailure):
            objective.train(objective.initial_state(doomed), doomed, 0.0, 9.0)

    def test_simulated_hang_inflates_cost_but_not_nominal_cost(self):
        inner = toy_objective()
        objective = FailureInjectingObjective(inner, hang_first=1, hang_duration=50.0)
        config = {"quality": 0.4}
        clean = inner.cost(config, 0.0, 9.0)
        assert objective.cost(config, 0.0, 9.0) == pytest.approx(clean + 50.0)
        # Second call: the hang budget is spent, cost is clean again.
        assert objective.cost(config, 0.0, 9.0) == pytest.approx(clean)
        # The deadline basis never sees the hang.
        assert objective.nominal_cost(config, 0.0, 9.0) == pytest.approx(clean)
        assert objective.hangs_injected == 1

    def test_real_sleep_hang_blocks_train(self):
        import time

        objective = FailureInjectingObjective(
            toy_objective(), hang_first=1, hang_duration=0.05, real_sleep=True
        )
        config = {"quality": 0.4}
        t0 = time.monotonic()
        objective.train(objective.initial_state(config), config, 0.0, 9.0)
        assert time.monotonic() - t0 >= 0.05
        # real_sleep mode must not also inflate the simulated cost.
        assert objective.cost(config, 0.0, 9.0) == pytest.approx(
            objective.nominal_cost(config, 0.0, 9.0)
        )
