"""Calibration tests for the paper-benchmark surrogates.

These lock in the *distributional* facts each figure depends on — if a
refactor breaks a response surface, these fail before any figure bench does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.objectives import (
    cifar_convnet,
    cifar_smallcnn,
    ptb_awd_lstm,
    ptb_lstm,
    sim_workload,
    svhn_smallcnn,
)


def sample_losses(module, n=2000, seed=0, resource=None):
    obj = module.make_objective()
    rng = np.random.default_rng(seed)
    configs = obj.space.sample_batch(n, rng)
    r = resource if resource is not None else module.R
    return obj, configs, np.array([obj.clean_loss_at(c, r) for c in configs])


class TestCifarConvnet:
    def test_space_matches_li2017(self):
        names = cifar_convnet.space().names
        assert "learning_rate" in names
        assert len(names) == 7

    def test_error_distribution(self):
        _, _, losses = sample_losses(cifar_convnet)
        assert losses.min() >= cifar_convnet.BEST_ERROR - 1e-6
        assert losses.min() < 0.22  # good configs exist
        good = (losses < 0.21).mean()
        assert 0.001 < good < 0.05  # rare but findable, per Section 4.2
        assert (losses > 0.8).mean() > 0.02  # divergent tail exists

    def test_uniform_cost(self):
        obj, configs, _ = sample_losses(cifar_convnet, n=50)
        assert all(obj.cost_multiplier(c) == 1.0 for c in configs)

    def test_high_lr_diverges(self):
        obj = cifar_convnet.make_objective()
        config = obj.space.sample(np.random.default_rng(0))
        config["learning_rate"] = 5.0
        assert obj.clean_loss_at(config, cifar_convnet.R) > 0.8


class TestCifarSmallCNN:
    def test_space_matches_table1(self):
        space = cifar_smallcnn.space()
        assert space.names == [
            "batch_size",
            "num_layers",
            "num_filters",
            "weight_init_std1",
            "weight_init_std2",
            "weight_init_std3",
            "l2_penalty1",
            "l2_penalty2",
            "l2_penalty3",
            "learning_rate",
        ]
        assert space["batch_size"].values == (64, 128, 256, 512)
        assert space["num_layers"].values == (2, 3, 4)
        assert space["num_filters"].values == (16, 32, 48, 64)

    def test_cost_variance_matches_section42(self):
        """Mean time-to-R ~ 30 min with std ~ 27 min: CV in [0.7, 1.3]."""
        obj, configs, _ = sample_losses(cifar_smallcnn, n=3000)
        costs = np.array([obj.cost_multiplier(c) for c in configs])
        assert costs.mean() == pytest.approx(1.0, abs=0.25)
        cv = costs.std() / costs.mean()
        assert 0.7 < cv < 1.3

    def test_error_distribution(self):
        _, _, losses = sample_losses(cifar_smallcnn, n=4000)
        assert losses.min() < 0.235
        assert 0.0005 < (losses < 0.23).mean() < 0.03

    def test_bigger_architectures_better(self):
        obj = cifar_smallcnn.make_objective()
        rng = np.random.default_rng(0)
        base = obj.space.sample(rng)
        base["learning_rate"] = 0.08
        small = dict(base, num_layers=2, num_filters=16)
        big = dict(base, num_layers=4, num_filters=64)
        assert obj.clean_loss_at(big, cifar_smallcnn.R) < obj.clean_loss_at(
            small, cifar_smallcnn.R
        )
        assert obj.cost_multiplier(big) > obj.cost_multiplier(small)


class TestSVHN:
    def test_shares_table1_space(self):
        assert svhn_smallcnn.space().names == cifar_smallcnn.space().names

    def test_error_levels_lower_than_cifar(self):
        _, _, losses = sample_losses(svhn_smallcnn, n=2000)
        assert losses.min() < 0.06  # Figure 9: methods converge to ~0.03-0.05


class TestPTBLSTM:
    def test_space_matches_table2(self):
        space = ptb_lstm.space()
        assert space.names == [
            "batch_size",
            "time_steps",
            "hidden_nodes",
            "learning_rate",
            "decay_rate",
            "decay_epochs",
            "clip_gradients",
            "dropout",
            "weight_init_range",
        ]

    def test_heavy_tail_exists(self):
        """'certain configurations induce perplexities orders of magnitude
        larger than the average case' (Section 4.3)."""
        _, _, losses = sample_losses(ptb_lstm, n=3000)
        assert (losses > 1000).mean() > 0.01
        assert losses.max() > 1e4
        assert np.median(losses) < 200

    def test_good_region_near_paper_result(self):
        _, _, losses = sample_losses(ptb_lstm, n=5000)
        assert losses.min() < 83.0  # best found by ASHA: 76.6 (test ppl)

    def test_divergence_driven_by_lr_and_clip(self):
        obj = ptb_lstm.make_objective()
        rng = np.random.default_rng(0)
        diverged = 0
        for _ in range(200):
            config = obj.space.sample(rng)
            config["learning_rate"] = 90.0
            config["clip_gradients"] = 10.0
            if obj.clean_loss_at(config, ptb_lstm.R) > 1000:
                diverged += 1
        assert diverged > 30


class TestAWDLSTM:
    def test_space_matches_table3(self):
        space = ptb_awd_lstm.space()
        assert space["batch_size"].values == (15, 20, 25)
        assert space["time_steps"].values == (65, 70, 75)
        assert space.dim == 9

    def test_perplexity_range_matches_figure6(self):
        _, _, losses = sample_losses(ptb_awd_lstm, n=2000)
        finite = losses[losses < 500]
        assert 59.0 < finite.min() < 62.5
        assert np.median(finite) < 72.0  # Figure 6's y-range


class TestSimWorkload:
    def test_unit_cost(self):
        obj = sim_workload.make_objective()
        assert obj.cost({"x": 0.5}, 0.0, 7.0) == 7.0

    def test_quality_equals_hyperparameter(self):
        obj = sim_workload.make_objective()
        assert obj.clean_loss_at({"x": 0.37}, 1e9) == pytest.approx(0.37, abs=1e-6)
