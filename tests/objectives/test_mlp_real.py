"""Tests for the real numpy MLP objective (checkpointed iterative training)."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.objectives.mlp_real import make_objective


@pytest.fixture(scope="module")
def objective():
    return make_objective(max_epochs=16, num_train=128, num_val=96)


GOOD = {"learning_rate": 0.3, "hidden_units": 32, "l2": 1e-6, "batch_size": 32}


def test_initial_state_deterministic(objective):
    a = objective.initial_state(GOOD)
    b = objective.initial_state(GOOD)
    np.testing.assert_array_equal(a.w1, b.w1)
    np.testing.assert_array_equal(a.w2, b.w2)


def test_training_reduces_error(objective):
    state = objective.initial_state(GOOD)
    state, early = objective.train(state, GOOD, 0.0, 2.0)
    state, late = objective.train(state, GOOD, 2.0, 16.0)
    assert late < early
    assert late < 0.35


def test_resume_is_exact(objective):
    """Pausing and resuming reproduces uninterrupted training bit-for-bit."""
    direct_state = objective.initial_state(GOOD)
    _, direct = objective.train(direct_state, GOOD, 0.0, 8.0)

    stepped_state = objective.initial_state(GOOD)
    stepped_state, _ = objective.train(stepped_state, GOOD, 0.0, 3.0)
    stepped_state, stepped = objective.train(stepped_state, GOOD, 3.0, 8.0)
    assert stepped == direct


def test_clone_then_diverge(objective):
    """PBT semantics: a deep-copied state trains independently."""
    state = objective.initial_state(GOOD)
    state, _ = objective.train(state, GOOD, 0.0, 4.0)
    clone = copy.deepcopy(state)
    other = dict(GOOD, learning_rate=0.01)
    state, _ = objective.train(state, GOOD, 4.0, 8.0)
    clone, _ = objective.train(clone, other, 4.0, 8.0)
    assert not np.allclose(state.w1, clone.w1)


def test_bad_lr_fails_to_learn(objective):
    bad = dict(GOOD, learning_rate=0.001)
    err_bad = objective.evaluate(bad, 8.0)
    err_good = objective.evaluate(GOOD, 8.0)
    assert err_good < err_bad


def test_cost_multiplier_varies(objective):
    wide = dict(GOOD, hidden_units=64)
    narrow = dict(GOOD, hidden_units=8)
    assert objective.cost_multiplier(wide) > objective.cost_multiplier(narrow)
