"""Tests for the learning-curve family."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectives.curves import CurveProfile, advance_loss, curve_loss, invert_curve


def profile(**kwargs):
    defaults = dict(asymptote=0.2, initial_loss=1.0, gamma=0.8, half_resource=4.0)
    defaults.update(kwargs)
    return CurveProfile(**defaults)


class TestValidation:
    def test_initial_below_asymptote_rejected(self):
        with pytest.raises(ValueError):
            CurveProfile(asymptote=1.0, initial_loss=0.5)

    def test_positive_parameters(self):
        with pytest.raises(ValueError):
            profile(gamma=0.0)
        with pytest.raises(ValueError):
            profile(half_resource=-1.0)
        with pytest.raises(ValueError):
            profile(cost_multiplier=0.0)
        with pytest.raises(ValueError):
            profile(noise_mode="weird")


class TestCurveLoss:
    def test_boundary_values(self):
        p = profile()
        assert curve_loss(p, 0.0) == pytest.approx(1.0)
        assert curve_loss(p, 1e12) == pytest.approx(0.2, abs=1e-6)

    def test_monotone_decreasing(self):
        p = profile()
        losses = [curve_loss(p, r) for r in (0, 1, 2, 4, 8, 16, 64)]
        assert losses == sorted(losses, reverse=True)

    def test_negative_resource_rejected(self):
        with pytest.raises(ValueError):
            curve_loss(profile(), -1.0)


class TestInvert:
    def test_round_trip(self):
        p = profile()
        for r in (0.0, 0.5, 3.0, 17.0):
            assert invert_curve(p, curve_loss(p, r)) == pytest.approx(r, rel=1e-9, abs=1e-9)

    def test_edges(self):
        p = profile()
        assert invert_curve(p, 2.0) == 0.0  # above initial loss
        assert invert_curve(p, 0.2) == math.inf  # at the asymptote
        assert invert_curve(p, 0.1) == math.inf  # below it


class TestAdvance:
    def test_matches_from_scratch_on_own_curve(self):
        p = profile()
        l1 = advance_loss(p, p.initial_loss, 3.0)
        l2 = advance_loss(p, l1, 5.0)
        assert l2 == pytest.approx(curve_loss(p, 8.0), rel=1e-9)

    def test_zero_delta_is_identity(self):
        p = profile()
        assert advance_loss(p, 0.7, 0.0) == 0.7

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            advance_loss(profile(), 0.7, -1.0)

    def test_inherited_better_state_relaxes_toward_asymptote(self):
        """A loss below the asymptote (PBT clone) drifts up, never jumps."""
        p = profile(asymptote=0.5)
        inherited = 0.2
        one = advance_loss(p, inherited, 1.0)
        many = advance_loss(p, inherited, 100.0)
        assert inherited < one < many <= 0.5


@settings(max_examples=60, deadline=None)
@given(
    asym=st.floats(0.01, 1.0),
    gap=st.floats(0.01, 10.0),
    gamma=st.floats(0.2, 2.0),
    half=st.floats(0.1, 100.0),
    r1=st.floats(0.0, 1000.0),
    r2=st.floats(0.0, 1000.0),
)
def test_advance_path_independence(asym, gap, gamma, half, r1, r2):
    """Training (r1 then r2) equals training (r1 + r2) in one shot."""
    p = CurveProfile(asymptote=asym, initial_loss=asym + gap, gamma=gamma, half_resource=half)
    stepped = advance_loss(p, advance_loss(p, p.initial_loss, r1), r2)
    direct = advance_loss(p, p.initial_loss, r1 + r2)
    assert stepped == pytest.approx(direct, rel=1e-6, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    loss=st.floats(0.21, 0.99),
    delta=st.floats(0.0, 100.0),
)
def test_advance_never_below_asymptote(loss, delta):
    p = profile()
    out = advance_loss(p, loss, delta)
    assert out >= p.asymptote - 1e-12
    assert out <= loss + 1e-12  # training never hurts on-curve states
