"""Tests for the surrogate objective machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectives.base import config_seed
from repro.objectives.curves import CurveProfile
from repro.objectives.surrogate import (
    SurrogateObjective,
    seeded_normal,
    seeded_uniform,
)
from repro.searchspace import SearchSpace, Uniform


def simple_objective(seed_salt=0, noise=0.0, noise_mode="gap"):
    space = SearchSpace({"q": Uniform(0.0, 1.0)})

    def profile(config, seed):
        return CurveProfile(
            asymptote=config["q"],
            initial_loss=config["q"] + 1.0,
            gamma=1.0,
            half_resource=2.0,
            noise_std=noise,
            noise_mode=noise_mode,
        )

    return SurrogateObjective(space, 16.0, profile, seed_salt=seed_salt)


class TestConfigSeed:
    def test_stable_across_calls(self):
        config = {"a": 1, "b": 0.25}
        assert config_seed(config) == config_seed(dict(config))

    def test_key_order_irrelevant(self):
        assert config_seed({"a": 1, "b": 2}) == config_seed({"b": 2, "a": 1})

    def test_salt_changes_seed(self):
        config = {"a": 1}
        assert config_seed(config, salt=0) != config_seed(config, salt=1)

    def test_numpy_scalars_normalised(self):
        assert config_seed({"a": np.float64(0.5)}) == config_seed({"a": 0.5})

    def test_different_configs_differ(self):
        assert config_seed({"a": 1}) != config_seed({"a": 2})


class TestSeededDraws:
    def test_deterministic(self):
        assert seeded_normal(42, 1.0) == seeded_normal(42, 1.0)
        assert seeded_uniform(42, 1.0) == seeded_uniform(42, 1.0)

    def test_varies_with_inputs(self):
        assert seeded_normal(42, 1.0) != seeded_normal(42, 2.0)
        assert seeded_normal(42, 1.0) != seeded_normal(43, 1.0)

    def test_uniform_range(self):
        draws = [seeded_uniform(s, 0.0) for s in range(500)]
        assert all(0 < u < 1 for u in draws)
        assert np.mean(draws) == pytest.approx(0.5, abs=0.07)

    def test_normal_moments(self):
        draws = [seeded_normal(s, 0.0) for s in range(1000)]
        assert np.mean(draws) == pytest.approx(0.0, abs=0.12)
        assert np.std(draws) == pytest.approx(1.0, abs=0.12)


class TestSurrogateObjective:
    def test_same_config_same_curve_across_instances(self):
        a, b = simple_objective(), simple_objective()
        config = {"q": 0.3}
        assert a.evaluate(config, 8.0) == b.evaluate(config, 8.0)

    def test_seed_salt_changes_noise_not_structure(self):
        a, b = simple_objective(noise=0.05), simple_objective(noise=0.05, seed_salt=7)
        config = {"q": 0.3}
        assert a.evaluate(config, 8.0) != b.evaluate(config, 8.0)
        assert a.clean_loss_at(config, 8.0) == b.clean_loss_at(config, 8.0)

    def test_resume_equals_direct(self):
        obj = simple_objective()
        config = {"q": 0.2}
        state = obj.initial_state(config)
        state, _ = obj.train(state, config, 0.0, 4.0)
        _, resumed = obj.train(state, config, 4.0, 16.0)
        assert resumed == pytest.approx(obj.evaluate(config, 16.0), rel=1e-9)

    def test_train_backwards_rejected(self):
        obj = simple_objective()
        config = {"q": 0.2}
        state = obj.initial_state(config)
        with pytest.raises(ValueError):
            obj.train(state, config, 4.0, 2.0)

    def test_gap_noise_deterministic_per_resource(self):
        obj = simple_objective(noise=0.1)
        config = {"q": 0.4}
        a = obj.evaluate(config, 8.0)
        b = obj.evaluate(config, 8.0)
        assert a == b
        assert a != obj.clean_loss_at(config, 8.0)

    def test_relative_noise_scales_with_loss(self):
        obj = simple_objective(noise=0.1, noise_mode="relative")
        config = {"q": 0.4}
        observed = obj.evaluate(config, 8.0)
        clean = obj.clean_loss_at(config, 8.0)
        assert abs(observed - clean) < 0.5 * clean + 1e-9

    def test_cost_multiplier_flows_through(self):
        space = SearchSpace({"q": Uniform(0.0, 1.0)})
        obj = SurrogateObjective(
            space,
            16.0,
            lambda c, s: CurveProfile(
                asymptote=0.1, initial_loss=1.0, cost_multiplier=3.0
            ),
        )
        assert obj.cost({"q": 0.5}, 0.0, 4.0) == 12.0

    def test_id_cache_safe_for_equal_configs(self):
        obj = simple_objective()
        c1 = {"q": 0.3}
        c2 = {"q": 0.3}  # equal contents, different identity
        assert obj.profile(c1) == obj.profile(c2)

    def test_best_possible(self):
        obj = simple_objective()
        configs = [{"q": 0.9}, {"q": 0.1}, {"q": 0.5}]
        assert obj.best_possible(configs) == pytest.approx(0.1)


@settings(max_examples=40, deadline=None)
@given(q=st.floats(0.0, 1.0), r=st.floats(0.0, 16.0))
def test_loss_bounded_by_profile(q, r):
    obj = simple_objective()
    config = {"q": q}
    loss = obj.evaluate(config, r)
    assert q - 1e-9 <= loss <= q + 1.0 + 1e-9
