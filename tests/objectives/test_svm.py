"""Tests for the real (genuinely trained) SVM objective."""

from __future__ import annotations

import numpy as np
import pytest

from repro.objectives.svm import make_objective


@pytest.fixture(scope="module")
def objective():
    return make_objective("vehicle", max_train=1024, num_val=512)


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError):
        make_objective("imagenet")


def test_deterministic(objective):
    config = {"C": 1.0, "gamma": 0.1}
    assert objective.evaluate(config, 512.0) == objective.evaluate(config, 512.0)


def test_more_data_reduces_error(objective):
    """Diminishing-returns structure: the hook Fabolas exploits."""
    config = {"C": 100.0, "gamma": 0.1}
    small = objective.evaluate(config, 64.0)
    large = objective.evaluate(config, 1024.0)
    assert large < small


def test_hyperparameters_matter(objective):
    rng = np.random.default_rng(0)
    errors = [objective.evaluate(c, 1024.0) for c in objective.space.sample_batch(30, rng)]
    assert max(errors) - min(errors) > 0.05
    assert min(errors) < 0.45  # some configs genuinely learn


def test_mnist_easier_than_vehicle():
    easy = make_objective("mnist", max_train=1024, num_val=512)
    hard = make_objective("vehicle", max_train=1024, num_val=512)
    config = {"C": 1.0, "gamma": 0.05}
    assert easy.evaluate(config, 1024.0) < hard.evaluate(config, 1024.0)


def test_cost_follows_target_size(objective):
    assert objective.cost({"C": 1.0, "gamma": 0.1}, 0.0, 512.0) == 512.0
    # Subset training is not incremental: resuming still pays the target.
    assert objective.cost({"C": 1.0, "gamma": 0.1}, 256.0, 512.0) == 512.0


def test_seeds_give_different_datasets():
    a = make_objective("vehicle", seed=0, max_train=512, num_val=256)
    b = make_objective("vehicle", seed=1, max_train=512, num_val=256)
    config = {"C": 1.0, "gamma": 0.05}
    assert a.evaluate(config, 512.0) != b.evaluate(config, 512.0)
