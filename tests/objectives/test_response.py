"""Tests for the response-surface primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectives.response import band, log_band, log_ramp, ramp


class TestLogBand:
    def test_zero_at_optimum(self):
        assert log_band(0.1, 0.1, 1.0, 5.0) == 0.0

    def test_symmetric_in_decades(self):
        assert log_band(1.0, 0.1, 1.0, 5.0) == pytest.approx(log_band(0.01, 0.1, 1.0, 5.0))

    def test_caps(self):
        assert log_band(1e9, 0.1, 1.0, 5.0) == 5.0 * 4.0
        assert log_band(1e9, 0.1, 1.0, 5.0, cap=2.0) == 10.0

    def test_nonpositive_value_max_penalty(self):
        assert log_band(0.0, 0.1, 1.0, 5.0) == 20.0
        assert log_band(-1.0, 0.1, 1.0, 5.0) == 20.0


class TestBand:
    def test_zero_at_optimum(self):
        assert band(0.5, 0.5, 0.1, 3.0) == 0.0

    def test_quadratic_growth(self):
        one = band(0.6, 0.5, 0.1, 3.0)
        two = band(0.7, 0.5, 0.1, 3.0)
        assert two == pytest.approx(4 * one)

    def test_cap(self):
        assert band(100.0, 0.5, 0.1, 3.0) == 12.0


class TestRamp:
    def test_endpoints(self):
        assert ramp(2, 2, 4, 10.0) == 10.0
        assert ramp(4, 2, 4, 10.0) == 0.0
        assert ramp(3, 2, 4, 10.0) == pytest.approx(5.0)

    def test_clamps_outside_range(self):
        assert ramp(0, 2, 4, 10.0) == 10.0
        assert ramp(99, 2, 4, 10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ramp(1, 5, 5, 1.0)


class TestLogRamp:
    def test_endpoints(self):
        assert log_ramp(1.0, 1.0, 100.0, 6.0) == 6.0
        assert log_ramp(100.0, 1.0, 100.0, 6.0) == 0.0
        assert log_ramp(10.0, 1.0, 100.0, 6.0) == pytest.approx(3.0)

    def test_degenerate_inputs(self):
        assert log_ramp(0.0, 1.0, 100.0, 6.0) == 6.0
        assert log_ramp(5.0, 100.0, 1.0, 6.0) == 6.0


@settings(max_examples=50, deadline=None)
@given(
    value=st.floats(1e-8, 1e8),
    optimum=st.floats(1e-6, 1e6),
    width=st.floats(0.1, 3.0),
    strength=st.floats(0.0, 10.0),
)
def test_log_band_bounded_and_nonnegative(value, optimum, width, strength):
    p = log_band(value, optimum, width, strength)
    assert 0.0 <= p <= strength * 4.0 + 1e-12
