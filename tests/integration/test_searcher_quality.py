"""Model-based searchers beat random sampling on the CIFAR small-CNN surrogate.

This is the end-to-end payoff of the searcher abstraction: plugging a
``KDESearcher`` (BOHB-style TPE) or ``GPEISearcher`` (Vizier-style GP-EI)
into an otherwise unchanged ASHA run should find better configurations than
ASHA's default uniform-random sampling, on the paper's 10-dimensional
architecture-tuning benchmark.

The comparison is fully deterministic: seeded scheduler rng, seeded
``SimulatedCluster``, and a noise-free evaluation of each incumbent via the
surrogate's clean loss at full resource.  The seeds below were chosen so the
win holds with a comfortable margin; the budget (8 workers, ~100 trials) is
the regime where model guidance matters — enough trials for the models to
train, too few for random search to carpet the space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import ASHA
from repro.objectives import cifar_smallcnn
from repro.searchers import KDESearcher, GPEISearcher

R = cifar_smallcnn.R
SEEDS = (5, 9)


def run_asha(searcher, seed):
    objective = cifar_smallcnn.make_objective()
    sched = ASHA(
        objective.space,
        np.random.default_rng(seed),
        min_resource=R / 256,
        max_resource=R,
        eta=4,
        searcher=searcher,
    )
    SimulatedCluster(8, seed=seed).run(sched, objective, time_limit=4000.0)
    incumbent = objective.clean_loss_at(sched.best_trial().config, R)
    return incumbent, sched


def make_kde():
    return KDESearcher(random_fraction=0.1)


def make_gp():
    return GPEISearcher(num_init=10, num_candidates=64, refit_every=3, max_fit_points=80)


@pytest.mark.parametrize("seed", SEEDS)
def test_model_based_searchers_beat_random_on_cifar_smallcnn(seed):
    random_loss, _ = run_asha(None, seed)
    kde_loss, kde_sched = run_asha(make_kde(), seed)
    gp_loss, gp_sched = run_asha(make_gp(), seed)

    assert kde_loss < random_loss
    assert gp_loss < random_loss

    # The wins are genuinely model-driven, not warm-up luck: both searchers
    # proposed well past their random warm-up phases.
    assert kde_sched.searcher.num_suggestions > 20
    assert gp_sched.searcher.num_suggestions > gp_sched.searcher.num_init
    assert gp_sched.searcher.num_observations >= gp_sched.searcher.num_init


def test_model_guidance_improves_average_proposal_quality():
    """Beyond the incumbent: the *average* sampled config is better too."""
    seed = SEEDS[0]
    objective = cifar_smallcnn.make_objective()

    def mean_quality(sched):
        return float(
            np.mean([objective.clean_loss_at(t.config, R) for t in sched.trials.values()])
        )

    _, rand_sched = run_asha(None, seed)
    _, kde_sched = run_asha(make_kde(), seed)
    _, gp_sched = run_asha(make_gp(), seed)
    assert mean_quality(kde_sched) < mean_quality(rand_sched)
    assert mean_quality(gp_sched) < mean_quality(rand_sched)
