"""End-to-end fault tolerance: retry policies, timeouts, and the accounting
bugfixes that rode along with them.

Three layers are exercised here:

* the **retry loop** — injected crashes/hangs/drops are retried with the
  same job (same rung/bracket), poison trials are quarantined, and the
  scheduler protocol stays clean under :class:`ContractChecker`;
* the **acceptance criterion** from the fault-tolerance issue: under the
  paper's Appendix A.1 drop model, a retry policy strictly increases the
  number of configurations trained to completion;
* the **accounting regressions**: early-stopped runs no longer report
  ``elapsed == time_limit``, and churn/timeout-killed jobs no longer stay
  credited for their full duration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    FailureInjectingObjective,
    RetryPolicy,
    SimulatedCluster,
)
from repro.core import ASHA, Hyperband, RandomSearch, SynchronousSHA
from repro.core.contract import ContractChecker
from repro.core.types import TrialStatus
from repro.experiments.toys import toy_objective
from repro.telemetry import InMemorySink, TelemetryHub

R = 9.0


def make_asha(seed=0, **kwargs):
    objective = toy_objective(max_resource=R, constant=False)
    kwargs.setdefault("max_trials", 16)
    asha = ASHA(
        objective.space,
        np.random.default_rng(seed),
        min_resource=1.0,
        max_resource=R,
        eta=3,
        **kwargs,
    )
    return objective, asha


class TestRetryLoop:
    def test_crashes_are_retried_until_success(self):
        """crash_first=2 under max_attempts=3: every trial needs 3 tries."""
        objective, asha = make_asha(max_trials=4)
        flaky = FailureInjectingObjective(objective, crash_first=2)
        checked = ContractChecker(asha)
        result = SimulatedCluster(2, seed=0).run(
            checked, flaky, time_limit=1e4, retry_policy=RetryPolicy(max_attempts=3)
        )
        assert result.trials_abandoned == 0
        # Each of the 4 configs burned its 2 injected crashes at rung 0.
        assert result.jobs_retried == 8
        assert asha.is_done()
        assert checked.outstanding_jobs == 0
        assert all(rec.action == "retried" for rec in result.failure_log)
        assert all(rec.error is not None for rec in result.failure_log)
        assert {rec.attempt for rec in result.failure_log} == {1, 2}

    def test_retried_job_reenters_same_rung(self):
        """The re-dispatch is the same Job: id, rung, bracket, resource."""
        objective, asha = make_asha(max_trials=4)
        flaky = FailureInjectingObjective(objective, crash_first=1)
        sink = InMemorySink()
        hub = TelemetryHub([sink])
        SimulatedCluster(1, seed=0).run(
            ContractChecker(asha),
            flaky,
            time_limit=1e4,
            telemetry=hub,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        retried = [e for e in sink.events if e.kind.value == "job_retried"]
        assert retried
        for event in retried:
            original = next(
                e
                for e in sink.events
                if e.kind.value == "job_started" and e.job_id == event.job_id
            )
            relaunch = next(
                e
                for e in sink.events
                if e.kind.value == "job_started"
                and e.job_id == event.job_id
                and e.data.get("attempt", 1) > 1
            )
            assert relaunch.rung == original.rung
            assert relaunch.bracket == original.bracket
            assert relaunch.data["resource"] == original.data["resource"]

    def test_poison_trial_is_quarantined_not_looped(self):
        """A config that always crashes is abandoned after max_attempts and
        never dispatched again (ContractChecker enforces the never-again)."""
        objective, asha = make_asha(max_trials=6)
        poison = FailureInjectingObjective(
            objective, crash_first=10**6, target=lambda c: c["quality"] > 0.8
        )
        sink = InMemorySink()
        hub = TelemetryHub([sink])
        checked = ContractChecker(asha)
        result = SimulatedCluster(2, seed=0).run(
            checked,
            poison,
            time_limit=1e4,
            telemetry=hub,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        assert result.trials_abandoned >= 1
        abandoned_ids = {
            rec.trial_id for rec in result.failure_log if rec.action == "abandoned"
        }
        for trial_id in abandoned_ids:
            assert asha.trials[trial_id].status is TrialStatus.FAILED
        assert "trial_abandoned" in sink.kinds()
        # The rest of the search still finished.
        assert result.measurements
        assert asha.best_trial() is not None
        assert asha.best_trial().config["quality"] <= 0.8

    def test_backoff_delays_the_redispatch(self):
        objective, asha = make_asha(max_trials=2)
        flaky = FailureInjectingObjective(objective, crash_first=1)
        sink = InMemorySink()
        hub = TelemetryHub([sink])
        SimulatedCluster(1, seed=0).run(
            ContractChecker(asha),
            flaky,
            time_limit=1e4,
            telemetry=hub,
            retry_policy=RetryPolicy(max_attempts=3, backoff=5.0),
        )
        for event in (e for e in sink.events if e.kind.value == "job_retried"):
            assert event.data["delay"] == 5.0
            relaunch = next(
                e
                for e in sink.events
                if e.kind.value == "job_started"
                and e.job_id == event.job_id
                and e.data.get("attempt") == event.data["attempt"]
            )
            assert relaunch.time >= event.time + 5.0

    def test_max_attempts_one_abandons_immediately(self):
        objective, asha = make_asha(max_trials=4)
        flaky = FailureInjectingObjective(objective, crash_first=1)
        result = SimulatedCluster(2, seed=0).run(
            ContractChecker(asha),
            flaky,
            time_limit=1e4,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        assert result.jobs_retried == 0
        assert result.trials_abandoned == 4


class TestSimulatedTimeouts:
    def test_hung_job_is_killed_and_retried(self):
        """A hang slides the completion past 3x the nominal cost; the
        deadline kills it and the clean retry completes."""
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(
            objective.space, np.random.default_rng(0), max_resource=R, max_trials=1
        )
        hung = FailureInjectingObjective(objective, hang_first=1, hang_duration=500.0)
        sink = InMemorySink()
        hub = TelemetryHub([sink])
        result = SimulatedCluster(1, seed=0).run(
            ContractChecker(rs),
            hung,
            time_limit=1e4,
            telemetry=hub,
            retry_policy=RetryPolicy(max_attempts=3, timeout_factor=3.0),
        )
        assert "job_timeout" in sink.kinds()
        assert result.jobs_retried == 1
        assert len(result.measurements) == 1
        # Killed at exactly timeout_factor x nominal cost (9): t = 27, and the
        # retry runs clean for another 9 units.
        assert result.failure_log[0].reason == "timeout"
        assert result.failure_log[0].lost == pytest.approx(27.0)
        assert result.measurements[0].time == pytest.approx(27.0 + 9.0)
        assert result.time_lost_to_failures == pytest.approx(27.0)

    def test_timeout_rolls_back_busy_credit(self):
        """The killed attempt counts 27 busy units (what it really ran), not
        the 509 it was optimistically credited for."""
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(
            objective.space, np.random.default_rng(0), max_resource=R, max_trials=1
        )
        hung = FailureInjectingObjective(objective, hang_first=1, hang_duration=500.0)
        result = SimulatedCluster(1, seed=0).run(
            rs,
            hung,
            time_limit=100.0,
            retry_policy=RetryPolicy(max_attempts=3, timeout_factor=3.0),
        )
        # Busy: 27 (killed attempt) + 9 (clean retry); elapsed 36 (drained).
        assert result.elapsed == pytest.approx(36.0)
        assert result.utilization == pytest.approx(1.0)

    def test_retry_timeouts_false_abandons_on_first_deadline(self):
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(
            objective.space, np.random.default_rng(0), max_resource=R, max_trials=1
        )
        hung = FailureInjectingObjective(objective, hang_first=1, hang_duration=500.0)
        result = SimulatedCluster(1, seed=0).run(
            ContractChecker(rs),
            hung,
            time_limit=1e4,
            retry_policy=RetryPolicy(
                max_attempts=5, timeout_factor=3.0, retry_timeouts=False
            ),
        )
        assert result.jobs_retried == 0
        assert result.trials_abandoned == 1
        assert result.failure_log[0].action == "abandoned"

    def test_no_timeout_without_timeout_factor(self):
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(
            objective.space, np.random.default_rng(0), max_resource=R, max_trials=1
        )
        hung = FailureInjectingObjective(objective, hang_first=1, hang_duration=500.0)
        result = SimulatedCluster(1, seed=0).run(
            rs, hung, time_limit=1e4, retry_policy=RetryPolicy(max_attempts=3)
        )
        # The hang just runs its course: one long measurement, no failures.
        assert result.failures == []
        assert result.measurements[0].time == pytest.approx(509.0)


class TestAcceptanceCriterion:
    def test_retries_strictly_increase_completions_under_drops(self):
        """The issue's acceptance bar: seeded ASHA at drop_probability=0.05,
        RetryPolicy(max_attempts=3) vs no policy — strictly more trials
        trained to the maximum resource."""

        def completions(policy):
            objective = toy_objective(max_resource=R, constant=False)
            asha = ASHA(
                objective.space,
                np.random.default_rng(4),
                min_resource=1.0,
                max_resource=R,
                eta=3,
                max_trials=60,
            )
            cluster = SimulatedCluster(4, seed=4, drop_probability=0.05)
            result = cluster.run(
                ContractChecker(asha),
                objective,
                time_limit=400.0,
                retry_policy=policy,
            )
            return result

        baseline = completions(None)
        retried = completions(RetryPolicy(max_attempts=3))
        assert retried.jobs_retried > 0
        assert len(retried.completions) > len(baseline.completions)


class TestAccountingRegressions:
    def test_stop_on_first_completion_elapsed_is_stop_clock(self):
        """Regression: the early-stopped run used to report elapsed ==
        time_limit (and a deflated utilization) because the event queue was
        non-empty at the break."""
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(
            objective.space, np.random.default_rng(0), max_resource=R
        )
        result = SimulatedCluster(2, seed=0).run(
            rs, objective, time_limit=1e6, stop_on_first_completion=True
        )
        assert result.elapsed == pytest.approx(9.0)  # not 1e6
        # Both workers were busy from 0 to the stop clock.
        assert result.utilization == pytest.approx(1.0)

    def test_max_measurements_elapsed_is_stop_clock(self):
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(
            objective.space, np.random.default_rng(0), max_resource=R
        )
        result = SimulatedCluster(2, seed=0).run(
            rs, objective, time_limit=1e6, max_measurements=7
        )
        assert result.elapsed == pytest.approx(max(m.time for m in result.measurements))
        assert result.utilization == pytest.approx(1.0)

    def test_exhausted_budget_still_reports_time_limit(self):
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(objective.space, np.random.default_rng(0), max_resource=R)
        result = SimulatedCluster(1, seed=0).run(rs, objective, time_limit=20.0)
        assert result.elapsed == 20.0

    def test_churn_kill_rolls_back_busy_credit(self):
        """Regression: a churn-killed job kept its full-duration busy credit.
        Seed 10 kills one of two cost-9 jobs mid-flight; busy time must be
        9 (the survivor) + the victim's actual runtime."""
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(
            objective.space, np.random.default_rng(0), max_resource=R, max_trials=2
        )
        result = SimulatedCluster(
            2, seed=10, churn_rate=0.2, churn_downtime=1000.0
        ).run(rs, objective, time_limit=20.0)
        assert len(result.failures) == 1
        kill_time = result.failures[0][0]
        assert kill_time < 9.0  # the kill really was mid-job
        expected = (9.0 + kill_time) / (2 * 20.0)
        assert result.utilization == pytest.approx(expected)
        assert result.time_lost_to_failures == pytest.approx(kill_time)

    def test_default_runs_unchanged_without_policy(self):
        """No-policy runs keep the legacy forfeit path: failure_log records
        action='forfeited' and nothing is retried or abandoned."""
        objective = toy_objective(max_resource=R, constant=False)
        rs = RandomSearch(
            objective.space, np.random.default_rng(0), max_resource=R, max_trials=50
        )
        result = SimulatedCluster(2, seed=1, drop_probability=0.05).run(
            rs, objective, time_limit=1e5
        )
        assert result.failures
        assert result.jobs_retried == 0
        assert result.trials_abandoned == 0
        assert all(rec.action == "forfeited" for rec in result.failure_log)
        assert len(result.failure_log) == len(result.failures)


class TestMetricsIntegration:
    def test_report_carries_fault_counters(self):
        objective, asha = make_asha(max_trials=6)
        poison = FailureInjectingObjective(
            objective, crash_first=10**6, target=lambda c: c["quality"] > 0.8
        )
        hub = TelemetryHub.with_metrics()
        result = SimulatedCluster(2, seed=0).run(
            asha,
            poison,
            time_limit=1e4,
            telemetry=hub,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        report = result.telemetry
        assert report is not None
        assert report.jobs_retried == result.jobs_retried > 0
        assert report.trials_abandoned == result.trials_abandoned >= 1
        assert report.time_lost_to_failures == pytest.approx(
            result.time_lost_to_failures
        )


FAULT_POLICIES = [
    pytest.param(RetryPolicy(max_attempts=3), id="plain-retry"),
    pytest.param(RetryPolicy(max_attempts=2, backoff=2.0), id="backoff"),
    pytest.param(RetryPolicy(max_attempts=3, timeout_factor=4.0), id="deadline"),
    pytest.param(
        RetryPolicy(max_attempts=4, timeout_factor=4.0, retry_timeouts=False),
        id="strict-timeouts",
    ),
]


@pytest.mark.parametrize("policy", FAULT_POLICIES)
@pytest.mark.parametrize(
    "make_scheduler",
    [
        pytest.param(
            lambda space, rng: ASHA(
                space, rng, min_resource=1.0, max_resource=R, eta=3, max_trials=20
            ),
            id="asha",
        ),
        pytest.param(
            lambda space, rng: SynchronousSHA(
                space, rng, n=9, min_resource=1.0, max_resource=R, eta=3
            ),
            id="sha",
        ),
        pytest.param(
            lambda space, rng: Hyperband(
                space, rng, min_resource=1.0, max_resource=R, eta=3, max_loops=1
            ),
            id="hyperband",
        ),
        pytest.param(
            lambda space, rng: RandomSearch(space, rng, max_resource=R, max_trials=20),
            id="random",
        ),
    ],
)
def test_fault_interplay_keeps_contract(make_scheduler, policy):
    """Drops + churn + injected crashes + retries together, under the
    contract checker, for every scheduler family: the protocol must hold and
    the search must still make progress."""
    objective = toy_objective(max_resource=R, constant=False)
    flaky = FailureInjectingObjective(
        objective, seed=7, crash_probability=0.1, hang_probability=0.05,
        hang_duration=200.0,
    )
    scheduler = ContractChecker(
        make_scheduler(objective.space, np.random.default_rng(11))
    )
    cluster = SimulatedCluster(
        3, seed=11, drop_probability=0.02, churn_rate=0.01, churn_downtime=5.0
    )
    result = cluster.run(scheduler, flaky, time_limit=3000.0, retry_policy=policy)
    assert result.measurements  # progress despite everything
    assert result.failures  # faults really were injected
    assert scheduler.inner.best_trial() is not None
