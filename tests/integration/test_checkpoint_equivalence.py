"""Checkpointed vs from-scratch promotion: same decisions, different cost.

Section 3.2's checkpointing argument is purely about *time*: whether a
promotion resumes or retrains must not change what the scheduler learns,
because the surrogate losses depend only on (config, resource).  These
tests pin that equivalence, and the cost asymmetry, exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import ASHA
from repro.experiments.toys import toy_objective

R = 27.0


def run_asha(from_checkpoint: bool):
    objective = toy_objective(max_resource=R, constant=False)
    rng = np.random.default_rng(5)
    asha = ASHA(
        objective.space,
        rng,
        min_resource=1.0,
        max_resource=R,
        eta=3,
        max_trials=27,
        from_checkpoint=from_checkpoint,
    )
    result = SimulatedCluster(1, seed=5).run(asha, objective, time_limit=1e9)
    return asha, result


def test_same_promotions_and_losses():
    """On one worker the decision sequence is identical either way."""
    ckpt_sched, _ = run_asha(True)
    scratch_sched, _ = run_asha(False)
    assert set(ckpt_sched.trials) == set(scratch_sched.trials)
    for trial_id in ckpt_sched.trials:
        a = ckpt_sched.trials[trial_id].measurements
        b = scratch_sched.trials[trial_id].measurements
        assert [m.resource for m in a] == [m.resource for m in b]
        # Losses agree up to float round-off between the resume path
        # (curve inversion + advance) and direct evaluation.
        for ma, mb in zip(a, b):
            assert ma.loss == pytest.approx(mb.loss, rel=1e-9, abs=1e-12)


def test_scratch_costs_more_wallclock():
    _, ckpt_result = run_asha(True)
    _, scratch_result = run_asha(False)
    assert scratch_result.elapsed > ckpt_result.elapsed
    # Same number of jobs; only their durations differ.
    assert scratch_result.jobs_dispatched == ckpt_result.jobs_dispatched


def test_checkpoint_total_work_bounded_by_deepest_resource():
    """With resume, a trial's total training time equals its final resource
    (each unit paid once); from scratch it pays each rung in full."""
    _, ckpt_result = run_asha(True)
    per_trial_work: dict[int, float] = {}
    last_resource: dict[int, float] = {}
    for m in ckpt_result.measurements:
        prev = last_resource.get(m.trial_id, 0.0)
        per_trial_work[m.trial_id] = per_trial_work.get(m.trial_id, 0.0) + (m.resource - prev)
        last_resource[m.trial_id] = m.resource
    for trial_id, work in per_trial_work.items():
        assert work == pytest.approx(last_resource[trial_id])
