"""Failure injection: drops, crashes mid-search, NaN/inf losses.

The paper's Appendix A.1 motivates ASHA with robustness to dropped jobs;
these tests inject failures into *every* scheduler and require the search to
keep making progress without crashing or deadlocking.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import (
    ASHA,
    BOHB,
    PBT,
    AsyncHyperband,
    Hyperband,
    RandomSearch,
    SynchronousSHA,
    VizierGP,
)
from repro.experiments.toys import toy_objective
from repro.objectives.curves import CurveProfile
from repro.objectives.surrogate import SurrogateObjective
from repro.searchspace import SearchSpace, Uniform

R = 16.0


def scheduler_zoo(space, rng):
    return [
        ASHA(space, rng, min_resource=1.0, max_resource=R, eta=4),
        SynchronousSHA(
            space, rng, n=16, min_resource=1.0, max_resource=R, eta=4, grow_brackets=True
        ),
        Hyperband(space, rng, min_resource=1.0, max_resource=R, eta=4),
        AsyncHyperband(space, rng, min_resource=1.0, max_resource=R, eta=4),
        RandomSearch(space, rng, max_resource=R),
        PBT(space, rng, max_resource=R, interval=4.0, population_size=5),
        BOHB(space, rng, n=16, min_resource=1.0, max_resource=R, eta=4, grow_brackets=True),
        VizierGP(space, rng, max_resource=R, num_init=4, num_candidates=16),
    ]


@pytest.mark.parametrize("drop_probability", [0.02, 0.08])
def test_all_schedulers_survive_drops(drop_probability):
    objective = toy_objective(max_resource=R, constant=False)
    for scheduler in scheduler_zoo(objective.space, np.random.default_rng(5)):
        cluster = SimulatedCluster(
            4, seed=5, drop_probability=drop_probability
        )
        result = cluster.run(scheduler, objective, time_limit=40 * R)
        name = type(scheduler).__name__
        assert result.failures, name  # failures really were injected
        assert result.measurements, name  # and progress still happened
        assert scheduler.best_trial() is not None, name


def nan_objective():
    """A surrogate where a fifth of the space returns NaN losses."""
    space = SearchSpace({"q": Uniform(0.0, 1.0)})

    def profile(config, seed):
        return CurveProfile(
            asymptote=config["q"], initial_loss=config["q"] + 0.5, half_resource=2.0
        )

    class NanObjective(SurrogateObjective):
        def train(self, state, config, from_resource, to_resource):
            state, loss = super().train(state, config, from_resource, to_resource)
            if config["q"] > 0.8:
                return state, float("nan")
            return state, loss

    return NanObjective(space, R, profile)


def test_nan_losses_never_win():
    objective = nan_objective()
    for scheduler in scheduler_zoo(objective.space, np.random.default_rng(9)):
        cluster = SimulatedCluster(4, seed=9)
        cluster.run(scheduler, objective, time_limit=30 * R)
        name = type(scheduler).__name__
        best = scheduler.best_trial()
        assert best is not None, name
        assert not math.isnan(best.last_loss), name


def test_asha_retries_dropped_promotions():
    """A dropped promotion job returns the config to the promotable pool."""
    objective = toy_objective(max_resource=R, constant=False)
    rng = np.random.default_rng(0)
    asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=R, eta=4)
    # Manually drive: 4 base jobs, then a promotion we fail twice.
    jobs = [asha.next_job() for _ in range(4)]
    for job, loss in zip(jobs, (0.1, 0.2, 0.3, 0.4)):
        asha.report(job, loss)
    promo1 = asha.next_job()
    assert promo1.rung == 1
    asha.on_job_failed(promo1)
    promo2 = asha.next_job()
    assert promo2.rung == 1
    assert promo2.trial_id == promo1.trial_id  # same config retried
    asha.report(promo2, 0.05)
    assert asha.trials[promo2.trial_id].resource == 4.0


def test_sha_rung_closes_after_partial_drops():
    """Sync SHA must not deadlock when some rung jobs are dropped."""
    objective = toy_objective(max_resource=R, constant=False)
    rng = np.random.default_rng(0)
    sha = SynchronousSHA(
        objective.space, rng, n=16, min_resource=1.0, max_resource=R, eta=4
    )
    cluster = SimulatedCluster(4, seed=13, drop_probability=0.05)
    cluster.run(sha, objective, time_limit=1e6)
    assert sha.is_done()
