"""Determinism and seed-sensitivity across the whole stack.

Reproducibility is a design contract (DESIGN.md §5): identical seeds give
bit-identical searches; different seeds genuinely differ (no accidental
global seeding); and the scheduler/cluster/objective seeds are independent
axes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import ASHA, BOHB, PBT, VizierGP
from repro.experiments.toys import toy_objective

R = 16.0


def run_search(scheduler_cls, *, scheduler_seed=0, cluster_seed=0, objective=None, **kwargs):
    objective = objective or toy_objective(max_resource=R, constant=False)
    rng = np.random.default_rng(scheduler_seed)
    scheduler = scheduler_cls(objective.space, rng, **kwargs)
    cluster = SimulatedCluster(3, seed=cluster_seed, straggler_std=0.3)
    result = cluster.run(scheduler, objective, time_limit=200.0)
    return [(m.trial_id, m.resource, m.loss, m.time) for m in result.measurements]


ASHA_KW = dict(min_resource=1.0, max_resource=R, eta=4)


@pytest.mark.parametrize(
    "scheduler_cls,kwargs",
    [
        (ASHA, ASHA_KW),
        (BOHB, dict(n=16, min_resource=1.0, max_resource=R, eta=4, grow_brackets=True)),
        (PBT, dict(max_resource=R, interval=4.0, population_size=5)),
        (VizierGP, dict(max_resource=R, num_init=4, num_candidates=16)),
    ],
)
def test_bit_identical_given_seeds(scheduler_cls, kwargs):
    assert run_search(scheduler_cls, **kwargs) == run_search(scheduler_cls, **kwargs)


def test_scheduler_seed_changes_search():
    a = run_search(ASHA, scheduler_seed=0, **ASHA_KW)
    b = run_search(ASHA, scheduler_seed=1, **ASHA_KW)
    assert a != b


def test_cluster_seed_changes_timing_only():
    """The cluster seed drives stragglers: same configs, different times."""
    a = run_search(ASHA, cluster_seed=0, **ASHA_KW)
    b = run_search(ASHA, cluster_seed=1, **ASHA_KW)
    assert [m[3] for m in a] != [m[3] for m in b]  # completion times differ
    # The very first dispatched job is identical (nothing has diverged yet),
    # even though its completion time differs.
    first_a = min(a, key=lambda m: m[3])
    assert first_a[2] in {m[2] for m in b}  # its loss shows up in both runs


def test_objective_salt_changes_losses():
    obj_a = toy_objective(max_resource=R, constant=False)
    obj_b = toy_objective(max_resource=R, constant=False)
    # The toy objective is salt-free and pure: identical instances agree.
    config = {"quality": 0.4}
    assert obj_a.evaluate(config, 8.0) == obj_b.evaluate(config, 8.0)
