"""End-to-end integration: every scheduler on every backend.

These are the "does the whole machine turn over" tests: each tuning
algorithm drives a full search against a real resumable objective on both
the simulated cluster and the thread pool, and must (a) produce
measurements, (b) improve over the uniform-sampling baseline, and (c) leave
its trial table in a consistent state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster, ThreadPoolBackend
from repro.core import (
    ASHA,
    BOHB,
    PBT,
    AsyncBOHB,
    AsyncHyperband,
    Fabolas,
    Hyperband,
    RandomSearch,
    SynchronousSHA,
    TrialStatus,
    VizierGP,
)
from repro.experiments.toys import toy_objective

R = 16.0


def all_schedulers(space, rng):
    return {
        "asha": ASHA(space, rng, min_resource=1.0, max_resource=R, eta=4),
        "asha-inf": ASHA(space, rng, min_resource=1.0, max_resource=None, eta=4),
        "sha": SynchronousSHA(
            space, rng, n=16, min_resource=1.0, max_resource=R, eta=4, grow_brackets=True
        ),
        "hyperband": Hyperband(space, rng, min_resource=1.0, max_resource=R, eta=4),
        "async-hb": AsyncHyperband(space, rng, min_resource=1.0, max_resource=R, eta=4),
        "random": RandomSearch(space, rng, max_resource=R),
        "pbt": PBT(space, rng, max_resource=R, interval=4.0, population_size=5),
        "bohb": BOHB(
            space, rng, n=16, min_resource=1.0, max_resource=R, eta=4, grow_brackets=True
        ),
        "async-bohb": AsyncBOHB(space, rng, min_resource=1.0, max_resource=R, eta=4),
        "vizier": VizierGP(space, rng, max_resource=R, num_init=5, num_candidates=32),
        "fabolas": Fabolas(
            space, rng, max_resource=R, num_init=4, num_candidates=32, max_trials=150
        ),
    }


@pytest.mark.parametrize(
    "name",
    [
        "asha",
        "asha-inf",
        "sha",
        "hyperband",
        "async-hb",
        "random",
        "pbt",
        "bohb",
        "async-bohb",
        "vizier",
        "fabolas",
    ],
)
def test_scheduler_on_simulated_cluster(name):
    objective = toy_objective(max_resource=R, constant=False)
    rng = np.random.default_rng(7)
    scheduler = all_schedulers(objective.space, rng)[name]
    cluster = SimulatedCluster(4, seed=7, straggler_std=0.2)
    result = cluster.run(scheduler, objective, time_limit=60 * R)
    assert result.measurements, name
    # The search beats blind uniform guessing (expected quality 0.5).
    best = scheduler.best_trial()
    assert best is not None
    assert best.last_loss < 0.45, name
    # Trial-table consistency: every measured trial has a coherent status.
    for trial in scheduler.trials.values():
        if trial.measurements:
            assert trial.resource >= trial.measurements[-1].resource
        if trial.status == TrialStatus.COMPLETED and name not in ("fabolas",):
            assert trial.resource >= 1.0


@pytest.mark.parametrize("name", ["asha", "random", "pbt", "hyperband"])
def test_scheduler_on_thread_pool(name):
    objective = toy_objective(max_resource=R, constant=False)
    rng = np.random.default_rng(3)
    scheduler = all_schedulers(objective.space, rng)[name]
    backend = ThreadPoolBackend(3, poll_interval=0.001)
    result = backend.run(scheduler, objective, time_limit=10.0, max_measurements=150)
    assert result.measurements
    assert scheduler.best_trial().last_loss < 0.5


def test_same_scheduler_same_seed_same_answer_across_backends():
    """The simulator and the thread pool agree on *what* was learned for a
    sequential (1-worker) search, where scheduling order is deterministic."""

    def best_with(backend_factory):
        objective = toy_objective(max_resource=R, constant=False)
        rng = np.random.default_rng(11)
        scheduler = ASHA(
            objective.space, rng, min_resource=1.0, max_resource=R, eta=4, max_trials=20
        )
        backend_factory(scheduler, objective)
        return sorted(
            (t.config["quality"], t.resource) for t in scheduler.trials.values()
        )

    sim = best_with(
        lambda s, o: SimulatedCluster(1, seed=0).run(s, o, time_limit=1e9)
    )
    threaded = best_with(
        lambda s, o: ThreadPoolBackend(1, poll_interval=0.0005).run(s, o, time_limit=60.0)
    )
    assert sim == threaded
