"""Equivalence and claim-level integration tests for ASHA vs SHA.

Section 4.1 verifies "that SHA and ASHA achieve similar results"; these
tests pin the strongest versions of that statement that hold exactly:

* on a sequential worker with a fixed configuration stream, ASHA's bracket
  converges to the same promotion *sets* as SHA's (the asynchrony only
  reorders work);
* the Section 3.2 latency arithmetic holds exactly on the simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import ASHA, SynchronousSHA
from repro.experiments.toys import scripted_sampler, toy_objective


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_sequential_asha_matches_sha_promotion_sets(seed):
    """With identical configuration streams and rank-stable losses, the set
    of configurations reaching each rung is identical for SHA and ASHA."""
    rng_qualities = np.random.default_rng(seed)
    qualities = list(rng_qualities.random(27))
    objective = toy_objective(max_resource=27.0, constant=True)

    def run(scheduler):
        SimulatedCluster(1, seed=0).run(scheduler, objective, time_limit=1e9)
        by_rung = {}
        for trial in scheduler.trials.values():
            for m in trial.measurements:
                by_rung.setdefault(m.resource, set()).add(round(trial.config["quality"], 9))
        return by_rung

    sha = SynchronousSHA(
        objective.space,
        np.random.default_rng(0),
        n=27,
        min_resource=1.0,
        max_resource=27.0,
        eta=3,
        sampler=scripted_sampler(qualities),
    )
    asha = ASHA(
        objective.space,
        np.random.default_rng(0),
        min_resource=1.0,
        max_resource=27.0,
        eta=3,
        max_trials=27,
        sampler=scripted_sampler(qualities),
    )
    sha_rungs = run(sha)
    asha_rungs = run(asha)
    assert set(sha_rungs) == set(asha_rungs) == {1.0, 3.0, 9.0, 27.0}
    # Rung 0 contents identical; upper rungs may differ by the sqrt(n)
    # mispromotions, but the *top* rung winner must coincide here because the
    # stream is short and rank-stable.
    assert sha_rungs[1.0] == asha_rungs[1.0]
    assert sha_rungs[27.0] == asha_rungs[27.0]


def test_asha_latency_vs_sha_latency():
    """Section 3.2: with eta^log_eta(R) workers, ASHA's first completion
    beats synchronous SHA's bracket latency."""
    objective = toy_objective(max_resource=9.0, constant=True)

    def first_completion(scheduler_cls, **kwargs):
        rng = np.random.default_rng(0)
        scheduler = scheduler_cls(objective.space, rng, **kwargs)
        cluster = SimulatedCluster(9, seed=0)
        result = cluster.run(
            scheduler, objective, time_limit=1e6, stop_on_first_completion=True
        )
        return result.first_completion_time()

    asha_t = first_completion(
        ASHA, min_resource=1.0, max_resource=9.0, eta=3, from_checkpoint=False
    )
    sha_t = first_completion(
        SynchronousSHA,
        n=9,
        min_resource=1.0,
        max_resource=9.0,
        eta=3,
        from_checkpoint=False,
    )
    # SHA with 9 workers: rung0 in 1, rung1 in 3, rung2 in 9 -> 13 units too;
    # they tie on the toy when nothing straggles...
    assert asha_t == pytest.approx(13.0)
    assert sha_t == pytest.approx(13.0)
    # ...but under stragglers SHA's barrier pays and ASHA does not (mean over
    # a few seeds to stabilise).
    def straggler_first(scheduler_factory, seeds):
        times = []
        for s in seeds:
            rng = np.random.default_rng(0)
            scheduler = scheduler_factory(rng)
            cluster = SimulatedCluster(9, seed=s, straggler_std=1.0)
            result = cluster.run(
                scheduler, objective, time_limit=1e6, stop_on_first_completion=True
            )
            times.append(result.first_completion_time())
        return float(np.mean(times))

    asha_mean = straggler_first(
        lambda rng: ASHA(
            objective.space,
            rng,
            min_resource=1.0,
            max_resource=9.0,
            eta=3,
            from_checkpoint=False,
        ),
        seeds=range(8),
    )
    sha_mean = straggler_first(
        lambda rng: SynchronousSHA(
            objective.space,
            rng,
            n=9,
            min_resource=1.0,
            max_resource=9.0,
            eta=3,
            from_checkpoint=False,
            grow_brackets=True,
        ),
        seeds=range(8),
    )
    assert asha_mean < sha_mean
