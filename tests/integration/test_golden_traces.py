"""Golden-trace regression tests for the searcher-extraction refactor.

The JSONL fixtures under ``tests/integration/golden/`` were recorded at the
commit immediately *before* config proposal was extracted out of the
schedulers into :mod:`repro.searchers` — i.e. while BOHB still carried its
private KDE bank and VizierGP its private GP.  A refactored scheduler running
under its default searcher must emit a **byte-identical** telemetry stream:
same trials in the same order with the same configs, same promotions, same
simulated clocks, same serialisation.  Any diff here means the refactor
changed the algorithm under study, not just its plumbing.

Regenerate the fixtures (ONLY for an intentional behaviour change):

    PYTHONPATH=src python tests/integration/test_golden_traces.py
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np
import pytest

from repro.backend.process_pool import ProcessPoolBackend
from repro.backend.simulation import SimulatedCluster
from repro.core import (
    ASHA,
    BOHB,
    AsyncBOHB,
    AsyncHyperband,
    Hyperband,
    SynchronousSHA,
    VizierGP,
)
from repro.experiments.toys import toy_objective, toy_space
from repro.telemetry import JSONLSink, TelemetryHub

GOLDEN_DIR = Path(__file__).parent / "golden"


def _asha():
    return ASHA(
        toy_space(),
        np.random.default_rng(3),
        min_resource=1,
        max_resource=9,
        eta=3,
        max_trials=30,
    )


def _sha():
    return SynchronousSHA(
        toy_space(),
        np.random.default_rng(5),
        n=27,
        min_resource=1,
        max_resource=9,
        eta=3,
        grow_brackets=True,
    )


def _hyperband():
    return Hyperband(
        toy_space(), np.random.default_rng(7), min_resource=1, max_resource=9, eta=3, max_loops=1
    )


def _async_hyperband():
    return AsyncHyperband(
        toy_space(), np.random.default_rng(8), min_resource=1, max_resource=9, eta=3
    )


def _bohb():
    return BOHB(
        toy_space(),
        np.random.default_rng(9),
        n=27,
        min_resource=1,
        max_resource=9,
        eta=3,
        grow_brackets=True,
        random_fraction=0.2,
    )


def _async_bohb():
    return AsyncBOHB(
        toy_space(),
        np.random.default_rng(11),
        min_resource=1,
        max_resource=9,
        eta=3,
        random_fraction=0.2,
    )


def _vizier():
    return VizierGP(
        toy_space(),
        np.random.default_rng(13),
        max_resource=9.0,
        num_init=4,
        num_candidates=32,
        refit_every=3,
        max_trials=24,
    )


#: name -> (scheduler factory, cluster kwargs, simulated time limit).  The
#: clusters include stragglers and drops where the scheduler tolerates them,
#: so the traces also pin down failure-path behaviour.
SCENARIOS = {
    "asha": (_asha, dict(straggler_std=0.3, drop_probability=0.02, seed=7), 60.0),
    # Recorded *after* churn victim selection moved to the O(1) swap-remove
    # index (the rng draw sequence is unchanged; victim identity is pinned
    # by this trace).
    "asha_churn": (
        _asha,
        dict(straggler_std=0.3, churn_rate=0.15, churn_downtime=5.0, seed=23),
        60.0,
    ),
    "sha": (_sha, dict(straggler_std=0.2, seed=11), 120.0),
    "hyperband": (_hyperband, dict(seed=13), 500.0),
    "async_hyperband": (_async_hyperband, dict(straggler_std=0.2, seed=15), 90.0),
    "bohb": (_bohb, dict(straggler_std=0.2, seed=17), 200.0),
    "async_bohb": (_async_bohb, dict(straggler_std=0.2, seed=19), 80.0),
    "vizier": (_vizier, dict(seed=21), 1000.0),
}


def record_trace(name: str, cluster_cls=SimulatedCluster, **extra_kwargs) -> str:
    """One seeded simulated run of a scenario, exported as canonical JSONL."""
    make_scheduler, cluster_kwargs, time_limit = SCENARIOS[name]
    buffer = io.StringIO()
    hub = TelemetryHub([JSONLSink(buffer)])
    cluster = cluster_cls(4, **cluster_kwargs, **extra_kwargs)
    cluster.run(
        make_scheduler(), toy_objective(max_resource=9.0), time_limit=time_limit, telemetry=hub
    )
    hub.close()
    return buffer.getvalue()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_matches_pre_refactor_recording(name):
    golden = (GOLDEN_DIR / f"{name}.jsonl").read_text(encoding="utf-8")
    assert record_trace(name) == golden


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_process_pool_backend_trace_matches_golden(name):
    """The process-pool backend must emit the byte-identical event stream.

    ``n_procs=4`` forces the pool path even on small machines; speculative
    training in worker processes may not move a single event, clock, or
    serialised byte relative to the inline recordings.
    """
    golden = (GOLDEN_DIR / f"{name}.jsonl").read_text(encoding="utf-8")
    assert record_trace(name, cluster_cls=ProcessPoolBackend, n_procs=4) == golden


def test_traces_are_nontrivial():
    """Guard against silently recording empty streams as golden."""
    for name in SCENARIOS:
        golden = (GOLDEN_DIR / f"{name}.jsonl").read_text(encoding="utf-8")
        assert golden.count("\n") > 20, f"{name} trace suspiciously short"
        assert '"kind":"promotion"' in golden or name == "vizier"


def test_churn_trace_pins_victim_selection():
    """The churn scenario must actually kill jobs to pin victim selection.

    Churn victims are drawn from the O(1) live-job index; this trace freezes
    which jobs die and when, so any change to the index's iteration order or
    the rng draw sequence shows up as a byte diff.
    """
    golden = (GOLDEN_DIR / "asha_churn.jsonl").read_text(encoding="utf-8")
    assert '"reason":"churn"' in golden


if __name__ == "__main__":
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in sorted(SCENARIOS):
        path = GOLDEN_DIR / f"{name}.jsonl"
        content = record_trace(name)
        path.write_text(content, encoding="utf-8")
        print(f"recorded {path} ({content.count(chr(10))} events)")
