"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.toys import toy_objective, toy_space
from repro.searchspace import Choice, IntUniform, LogUniform, SearchSpace, Uniform

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Directories whose churn is not a test's fault.
_SNAPSHOT_IGNORED_DIRS = {".git", "__pycache__", ".pytest_cache", ".ruff_cache", ".claude"}


def _repo_snapshot() -> dict[str, tuple[int, int]]:
    """(mtime_ns, size) of every repo file, so stray writes are attributable."""
    snapshot: dict[str, tuple[int, int]] = {}
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in _SNAPSHOT_IGNORED_DIRS]
        for name in filenames:
            if name.endswith(".pyc"):
                continue
            path = os.path.join(dirpath, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            snapshot[path] = (stat.st_mtime_ns, stat.st_size)
    return snapshot


@pytest.fixture(autouse=True)
def _no_stray_repo_writes(request):
    """Fail any test that writes inside the repository (CI hygiene gate).

    Active only when ``REPRO_ENFORCE_CLEAN`` is set (the CI workflow sets
    it); tests with a legitimate need mark themselves
    ``@pytest.mark.allow_repo_writes``.  Everything else belongs in
    ``tmp_path``.
    """
    if not os.environ.get("REPRO_ENFORCE_CLEAN"):
        yield
        return
    if request.node.get_closest_marker("allow_repo_writes"):
        yield
        return
    before = _repo_snapshot()
    yield
    after = _repo_snapshot()
    created = sorted(set(after) - set(before))
    modified = sorted(p for p in set(after) & set(before) if after[p] != before[p])
    if created or modified:
        details = [f"  created:  {p}" for p in created] + [
            f"  modified: {p}" for p in modified
        ]
        pytest.fail(
            "test wrote inside the repository (use tmp_path, or mark the test "
            "with @pytest.mark.allow_repo_writes):\n" + "\n".join(details),
            pytrace=False,
        )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def mixed_space() -> SearchSpace:
    """A space with one domain of every kind (encoding/sampling tests)."""
    return SearchSpace(
        {
            "lr": LogUniform(1e-5, 1.0),
            "width": IntUniform(4, 64),
            "momentum": Uniform(0.0, 1.0),
            "batch": Choice([16, 32, 64, 128]),
        }
    )


@pytest.fixture
def toy_obj():
    """Flat-loss toy objective on a 1-d space (quality == loss)."""
    return toy_objective(max_resource=9.0)


@pytest.fixture
def curved_toy_obj():
    """Toy objective with a decaying learning curve."""
    return toy_objective(max_resource=9.0, constant=False)


@pytest.fixture
def one_d_space() -> SearchSpace:
    return toy_space()
