"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.toys import toy_objective, toy_space
from repro.searchspace import Choice, IntUniform, LogUniform, SearchSpace, Uniform


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def mixed_space() -> SearchSpace:
    """A space with one domain of every kind (encoding/sampling tests)."""
    return SearchSpace(
        {
            "lr": LogUniform(1e-5, 1.0),
            "width": IntUniform(4, 64),
            "momentum": Uniform(0.0, 1.0),
            "batch": Choice([16, 32, 64, 128]),
        }
    )


@pytest.fixture
def toy_obj():
    """Flat-loss toy objective on a 1-d space (quality == loss)."""
    return toy_objective(max_resource=9.0)


@pytest.fixture
def curved_toy_obj():
    """Toy objective with a decaying learning curve."""
    return toy_objective(max_resource=9.0, constant=False)


@pytest.fixture
def one_d_space() -> SearchSpace:
    return toy_space()
