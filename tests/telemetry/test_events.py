"""TelemetryEvent / EventKind basics."""

from __future__ import annotations

import dataclasses

import pytest

from repro.telemetry import EventKind, TelemetryEvent


class TestEventKind:
    def test_values_are_snake_case_strings(self):
        for kind in EventKind:
            assert kind.value == kind.name.lower()

    def test_all_lifecycle_kinds_exist(self):
        expected = {
            "trial_started",
            "job_started",
            "report",
            "promotion",
            "rung_completed",
            "job_failed",
            "job_timeout",
            "job_retried",
            "trial_abandoned",
            "checkpoint_restored",
            "worker_idle",
        }
        assert {k.value for k in EventKind} == expected


class TestTelemetryEvent:
    def test_frozen(self):
        event = TelemetryEvent(seq=0, kind=EventKind.REPORT, time=1.0, wall_time=2.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.seq = 1  # type: ignore[misc]

    def test_to_dict_omits_none_fields(self):
        event = TelemetryEvent(
            seq=3, kind=EventKind.REPORT, time=1.5, wall_time=99.0, trial_id=7, rung=1
        )
        assert event.to_dict() == {
            "seq": 3,
            "kind": "report",
            "time": 1.5,
            "trial_id": 7,
            "rung": 1,
        }

    def test_to_dict_excludes_wall_time_by_default(self):
        event = TelemetryEvent(seq=0, kind=EventKind.WORKER_IDLE, time=0.0, wall_time=123.0)
        assert "wall_time" not in event.to_dict()
        assert event.to_dict(include_wall_time=True)["wall_time"] == 123.0

    def test_to_dict_carries_data_payload(self):
        event = TelemetryEvent(
            seq=0,
            kind=EventKind.JOB_FAILED,
            time=4.0,
            wall_time=0.0,
            trial_id=2,
            data={"reason": "dropped"},
        )
        assert event.to_dict()["data"] == {"reason": "dropped"}

    def test_empty_data_omitted(self):
        event = TelemetryEvent(seq=0, kind=EventKind.REPORT, time=0.0, wall_time=0.0)
        assert "data" not in event.to_dict()
