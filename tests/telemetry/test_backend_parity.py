"""Event-stream parity between the two backends.

``SimulatedCluster`` and ``ThreadPoolBackend`` must emit the same
trial-lifecycle vocabulary — the same event kinds with the same identity
fields and payload keys — so downstream consumers (metrics aggregation,
trace reconstruction) stay backend-agnostic.  The backends legitimately
differ only in accounting fields tied to how each one measures busy time;
those divergences are pinned here as an explicit allowlist (documented in
``docs/telemetry.md``), so any *new* divergence fails this test instead of
silently skewing one backend's traces.
"""

from __future__ import annotations

import numpy as np

from repro.backend import RetryPolicy, SimulatedCluster, ThreadPoolBackend
from repro.backend.faults import FailureInjectingObjective
from repro.core.asha import ASHA
from repro.experiments.toys import scripted_sampler, toy_objective, toy_space
from repro.telemetry import InMemorySink, TelemetryHub

#: Payload keys each backend is *allowed* to emit that the other does not.
#: Simulator-only keys expose its optimistic busy-credit accounting (credit
#: granted at dispatch, rolled back on kills); thread-only keys expose real
#: measured busy intervals, which the simulator cannot know per report.
SIM_ONLY = {
    "job_started": {"busy_credit"},
    "job_failed": {"busy_correction"},
    "job_timeout": {"busy_correction"},
    "worker_idle": {"free_workers"},
}
THREADS_ONLY = {
    "report": {"busy"},
    "job_failed": {"busy"},
    "job_timeout": {"busy"},
}

#: The one core-field divergence: the simulator's WORKER_IDLE describes the
#: whole starved pool (``free_workers``), the thread pool's one idle thread.
CORE_FIELD_EXEMPT_KINDS = {"worker_idle"}

CORE_FIELDS = ("trial_id", "job_id", "worker_id", "rung", "bracket")


def _scripted_asha():
    return ASHA(
        toy_space(),
        np.random.default_rng(0),
        min_resource=1,
        max_resource=4,
        eta=2,
        max_trials=4,
        sampler=scripted_sampler([0.1, 0.2, 0.3, 0.4]),
    )


def _run(backend_name: str, *, objective=None, retry_policy=None):
    objective = objective if objective is not None else toy_objective(max_resource=4.0)
    memory = InMemorySink()
    hub = TelemetryHub.with_metrics(memory)
    if backend_name == "sim":
        backend = SimulatedCluster(1, seed=0)
        limit = 200.0
    else:
        backend = ThreadPoolBackend(1)
        limit = 30.0
    backend.run(
        _scripted_asha(), objective, time_limit=limit,
        telemetry=hub, retry_policy=retry_policy,
    )
    return memory.events


def _payload_keys(events) -> dict[str, set[str]]:
    keys: dict[str, set[str]] = {}
    for event in events:
        keys.setdefault(event.kind.value, set()).update(event.data)
    return keys


def _core_presence(events) -> dict[str, set[str]]:
    present: dict[str, set[str]] = {}
    for event in events:
        bucket = present.setdefault(event.kind.value, set())
        bucket.update(f for f in CORE_FIELDS if getattr(event, f) is not None)
    return present


def _assert_keys_match(sim_events, thread_events):
    sim_keys = _payload_keys(sim_events)
    thread_keys = _payload_keys(thread_events)
    for kind in sorted(set(sim_keys) | set(thread_keys)):
        sim = sim_keys.get(kind, set()) - SIM_ONLY.get(kind, set())
        threads = thread_keys.get(kind, set()) - THREADS_ONLY.get(kind, set())
        assert sim == threads, f"{kind}: sim payload {sim} != threads payload {threads}"


class TestCleanRunParity:
    """Same scripted 4-trial ASHA run through both backends, no faults."""

    def setup_method(self):
        self.sim = _run("sim")
        self.threads = _run("threads")

    def test_same_event_vocabulary(self):
        sim_kinds = {e.kind.value for e in self.sim}
        thread_kinds = {e.kind.value for e in self.threads}
        # worker_idle is timing-dependent on the thread pool (only emitted if
        # a poll actually finds the queue empty); everything else must match.
        assert sim_kinds - {"worker_idle"} == thread_kinds - {"worker_idle"}

    def test_lifecycle_counts_match(self):
        def counts(events):
            out: dict[str, int] = {}
            for e in events:
                if e.kind.value != "worker_idle":
                    out[e.kind.value] = out.get(e.kind.value, 0) + 1
            return out

        # One worker serialises reports, so both backends make identical
        # scheduling decisions: same trials, jobs, promotions, restores.
        assert counts(self.sim) == counts(self.threads)

    def test_payload_keys_match_modulo_allowlist(self):
        _assert_keys_match(self.sim, self.threads)

    def test_core_fields_match(self):
        sim = _core_presence(self.sim)
        threads = _core_presence(self.threads)
        for kind in set(sim) & set(threads) - CORE_FIELD_EXEMPT_KINDS:
            assert sim[kind] == threads[kind], kind

    def test_allowlisted_keys_really_diverge(self):
        """The allowlist documents reality — prune it if a key disappears."""
        sim_keys = _payload_keys(self.sim)
        thread_keys = _payload_keys(self.threads)
        assert "busy_credit" in sim_keys["job_started"]
        assert "busy_credit" not in thread_keys["job_started"]
        assert "busy" in thread_keys["report"]
        assert "busy" not in sim_keys["report"]


class TestFaultPathParity:
    """Crash-injected run: failure/retry/abandon events must agree too."""

    def setup_method(self):
        policy = RetryPolicy(max_attempts=2, backoff=0.01)

        def objective():
            # Every config crashes once and succeeds on retry, except the
            # worst config (0.4) which always crashes and gets quarantined.
            once = FailureInjectingObjective(
                toy_objective(max_resource=4.0),
                crash_first=1,
                target=lambda c: c["quality"] < 0.35,
                seed=0,
            )
            return FailureInjectingObjective(
                once, crash_first=99, target=lambda c: c["quality"] > 0.35, seed=0
            )

        self.sim = _run("sim", objective=objective(), retry_policy=policy)
        self.threads = _run("threads", objective=objective(), retry_policy=policy)

    def test_fault_kinds_present_on_both(self):
        for events in (self.sim, self.threads):
            kinds = {e.kind.value for e in events}
            assert {"job_failed", "job_retried", "trial_abandoned"} <= kinds

    def test_payload_keys_match_modulo_allowlist(self):
        _assert_keys_match(self.sim, self.threads)

    def test_retry_events_carry_identical_schedule_fields(self):
        """Both backends announce when the retry becomes runnable."""
        for events in (self.sim, self.threads):
            retries = [e for e in events if e.kind.value == "job_retried"]
            assert retries
            for e in retries:
                assert set(e.data) == {"attempt", "delay", "retry_at"}
                assert e.data["retry_at"] >= e.time
