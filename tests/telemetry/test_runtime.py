"""Runtime probe layer: registry, exposition, scraper, CLI, byte-identity.

The observability contract has two halves and both are pinned here:

* **costs nothing when off** — with no registry installed every probe
  accessor returns ``None`` and instrumented classes behave exactly as
  before (the perf half of this is gated by the ``observability_overhead``
  benchmark);
* **changes nothing when on** — enabled probes write wall-clock readings
  only into the registry, so journals, telemetry streams and golden
  chrome traces stay byte-identical to an unprobed run.

Plus the exposition format itself: :func:`render_prometheus` must be
byte-stable and must satisfy its own strict :func:`validate_exposition`.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.backend.events import EventQueue
from repro.backend.simulation import SimulatedCluster
from repro.core import build_scheduler
from repro.experiments.toys import toy_objective, toy_space
from repro.study import Journal, Study, StudyMultiplexer
from repro.telemetry import JSONLSink, TelemetryHub
from repro.telemetry.runtime import (
    MUX_STUDY_LABEL_CAP,
    NULL_PROBE,
    NullProbe,
    RuntimeRegistry,
    RuntimeScraper,
    _series_key,
    backend_probes,
    install_runtime_registry,
    instrument_queue,
    journal_probes,
    main,
    mux_probes,
    render_prometheus,
    render_report,
    runtime_registry,
    study_probes,
    uninstall_runtime_registry,
    validate_exposition,
    wal_probes,
)

OBJECTIVE = toy_objective()


@pytest.fixture(autouse=True)
def _clean_registry():
    """No test leaks a process-global registry into its neighbours."""
    uninstall_runtime_registry()
    yield
    uninstall_runtime_registry()


@pytest.fixture
def registry():
    return install_runtime_registry()


def make_scheduler(seed: int):
    return build_scheduler(
        "asha",
        toy_space(),
        np.random.default_rng(seed),
        min_resource=1.0,
        max_resource=9.0,
        eta=3,
    )


def run_mux(tmp_path, n: int = 3, *, scraper=None, wal: bool = False, **mux_kwargs):
    """A small multiplexed workload touching every instrumented subsystem."""
    mux = StudyMultiplexer(
        wal_path=(tmp_path / "journals.wal") if wal else None,
        scraper=scraper,
        **mux_kwargs,
    )
    for i in range(n):
        study = Study(
            make_scheduler(i),
            journal=Journal(tmp_path / f"mux_{i}.jsonl", writer=mux.journal_writer),
        )
        mux.add(
            study,
            OBJECTIVE,
            cluster=SimulatedCluster(4, seed=1000 + i, straggler_std=0.3),
            time_limit=60.0,
        )
    # Return the mux too: its starvation collector holds only a weakref, so
    # letting the mux die would prune the gauges before the caller snapshots.
    return mux, mux.run()


# ---------------------------------------------------------------------------
# NullProbe and the off-by-default contract
# ---------------------------------------------------------------------------


def test_null_probe_is_falsy_noop():
    assert not NULL_PROBE
    assert isinstance(NULL_PROBE, NullProbe)
    NULL_PROBE.inc()
    NULL_PROBE.inc(5.0)
    NULL_PROBE.set(3.0)
    NULL_PROBE.set(3.0, time=1.0)
    NULL_PROBE.observe(0.25)  # all no-ops, nothing to assert beyond "no raise"


def test_probe_accessors_return_none_without_registry():
    assert runtime_registry() is None
    assert instrument_queue(EventQueue()) is None
    assert journal_probes() is None
    assert wal_probes() is None
    assert study_probes() is None
    assert backend_probes("threads") is None
    assert mux_probes(object()) is None


def test_instrumented_classes_hold_no_probes_without_registry(tmp_path):
    queue = EventQueue()
    assert queue._probes is None
    journal = Journal(tmp_path / "j.jsonl")
    assert journal._probes is None
    study = Study(make_scheduler(0))
    assert study._probes is None


def test_install_uninstall_roundtrip():
    reg = install_runtime_registry()
    assert runtime_registry() is reg
    custom = RuntimeRegistry()
    assert install_runtime_registry(custom) is custom
    assert runtime_registry() is custom
    uninstall_runtime_registry()
    assert runtime_registry() is None


# ---------------------------------------------------------------------------
# Labelled registry
# ---------------------------------------------------------------------------


def test_series_key_mangling():
    assert _series_key("m", None) == "m"
    assert _series_key("m", {}) == "m"
    assert _series_key("m", {"b": 1, "a": "x"}) == 'm{a="x",b="1"}'
    # Escaping: backslash, quote, newline.
    assert _series_key("m", {"v": 'a"b\\c\nd'}) == 'm{v="a\\"b\\\\c\\nd"}'


def test_labelled_counters_are_distinct_series(registry):
    a = registry.counter("reqs_total", labels={"backend": "threads"})
    b = registry.counter("reqs_total", labels={"backend": "processes"})
    assert a is not b
    a.inc(2)
    b.inc(3)
    snap = registry.snapshot()
    assert snap["counters"]['reqs_total{backend="threads"}'] == 2
    assert snap["counters"]['reqs_total{backend="processes"}'] == 3
    assert snap["families"]["reqs_total"]["labels"] == ["backend"]


def test_family_type_conflict_raises(registry):
    registry.counter("thing_total")
    with pytest.raises(ValueError, match="already registered as counter"):
        registry.gauge("thing_total")


def test_family_help_and_label_union(registry):
    registry.counter("x_total", labels={"a": 1})
    registry.counter("x_total", help="late help", labels={"b": 2})
    fam = registry.snapshot()["families"]["x_total"]
    assert fam["help"] == "late help"
    assert fam["labels"] == ["a", "b"]


def test_invalid_names_rejected(registry):
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("bad name")
    with pytest.raises(ValueError, match="invalid label name"):
        registry.counter("ok_total", labels={"bad-label": 1})


def test_collector_runs_at_snapshot_and_prunes(registry):
    calls = []
    registry.add_collector(lambda: calls.append(1))
    registry.snapshot()
    registry.snapshot()
    assert len(calls) == 2
    dead_calls = []
    registry.add_collector(lambda: (dead_calls.append(1), False)[1])
    registry.snapshot()
    registry.snapshot()
    assert len(dead_calls) == 1  # pruned after reporting itself dead


def test_queue_collector_prunes_after_gc(registry):
    queue = EventQueue()
    queue.push(1.0, "completion")
    assert len(registry._collectors) == 1
    snap = registry.snapshot()
    assert snap["gauges"]["event_queue_depth"] == 1.0
    del queue
    import gc

    gc.collect()
    registry.snapshot()
    assert registry._collectors == []


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


def populated_registry() -> RuntimeRegistry:
    reg = RuntimeRegistry()
    reg.counter("b_total", help="a counter", labels={"k": "v"}).inc(3)
    reg.counter("b_total", labels={"k": "w"}).inc(1.5)
    reg.gauge("a_gauge", help="a gauge").set(2.5)
    hist = reg.histogram("c_seconds", help="a histogram")
    for v in (0.1, 0.2, 0.3, 0.4):
        hist.observe(v)
    reg.histogram("d_empty", help="never observed")
    return reg


def test_render_prometheus_is_byte_stable():
    reg = populated_registry()
    first = render_prometheus(reg)
    second = render_prometheus(reg)
    assert first == second
    assert first.endswith("\n")
    # And through a snapshot JSON round-trip (the scraper/CLI path).
    snap = json.loads(json.dumps(reg.snapshot()))
    assert render_prometheus(snap) == first


def test_render_prometheus_structure():
    text = render_prometheus(populated_registry())
    lines = text.splitlines()
    assert "# HELP a_gauge a gauge" in lines
    assert "# TYPE a_gauge gauge" in lines
    assert "a_gauge 2.5" in lines
    assert "# TYPE b_total counter" in lines
    assert 'b_total{k="v"} 3' in lines
    assert 'b_total{k="w"} 1.5' in lines
    # Histograms render as summaries with quantiles + _sum/_count.
    assert "# TYPE c_seconds summary" in lines
    assert any(line.startswith('c_seconds{quantile="0.5"} ') for line in lines)
    assert any(line.startswith('c_seconds{quantile="0.99"} ') for line in lines)
    assert any(line.startswith("c_seconds_sum ") for line in lines)
    assert "c_seconds_count 4" in lines
    # Empty histogram: no quantiles, but _sum/_count still present.
    assert "d_empty_count 0" in lines
    assert not any(line.startswith("d_empty{") for line in lines)
    # Families are sorted.
    family_order = [line.split(" ")[2] for line in lines if line.startswith("# TYPE ")]
    assert family_order == sorted(family_order)


def test_render_prometheus_passes_own_validator():
    assert validate_exposition(render_prometheus(populated_registry())) == []


def test_validator_catches_violations():
    assert validate_exposition("") == ["empty exposition"]
    assert any(
        "end with a newline" in v
        for v in validate_exposition("# TYPE a counter\na 1")
    )
    assert any(
        "before any # TYPE" in v for v in validate_exposition("a 1\n")
    )
    assert any(
        "out of sorted order" in v
        for v in validate_exposition("# TYPE b counter\nb 1\n# TYPE a counter\na 1\n")
    )
    assert any(
        "duplicate sample" in v
        for v in validate_exposition("# TYPE a counter\na 1\na 2\n")
    )
    assert any(
        "is negative" in v for v in validate_exposition("# TYPE a counter\na -3\n")
    )
    assert any(
        "unparseable value" in v
        for v in validate_exposition("# TYPE a counter\na wat\n")
    )
    assert any(
        "does not belong" in v
        for v in validate_exposition("# TYPE a counter\nother 1\n")
    )
    assert any(
        "malformed sample" in v
        for v in validate_exposition("# TYPE a counter\na{b=unquoted} 1\n")
    )
    # Negative gauges are fine; only counters must be non-negative.
    assert validate_exposition("# TYPE a gauge\na -3\n") == []


# ---------------------------------------------------------------------------
# End-to-end: probes populated by a real multiplexed run
# ---------------------------------------------------------------------------


def test_probes_populated_by_mux_run(tmp_path, registry):
    mux, out = run_mux(tmp_path, 3, wal=True, fair_share=1)
    snap = registry.snapshot()
    counters, histograms = snap["counters"], snap["histograms"]
    assert counters["event_queue_pushes_total"] > 0
    assert counters["event_queue_pops_total"] > 0
    assert counters["wal_commits_total"] > 0
    assert counters['journal_fsync_total{target="wal"}'] >= 1
    assert counters["journal_bytes_total"] > 0
    assert counters["mux_ticks_total"] == out.ticks
    assert counters["mux_throttle_total"] > 0  # fair_share=1 on 4-worker studies
    assert counters["mux_dispatched_jobs_total"] == sum(
        r.jobs_dispatched for r in out.results
    )
    assert histograms["study_ask_batch_jobs"]["count"] > 0
    assert histograms["study_tell_seconds"]["count"] > 0
    assert histograms["wal_commit_bytes"]["count"] > 0
    # Finished studies never read as starving, whole cluster drained.
    gauges = snap["gauges"]
    assert gauges["mux_studies_active"] == 0.0
    assert gauges["mux_starvation_age_max_ticks"] == 0.0
    for i in range(3):
        assert gauges[f'mux_starvation_age_ticks{{study="{i}"}}'] == 0.0
    # The whole run's exposition is valid and byte-stable.
    text = render_prometheus(registry)
    assert validate_exposition(text) == []
    assert render_prometheus(registry) == text


def test_mux_study_label_cardinality_cap(registry):
    class FakeStudy:
        def is_done(self):
            return False

    class FakeRun:
        def __init__(self):
            self.done = False
            self.study = FakeStudy()
            self.free_ids = [0]
            self.last_dispatch_tick = 0

    class FakeMux:
        pass

    mux = FakeMux()
    mux._runs = [FakeRun() for _ in range(MUX_STUDY_LABEL_CAP + 10)]
    probes = mux_probes(mux)
    probes.tick_box[0] = 7
    gauges = registry.snapshot()["gauges"]
    per_study = [k for k in gauges if k.startswith("mux_starvation_age_ticks{")]
    assert len(per_study) == MUX_STUDY_LABEL_CAP
    # Aggregates still see every study, even beyond the label cap.
    assert gauges["mux_pending_asks_cluster"] == float(MUX_STUDY_LABEL_CAP + 10)
    assert gauges["mux_starvation_age_max_ticks"] == 7.0


# ---------------------------------------------------------------------------
# Byte-identity: probed runs change nothing outside the registry
# ---------------------------------------------------------------------------


def run_solo_artifacts(tmp_path, tag: str):
    """One seeded journaled+telemetry+trace run; returns its output bytes."""
    buf = io.StringIO()
    hub = TelemetryHub()
    hub.add_sink(JSONLSink(buf))
    journal_path = tmp_path / f"{tag}.jsonl"
    study = Study(make_scheduler(0), journal=Journal(journal_path))
    cluster = SimulatedCluster(
        4, seed=1000, straggler_std=0.3, drop_probability=0.01, churn_rate=0.05
    )
    result = cluster.run(study, OBJECTIVE, time_limit=60.0, telemetry=hub, trace=True)
    return (
        journal_path.read_bytes(),
        buf.getvalue(),
        result.trace.chrome_trace_json(),
    )


def test_enabled_probes_keep_solo_run_byte_identical(tmp_path):
    plain = run_solo_artifacts(tmp_path, "plain")
    install_runtime_registry()
    probed = run_solo_artifacts(tmp_path, "probed")
    registry = runtime_registry()
    # The probes actually fired (this was not a trivially unprobed run)...
    assert registry.snapshot()["counters"]["event_queue_pushes_total"] > 0
    # ...and every run artifact is still byte-identical.
    assert probed[0] == plain[0]  # journal bytes
    assert probed[1] == plain[1]  # telemetry JSONL
    assert probed[2] == plain[2]  # chrome trace
    assert plain[1]  # not trivially empty


def test_enabled_probes_keep_mux_journals_byte_identical(tmp_path):
    (tmp_path / "plain").mkdir()
    (tmp_path / "probed").mkdir()
    run_mux(tmp_path / "plain", 2, wal=True)
    install_runtime_registry()
    scraper = RuntimeScraper(runtime_registry(), tmp_path / "snap.jsonl", every=16)
    run_mux(tmp_path / "probed", 2, wal=True, scraper=scraper)
    for i in range(2):
        plain = (tmp_path / "plain" / f"mux_{i}.jsonl").read_bytes()
        probed = (tmp_path / "probed" / f"mux_{i}.jsonl").read_bytes()
        assert plain == probed
        assert plain  # not trivially empty
    assert scraper.snapshots_written > 0


# ---------------------------------------------------------------------------
# Scraper
# ---------------------------------------------------------------------------


def test_scraper_cadence_and_final_snapshot(tmp_path, registry):
    registry.counter("ticks_total")
    path = tmp_path / "snap.jsonl"
    scraper = RuntimeScraper(registry, path, every=4)
    for _ in range(10):
        registry.counter("ticks_total").inc()
        scraper.on_tick()
    scraper.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    # 10 ticks at every=4 -> snapshots at tick 4 and 8, plus one at close.
    assert [rec["tick"] for rec in lines] == [4, 8, 10]
    for rec in lines:
        assert rec["schema"] == RuntimeScraper.SCHEMA
        assert "wall_time" in rec
    assert lines[-1]["snapshot"]["counters"]["ticks_total"] == 10
    scraper.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        scraper.snapshot()


def test_scraper_rejects_bad_cadence(tmp_path, registry):
    with pytest.raises(ValueError, match="cadence"):
        RuntimeScraper(registry, tmp_path / "s.jsonl", every=0)


def test_starvation_gauges_reach_scraped_snapshots(tmp_path, registry):
    """The scraper's mid-run snapshots carry the per-study mux gauges."""
    scraper = RuntimeScraper(registry, tmp_path / "snap.jsonl", every=8)
    run_mux(tmp_path, 2, scraper=scraper, fair_share=1)
    lines = [json.loads(line) for line in (tmp_path / "snap.jsonl").read_text().splitlines()]
    assert len(lines) >= 2
    mid = lines[len(lines) // 2]["snapshot"]["gauges"]
    assert 'mux_pending_asks{study="0"}' in mid
    assert 'mux_starvation_age_ticks{study="1"}' in mid


# ---------------------------------------------------------------------------
# Ops CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def snapshot_file(tmp_path, registry):
    scraper = RuntimeScraper(registry, tmp_path / "snap.jsonl", every=16)
    run_mux(tmp_path, 2, scraper=scraper, fair_share=1)
    return tmp_path / "snap.jsonl"


def test_cli_prom_and_validate(snapshot_file, capsys):
    assert main([str(snapshot_file), "--prom", "--validate"]) == 0
    out, err = capsys.readouterr()
    assert validate_exposition(out) == []
    assert "exposition: ok" in err
    assert "mux_ticks_total" in out


def test_cli_report(snapshot_file, capsys):
    assert main([str(snapshot_file), "--report"]) == 0
    out, _ = capsys.readouterr()
    assert "runtime report:" in out
    assert "multiplexer health:" in out
    assert "starvation_age" in out
    assert "event_queue_pushes_total" in out


def test_cli_default_is_report(snapshot_file, capsys):
    assert main([str(snapshot_file)]) == 0
    assert "runtime report:" in capsys.readouterr().out


def test_cli_watch_exits_on_static_file(snapshot_file, capsys):
    assert main([str(snapshot_file), "--watch", "--interval", "0.01"]) == 0
    out, err = capsys.readouterr()
    assert "runtime report:" in out
    assert "stopped growing" in err


def test_cli_missing_snapshots(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main([str(empty), "--report"]) == 1
    assert "no snapshots" in capsys.readouterr().err


def test_cli_validate_flags_bad_exposition(tmp_path, capsys, registry):
    # A snapshot whose counter went negative renders an invalid exposition.
    registry.counter("broken_total").value = -1.0
    path = tmp_path / "bad.jsonl"
    scraper = RuntimeScraper(registry, path, every=1)
    scraper.close()
    assert main([str(path), "--validate"]) == 1
    assert "is negative" in capsys.readouterr().err


def test_render_report_empty():
    assert render_report([]) == "no snapshots"
