"""Telemetry through the simulated cluster: determinism + hand-checked metrics.

The tiny ASHA run below is fully hand-traced: one worker, scripted
configurations ``0.1 < 0.2 < 0.3 < 0.4`` (loss == quality, cost == resource
delta), ``eta=2, r=1, R=4, max_trials=4``.  The event timeline is::

    t=0  trial 0 sampled, dispatched (rung 0)
    t=1  report T0=0.1; trial 1 dispatched
    t=2  report T1=0.2; promote T0 -> rung 1 (latency 1); dispatch
    t=3  restore+report T0 at rung 1; trial 2 dispatched
    t=4  report T2=0.3; trial 3 dispatched
    t=5  report T3=0.4; promote T1 -> rung 1 (latency 3); dispatch
    t=6  restore+report T1 at rung 1; promote T0 -> rung 2 (latency 3); dispatch
    t=8  restore+report T0 at rung 2 (top rung); scheduler done
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.simulation import SimulatedCluster
from repro.core.asha import ASHA
from repro.core.sha import SynchronousSHA
from repro.experiments.runner import run_trials
from repro.experiments.toys import scripted_sampler, toy_objective, toy_space
from repro.telemetry import InMemorySink, JSONLSink, MetricsReport, TelemetryHub


def _tiny_asha_run():
    scheduler = ASHA(
        toy_space(),
        np.random.default_rng(0),
        min_resource=1,
        max_resource=4,
        eta=2,
        max_trials=4,
        sampler=scripted_sampler([0.1, 0.2, 0.3, 0.4]),
    )
    memory = InMemorySink()
    hub = TelemetryHub.with_metrics(memory)
    result = SimulatedCluster(1, seed=0).run(
        scheduler, toy_objective(max_resource=4.0), time_limit=100.0, telemetry=hub
    )
    return result, memory


class TestHandComputedRun:
    def test_event_sequence(self):
        _, memory = _tiny_asha_run()
        assert memory.kinds() == [
            "trial_started", "job_started",                                      # t=0
            "report", "trial_started", "job_started",                            # t=1
            "report", "promotion", "job_started",                                # t=2
            "checkpoint_restored", "report", "trial_started", "job_started",     # t=3
            "report", "trial_started", "job_started",                            # t=4
            "report", "promotion", "job_started",                                # t=5
            "checkpoint_restored", "report", "promotion", "job_started",         # t=6
            "checkpoint_restored", "report",                                     # t=8
        ]
        expected_times = [0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 5, 5, 5, 6, 6, 6, 6, 8, 8]
        assert [e.time for e in memory.events] == expected_times
        assert [e.seq for e in memory.events] == list(range(24))

    def test_counters(self):
        result, _ = _tiny_asha_run()
        report = result.telemetry
        assert isinstance(report, MetricsReport)
        assert report.counters["trials_started"] == 4
        assert report.counters["jobs_started"] == 7
        assert report.counters["promotions"] == 3
        assert report.counters["checkpoint_restores"] == 3
        assert report.counters["events.report"] == 7
        assert report.counters["events_total"] == 24
        assert "jobs_failed" not in report.counters
        assert report.failure_rate == 0.0

    def test_rung_occupancy(self):
        result, _ = _tiny_asha_run()
        report = result.telemetry
        assert report.rung_occupancy == {0: 4, 1: 2, 2: 1}
        assert report.rung_occupancy_series == [
            (1.0, 0, 1),
            (2.0, 0, 2),
            (3.0, 1, 1),
            (4.0, 0, 3),
            (5.0, 0, 4),
            (6.0, 1, 2),
            (8.0, 2, 1),
        ]

    def test_promotion_latency(self):
        result, _ = _tiny_asha_run()
        hist = result.telemetry.histograms["promotion_latency"]
        # T0 promoted at t=2 after reporting at t=1; T1 at t=5 after t=2;
        # T0 again at t=6 after its rung-1 report at t=3.
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(7.0)
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0

    def test_queue_wait_is_zero_on_saturated_worker(self):
        result, _ = _tiny_asha_run()
        hist = result.telemetry.histograms["queue_wait"]
        assert hist["count"] == 6  # every dispatch after the first
        assert hist["max"] == 0.0

    def test_utilization_matches_scalar(self):
        result, _ = _tiny_asha_run()
        report = result.telemetry
        assert result.elapsed == 8.0
        assert report.worker_utilization == {0: 1.0}
        assert report.mean_utilization() == pytest.approx(result.utilization)
        assert result.utilization == 1.0

    def test_promotion_events_carry_rungs(self):
        _, memory = _tiny_asha_run()
        promotions = [e for e in memory.events if e.kind.value == "promotion"]
        assert [(e.trial_id, e.rung, e.data["from_rung"]) for e in promotions] == [
            (0, 1, 0),
            (1, 1, 0),
            (0, 2, 1),
        ]


def _seeded_run(jsonl_path, *, scheduler_seed=3, cluster_seed=7):
    scheduler = ASHA(
        toy_space(),
        np.random.default_rng(scheduler_seed),
        min_resource=1,
        max_resource=9,
        eta=3,
        max_trials=30,
    )
    hub = TelemetryHub.with_metrics(JSONLSink(jsonl_path))
    cluster = SimulatedCluster(
        4, straggler_std=0.3, drop_probability=0.02, seed=cluster_seed
    )
    result = cluster.run(
        scheduler, toy_objective(max_resource=9.0), time_limit=60.0, telemetry=hub
    )
    hub.close()
    return result


class TestDeterminism:
    def test_seeded_runs_export_byte_identical_jsonl(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _seeded_run(a)
        _seeded_run(b)
        assert a.read_bytes() == b.read_bytes()
        assert a.stat().st_size > 0

    def test_different_cluster_seed_changes_stream(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _seeded_run(a)
        _seeded_run(b, cluster_seed=8)
        assert a.read_bytes() != b.read_bytes()

    def test_telemetry_does_not_perturb_the_search(self):
        """A hub is observational: results match a hub-less run exactly."""

        def run(telemetry):
            scheduler = ASHA(
                toy_space(),
                np.random.default_rng(5),
                min_resource=1,
                max_resource=9,
                eta=3,
                max_trials=20,
            )
            cluster = SimulatedCluster(3, straggler_std=0.2, seed=11)
            return cluster.run(
                scheduler,
                toy_objective(max_resource=9.0),
                time_limit=50.0,
                telemetry=telemetry,
            )

        plain = run(None)
        observed = run(TelemetryHub.with_metrics())
        assert plain.telemetry is None
        assert observed.telemetry is not None
        assert plain.measurements == observed.measurements
        assert plain.jobs_dispatched == observed.jobs_dispatched
        assert plain.elapsed == observed.elapsed
        assert plain.utilization == observed.utilization


class TestSynchronousSHA:
    def test_rung_completed_events(self):
        scheduler = SynchronousSHA(
            toy_space(),
            np.random.default_rng(0),
            n=4,
            min_resource=1,
            max_resource=4,
            eta=2,
            sampler=scripted_sampler([0.1, 0.2, 0.3, 0.4]),
        )
        memory = InMemorySink()
        hub = TelemetryHub.with_metrics(memory)
        SimulatedCluster(1, seed=0).run(
            scheduler, toy_objective(max_resource=4.0), time_limit=100.0, telemetry=hub
        )
        barriers = [e for e in memory.events if e.kind.value == "rung_completed"]
        assert [(e.rung, e.data["size"], e.data["promoted"]) for e in barriers] == [
            (0, 4, 2),  # rung 0: four results, top half promoted
            (1, 2, 1),
            (2, 1, 0),  # top rung closes without promoting
        ]
        promotions = [e for e in memory.events if e.kind.value == "promotion"]
        assert [(e.trial_id, e.rung) for e in promotions] == [(0, 1), (1, 1), (0, 2)]


class TestRunnerIntegration:
    def test_run_trials_telemetry_factory(self):
        hubs = {}

        def factory(seed):
            hubs[seed] = TelemetryHub.with_metrics()
            return hubs[seed]

        records = run_trials(
            "asha",
            lambda objective, rng: ASHA(
                objective.space, rng, min_resource=1, max_resource=9, eta=3, max_trials=10
            ),
            lambda seed: toy_objective(max_resource=9.0),
            num_workers=2,
            time_limit=40.0,
            seeds=[0, 1],
            telemetry=factory,
        )
        assert set(hubs) == {0, 1}
        for record in records:
            assert isinstance(record.backend.telemetry, MetricsReport)
            assert record.backend.telemetry.counters["jobs_started"] > 0

    def test_run_trials_without_telemetry(self):
        records = run_trials(
            "asha",
            lambda objective, rng: ASHA(
                objective.space, rng, min_resource=1, max_resource=9, eta=3, max_trials=5
            ),
            lambda seed: toy_objective(max_resource=9.0),
            num_workers=2,
            time_limit=40.0,
            seeds=[0],
        )
        assert records[0].backend.telemetry is None
