"""Trace reconstruction: hand-traced spans, critical paths, Chrome export.

The centrepiece is a fully hand-traced tiny ASHA run **with one retry**:
one worker, scripted qualities ``0.1 < 0.2 < 0.3 < 0.4`` (loss == quality,
cost == resource delta), ``eta=2, r=1, R=4, max_trials=4``, and the
``0.2`` config crashing on its first training call under
``RetryPolicy(max_attempts=3, backoff=1.0)``.  The timeline::

    t=0  T0 sampled, job0 dispatched (rung 0)
    t=1  report T0=0.1; T1 sampled, job1 dispatched
    t=2  job1 crashes (exception); retry scheduled for t=3; T2 dispatched
    t=3  report T2=0.3; job1 attempt 2 dispatched
    t=4  report T1=0.2; promote T0 -> rung 1; job3 dispatched
    t=5  restore+report T0 at rung 1; T3 dispatched
    t=6  report T3=0.4; promote T1 -> rung 1; job5 dispatched
    t=7  restore+report T1 at rung 1; promote T0 -> rung 2; job6 dispatched
    t=9  restore+report T0 at rung 2 (top rung); done, elapsed 9

So trial 1's end-to-end latency (1 -> 7) decomposes exactly into
``failure_lost`` [1,2], ``retry_backoff`` [2,3], ``compute`` [3,4],
``queue_wait`` [4,6], ``compute`` [6,7].
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.backend import RetryPolicy, SimulatedCluster
from repro.backend.faults import FailureInjectingObjective
from repro.core.asha import ASHA
from repro.experiments.runner import run_trials, telemetry_event_path
from repro.experiments.toys import scripted_sampler, toy_objective, toy_space
from repro.telemetry import (
    JSONLSink,
    MetricsReport,
    TelemetryHub,
    Trace,
    TraceBuilder,
    validate_chrome_trace,
)
from repro.telemetry.trace import main as trace_cli
from repro.tune import tune


def _tiny_retry_run(sink=None):
    """The hand-traced run from the module docstring."""
    scheduler = ASHA(
        toy_space(),
        np.random.default_rng(0),
        min_resource=1,
        max_resource=4,
        eta=2,
        max_trials=4,
        sampler=scripted_sampler([0.1, 0.2, 0.3, 0.4]),
    )
    objective = FailureInjectingObjective(
        toy_objective(max_resource=4.0),
        crash_first=1,
        target=lambda c: c["quality"] == 0.2,
        seed=0,
    )
    hub = TelemetryHub.with_metrics(*([sink] if sink is not None else []))
    result = SimulatedCluster(1, seed=0).run(
        scheduler,
        objective,
        time_limit=100.0,
        telemetry=hub,
        retry_policy=RetryPolicy(max_attempts=3, backoff=1.0),
        trace=True,
    )
    return result


class TestHandTracedSpanTree:
    def setup_method(self):
        self.result = _tiny_retry_run()
        self.trace = self.result.trace

    def test_trace_is_attached_and_complete(self):
        assert isinstance(self.trace, Trace)
        assert self.result.elapsed == 9.0
        assert self.trace.elapsed == 9.0
        assert self.trace.num_workers == 1
        assert sorted(self.trace.trials) == [0, 1, 2, 3]

    def test_trial0_spans(self):
        t0 = self.trace.trials[0]
        assert t0.sampled_at == 0.0
        assert t0.config == {"quality": 0.1}
        assert [
            (a.job_id, a.attempt, a.start, a.end, a.outcome, a.rung)
            for a in t0.attempts
        ] == [
            (0, 1, 0.0, 1.0, "completed", 0),
            (3, 1, 4.0, 5.0, "completed", 1),
            (6, 1, 7.0, 9.0, "completed", 2),
        ]
        assert t0.promotions == [(4.0, 0, 1), (7.0, 1, 2)]
        assert t0.backoffs == []
        assert t0.checkpoint_restores == 2
        assert t0.best_loss() == 0.1
        assert t0.end_to_end_latency == 9.0

    def test_trial1_spans_carry_the_retry(self):
        t1 = self.trace.trials[1]
        assert t1.sampled_at == 1.0
        assert [
            (a.job_id, a.attempt, a.start, a.end, a.outcome) for a in t1.attempts
        ] == [
            (1, 1, 1.0, 2.0, "exception"),
            (1, 2, 3.0, 4.0, "completed"),
            (5, 1, 6.0, 7.0, "completed"),
        ]
        assert t1.attempts[0].error is not None
        assert "InjectedFailure" in t1.attempts[0].error
        assert t1.backoffs == [(2.0, 3.0)]
        assert t1.promotions == [(6.0, 0, 1)]

    def test_rung_residency(self):
        assert self.trace.trials[0].rung_residency() == [
            (0, 0.0, 4.0),
            (1, 4.0, 7.0),
            (2, 7.0, 9.0),
        ]

    def test_retried_trial_critical_path_is_the_docstring_decomposition(self):
        path = self.trace.critical_path(1)
        assert (path.start, path.end) == (1.0, 7.0)
        assert [(s.kind, s.start, s.end) for s in path.segments] == [
            ("failure_lost", 1.0, 2.0),
            ("retry_backoff", 2.0, 3.0),
            ("compute", 3.0, 4.0),
            ("queue_wait", 4.0, 6.0),
            ("compute", 6.0, 7.0),
        ]
        assert path.breakdown() == {
            "compute": 2.0,
            "queue_wait": 2.0,
            "retry_backoff": 1.0,
            "straggler_delay": 0.0,
            "failure_lost": 1.0,
        }

    def test_incumbent_critical_path_partitions_latency(self):
        assert self.trace.incumbent() == 0
        path = self.trace.critical_path()
        assert path.trial_id == 0
        assert (path.start, path.end) == (0.0, 9.0)
        # Segments are contiguous: each begins where the previous ended.
        edges = [path.start] + [s.end for s in path.segments]
        assert [s.start for s in path.segments] == edges[:-1]
        assert math.fsum(s.duration for s in path.segments) == path.total_latency

    def test_saturated_worker_timeline(self):
        worker = self.trace.workers[0]
        assert worker.busy_time == 9.0
        assert worker.idle_time == 0.0
        assert worker.utilization() == 1.0
        assert worker.idle_gaps() == []

    def test_worker_busy_time_matches_metrics_report(self):
        report = self.result.telemetry
        assert isinstance(report, MetricsReport)
        for worker_id, timeline in self.trace.workers.items():
            expected = report.worker_utilization[worker_id] * self.trace.elapsed
            assert timeline.busy_time == pytest.approx(expected, abs=1e-9)


class TestChromeTraceExport:
    def setup_method(self):
        self.trace = _tiny_retry_run().trace
        self.chrome = self.trace.to_chrome_trace()

    def test_schema_is_clean(self):
        assert validate_chrome_trace(self.chrome) == []

    def test_shape(self):
        events = self.chrome["traceEvents"]
        by_phase: dict[str, int] = {}
        for e in events:
            by_phase[e["ph"]] = by_phase.get(e["ph"], 0) + 1
        # 2 process names + worker 0's thread name and sort index.
        assert by_phase["M"] == 4
        # Every ended attempt is a complete event: 3 + 3 + 1 + 1.
        assert by_phase["X"] == 8
        # One crash instant + three promotion instants.
        assert by_phase["i"] == 4

    def test_time_mapping_is_one_unit_to_one_millisecond(self):
        spans = [e for e in self.chrome["traceEvents"] if e["ph"] == "X"]
        first = min(spans, key=lambda e: (e["ts"], e["args"]["job_id"]))
        assert first["args"] == {
            "trial_id": 0, "job_id": 0, "attempt": 1,
            "outcome": "completed", "loss": 0.1, "resource": 1,
        }
        assert first["ts"] == 0.0
        assert first["dur"] == 1000.0  # 1 sim unit == 1 ms == 1000 us

    def test_failures_and_promotions_are_instants(self):
        instants = [e for e in self.chrome["traceEvents"] if e["ph"] == "i"]
        names = sorted(e["name"] for e in instants)
        assert names == [
            "exception: trial 1",
            "promote trial 0 -> rung 1",
            "promote trial 0 -> rung 2",
            "promote trial 1 -> rung 1",
        ]
        # Faults render on the worker row, promotions on the scheduler row.
        assert {e["pid"] for e in instants if e["cat"] == "fault"} == {0}
        assert {e["pid"] for e in instants if e["cat"] == "promotion"} == {1}


class TestByteStability:
    def _events_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _tiny_retry_run(sink=JSONLSink(path))
        return path

    def test_two_builds_from_one_jsonl_are_byte_identical(self, tmp_path):
        path = self._events_file(tmp_path)
        first = TraceBuilder.from_jsonl(path).build().chrome_trace_json()
        second = TraceBuilder.from_jsonl(path).build().chrome_trace_json()
        assert first == second
        assert validate_chrome_trace(json.loads(first)) == []

    def test_offline_replay_matches_the_live_trace(self, tmp_path):
        path = self._events_file(tmp_path)
        live = _tiny_retry_run().trace
        replayed = TraceBuilder.from_jsonl(path).build()
        assert replayed.chrome_trace_json() == live.chrome_trace_json()
        assert sorted(replayed.trials) == sorted(live.trials)
        for trial_id, trial in live.trials.items():
            other = replayed.trials[trial_id]
            assert other.backoffs == trial.backoffs
            assert other.promotions == trial.promotions
            assert [
                (a.start, a.end, a.outcome) for a in other.attempts
            ] == [(a.start, a.end, a.outcome) for a in trial.attempts]


def _faulty_cluster_run(trace=True):
    """A seeded fault-injected ASHA run at small-cluster scale."""
    scheduler = ASHA(
        toy_space(),
        np.random.default_rng(3),
        min_resource=1,
        max_resource=9,
        eta=3,
        max_trials=30,
    )
    objective = FailureInjectingObjective(
        toy_objective(max_resource=9.0), crash_probability=0.15, seed=21
    )
    hub = TelemetryHub.with_metrics()
    cluster = SimulatedCluster(4, straggler_std=0.3, seed=7)
    return cluster.run(
        scheduler,
        objective,
        time_limit=60.0,
        telemetry=hub,
        retry_policy=RetryPolicy(max_attempts=3, backoff=1.0),
        trace=trace,
    )


class TestFaultInjectedClusterRun:
    """The acceptance invariants on a messier (straggler + crash) run."""

    def setup_method(self):
        self.result = _faulty_cluster_run()
        self.trace = self.result.trace

    def test_run_really_exercised_the_fault_path(self):
        assert self.result.failures
        assert self.result.jobs_retried > 0

    def test_critical_path_segments_sum_to_latency_exactly(self):
        for trial_id in self.trace.trials:
            path = self.trace.critical_path(trial_id)
            assert math.fsum(s.duration for s in path.segments) == path.total_latency
            edges = [path.start] + [s.end for s in path.segments]
            assert [s.start for s in path.segments] == edges[:-1]

    def test_per_worker_busy_time_is_consistent_with_metrics(self):
        report = self.result.telemetry
        for worker_id, timeline in self.trace.workers.items():
            expected = report.worker_utilization[worker_id] * self.trace.elapsed
            assert timeline.busy_time == pytest.approx(expected, abs=1e-6)

    def test_chrome_trace_has_zero_schema_violations(self):
        assert validate_chrome_trace(self.trace.to_chrome_trace()) == []

    def test_utilization_report_accounts_busy_plus_idle(self):
        util = self.trace.utilization_report()
        assert util["num_workers"] == 4
        total_span = sum(t.span for t in self.trace.workers.values())
        assert util["busy_time"] + util["idle_time"] == pytest.approx(total_span)
        assert 0.0 < util["cluster_utilization"] <= 1.0

    def test_straggler_report_covers_active_workers(self):
        stats = self.trace.straggler_report()
        assert stats
        assert all(s.slowdown > 0 for s in stats)
        slowdowns = [s.slowdown for s in stats]
        assert slowdowns == sorted(slowdowns, reverse=True)

    def test_trace_off_by_default(self):
        assert _faulty_cluster_run(trace=False).trace is None

    def test_render_report_mentions_every_attribution_kind(self):
        text = self.trace.render_report()
        for kind in ("compute", "queue_wait", "retry_backoff", "straggler_delay"):
            assert kind in text
        assert "utilisation" in text


class TestStragglerAttribution:
    def test_slow_worker_has_proportional_slowdown(self):
        """Synthetic stream: worker 1 trains at half the rate of worker 0."""
        from repro.telemetry.events import EventKind, TelemetryEvent

        events = []
        seq = 0

        def emit(kind, time, **kwargs):
            nonlocal seq
            data = {
                k: v
                for k, v in kwargs.items()
                if k not in ("trial_id", "job_id", "worker_id", "rung", "bracket")
            }
            events.append(
                TelemetryEvent(
                    seq=seq,
                    kind=EventKind(kind),
                    time=time,
                    wall_time=0.0,
                    trial_id=kwargs.get("trial_id"),
                    job_id=kwargs.get("job_id"),
                    worker_id=kwargs.get("worker_id"),
                    rung=kwargs.get("rung"),
                    data=data,
                )
            )
            seq += 1

        for trial_id, (worker, rate) in enumerate([(0, 1.0), (1, 2.0)]):
            start = 0.0
            emit("trial_started", start, trial_id=trial_id)
            emit(
                "job_started", start, trial_id=trial_id, job_id=trial_id,
                worker_id=worker, rung=0, resource=4.0, checkpoint_resource=0.0,
            )
            emit(
                "report", start + 4.0 * rate, trial_id=trial_id, job_id=trial_id,
                worker_id=worker, rung=0, loss=0.5, resource=4.0,
            )
        builder = TraceBuilder.from_events(events)
        builder.finalize(elapsed=8.0, num_workers=2)
        stats = {s.worker_id: s for s in builder.build().straggler_report()}
        assert stats[1].slowdown == pytest.approx(2.0 * stats[0].slowdown)
        assert stats[0].mean_rate == pytest.approx(1.0)
        assert stats[1].mean_rate == pytest.approx(2.0)


class TestValidator:
    def test_rejects_non_list(self):
        assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]

    def test_flags_unknown_phase_and_missing_fields(self):
        bad = {"traceEvents": [{"ph": "Z"}, {"ph": "X", "ts": 0, "dur": 1}]}
        violations = validate_chrome_trace(bad)
        assert any("unknown phase" in v for v in violations)
        assert any("missing name" in v for v in violations)

    def test_flags_out_of_order_ts(self):
        bad = {
            "traceEvents": [
                {"ph": "i", "s": "t", "name": "a", "pid": 0, "tid": 0, "ts": 5},
                {"ph": "i", "s": "t", "name": "b", "pid": 0, "tid": 0, "ts": 1},
            ]
        }
        assert any("out of order" in v for v in validate_chrome_trace(bad))

    def test_flags_unbalanced_begin_end(self):
        bad = {
            "traceEvents": [
                {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 0},
                {"ph": "E", "name": "a", "pid": 0, "tid": 1, "ts": 1},
            ]
        }
        violations = validate_chrome_trace(bad)
        assert any("E without matching B" in v for v in violations)
        assert any("unclosed B" in v for v in violations)

    def test_accepts_balanced_begin_end(self):
        good = {
            "traceEvents": [
                {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 0},
                {"ph": "E", "name": "a", "pid": 0, "tid": 0, "ts": 1},
            ]
        }
        assert validate_chrome_trace(good) == []


class TestCommandLine:
    def _events_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _tiny_retry_run(sink=JSONLSink(path))
        return path

    def test_report_and_chrome_export(self, tmp_path, capsys):
        events = self._events_file(tmp_path)
        out = tmp_path / "trace.json"
        code = trace_cli([str(events), "--chrome", str(out), "--report", "--validate"])
        assert code == 0
        captured = capsys.readouterr()
        assert "critical path" in captured.out
        assert "chrome trace schema: ok" in captured.err
        chrome = json.loads(out.read_text())
        assert validate_chrome_trace(chrome) == []

    def test_single_trial_report(self, tmp_path, capsys):
        events = self._events_file(tmp_path)
        code = trace_cli([str(events), "--trial", "1", "--report"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "trial 1" in printed
        assert "retry_backoff" in printed

    def test_cli_matches_library_output(self, tmp_path):
        events = self._events_file(tmp_path)
        out = tmp_path / "trace.json"
        assert trace_cli([str(events), "--chrome", str(out)]) == 0
        expected = TraceBuilder.from_jsonl(events).build().chrome_trace_json()
        assert out.read_text() == expected


class TestTuneAndRunnerIntegration:
    def test_tune_trace_flag_on_simulated_backend(self):
        def train(config, state, from_resource, to_resource):
            return state, config["quality"]

        result = tune(
            train,
            toy_space(),
            max_resource=4,
            min_resource=1,
            eta=2,
            scheduler="asha",
            scheduler_kwargs={"max_trials": 6},
            num_workers=2,
            time_limit=50.0,
            seed=0,
            trace=True,
        )
        assert isinstance(result.trace, Trace)
        assert result.trace.incumbent() is not None
        assert validate_chrome_trace(result.trace.to_chrome_trace()) == []

    def test_tune_trace_flag_on_thread_backend(self):
        def train(config, state, from_resource, to_resource):
            return state, config["quality"]

        result = tune(
            train,
            toy_space(),
            max_resource=2,
            min_resource=1,
            eta=2,
            scheduler="asha",
            scheduler_kwargs={"max_trials": 4},
            num_workers=2,
            time_limit=30.0,
            backend="threads",
            seed=0,
            trace=True,
        )
        assert isinstance(result.trace, Trace)
        assert result.trace.trials
        assert validate_chrome_trace(result.trace.to_chrome_trace()) == []

    def test_run_trials_telemetry_out_writes_one_file_per_seed(self, tmp_path):
        out = tmp_path / "events"
        records = run_trials(
            "asha (quick)",
            lambda objective, rng: ASHA(
                objective.space, rng, min_resource=1, max_resource=9, eta=3, max_trials=8
            ),
            lambda seed: toy_objective(max_resource=9.0),
            num_workers=2,
            time_limit=40.0,
            seeds=[0, 1],
            telemetry_out=out,
        )
        for seed in (0, 1):
            path = telemetry_event_path(out, "asha (quick)", seed)
            assert path.exists()
            trace = TraceBuilder.from_jsonl(path).build()
            assert trace.trials
            assert validate_chrome_trace(trace.to_chrome_trace()) == []
        # The owned hub also collects metrics for the returned records.
        assert all(isinstance(r.backend.telemetry, MetricsReport) for r in records)

    def test_telemetry_factory_wins_over_telemetry_out(self, tmp_path):
        out = tmp_path / "events"
        run_trials(
            "asha",
            lambda objective, rng: ASHA(
                objective.space, rng, min_resource=1, max_resource=9, eta=3, max_trials=5
            ),
            lambda seed: toy_objective(max_resource=9.0),
            num_workers=2,
            time_limit=40.0,
            seeds=[0],
            telemetry=lambda seed: TelemetryHub.with_metrics(),
            telemetry_out=out,
        )
        assert not out.exists()
