"""Metric primitives and the event-folding MetricsCollector."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    Counter,
    EventKind,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    TelemetryHub,
)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(1.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.series == []

    def test_timestamped_history(self):
        g = Gauge("x")
        g.set(1.0, time=0.5)
        g.set(3.0, time=1.5)
        assert g.series == [(0.5, 1.0), (1.5, 3.0)]

    def test_series_is_bounded_ring(self):
        """A long-running service must not grow gauge history without bound."""
        g = Gauge("x", series_bound=3)
        for i in range(10):
            g.set(float(i), time=float(i))
        # Only the most recent `series_bound` points survive, in order.
        assert g.series == [(7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]
        assert g.value == 9.0

    def test_series_bound_default_caps_growth(self):
        from repro.telemetry.metrics import DEFAULT_SERIES_BOUND

        g = Gauge("x")
        for i in range(DEFAULT_SERIES_BOUND + 100):
            g.set(float(i), time=float(i))
        assert len(g.series) == DEFAULT_SERIES_BOUND
        assert g.series[-1] == (float(DEFAULT_SERIES_BOUND + 99),) * 2

    def test_series_bound_none_is_unbounded(self):
        g = Gauge("x", series_bound=None)
        for i in range(5000):
            g.set(float(i), time=float(i))
        assert len(g.series) == 5000

    def test_series_bound_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="series_bound"):
            Gauge("x", series_bound=0)

    def test_registry_propagates_series_bound(self):
        registry = MetricsRegistry(gauge_series_bound=2)
        g = registry.gauge("x")
        for i in range(5):
            g.set(float(i), time=float(i))
        assert g.series == [(3.0, 3.0), (4.0, 4.0)]


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("x")
        for v in [4.0, 1.0, 3.0, 2.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean() == 2.5
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0
        assert h.percentile(0) == 1.0
        summary = h.summary()
        assert summary["min"] == 1.0 and summary["max"] == 4.0

    def test_empty_summary(self):
        assert Histogram("x").summary() == {"count": 0}

    def test_percentile_bounds(self):
        h = Histogram("x")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)


class TestMetricsRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        reg.histogram("c").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1.0}
        assert snap["gauges"] == {"b": 2.0}
        assert snap["histograms"]["c"]["count"] == 1


def _hub() -> tuple[TelemetryHub, MetricsCollector]:
    collector = MetricsCollector()
    return TelemetryHub([collector], wall_clock=lambda: 0.0), collector


class TestMetricsCollector:
    def test_rung_occupancy_counts_distinct_trials(self):
        hub, collector = _hub()
        hub.set_time(1.0)
        hub.emit(EventKind.REPORT, trial_id=0, rung=0, loss=0.1)
        hub.emit(EventKind.REPORT, trial_id=1, rung=0, loss=0.2)
        hub.set_time(2.0)
        hub.emit(EventKind.REPORT, trial_id=0, rung=0, loss=0.1)  # re-report
        hub.emit(EventKind.REPORT, trial_id=0, rung=1, loss=0.1)
        assert collector.rung_occupancy() == {0: 2, 1: 1}
        report = collector.report()
        assert report.rung_occupancy_series == [(1.0, 0, 1), (1.0, 0, 2), (2.0, 1, 1)]
        assert report.gauges["rung_occupancy.0"] == 2

    def test_promotion_latency_from_last_report(self):
        hub, collector = _hub()
        hub.set_time(3.0)
        hub.emit(EventKind.REPORT, trial_id=5, rung=0, loss=0.1)
        hub.set_time(7.5)
        hub.emit(EventKind.PROMOTION, trial_id=5, rung=1)
        hist = collector.registry.histograms["promotion_latency"]
        assert hist.samples == [4.5]

    def test_promotion_without_prior_report_records_nothing(self):
        hub, collector = _hub()
        hub.emit(EventKind.PROMOTION, trial_id=9, rung=1)
        assert "promotion_latency" not in collector.registry.histograms
        assert collector.registry.counters["promotions"].value == 1

    def test_queue_wait_between_jobs_on_same_worker(self):
        hub, collector = _hub()
        hub.set_time(0.0)
        hub.emit(EventKind.JOB_STARTED, trial_id=0, worker_id=0)
        hub.set_time(2.0)
        hub.emit(EventKind.REPORT, trial_id=0, worker_id=0, loss=0.1)
        hub.set_time(2.75)
        hub.emit(EventKind.JOB_STARTED, trial_id=1, worker_id=0)
        hist = collector.registry.histograms["queue_wait"]
        assert hist.samples == [0.75]

    def test_busy_credit_and_busy_feed_utilization(self):
        hub, collector = _hub()
        hub.emit(EventKind.JOB_STARTED, trial_id=0, worker_id=0, busy_credit=3.0)
        hub.set_time(5.0)
        hub.emit(EventKind.REPORT, trial_id=1, worker_id=1, loss=0.2, busy=2.0)
        collector.finalize(elapsed=10.0, num_workers=2)
        assert collector.worker_utilization() == {0: 0.3, 1: 0.2}
        report = collector.report()
        assert report.mean_utilization() == pytest.approx(0.25)
        assert report.utilization_series[-1] == (5.0, pytest.approx(5.0 / 20.0))

    def test_failure_rate(self):
        hub, collector = _hub()
        for trial in range(4):
            hub.emit(EventKind.JOB_STARTED, trial_id=trial, worker_id=trial)
        hub.emit(EventKind.JOB_FAILED, trial_id=0, worker_id=0, reason="dropped")
        collector.finalize(elapsed=1.0, num_workers=4)
        assert collector.report().failure_rate == pytest.approx(0.25)

    def test_event_counters(self):
        hub, collector = _hub()
        hub.emit(EventKind.TRIAL_STARTED, trial_id=0)
        hub.emit(EventKind.CHECKPOINT_RESTORED, trial_id=0)
        hub.emit(EventKind.RUNG_COMPLETED, rung=0)
        hub.emit(EventKind.WORKER_IDLE)
        counters = collector.registry.counters
        assert counters["events_total"].value == 4
        assert counters["trials_started"].value == 1
        assert counters["checkpoint_restores"].value == 1
        assert counters["rung_completions"].value == 1
        assert counters["worker_idle_polls"].value == 1

    def test_replay_produces_identical_report(self):
        """The collector is a pure fold over the event stream."""
        from repro.telemetry import InMemorySink

        memory = InMemorySink()
        live = MetricsCollector()
        hub = TelemetryHub([live, memory], wall_clock=lambda: 0.0)
        hub.emit(EventKind.JOB_STARTED, trial_id=0, worker_id=0, busy_credit=1.0)
        hub.set_time(1.0)
        hub.emit(EventKind.REPORT, trial_id=0, rung=0, worker_id=0, loss=0.5)
        hub.emit(EventKind.PROMOTION, trial_id=0, rung=1)
        replayed = MetricsCollector()
        for event in memory.events:
            replayed.write(event)
        for collector in (live, replayed):
            collector.finalize(elapsed=2.0, num_workers=1)
        assert live.report() == replayed.report()


class TestToMarkdown:
    def _report(self):
        hub, collector = _hub()
        hub.emit(EventKind.TRIAL_STARTED, trial_id=0)
        hub.emit(EventKind.JOB_STARTED, trial_id=0, worker_id=0, busy_credit=4.0)
        hub.set_time(4.0)
        hub.emit(EventKind.REPORT, trial_id=0, rung=0, worker_id=0, loss=0.5)
        hub.emit(EventKind.PROMOTION, trial_id=0, rung=1)
        hub.emit(EventKind.JOB_STARTED, trial_id=1, worker_id=1, busy_credit=0.0)
        hub.emit(EventKind.JOB_FAILED, trial_id=1, worker_id=1, reason="dropped")
        collector.finalize(elapsed=8.0, num_workers=2)
        return collector.report()

    def test_summary_table_values(self):
        table = self._report().to_markdown()
        lines = table.splitlines()
        assert lines[0].startswith("| metric")
        assert set(lines[1]) <= {"|", "-", " "}  # the separator row
        cells = {
            row.split("|")[1].strip(): row.split("|")[2].strip()
            for row in lines[2:]
        }
        assert cells["elapsed"] == "8"
        assert cells["workers"] == "2"
        assert cells["trials started"] == "1"
        assert cells["jobs started"] == "2"
        assert cells["reports"] == "1"
        assert cells["promotions"] == "1"
        assert cells["jobs failed"] == "1"
        assert cells["failure rate"] == "50.0%"
        assert cells["mean utilisation"] == "25.0%"  # 4 busy of 2 x 8
        assert cells["busy worker-time"] == "4"
        assert cells["idle worker-time"] == "12"

    def test_columns_align(self):
        lines = self._report().to_markdown().splitlines()
        assert len({len(line) for line in lines}) == 1
