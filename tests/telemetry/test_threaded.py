"""Telemetry through the thread-pool backend and the tune() front door."""

from __future__ import annotations

import time

import pytest

from repro.searchspace import SearchSpace, Uniform
from repro.telemetry import InMemorySink, MetricsReport, TelemetryHub
from repro.tune import tune


def _space() -> SearchSpace:
    return SearchSpace({"quality": Uniform(0.0, 1.0)})


def _train(config, state, from_resource, to_resource):
    # A real (if tiny) amount of wall-clock work so busy time is non-zero.
    time.sleep(0.001 * (to_resource - from_resource))
    return state, config["quality"]


def _tuned(num_workers: int, telemetry):
    return tune(
        _train,
        _space(),
        max_resource=4,
        min_resource=1,
        eta=2,
        scheduler="asha",
        scheduler_kwargs={"max_trials": 8},
        num_workers=num_workers,
        time_limit=30.0,
        backend="threads",
        seed=1,
        telemetry=telemetry,
    )


class TestThreadedTelemetry:
    def test_per_worker_utilization_mean_matches_scalar(self):
        result = _tuned(3, True)
        report = result.backend_result.telemetry
        assert isinstance(report, MetricsReport)
        assert report.num_workers == 3
        scalar = result.backend_result.utilization
        assert scalar > 0.0
        # Both sides are derived from the same per-job busy intervals; the
        # acceptance bound is 1% but they agree to float precision.
        assert report.mean_utilization() == pytest.approx(scalar, rel=0.01)

    def test_event_stream_is_coherent(self):
        memory = InMemorySink()
        hub = TelemetryHub.with_metrics(memory)
        result = _tuned(2, hub)
        assert result.telemetry is hub
        kinds = set(memory.kinds())
        assert {"trial_started", "job_started", "report"} <= kinds
        # ASHA with from_checkpoint=True resumed promoted trials from disk.
        assert "promotion" in kinds
        assert "checkpoint_restored" in kinds
        workers = {e.worker_id for e in memory.events if e.worker_id is not None}
        assert workers <= {0, 1}
        # Sequence numbers are unique and ordered despite concurrent emission.
        seqs = [e.seq for e in memory.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # Every report carries its busy interval for the utilisation series.
        reports = [e for e in memory.events if e.kind.value == "report"]
        assert reports and all(e.data["busy"] >= 0.0 for e in reports)

    def test_telemetry_off_leaves_result_bare(self):
        result = _tuned(2, None)
        assert result.telemetry is None
        assert result.backend_result.telemetry is None

    def test_tune_true_builds_hub_with_collector(self):
        result = _tuned(2, True)
        assert isinstance(result.telemetry, TelemetryHub)
        assert result.telemetry.metrics is not None
        report = result.backend_result.telemetry
        assert report.counters["jobs_started"] == report.counters.get(
            "events.report", 0
        ) + report.counters.get("jobs_failed", 0)
