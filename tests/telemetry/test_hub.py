"""TelemetryHub emission semantics and the falsy NullHub."""

from __future__ import annotations

import numpy as np

from repro.core.random_search import RandomSearch
from repro.experiments.toys import toy_space
from repro.telemetry import (
    NULL_HUB,
    EventKind,
    InMemorySink,
    MetricsCollector,
    MetricsReport,
    NullHub,
    TelemetryHub,
)


class TestTelemetryHub:
    def test_truthy(self):
        assert bool(TelemetryHub()) is True

    def test_seq_is_monotonic_from_zero(self):
        sink = InMemorySink()
        hub = TelemetryHub([sink])
        for _ in range(5):
            hub.emit(EventKind.REPORT)
        assert [e.seq for e in sink.events] == [0, 1, 2, 3, 4]

    def test_set_time_stamps_subsequent_events(self):
        sink = InMemorySink()
        hub = TelemetryHub([sink])
        hub.emit(EventKind.REPORT)
        hub.set_time(4.5)
        hub.emit(EventKind.REPORT)
        hub.emit(EventKind.REPORT, time=9.0)  # explicit time wins
        assert [e.time for e in sink.events] == [0.0, 4.5, 9.0]

    def test_wall_clock_injectable(self):
        sink = InMemorySink()
        hub = TelemetryHub([sink], wall_clock=lambda: 42.0)
        event = hub.emit(EventKind.REPORT)
        assert event.wall_time == 42.0
        assert sink.events[0] is event

    def test_emit_fans_out_to_every_sink(self):
        a, b = InMemorySink(), InMemorySink()
        hub = TelemetryHub([a])
        hub.add_sink(b)
        hub.emit(EventKind.REPORT, trial_id=1)
        assert len(a) == len(b) == 1

    def test_with_metrics_prepends_collector(self):
        hub = TelemetryHub.with_metrics(InMemorySink())
        assert isinstance(hub.sinks[0], MetricsCollector)
        assert isinstance(hub.sinks[1], InMemorySink)
        assert hub.metrics is hub.sinks[0]

    def test_metrics_none_without_collector(self):
        assert TelemetryHub([InMemorySink()]).metrics is None

    def test_finalize_returns_report(self):
        hub = TelemetryHub.with_metrics()
        hub.emit(EventKind.TRIAL_STARTED, trial_id=0)
        report = hub.finalize(elapsed=10.0, num_workers=2)
        assert isinstance(report, MetricsReport)
        assert report.elapsed == 10.0
        assert report.num_workers == 2
        assert report.counters["trials_started"] == 1

    def test_finalize_without_collector_returns_none(self):
        assert TelemetryHub([InMemorySink()]).finalize(elapsed=1.0, num_workers=1) is None

    def test_context_manager_closes_sinks(self):
        closed = []

        class Sink:
            def write(self, event):
                pass

            def flush(self):
                pass

            def close(self):
                closed.append(True)

        with TelemetryHub([Sink()]) as hub:
            hub.emit(EventKind.REPORT)
        assert closed == [True]


class TestNullHub:
    def test_falsy(self):
        assert bool(NULL_HUB) is False
        assert not NullHub()

    def test_noop_api(self):
        hub = NullHub()
        hub.set_time(3.0)
        assert hub.emit(EventKind.REPORT, trial_id=1, loss=0.5) is None
        assert hub.finalize(elapsed=1.0, num_workers=1) is None
        assert hub.metrics is None
        hub.close()

    def test_schedulers_default_to_null_hub(self):
        sched = RandomSearch(toy_space(), np.random.default_rng(0), max_resource=1)
        assert sched.telemetry is NULL_HUB
        assert not sched.telemetry

    def test_attach_telemetry_returns_scheduler(self):
        sched = RandomSearch(toy_space(), np.random.default_rng(0), max_resource=1)
        hub = TelemetryHub()
        assert sched.attach_telemetry(hub) is sched
        assert sched.telemetry is hub
