"""The hand-rolled canonical encoder is byte-identical to json.dumps.

`repro.canonical.encode_canonical` replaces ``json.dumps(obj,
sort_keys=True, separators=(",", ":"), default=unwrap)`` on the two hot
write paths (journal records, JSONL telemetry events).  These tests pin the
equivalence three ways: a hypothesis fuzz over nested JSON-ish values, the
exotic edge cases the fast path must route to the fallback, and a two-build
test exporting a real simulated run's telemetry stream through both
encoders.
"""

from __future__ import annotations

import io
import json
from typing import Any

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.backend.simulation import SimulatedCluster
from repro.canonical import encode_canonical
from repro.core import build_scheduler
from repro.experiments.toys import toy_objective, toy_space
from repro.telemetry import JSONLSink, TelemetryHub


def _json_default(value: Any) -> Any:
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def reference(obj: Any) -> str:
    """The exact call both write paths historically made."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_json_default)


# JSON-ish values: scalars (including awkward floats and non-ASCII /
# control-character strings) nested under dicts and lists.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


@given(_values)
def test_fuzz_matches_json_dumps(value):
    got = encode_canonical(value)
    want = reference(value)
    if want == got:
        return
    # NaN never compares equal post-parse; byte equality above is the real
    # check and this branch only runs on a genuine mismatch.
    raise AssertionError(f"{got!r} != {want!r} for {value!r}")


def test_edge_cases_match_json_dumps():
    cases = [
        {},
        [],
        (),
        {"": ""},
        {"a": {"b": {"c": [1, 2.5, None, True, False]}}},
        {"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf")},
        {"tiny": 5e-324, "big": 1.7976931348623157e308, "neg0": -0.0},
        {"unicode": "héllo ☃ \x00\n\t", "quote": '"quoted"', "back": "a\\b"},
        {"sorted": 1, "Sorted": 2, "SORTED": 3, "_x": 4, "0": 5},
        {"nested_list": [[], [{}], [[1], [2.0, "three"]]]},
        {"numpy_int": np.int64(7), "numpy_float": np.float64(1.5)},
        {"numpy_nested": {"v": np.float32(0.25)}},
        {1: "int key", 2.5: "float key"},
        {"mixed": [np.int32(1), 2, "3"]},
        {"repr_floats": [0.1, 1 / 3, 1e16, 1e-5, 123456789.123456789]},
        {"big_int": 2**200, "neg": -(2**63)},
    ]
    for case in cases:
        assert encode_canonical(case) == reference(case), case


def test_non_serializable_falls_back_to_str():
    class Thing:
        def __str__(self):
            return "thing!"

    assert encode_canonical({"x": Thing()}) == reference({"x": Thing()})


def test_two_build_telemetry_stream_byte_identity(monkeypatch):
    """A real run's JSONL telemetry: fast path vs forced json.dumps fallback.

    Build the same seeded simulation twice — once with the fast path live,
    once with ``_write`` disabled so every event takes the ``json.dumps``
    fallback — and require the exported streams to be byte-identical.
    """
    import repro.canonical as canonical

    def export() -> str:
        buf = io.StringIO()
        hub = TelemetryHub()
        hub.add_sink(JSONLSink(buf))
        scheduler = build_scheduler(
            "asha",
            toy_space(),
            np.random.default_rng(7),
            min_resource=1.0,
            max_resource=9.0,
            eta=3,
        )
        cluster = SimulatedCluster(
            8, straggler_std=0.4, drop_probability=0.02, seed=11
        )
        cluster.run(scheduler, toy_objective(), time_limit=80.0, telemetry=hub)
        return buf.getvalue()

    fast = export()
    monkeypatch.setattr(canonical, "_write", lambda value, parts: False)
    slow = export()
    assert fast == slow
    assert fast.count("\n") > 100  # a real stream, not a trivial pass
