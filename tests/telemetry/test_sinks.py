"""Sinks: in-memory capture, canonical JSONL, ASCII live summary."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.telemetry import (
    EventKind,
    InMemorySink,
    JSONLSink,
    LiveSummarySink,
    MetricsCollector,
    TelemetryHub,
    TelemetrySink,
    render_summary,
)


class TestProtocol:
    def test_sinks_satisfy_protocol(self):
        assert isinstance(InMemorySink(), TelemetrySink)
        assert isinstance(JSONLSink(io.StringIO()), TelemetrySink)
        assert isinstance(MetricsCollector(), TelemetrySink)
        assert isinstance(LiveSummarySink(io.StringIO()), TelemetrySink)


class TestInMemorySink:
    def test_records_in_order(self):
        sink = InMemorySink()
        hub = TelemetryHub([sink])
        hub.emit(EventKind.TRIAL_STARTED, trial_id=0)
        hub.emit(EventKind.REPORT, trial_id=0, loss=0.5)
        assert sink.kinds() == ["trial_started", "report"]
        assert len(sink) == 2


class TestJSONLSink:
    def test_canonical_line_format(self):
        buffer = io.StringIO()
        hub = TelemetryHub([JSONLSink(buffer)])
        hub.set_time(1.5)
        hub.emit(EventKind.REPORT, trial_id=3, rung=1, loss=0.25, resource=2)
        line = buffer.getvalue()
        assert line == (
            '{"data":{"loss":0.25,"resource":2},"kind":"report",'
            '"rung":1,"seq":0,"time":1.5,"trial_id":3}\n'
        )

    def test_wall_time_opt_in(self):
        buffer = io.StringIO()
        hub = TelemetryHub(
            [JSONLSink(buffer, include_wall_time=True)], wall_clock=lambda: 7.0
        )
        hub.emit(EventKind.WORKER_IDLE)
        assert json.loads(buffer.getvalue())["wall_time"] == 7.0

    def test_numpy_scalars_serialise_as_plain_numbers(self):
        buffer = io.StringIO()
        hub = TelemetryHub([JSONLSink(buffer)])
        hub.emit(
            EventKind.TRIAL_STARTED,
            trial_id=0,
            config={"lr": np.float64(0.5), "width": np.int64(8)},
        )
        decoded = json.loads(buffer.getvalue())
        assert decoded["data"]["config"] == {"lr": 0.5, "width": 8}
        assert "float64" not in buffer.getvalue()

    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JSONLSink(path)
        hub = TelemetryHub([sink])
        hub.emit(EventKind.REPORT, trial_id=0, loss=1.0)
        hub.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "report"

    def test_write_after_close_raises(self, tmp_path):
        sink = JSONLSink(tmp_path / "events.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.write(None)  # type: ignore[arg-type]


class TestLiveSummary:
    def test_renders_every_n_events(self):
        stream = io.StringIO()
        hub = TelemetryHub([LiveSummarySink(stream, every=2)])
        hub.emit(EventKind.TRIAL_STARTED, trial_id=0)
        assert stream.getvalue() == ""
        hub.emit(EventKind.REPORT, trial_id=0, rung=0, loss=0.5)
        assert "telemetry" in stream.getvalue()
        assert "rung  0" in stream.getvalue()

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveSummarySink(io.StringIO(), every=0)

    def test_render_summary_contents(self):
        collector = MetricsCollector()
        hub = TelemetryHub([collector])
        hub.emit(EventKind.TRIAL_STARTED, trial_id=0)
        hub.emit(EventKind.JOB_STARTED, trial_id=0, worker_id=0, busy_credit=1.0)
        hub.set_time(1.0)
        hub.emit(EventKind.REPORT, trial_id=0, rung=0, worker_id=0, loss=0.5)
        hub.emit(EventKind.PROMOTION, trial_id=0, rung=1)
        text = render_summary(collector, now=1.0)
        assert "t=1" in text
        assert "trials=1" in text
        assert "jobs=1" in text
        assert "promotions=1" in text
        assert "rung  0" in text
        assert "promotion_latency" in text


class TestLiveSummaryFinalRender:
    def _finished_run(self, stream):
        hub = TelemetryHub([LiveSummarySink(stream, every=1000)])
        hub.emit(EventKind.TRIAL_STARTED, trial_id=0)
        hub.emit(EventKind.JOB_STARTED, trial_id=0, worker_id=0, busy_credit=1.0)
        hub.set_time(1.0)
        hub.emit(EventKind.REPORT, trial_id=0, rung=0, worker_id=0, loss=0.5)
        return hub

    def test_close_after_finalize_renders_markdown_summary(self):
        stream = io.StringIO()
        hub = self._finished_run(stream)
        hub.finalize(elapsed=2.0, num_workers=1)
        hub.close()
        text = stream.getvalue()
        assert "final summary" in text
        assert "| metric" in text
        assert "| mean utilisation" in text
        assert "50.0%" in text  # 1 busy unit over 1 worker x 2 elapsed

    def test_close_without_finalize_stays_quiet(self):
        stream = io.StringIO()
        hub = self._finished_run(stream)
        hub.close()
        assert stream.getvalue() == ""

    def test_final_summary_renders_once(self):
        stream = io.StringIO()
        hub = self._finished_run(stream)
        hub.finalize(elapsed=2.0, num_workers=1)
        hub.close()
        hub.close()
        assert stream.getvalue().count("final summary") == 1
