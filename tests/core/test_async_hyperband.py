"""Tests for asynchronous Hyperband (looping ASHA brackets by budget)."""

from __future__ import annotations

import pytest

from repro.backend import SimulatedCluster
from repro.core import AsyncHyperband
from repro.experiments.toys import toy_objective


def make_ahb(space, rng, **kwargs):
    defaults = dict(min_resource=1.0, max_resource=9.0, eta=3)
    defaults.update(kwargs)
    return AsyncHyperband(space, rng, **defaults)


class TestConstruction:
    def test_requires_finite_horizon(self, one_d_space, rng):
        with pytest.raises(ValueError):
            AsyncHyperband(one_d_space, rng, min_resource=1.0, max_resource=None, eta=3)

    def test_bracket_cap_validated(self, one_d_space, rng):
        with pytest.raises(ValueError):
            make_ahb(one_d_space, rng, brackets=0)
        with pytest.raises(ValueError):
            make_ahb(one_d_space, rng, brackets=9)
        make_ahb(one_d_space, rng, brackets=2)


class TestBudgetSwitching:
    def test_switches_after_bracket_budget(self, one_d_space, rng):
        ahb = make_ahb(one_d_space, rng)
        assert ahb.current_bracket == 0
        # Bracket 0 budget = total SHA budget for n_0=9: 27 resource units.
        dispatched = 0.0
        while ahb.current_bracket == 0:
            job = ahb.next_job()
            dispatched += job.delta_resource
            ahb.report(job, job.config["quality"])
        assert dispatched >= 27.0
        assert ahb.current_bracket == 1

    def test_base_rung_resource_tracks_bracket(self, one_d_space, rng):
        ahb = make_ahb(one_d_space, rng)
        seen = {}
        for _ in range(60):
            job = ahb.next_job()
            if job.rung == 0:
                seen.setdefault(job.bracket, job.resource)
            ahb.report(job, job.config["quality"])
        # Bracket s has base resource eta**s.
        for bracket, resource in seen.items():
            assert resource == 3.0**bracket

    def test_cycles_back_to_first_bracket(self, one_d_space, rng, toy_obj):
        ahb = make_ahb(one_d_space, rng, brackets=2)
        SimulatedCluster(2, seed=0).run(ahb, toy_obj, time_limit=300.0)
        sizes = ahb.rung_sizes()
        assert len(sizes) == 2
        assert sizes[0][0] > 0 and sizes[1][0] > 0  # both brackets received work

    def test_reports_route_to_owning_bracket(self, one_d_space, rng, toy_obj):
        ahb = make_ahb(one_d_space, rng)
        SimulatedCluster(3, seed=1).run(ahb, toy_obj, time_limit=200.0)
        total_rung0 = sum(sizes[0] for sizes in ahb.rung_sizes() if sizes)
        measured = sum(1 for t in ahb.trials.values() if t.measurements)
        assert total_rung0 <= measured  # every rung entry belongs to a measured trial


class TestDrops:
    def test_survives_dropped_jobs(self, one_d_space, rng):
        objective = toy_objective()
        ahb = make_ahb(one_d_space, rng)
        result = SimulatedCluster(3, seed=3, drop_probability=0.05).run(
            ahb, objective, time_limit=300.0
        )
        assert result.failures  # drops actually happened
        assert len(result.measurements) > 50  # and the search kept going
