"""Tests for the Scheduler base-class helpers."""

from __future__ import annotations

import math

import pytest

from repro.core import RandomSearch, TrialStatus


@pytest.fixture
def sched(one_d_space, rng):
    return RandomSearch(one_d_space, rng, max_resource=9.0)


class TestNewTrialAndMakeJob:
    def test_ids_unique_and_registered(self, sched):
        trials = [sched.new_trial({"quality": 0.1}) for _ in range(5)]
        assert [t.trial_id for t in trials] == [0, 1, 2, 3, 4]
        assert sched.num_trials == 5

    def test_make_job_checkpoint_semantics(self, sched):
        trial = sched.new_trial({"quality": 0.1})
        trial.resource = 3.0
        resumed = sched.make_job(trial, 9.0, from_checkpoint=True)
        scratch = sched.make_job(trial, 9.0, from_checkpoint=False)
        assert resumed.checkpoint_resource == 3.0
        assert scratch.checkpoint_resource == 0.0
        assert trial.status == TrialStatus.RUNNING

    def test_job_ids_monotone(self, sched):
        trial = sched.new_trial({"quality": 0.1})
        a = sched.make_job(trial, 9.0)
        b = sched.make_job(trial, 9.0)
        assert b.job_id == a.job_id + 1


class TestNoteResult:
    def test_records_measurement(self, sched):
        trial = sched.new_trial({"quality": 0.1})
        job = sched.make_job(trial, 9.0)
        sched.note_result(job, 0.42)
        assert trial.last_loss == 0.42
        assert trial.resource == 9.0


class TestBestTrial:
    def test_none_when_unmeasured(self, sched):
        assert sched.best_trial() is None
        sched.new_trial({"quality": 0.1})
        assert sched.best_trial() is None

    def test_latest_loss_wins(self, sched):
        for q, loss in ((0.1, 0.5), (0.2, 0.3), (0.3, 0.7)):
            trial = sched.new_trial({"quality": q})
            job = sched.make_job(trial, 9.0)
            sched.note_result(job, loss)
        assert sched.best_trial().config["quality"] == 0.2

    def test_nan_excluded_while_finite_exists(self, sched):
        t1 = sched.new_trial({"quality": 0.1})
        sched.note_result(sched.make_job(t1, 9.0), float("nan"))
        t2 = sched.new_trial({"quality": 0.2})
        sched.note_result(sched.make_job(t2, 9.0), 0.9)
        best = sched.best_trial()
        assert best.trial_id == t2.trial_id

    def test_all_nan_still_returns_something(self, sched):
        t1 = sched.new_trial({"quality": 0.1})
        sched.note_result(sched.make_job(t1, 9.0), float("nan"))
        best = sched.best_trial()
        assert best is not None
        assert math.isnan(best.last_loss)


class TestDefaultFailureHandling:
    def test_marks_failed(self, sched):
        job = sched.next_job()
        sched.on_job_failed(job)
        assert sched.trials[job.trial_id].status == TrialStatus.FAILED
