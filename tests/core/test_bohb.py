"""Tests for BOHB (sync SHA + TPE sampling) and the AsyncBOHB extension."""

from __future__ import annotations

import numpy as np

from repro.backend import SimulatedCluster
from repro.core import ASHA, BOHB, AsyncBOHB, SynchronousSHA
from repro.experiments.toys import toy_objective
from repro.searchers import KDESearcher


def quality_objective():
    """Loss equals the single hyperparameter: lower x is better."""
    return toy_objective(max_resource=16.0, constant=True)


def test_bohb_is_sha_with_model_sampling(rng):
    objective = toy_objective(max_resource=9.0)
    bohb = BOHB(
        objective.space, rng, n=9, min_resource=1.0, max_resource=9.0, eta=3
    )
    result = SimulatedCluster(3, seed=0).run(bohb, objective, time_limit=1e6)
    assert bohb.is_done()
    assert result.jobs_dispatched == 13  # identical bracket structure to SHA


def test_bohb_observations_feed_rung_models(rng):
    objective = toy_objective(max_resource=9.0)
    bohb = BOHB(objective.space, rng, n=9, min_resource=1.0, max_resource=9.0, eta=3)
    SimulatedCluster(3, seed=0).run(bohb, objective, time_limit=1e6)
    assert 0 in bohb.searcher.models
    assert bohb.searcher.num_observations(0) == 9
    assert bohb.searcher.num_observations(1) == 3


def test_bohb_sampling_concentrates_once_model_ready(rng):
    objective = toy_objective(max_resource=4.0)

    bohb = BOHB(
        objective.space,
        rng,
        n=64,
        min_resource=1.0,
        max_resource=4.0,
        eta=2,
        grow_brackets=True,
        random_fraction=0.1,
    )
    SimulatedCluster(4, seed=0).run(bohb, objective, time_limit=400.0)
    configs = [t.config["quality"] for t in bohb.trials.values()]
    # Loss == quality, so the KDE model must pull sampling far below the
    # uniform mean of 0.5 (the first few samples are random, then TPE bites).
    assert np.mean(configs) < 0.3
    assert np.mean(configs[32:]) < np.mean(configs[:8]) + 0.2


def trial_stream(sched):
    """(config, final loss) per trial, in trial-id order."""
    return [
        (tuple(sorted(t.config.items())), t.measurements[-1].loss if t.measurements else None)
        for t in sched.trials.values()
    ]


def test_bohb_is_exactly_sha_plus_kde_searcher():
    """The composition IS the algorithm: identical seeded trial streams."""
    objective = toy_objective(max_resource=9.0)
    kwargs = dict(n=27, min_resource=1.0, max_resource=9.0, eta=3, grow_brackets=True)
    bohb = BOHB(objective.space, np.random.default_rng(5), **kwargs)
    composed = SynchronousSHA(
        objective.space,
        np.random.default_rng(5),
        searcher=KDESearcher(record_origin=False),
        **kwargs,
    )
    SimulatedCluster(4, seed=5).run(bohb, objective, time_limit=300.0)
    SimulatedCluster(4, seed=5).run(composed, objective, time_limit=300.0)
    assert trial_stream(bohb) == trial_stream(composed)


def test_async_bohb_is_exactly_asha_plus_kde_searcher():
    objective = toy_objective(max_resource=9.0)
    kwargs = dict(min_resource=1.0, max_resource=9.0, eta=3)
    abohb = AsyncBOHB(objective.space, np.random.default_rng(6), **kwargs)
    composed = ASHA(
        objective.space,
        np.random.default_rng(6),
        searcher=KDESearcher(record_origin=False),
        **kwargs,
    )
    SimulatedCluster(4, seed=6).run(abohb, objective, time_limit=300.0)
    SimulatedCluster(4, seed=6).run(composed, objective, time_limit=300.0)
    assert trial_stream(abohb) == trial_stream(composed)


def test_async_bohb_runs_asha_promotions(rng):
    objective = toy_objective(max_resource=9.0)
    abohb = AsyncBOHB(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)
    SimulatedCluster(2, seed=0).run(abohb, objective, time_limit=80.0)
    rungs = abohb.rung_sizes()
    assert rungs[0] > 0 and len(rungs) == 3
    assert abohb.searcher.num_observations(0) == rungs[0]
