"""Tests for BOHB (sync SHA + TPE sampling) and the AsyncBOHB extension."""

from __future__ import annotations

import numpy as np

from repro.backend import SimulatedCluster
from repro.core import BOHB, AsyncBOHB
from repro.experiments.toys import toy_objective


def quality_objective():
    """Loss equals the single hyperparameter: lower x is better."""
    return toy_objective(max_resource=16.0, constant=True)


def test_bohb_is_sha_with_model_sampling(rng):
    objective = toy_objective(max_resource=9.0)
    bohb = BOHB(
        objective.space, rng, n=9, min_resource=1.0, max_resource=9.0, eta=3
    )
    result = SimulatedCluster(3, seed=0).run(bohb, objective, time_limit=1e6)
    assert bohb.is_done()
    assert result.jobs_dispatched == 13  # identical bracket structure to SHA


def test_bohb_observations_feed_rung_models(rng):
    objective = toy_objective(max_resource=9.0)
    bohb = BOHB(objective.space, rng, n=9, min_resource=1.0, max_resource=9.0, eta=3)
    SimulatedCluster(3, seed=0).run(bohb, objective, time_limit=1e6)
    assert 0 in bohb._models.models
    assert bohb._models.models[0].num_observations == 9
    assert bohb._models.models[1].num_observations == 3


def test_bohb_sampling_concentrates_once_model_ready(rng):
    objective = toy_objective(max_resource=4.0)

    bohb = BOHB(
        objective.space,
        rng,
        n=64,
        min_resource=1.0,
        max_resource=4.0,
        eta=2,
        grow_brackets=True,
        random_fraction=0.1,
    )
    SimulatedCluster(4, seed=0).run(bohb, objective, time_limit=400.0)
    configs = [t.config["quality"] for t in bohb.trials.values()]
    # Loss == quality, so the KDE model must pull sampling far below the
    # uniform mean of 0.5 (the first few samples are random, then TPE bites).
    assert np.mean(configs) < 0.3
    assert np.mean(configs[32:]) < np.mean(configs[:8]) + 0.2


def test_async_bohb_runs_asha_promotions(rng):
    objective = toy_objective(max_resource=9.0)
    abohb = AsyncBOHB(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)
    SimulatedCluster(2, seed=0).run(abohb, objective, time_limit=80.0)
    rungs = abohb.rung_sizes()
    assert rungs[0] > 0 and len(rungs) == 3
    assert abohb._models.models[0].num_observations == rungs[0]
