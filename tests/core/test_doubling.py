"""Tests for the doubling-trick SHA (Section 3.3's infinite-horizon foil)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import ASHA, DoublingSHA
from repro.experiments.toys import toy_objective


def test_validation(one_d_space, rng):
    with pytest.raises(ValueError):
        DoublingSHA(one_d_space, rng, min_resource=2.0, initial_max_resource=1.0)
    with pytest.raises(ValueError):
        DoublingSHA(
            one_d_space, rng, min_resource=1.0, initial_max_resource=9.0, eta=3, n=5
        )


def test_budget_grows_geometrically(one_d_space, rng):
    objective = toy_objective(max_resource=1e9, constant=False)
    sha = DoublingSHA(
        one_d_space,
        rng,
        min_resource=1.0,
        initial_max_resource=4.0,
        eta=2,
        max_brackets=3,
    )
    SimulatedCluster(2, seed=0).run(sha, objective, time_limit=1e9)
    assert sha.is_done()
    assert [r for _, _, r in sha.outputs] == [4.0, 8.0, 16.0]


def test_output_intervals_double(one_d_space, rng):
    """The interval between outputs grows geometrically (Section 3.3)."""
    objective = toy_objective(max_resource=1e9, constant=False)
    sha = DoublingSHA(
        one_d_space,
        rng,
        min_resource=1.0,
        initial_max_resource=4.0,
        eta=2,
        max_brackets=3,
    )
    result = SimulatedCluster(1, seed=0).run(sha, objective, time_limit=1e9)
    # On one worker, each bracket's duration is its budget; reconstruct the
    # output times from the completion log at each bracket's R.
    output_times = []
    for _, winner_id, big_r in sha.outputs:
        t = max(m.time for m in result.measurements if m.trial_id == winner_id)
        output_times.append(t)
    intervals = np.diff([0.0] + output_times)
    # Between-output intervals grow at least geometrically (doubling trick).
    assert intervals[1] > 2 * intervals[0]
    assert intervals[2] > 2 * intervals[1]


def test_asha_infinite_horizon_emits_continuously(one_d_space, rng):
    """Contrast: infinite-horizon ASHA reaches deep resources without
    bracket-boundary gaps — the depth of its deepest measurement grows
    through the run rather than jumping at completions."""
    objective = toy_objective(max_resource=1e9, constant=False)
    asha = ASHA(one_d_space, rng, min_resource=1.0, max_resource=None, eta=2)
    result = SimulatedCluster(1, seed=0).run(asha, objective, time_limit=3000.0)
    deepest = 0.0
    depth_updates = 0
    for m in result.measurements:
        if m.resource > deepest:
            deepest = m.resource
            depth_updates += 1
    assert deepest >= 64.0
    assert depth_updates >= 7  # one per rung level climbed


def test_winner_recorded_per_bracket(one_d_space, rng):
    objective = toy_objective(max_resource=1e9, constant=True)
    sha = DoublingSHA(
        one_d_space,
        rng,
        min_resource=1.0,
        initial_max_resource=4.0,
        eta=2,
        max_brackets=2,
    )
    SimulatedCluster(2, seed=0).run(sha, objective, time_limit=1e9)
    for bracket_index, winner_id, _ in sha.outputs:
        winner = sha.trials[winner_id]
        assert winner.measurements
