"""Tests for the core value types."""

from __future__ import annotations

import pytest

from repro.core.types import IdAllocator, Job, Measurement, Trial, TrialStatus


class TestTrial:
    def test_record_advances_resource(self):
        t = Trial(trial_id=0, config={"x": 1})
        t.record(Measurement(0, 4.0, 0.5))
        t.record(Measurement(0, 16.0, 0.3))
        assert t.resource == 16.0
        assert t.last_loss == 0.3
        assert t.best_loss == 0.3

    def test_resource_never_regresses(self):
        t = Trial(trial_id=0, config={})
        t.record(Measurement(0, 16.0, 0.3))
        t.record(Measurement(0, 4.0, 0.5))  # out-of-order delivery
        assert t.resource == 16.0

    def test_loss_at(self):
        t = Trial(trial_id=0, config={})
        t.record(Measurement(0, 4.0, 0.5))
        assert t.loss_at(4.0) == 0.5
        assert t.loss_at(8.0) is None

    def test_empty_trial(self):
        t = Trial(trial_id=0, config={})
        assert t.last_loss is None
        assert t.best_loss is None


class TestTrialStatus:
    def test_terminal_states(self):
        assert TrialStatus.COMPLETED.is_terminal()
        assert TrialStatus.FAILED.is_terminal()
        assert TrialStatus.STOPPED.is_terminal()
        assert not TrialStatus.RUNNING.is_terminal()
        assert not TrialStatus.PAUSED.is_terminal()
        assert not TrialStatus.PENDING.is_terminal()


class TestJob:
    def test_delta_resource(self):
        job = Job(job_id=0, trial_id=0, config={}, resource=16.0, checkpoint_resource=4.0)
        assert job.delta_resource == 12.0

    def test_frozen(self):
        job = Job(job_id=0, trial_id=0, config={}, resource=1.0)
        with pytest.raises(AttributeError):
            job.resource = 2.0  # type: ignore[misc]


def test_id_allocator_monotonic():
    alloc = IdAllocator()
    assert [alloc.next() for _ in range(5)] == [0, 1, 2, 3, 4]
