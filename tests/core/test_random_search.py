"""Tests for the random-search baseline."""

from __future__ import annotations

import pytest

from repro.backend import SimulatedCluster
from repro.core import RandomSearch, TrialStatus


def test_validation(one_d_space, rng):
    with pytest.raises(ValueError):
        RandomSearch(one_d_space, rng, max_resource=0.0)


def test_every_job_trains_to_r(one_d_space, rng):
    rs = RandomSearch(one_d_space, rng, max_resource=9.0)
    for _ in range(10):
        job = rs.next_job()
        assert job.resource == 9.0
        assert job.rung == 0


def test_max_trials_and_done(one_d_space, rng, toy_obj):
    rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=5)
    result = SimulatedCluster(2, seed=0).run(rs, toy_obj, time_limit=1e6)
    assert rs.is_done()
    assert result.jobs_dispatched == 5
    assert all(t.status == TrialStatus.COMPLETED for t in rs.trials.values())


def test_best_trial_tracks_minimum(one_d_space, rng, toy_obj):
    rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=20)
    SimulatedCluster(4, seed=0).run(rs, toy_obj, time_limit=1e6)
    best = rs.best_trial()
    losses = [t.last_loss for t in rs.trials.values()]
    assert best.last_loss == min(losses)
