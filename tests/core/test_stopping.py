"""Tests for the standalone early-stopping rules and the wrapper."""

from __future__ import annotations

import pytest

from repro.backend import SimulatedCluster
from repro.core import (
    CurveExtrapolationRule,
    MedianStoppingRule,
    RandomSearch,
    StoppingWrapper,
    TrialStatus,
)
from repro.experiments.toys import toy_objective


class TestMedianStoppingRule:
    def test_stops_below_median(self):
        rule = MedianStoppingRule(min_peers=3)
        for trial_id, loss in enumerate((0.1, 0.2, 0.3)):
            rule.observe(trial_id, 1.0, loss)
        rule.observe(99, 1.0, 0.9)
        assert rule.should_stop(99)
        assert not rule.should_stop(0)

    def test_grace_period(self):
        rule = MedianStoppingRule(grace_resource=5.0, min_peers=1)
        rule.observe(0, 1.0, 0.1)
        rule.observe(1, 1.0, 0.9)
        assert not rule.should_stop(1)  # below grace resource
        rule.observe(1, 6.0, 0.9)
        assert rule.should_stop(1)

    def test_needs_min_peers(self):
        rule = MedianStoppingRule(min_peers=5)
        rule.observe(0, 1.0, 0.1)
        rule.observe(1, 1.0, 0.9)
        assert not rule.should_stop(1)

    def test_running_average_uses_prefix(self):
        rule = MedianStoppingRule()
        rule.observe(0, 1.0, 1.0)
        rule.observe(0, 2.0, 0.0)
        assert rule.running_average(0, 1.0) == 1.0
        assert rule.running_average(0, 2.0) == 0.5

    def test_nan_trial_stops(self):
        rule = MedianStoppingRule(min_peers=2)
        rule.observe(0, 1.0, 0.1)
        rule.observe(1, 1.0, 0.2)
        rule.observe(2, 1.0, float("nan"))
        assert rule.should_stop(2)


class TestCurveExtrapolation:
    def test_extrapolates_power_law(self):
        rule = CurveExtrapolationRule(max_resource=100.0, min_points=4)
        # loss(r) = 0.2 + 0.8 * r^-0.5
        for r in (1.0, 2.0, 4.0, 8.0, 16.0):
            rule.observe(0, r, 0.2 + 0.8 * r**-0.5)
        predicted = rule.extrapolate(0)
        assert predicted == pytest.approx(0.2 + 0.8 * 100**-0.5, abs=0.05)

    def test_stops_hopeless_trial(self):
        rule = CurveExtrapolationRule(max_resource=100.0, min_points=4)
        rule.observe(99, 100.0, 0.10)  # incumbent finished at 0.10
        for r in (1.0, 2.0, 4.0, 8.0):
            rule.observe(0, r, 0.5 + 0.1 * r**-0.5)  # asymptote 0.5
        assert rule.should_stop(0)

    def test_keeps_promising_trial(self):
        rule = CurveExtrapolationRule(max_resource=100.0, min_points=4)
        rule.observe(99, 100.0, 0.50)
        for r in (1.0, 2.0, 4.0, 8.0):
            rule.observe(0, r, 0.1 + 0.8 * r**-0.5)  # asymptote 0.1
        assert not rule.should_stop(0)

    def test_no_stop_without_incumbent(self):
        rule = CurveExtrapolationRule(max_resource=100.0)
        for r in (1.0, 2.0, 4.0, 8.0):
            rule.observe(0, r, 0.9)
        assert not rule.should_stop(0)

    def test_too_few_points_no_prediction(self):
        rule = CurveExtrapolationRule(max_resource=100.0, min_points=4)
        rule.observe(0, 1.0, 0.5)
        assert rule.extrapolate(0) is None


class TestStoppingWrapper:
    def test_wrapper_terminates_bad_trials(self, rng):
        objective = toy_objective(max_resource=9.0, constant=True)
        inner = RandomSearch(objective.space, rng, max_resource=9.0, max_trials=30)
        wrapper = StoppingWrapper(inner, MedianStoppingRule(min_peers=3))
        SimulatedCluster(2, seed=0).run(wrapper, objective, time_limit=1e6)
        assert wrapper.is_done()
        assert wrapper.stopped_early  # some trials were cut
        for trial_id in wrapper.stopped_early:
            assert wrapper.trials[trial_id].status == TrialStatus.STOPPED

    def test_wrapper_preserves_best(self, rng):
        objective = toy_objective(max_resource=9.0, constant=True)
        inner = RandomSearch(objective.space, rng, max_resource=9.0, max_trials=30)
        wrapper = StoppingWrapper(inner, MedianStoppingRule(min_peers=3))
        SimulatedCluster(2, seed=0).run(wrapper, objective, time_limit=1e6)
        survivors = [
            t for t in wrapper.trials.values() if t.trial_id not in wrapper.stopped_early
        ]
        best_overall = min(t.config["quality"] for t in wrapper.trials.values())
        best_survivor = min(t.config["quality"] for t in survivors)
        assert best_survivor == best_overall  # never stops the leader
