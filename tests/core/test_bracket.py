"""Tests for bracket geometry: the arithmetic of Figure 1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bracket import Bracket, sha_rung_schedule


class TestGeometry:
    def test_figure1_bracket0(self):
        b = Bracket(1.0, 9.0, 3, 0)
        assert b.s_max == 2
        assert b.num_rungs == 3
        assert [b.rung_resource(i) for i in range(3)] == [1.0, 3.0, 9.0]

    def test_figure1_bracket1_and_2(self):
        b1 = Bracket(1.0, 9.0, 3, 1)
        assert b1.num_rungs == 2
        assert [b1.rung_resource(i) for i in range(2)] == [3.0, 9.0]
        b2 = Bracket(1.0, 9.0, 3, 2)
        assert b2.num_rungs == 1
        assert b2.rung_resource(0) == 9.0

    def test_paper_section43_geometry(self):
        """eta=4, r=R/64: rungs at R/64, R/16, R/4, R."""
        r_max = 256.0
        b = Bracket(r_max / 64, r_max, 4, 0)
        assert b.num_rungs == 4
        assert [b.rung_resource(i) for i in range(4)] == [4.0, 16.0, 64.0, 256.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Bracket(0.0, 9.0, 3)
        with pytest.raises(ValueError):
            Bracket(1.0, 9.0, 1)
        with pytest.raises(ValueError):
            Bracket(1.0, 0.5, 3)
        with pytest.raises(ValueError):
            Bracket(1.0, 9.0, 3, early_stopping_rate=5)
        with pytest.raises(ValueError):
            Bracket(1.0, 9.0, 3, early_stopping_rate=-1)

    def test_non_power_ratio_floors(self):
        b = Bracket(1.0, 10.0, 3, 0)
        assert b.s_max == 2  # floor(log3 10) = 2
        assert b.rung_resource(b.num_rungs - 1) == 9.0  # <= R

    def test_infinite_horizon(self):
        b = Bracket(1.0, None, 3, 0)
        assert b.top_rung_index is None
        with pytest.raises(ValueError):
            _ = b.s_max
        # Rungs materialise on demand, unboundedly.
        assert b.rung(7).resource == 3.0**7


class TestPromotionScan:
    def test_scans_top_down(self):
        b = Bracket(1.0, 9.0, 3, 0)
        for i in range(3):
            b.record(0, i, 0.1 * (i + 1))
        for i in range(3):
            b.record(1, 0, 0.2)
            b.record(2, 0, 0.3)
        # Rung 1 has 1 entry -> quota 0; rung 0 has 3 -> quota 1.
        promotion = b.find_promotion()
        assert promotion is not None
        trial, target = promotion
        assert target == 1

    def test_prefers_higher_rung(self):
        b = Bracket(1.0, 27.0, 3, 0)  # 4 rungs
        for t in range(9):
            b.record(0, t, t / 10)
        for t in range(3):
            b.record(1, t, t / 10)
        # Both rung 0 (quota 3) and rung 1 (quota 1) promotable; rung 1 wins.
        trial, target = b.find_promotion()
        assert target == 2
        assert trial == 0

    def test_top_rung_never_promotes_finite(self):
        b = Bracket(1.0, 3.0, 3, 0)  # 2 rungs
        for t in range(3):
            b.record(1, t, t / 10)  # top rung full of results
        assert b.find_promotion() is None

    def test_infinite_horizon_promotes_from_top(self):
        b = Bracket(1.0, None, 3, 0)
        for t in range(3):
            b.record(0, t, t / 10)
        trial, target = b.find_promotion()
        assert (trial, target) == (0, 1)
        b.promote(0, 0)
        b.record(1, 0, 0.05)
        # A single-entry rung 1 cannot promote yet (quota 0) ...
        assert b.find_promotion() is None
        for t in (3, 4):
            b.record(0, t, 0.5 + t / 10)
        # ... and rung 0's quota is back below its promoted count.
        assert b.find_promotion() is None


class TestBudget:
    def test_figure1_total_budget(self):
        """Figure 1 (right): per-rung budget is 9 in every rung of bracket 0."""
        rows = sha_rung_schedule(9, 1.0, 9.0, 3, 0)
        assert [r["total"] for r in rows] == [9.0, 9.0, 9.0]
        rows = sha_rung_schedule(9, 1.0, 9.0, 3, 1)
        assert [r["total"] for r in rows] == [27.0, 27.0]
        rows = sha_rung_schedule(9, 1.0, 9.0, 3, 2)
        assert [r["total"] for r in rows] == [81.0]

    def test_total_budget_sums_rows(self):
        b = Bracket(1.0, 9.0, 3, 0)
        assert b.total_budget(9) == 27.0


# ----------------------------------------------------------------- property


@settings(max_examples=60, deadline=None)
@given(
    eta=st.sampled_from([2, 3, 4, 5]),
    s_max=st.integers(0, 6),
    s=st.integers(0, 6),
)
def test_rung_geometry_closed_form(eta, s_max, s):
    if s > s_max:
        return
    r, big_r = 1.0, float(eta**s_max)
    b = Bracket(r, big_r, eta, s)
    assert b.num_rungs == s_max - s + 1
    for i in range(b.num_rungs):
        assert b.rung_resource(i) == pytest.approx(r * eta ** (i + s))
    assert b.rung_resource(b.num_rungs - 1) <= big_r


@settings(max_examples=60, deadline=None)
@given(
    eta=st.sampled_from([2, 3, 4]),
    s_max=st.integers(1, 5),
    mult=st.integers(1, 5),
)
def test_budget_equal_per_rung_when_n_is_power(eta, s_max, mult):
    """With n = mult * eta**s_max, every rung's budget n_i * r_i is equal."""
    n = mult * eta**s_max
    rows = sha_rung_schedule(n, 1.0, float(eta**s_max), eta, 0)
    budgets = {r["total"] for r in rows}
    assert len(budgets) == 1


class TestPromotionScanCache:
    """The promotion scan is cached between rung mutations (hot-path opt)."""

    @staticmethod
    def _counting_bracket(monkeypatch):
        from repro.core import rung as rung_module

        calls = {"n": 0}
        original = rung_module.Rung.first_promotable

        def counting(self, eta):
            calls["n"] += 1
            return original(self, eta)

        monkeypatch.setattr(rung_module.Rung, "first_promotable", counting)
        return Bracket(1.0, 9.0, 3, 0), calls

    def test_repeated_queries_scan_once(self, monkeypatch):
        b, calls = self._counting_bracket(monkeypatch)
        for t in range(3):
            b.record(0, t, t / 10)
        first = b.find_promotion()
        scans_for_first = calls["n"]
        assert scans_for_first > 0
        # Identical repeated queries (the is_done + next_job poll pair, once
        # per free worker) must hit the cache, not rescan.
        for _ in range(5):
            assert b.find_promotion() == first
        assert calls["n"] == scans_for_first

    def test_cache_invalidated_by_record_promote_and_unmark(self, monkeypatch):
        b, calls = self._counting_bracket(monkeypatch)
        for t in range(3):
            b.record(0, t, t / 10)
        assert b.find_promotion() == (0, 1)
        b.promote(0, 0)
        # promote() marks the rung -> cache drops -> fresh scan, new answer.
        before = calls["n"]
        assert b.find_promotion() is None
        assert calls["n"] > before
        # A failed promotion returns the candidate; the scan must see it.
        b.rung(0).unmark_promoted(0)
        assert b.find_promotion() == (0, 1)
        # New results also invalidate.
        b.record(0, 3, 0.5)
        b.record(0, 4, 0.6)
        b.record(0, 5, 0.7)
        before = calls["n"]
        assert b.find_promotion() == (0, 1)
        assert calls["n"] > before

    def test_cached_answers_match_uncached(self, monkeypatch):
        """Cache on/off must be observationally identical over a random history."""
        import numpy as np

        rng = np.random.default_rng(0)
        cached = Bracket(1.0, 27.0, 3, 0)
        fresh_answers = []
        cached_answers = []
        recorded: list[tuple[int, int, float]] = []
        for step in range(200):
            rung_index = int(rng.integers(0, 3))
            loss = float(rng.random())
            trial_id = step
            cached.record(rung_index, trial_id, loss)
            recorded.append((rung_index, trial_id, loss))
            cached_answers.append(cached.find_promotion())
            # Rebuild an identical bracket with no query history: its first
            # scan is always uncached.
            rebuilt = Bracket(1.0, 27.0, 3, 0)
            for r_i, t_i, l_i in recorded:
                rebuilt.record(r_i, t_i, l_i)
            fresh_answers.append(rebuilt.find_promotion())
        assert cached_answers == fresh_answers
