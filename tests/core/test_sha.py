"""Tests for synchronous SHA (Algorithm 1) and its parallelisation."""

from __future__ import annotations

import pytest

from repro.backend import SimulatedCluster
from repro.core import SynchronousSHA, TrialStatus
from repro.experiments.toys import FIGURE2_QUALITIES, scripted_sampler


def make_sha(space, rng, **kwargs):
    defaults = dict(n=9, min_resource=1.0, max_resource=9.0, eta=3)
    defaults.update(kwargs)
    return SynchronousSHA(space, rng, **defaults)


class TestValidation:
    def test_n_too_small_rejected(self, one_d_space, rng):
        with pytest.raises(ValueError, match="Algorithm 1"):
            make_sha(one_d_space, rng, n=8)

    def test_minimum_n_accepted(self, one_d_space, rng):
        make_sha(one_d_space, rng, n=9)
        make_sha(one_d_space, rng, n=3, early_stopping_rate=1)


class TestRungBarrier:
    def test_blocks_until_rung_complete(self, one_d_space, rng):
        sha = make_sha(one_d_space, rng)
        jobs = [sha.next_job() for _ in range(9)]
        assert all(j is not None and j.rung == 0 for j in jobs)
        # All 9 dispatched, none reported: a 10th worker gets nothing.
        assert sha.next_job() is None
        for job, q in zip(jobs[:-1], FIGURE2_QUALITIES):
            sha.report(job, q)
        assert sha.next_job() is None  # one straggler still out
        sha.report(jobs[-1], FIGURE2_QUALITIES[-1])
        promo = sha.next_job()
        assert promo.rung == 1

    def test_keeps_exactly_top_fraction(self, one_d_space, rng):
        sha = make_sha(one_d_space, rng, sampler=scripted_sampler(FIGURE2_QUALITIES))
        jobs = [sha.next_job() for _ in range(9)]
        for job in jobs:
            sha.report(job, job.config["quality"])
        survivors = {sha.next_job().trial_id for _ in range(3)}
        qualities = sorted(FIGURE2_QUALITIES)[:3]
        expected = {FIGURE2_QUALITIES.index(q) for q in qualities}
        assert survivors == expected

    def test_completes_single_bracket(self, one_d_space, rng, toy_obj):
        sha = make_sha(one_d_space, rng)
        result = SimulatedCluster(4, seed=1).run(sha, toy_obj, time_limit=1e6)
        assert sha.is_done()
        assert sha.next_job() is None
        assert result.jobs_dispatched == 13
        completed = [t for t in sha.trials.values() if t.status == TrialStatus.COMPLETED]
        assert len(completed) == 1


class TestDrops:
    def test_dropped_job_excluded_from_rung(self, one_d_space, rng):
        sha = make_sha(one_d_space, rng)
        jobs = [sha.next_job() for _ in range(9)]
        for job in jobs[:-1]:
            sha.report(job, job.config["quality"])
        sha.on_job_failed(jobs[-1])
        # Rung closed over 8 survivors; next rung target is still n//eta = 3.
        promos = [sha.next_job() for _ in range(3)]
        assert all(p is not None and p.rung == 1 for p in promos)
        assert jobs[-1].trial_id not in {p.trial_id for p in promos}

    def test_all_dropped_terminates_bracket(self, one_d_space, rng):
        sha = make_sha(one_d_space, rng, n=3, max_resource=3.0)
        jobs = [sha.next_job() for _ in range(3)]
        for job in jobs:
            sha.on_job_failed(job)
        assert sha.is_done()


class TestGrowBrackets:
    def test_blocked_scheduler_starts_new_bracket(self, one_d_space, rng):
        sha = make_sha(one_d_space, rng, grow_brackets=True)
        for _ in range(9):
            sha.next_job()
        # Rung 0 incomplete, but a free worker triggers a second bracket.
        job10 = sha.next_job()
        assert job10 is not None
        assert job10.rung == 0
        assert len(sha.runs) == 2

    def test_single_bracket_mode_stays_blocked(self, one_d_space, rng):
        sha = make_sha(one_d_space, rng, grow_brackets=False)
        for _ in range(9):
            sha.next_job()
        assert sha.next_job() is None
        assert len(sha.runs) == 1

    def test_grow_mode_never_done(self, one_d_space, rng, toy_obj):
        sha = make_sha(one_d_space, rng, grow_brackets=True)
        SimulatedCluster(3, seed=0).run(sha, toy_obj, time_limit=100.0)
        assert not sha.is_done()
        assert sha.completed_brackets() >= 1


class TestEarlyStoppingRate:
    def test_s_shifts_base_resource(self, one_d_space, rng):
        sha = make_sha(one_d_space, rng, n=3, early_stopping_rate=1)
        job = sha.next_job()
        assert job.resource == 3.0  # r * eta**s

    def test_bracket_tags_on_jobs(self, one_d_space, rng):
        sha = make_sha(one_d_space, rng, grow_brackets=True)
        for _ in range(9):
            assert sha.next_job().bracket == 0
        assert sha.next_job().bracket == 1
