"""Tests for Population Based Training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import PBT, TrialStatus
from repro.experiments.toys import toy_objective
from repro.searchspace import Choice, SearchSpace, Uniform


def make_pbt(space, rng, **kwargs):
    defaults = dict(max_resource=16.0, interval=4.0, population_size=4)
    defaults.update(kwargs)
    return PBT(space, rng, **defaults)


class TestValidation:
    def test_parameter_checks(self, one_d_space, rng):
        with pytest.raises(ValueError):
            make_pbt(one_d_space, rng, interval=0.0)
        with pytest.raises(ValueError):
            make_pbt(one_d_space, rng, interval=32.0)
        with pytest.raises(ValueError):
            make_pbt(one_d_space, rng, exploit_fraction=0.6)
        with pytest.raises(ValueError):
            make_pbt(one_d_space, rng, population_size=1)
        with pytest.raises(ValueError):
            make_pbt(one_d_space, rng, max_lag=2.0)


class TestDispatch:
    def test_population_spawned_lazily(self, one_d_space, rng):
        pbt = make_pbt(one_d_space, rng)
        job = pbt.next_job()
        assert job is not None
        assert len(pbt.populations) == 1
        assert pbt.num_trials == 4

    def test_lag_bound_blocks_runaway_member(self, one_d_space, rng):
        pbt = make_pbt(one_d_space, rng, spawn_populations=False)
        jobs = [pbt.next_job() for _ in range(4)]
        # Run member 0 ahead: report it, re-dispatch, report, re-dispatch...
        pbt.report(jobs[0], 0.1)
        j = pbt.next_job()
        assert j.trial_id == jobs[0].trial_id and j.resource == 8.0
        pbt.report(j, 0.1)
        # Member 0 now at 8; floor is 0; next target 12 > max_lag 8 -> blocked.
        assert pbt.next_job() is None

    def test_spawns_new_population_when_blocked(self, one_d_space, rng):
        pbt = make_pbt(one_d_space, rng, spawn_populations=True)
        for _ in range(4):
            pbt.next_job()
        job = pbt.next_job()  # all members busy -> fresh population
        assert job is not None
        assert len(pbt.populations) == 2

    def test_completion(self, one_d_space, rng, toy_obj):
        pbt = make_pbt(one_d_space, rng, spawn_populations=False)
        SimulatedCluster(2, seed=0).run(pbt, toy_obj, time_limit=1e6)
        assert pbt.is_done()
        members = pbt.populations[0].members
        assert all(pbt.trials[m.trial_id].resource == 16.0 for m in members)


class TestExploitExplore:
    def _drive_rounds(self, pbt, losses_by_member, rounds=3):
        """Run synchronous rounds with prescribed per-member losses."""
        for _ in range(rounds):
            jobs = []
            while True:
                job = pbt.next_job()
                if job is None:
                    break
                jobs.append(job)
            for job in jobs:
                member = pbt._member_of_trial[job.trial_id]
                idx = pbt.populations[0].members.index(member)
                pbt.report(job, losses_by_member[idx])

    def test_bottom_member_cloned_from_top(self, rng):
        space = SearchSpace({"x": Uniform(0.0, 1.0)})
        pbt = PBT(
            space,
            rng,
            max_resource=64.0,
            interval=4.0,
            population_size=5,
            exploit_fraction=0.2,
            spawn_populations=False,
        )
        jobs = [pbt.next_job() for _ in range(5)]
        initial_ids = [j.trial_id for j in jobs]
        losses = [0.1, 0.2, 0.3, 0.4, 0.9]
        for job, loss in zip(jobs, losses):
            pbt.report(job, loss)
        member_ids = [m.trial_id for m in pbt.populations[0].members]
        # The worst member (loss 0.9) was replaced by a clone.
        assert member_ids[:4] == initial_ids[:4]
        clone_id = member_ids[4]
        assert clone_id not in initial_ids
        clone = pbt.trials[clone_id]
        assert clone.metadata["inherit_from"] == initial_ids[0]  # only donor
        assert pbt.trials[initial_ids[4]].status == TrialStatus.STOPPED
        # The clone's dispatched job carries the inheritance marker.
        dispatched = []
        while True:
            j = pbt.next_job()
            if j is None:
                break
            dispatched.append(j)
        clone_jobs = [j for j in dispatched if j.trial_id == clone_id]
        assert clone_jobs and clone_jobs[0].inherit_from == initial_ids[0]

    def test_no_exploit_before_half_population_measured(self, rng):
        space = SearchSpace({"x": Uniform(0.0, 1.0)})
        pbt = PBT(space, rng, max_resource=16.0, interval=4.0, population_size=6)
        jobs = [pbt.next_job() for _ in range(6)]
        pbt.report(jobs[0], 0.9)  # only 1 of 6 measured: no ranking possible
        member = pbt._member_of_trial[jobs[0].trial_id]
        assert member.trial_id == jobs[0].trial_id  # not replaced

    def test_frozen_keys_survive_explore(self, rng):
        space = SearchSpace({"arch": Choice([1, 2, 3]), "lr": Uniform(0.0, 1.0)})
        pbt = PBT(
            space,
            rng,
            max_resource=64.0,
            interval=4.0,
            population_size=5,
            frozen={"arch"},
            spawn_populations=False,
        )
        jobs = [pbt.next_job() for _ in range(5)]
        for job, loss in zip(jobs, (0.1, 0.2, 0.3, 0.4, 0.9)):
            pbt.report(job, loss)
        clone_id = pbt.populations[0].members[4].trial_id
        donor_id = pbt.trials[clone_id].metadata["inherit_from"]
        assert pbt.trials[clone_id].config["arch"] == pbt.trials[donor_id].config["arch"]


class TestFailures:
    def test_failed_member_resampled(self, one_d_space, rng):
        pbt = make_pbt(one_d_space, rng)
        jobs = [pbt.next_job() for _ in range(4)]
        pbt.on_job_failed(jobs[0])
        member = pbt.populations[0].members[0]
        assert member.trial_id != jobs[0].trial_id
        assert pbt.trials[jobs[0].trial_id].status == TrialStatus.FAILED
        # The slot is dispatchable again.
        replacement_jobs = [pbt.next_job() for _ in range(1)]
        assert replacement_jobs[0] is not None


def test_full_run_improves_population(rng):
    """End to end on the toy objective: exploitation concentrates quality."""
    objective = toy_objective(max_resource=64.0, constant=True)
    pbt = PBT(
        objective.space,
        rng,
        max_resource=64.0,
        interval=8.0,
        population_size=8,
        spawn_populations=False,
    )
    SimulatedCluster(4, seed=0).run(pbt, objective, time_limit=1e6)
    finals = [
        pbt.trials[m.trial_id].last_loss
        for m in pbt.populations[0].members
        if pbt.trials[m.trial_id].last_loss is not None
    ]
    # With loss == quality and truncation exploitation, the population mean
    # must end well below the uniform-sampling mean of 0.5.
    assert np.mean(finals) < 0.4
