"""Tests for the scheduler contract checker — and, through it, a sweep
asserting that every scheduler in the library honours the protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import (
    ASHA,
    PBT,
    AsyncHyperband,
    ContractChecker,
    ContractViolation,
    GridSearch,
    Hyperband,
    ParallelAsyncHyperband,
    RandomSearch,
    SynchronousSHA,
)
from repro.core.types import Job
from repro.experiments.toys import toy_objective

R = 16.0


class TestCheckerCatchesViolations:
    def test_report_without_dispatch(self, one_d_space, rng):
        checker = ContractChecker(RandomSearch(one_d_space, rng, max_resource=R))
        rogue = Job(job_id=999, trial_id=0, config={"quality": 0.5}, resource=R)
        with pytest.raises(ContractViolation):
            checker.report(rogue, 0.5)

    def test_double_report(self, one_d_space, rng):
        checker = ContractChecker(RandomSearch(one_d_space, rng, max_resource=R))
        job = checker.next_job()
        checker.report(job, 0.5)
        with pytest.raises(ContractViolation):
            checker.report(job, 0.5)

    def test_backwards_job_detected(self, one_d_space, rng):
        class Backwards(RandomSearch):
            def next_job(self):
                trial = self.new_trial(self.space.sample(self.rng))
                trial.resource = 10.0
                return self.make_job(trial, 5.0)

        checker = ContractChecker(Backwards(one_d_space, rng, max_resource=R))
        with pytest.raises(ContractViolation):
            checker.next_job()


FACTORIES = {
    "asha": lambda s, rng: ASHA(s, rng, min_resource=1.0, max_resource=R, eta=4),
    "sha": lambda s, rng: SynchronousSHA(
        s, rng, n=16, min_resource=1.0, max_resource=R, eta=4, grow_brackets=True
    ),
    "hyperband": lambda s, rng: Hyperband(s, rng, min_resource=1.0, max_resource=R, eta=4),
    "async-hb": lambda s, rng: AsyncHyperband(s, rng, min_resource=1.0, max_resource=R, eta=4),
    "parallel-hb": lambda s, rng: ParallelAsyncHyperband(
        s, rng, min_resource=1.0, max_resource=R, eta=4
    ),
    "random": lambda s, rng: RandomSearch(s, rng, max_resource=R),
    "grid": lambda s, rng: GridSearch(s, rng, max_resource=R, points_per_dim=8),
    "pbt": lambda s, rng: PBT(s, rng, max_resource=R, interval=4.0, population_size=5),
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_scheduler_honours_contract(name):
    """Full searches under stragglers and drops, protocol-checked throughout."""
    objective = toy_objective(max_resource=R, constant=False)
    rng = np.random.default_rng(17)
    checker = ContractChecker(FACTORIES[name](objective.space, rng))
    cluster = SimulatedCluster(4, seed=17, straggler_std=0.3, drop_probability=0.02)
    result = cluster.run(checker, objective, time_limit=40 * R)
    assert result.measurements
    assert checker.jobs_seen == result.jobs_dispatched
    # Nothing left dangling except jobs cut off by the time limit.
    assert checker.outstanding_jobs <= 4
