"""Tests for the scheduler contract checker — and, through it, a sweep
asserting that every scheduler in the library honours the protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import (
    ASHA,
    PBT,
    AsyncHyperband,
    ContractChecker,
    ContractViolation,
    GridSearch,
    Hyperband,
    ParallelAsyncHyperband,
    RandomSearch,
    SynchronousSHA,
)
from repro.core.types import Job, TrialStatus
from repro.experiments.toys import toy_objective
from repro.searchers import GPEISearcher, GridSearcher, KDESearcher, RandomSearcher

R = 16.0


class TestCheckerCatchesViolations:
    def test_report_without_dispatch(self, one_d_space, rng):
        checker = ContractChecker(RandomSearch(one_d_space, rng, max_resource=R))
        rogue = Job(job_id=999, trial_id=0, config={"quality": 0.5}, resource=R)
        with pytest.raises(ContractViolation):
            checker.report(rogue, 0.5)

    def test_double_report(self, one_d_space, rng):
        checker = ContractChecker(RandomSearch(one_d_space, rng, max_resource=R))
        job = checker.next_job()
        checker.report(job, 0.5)
        with pytest.raises(ContractViolation):
            checker.report(job, 0.5)

    def test_backwards_job_detected(self, one_d_space, rng):
        class Backwards(RandomSearch):
            def next_job(self):
                trial = self.new_trial(self.space.sample(self.rng))
                trial.resource = 10.0
                return self.make_job(trial, 5.0)

        checker = ContractChecker(Backwards(one_d_space, rng, max_resource=R))
        with pytest.raises(ContractViolation):
            checker.next_job()


class TestCheckerAuditsSearcherProtocol:
    def test_loss_never_forwarded_detected(self, one_d_space, rng):
        class DropsFeedback(RandomSearch):
            def report(self, job, loss):  # forgets searcher.on_result
                self.note_result(job, loss)
                self.trials[job.trial_id].status = TrialStatus.COMPLETED

        sched = DropsFeedback(one_d_space, rng, max_resource=R, searcher=RandomSearcher())
        checker = ContractChecker(sched)
        job = checker.next_job()
        with pytest.raises(ContractViolation, match="0 times"):
            checker.report(job, 0.5)

    def test_loss_forwarded_twice_detected(self, one_d_space, rng):
        class DoubleFeeds(RandomSearch):
            def report(self, job, loss):
                super().report(job, loss)
                self.searcher.on_result(self.trials[job.trial_id], job.resource, loss)

        sched = DoubleFeeds(one_d_space, rng, max_resource=R, searcher=RandomSearcher())
        checker = ContractChecker(sched)
        job = checker.next_job()
        with pytest.raises(ContractViolation, match="2 times"):
            checker.report(job, 0.5)

    def test_suggest_after_exhaustion_detected(self, one_d_space, rng):
        class ExhaustedButWilling(RandomSearcher):
            def is_done(self):  # claims exhaustion yet still answers suggest()
                return True

        class IgnoresExhaustion(RandomSearch):
            def next_job(self):  # skips the searcher_exhausted() guard
                config, origin = self.propose_config()
                trial = self.new_trial(config, origin=origin)
                return self.make_job(trial, self.max_resource)

        sched = IgnoresExhaustion(
            one_d_space, rng, max_resource=R, searcher=ExhaustedButWilling()
        )
        checker = ContractChecker(sched)
        with pytest.raises(ContractViolation, match="exhausted"):
            checker.next_job()

    def test_grid_searcher_exhaustion_respected_end_to_end(self, one_d_space, rng):
        checker = ContractChecker(
            RandomSearch(
                one_d_space,
                rng,
                max_resource=R,
                searcher=GridSearcher(points_per_dim=2, shuffle=False),
            )
        )
        for _ in range(2):
            checker.report(checker.next_job(), 0.5)
        assert checker.next_job() is None  # guard holds; no suggest() issued
        assert checker.is_done()

    def test_compliant_scheduler_passes(self, one_d_space, rng):
        checker = ContractChecker(
            RandomSearch(one_d_space, rng, max_resource=R, searcher=RandomSearcher())
        )
        for _ in range(5):
            checker.report(checker.next_job(), 0.5)


FACTORIES = {
    "asha": lambda s, rng: ASHA(s, rng, min_resource=1.0, max_resource=R, eta=4),
    "sha": lambda s, rng: SynchronousSHA(
        s, rng, n=16, min_resource=1.0, max_resource=R, eta=4, grow_brackets=True
    ),
    "hyperband": lambda s, rng: Hyperband(s, rng, min_resource=1.0, max_resource=R, eta=4),
    "async-hb": lambda s, rng: AsyncHyperband(s, rng, min_resource=1.0, max_resource=R, eta=4),
    "parallel-hb": lambda s, rng: ParallelAsyncHyperband(
        s, rng, min_resource=1.0, max_resource=R, eta=4
    ),
    "random": lambda s, rng: RandomSearch(s, rng, max_resource=R),
    "grid": lambda s, rng: GridSearch(s, rng, max_resource=R, points_per_dim=8),
    "pbt": lambda s, rng: PBT(s, rng, max_resource=R, interval=4.0, population_size=5),
    # Scheduler x searcher combinations: the protocol audit now also covers
    # exactly-once on_result forwarding and the exhaustion guard.
    "asha+kde": lambda s, rng: ASHA(
        s, rng, min_resource=1.0, max_resource=R, eta=4, searcher=KDESearcher()
    ),
    "asha+gp": lambda s, rng: ASHA(
        s,
        rng,
        min_resource=1.0,
        max_resource=R,
        eta=4,
        searcher=GPEISearcher(num_init=6, num_candidates=32),
    ),
    "sha+kde": lambda s, rng: SynchronousSHA(
        s,
        rng,
        n=16,
        min_resource=1.0,
        max_resource=R,
        eta=4,
        grow_brackets=True,
        searcher=KDESearcher(),
    ),
    "asha+grid": lambda s, rng: ASHA(
        s, rng, min_resource=1.0, max_resource=R, eta=4, searcher=GridSearcher(points_per_dim=6)
    ),
    "random+gp": lambda s, rng: RandomSearch(
        s, rng, max_resource=R, searcher=GPEISearcher(num_init=6, num_candidates=32)
    ),
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_scheduler_honours_contract(name):
    """Full searches under stragglers and drops, protocol-checked throughout."""
    objective = toy_objective(max_resource=R, constant=False)
    rng = np.random.default_rng(17)
    checker = ContractChecker(FACTORIES[name](objective.space, rng))
    cluster = SimulatedCluster(4, seed=17, straggler_std=0.3, drop_probability=0.02)
    result = cluster.run(checker, objective, time_limit=40 * R)
    assert result.measurements
    assert checker.jobs_seen == result.jobs_dispatched
    # Nothing left dangling except jobs cut off by the time limit.
    assert checker.outstanding_jobs <= 4
