"""Tests for the concurrent-brackets async Hyperband (Section 3.2 option 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import AsyncHyperband, ParallelAsyncHyperband
from repro.experiments.toys import toy_objective


def make(space, rng, **kwargs):
    defaults = dict(min_resource=1.0, max_resource=9.0, eta=3)
    defaults.update(kwargs)
    return ParallelAsyncHyperband(space, rng, **defaults)


def test_bracket_cap_validated(one_d_space, rng):
    with pytest.raises(ValueError):
        make(one_d_space, rng, brackets=0)
    with pytest.raises(ValueError):
        make(one_d_space, rng, brackets=17)


def test_all_brackets_progress_concurrently(one_d_space, rng):
    objective = toy_objective(max_resource=9.0, constant=False)
    pah = make(one_d_space, rng)
    SimulatedCluster(4, seed=0).run(pah, objective, time_limit=200.0)
    sizes = pah.rung_sizes()
    assert len(sizes) == 3
    # Every bracket received base-rung work (concurrent, not sequential).
    assert all(s[0] > 0 for s in sizes)


def test_budget_split_converges_to_shares(one_d_space, rng):
    objective = toy_objective(max_resource=9.0, constant=False)
    pah = make(one_d_space, rng)
    SimulatedCluster(4, seed=0).run(pah, objective, time_limit=500.0)
    split = pah.budget_split()
    for observed, share in zip(split, pah._shares):
        assert observed == pytest.approx(share, abs=0.08)


def test_reports_route_by_trial(one_d_space, rng):
    pah = make(one_d_space, rng)
    jobs = [pah.next_job() for _ in range(6)]
    for job in jobs:
        pah.report(job, job.config["quality"])  # must not raise
    assert pah.num_trials == 6


def test_comparable_quality_to_looping_variant(one_d_space, rng):
    """Both async Hyperband variants find similar-quality incumbents."""
    objective = toy_objective(max_resource=9.0, constant=False)

    def final_best(scheduler):
        SimulatedCluster(4, seed=1).run(scheduler, objective, time_limit=400.0)
        return scheduler.best_trial().last_loss

    looping = AsyncHyperband(
        one_d_space, np.random.default_rng(0), min_resource=1.0, max_resource=9.0, eta=3
    )
    concurrent = ParallelAsyncHyperband(
        one_d_space, np.random.default_rng(0), min_resource=1.0, max_resource=9.0, eta=3
    )
    a, b = final_best(looping), final_best(concurrent)
    assert abs(a - b) < 0.15
