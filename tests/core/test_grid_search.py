"""Tests for the grid-search baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import GridSearch
from repro.searchspace import Choice, SearchSpace, Uniform


def test_validation(one_d_space, rng):
    with pytest.raises(ValueError):
        GridSearch(one_d_space, rng, max_resource=0.0)
    with pytest.raises(ValueError):
        GridSearch(one_d_space, rng, max_resource=9.0, points_per_dim=1)


def test_grid_size(rng):
    space = SearchSpace({"a": Choice([1, 2, 3]), "b": Uniform(0.0, 1.0)})
    gs = GridSearch(space, rng, max_resource=9.0, points_per_dim=4)
    assert gs.grid_size == 12


def test_visits_every_point_once(rng, toy_obj):
    gs = GridSearch(toy_obj.space, rng, max_resource=9.0, points_per_dim=5)
    result = SimulatedCluster(2, seed=0).run(gs, toy_obj, time_limit=1e9)
    assert gs.is_done()
    assert result.jobs_dispatched == 5
    qualities = sorted(t.config["quality"] for t in gs.trials.values())
    assert qualities == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])


def test_shuffle_changes_order(toy_obj):
    def order(shuffle, seed):
        gs = GridSearch(
            toy_obj.space,
            np.random.default_rng(seed),
            max_resource=9.0,
            points_per_dim=6,
            shuffle=shuffle,
        )
        return [gs.next_job().config["quality"] for _ in range(6)]

    assert order(False, 0) == sorted(order(False, 0))
    assert order(True, 1) != order(False, 1)


def test_exhausted_grid_returns_none(rng, toy_obj):
    gs = GridSearch(toy_obj.space, rng, max_resource=9.0, points_per_dim=2)
    jobs = [gs.next_job() for _ in range(2)]
    assert gs.next_job() is None
    assert not gs.is_done()  # still outstanding
    for job in jobs:
        gs.report(job, job.config["quality"])
    assert gs.is_done()
