"""Tests for the Vizier stand-in (batched GP-EI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import SimulatedCluster
from repro.core import VizierGP
from repro.experiments.toys import toy_objective
from repro.searchspace import SearchSpace, Uniform


def make_vizier(space, rng, **kwargs):
    defaults = dict(max_resource=9.0, num_init=5, num_candidates=64, refit_every=3)
    defaults.update(kwargs)
    return VizierGP(space, rng, **defaults)


def test_validation(one_d_space, rng):
    with pytest.raises(ValueError):
        VizierGP(one_d_space, rng, max_resource=0.0)


def test_all_jobs_full_resource(one_d_space, rng):
    vz = make_vizier(one_d_space, rng)
    for _ in range(8):
        job = vz.next_job()
        assert job.resource == 9.0
        vz.report(job, job.config["quality"])


def test_loss_cap_applied(one_d_space, rng):
    vz = make_vizier(one_d_space, rng, loss_cap=10.0)
    job = vz.next_job()
    vz.report(job, 1e9)
    assert vz.searcher.observed_losses[-1] == 10.0
    job = vz.next_job()
    vz.report(job, float("inf"))
    assert vz.searcher.observed_losses[-1] == 10.0


def test_nonfinite_without_cap_clamped(one_d_space, rng):
    vz = make_vizier(one_d_space, rng)
    job = vz.next_job()
    vz.report(job, float("nan"))
    assert np.isfinite(vz.searcher.observed_losses[-1])


def test_model_improves_over_random(rng):
    """On loss == quality, GP-EI should concentrate proposals near 0."""
    objective = toy_objective(max_resource=9.0)
    vz = make_vizier(objective.space, rng, max_trials=40)
    SimulatedCluster(1, seed=0).run(vz, objective, time_limit=1e6)
    xs = [t.config["quality"] for t in vz.trials.values()]
    assert np.mean(xs[-10:]) < np.mean(xs[:10])
    assert min(xs) < 0.05


def test_constant_liar_diversifies_batch(rng):
    """With many pending proposals and no new results, proposals spread out."""
    space = SearchSpace({"x": Uniform(0.0, 1.0)})
    vz = make_vizier(space, rng, num_init=6, refit_every=1)
    # Six initial random points, reported.
    for _ in range(6):
        job = vz.next_job()
        vz.report(job, job.config["x"])
    batch = [vz.next_job().config["x"] for _ in range(6)]
    assert np.std(batch) > 0.01  # not six copies of the same argmax


def test_failed_job_forgotten(one_d_space, rng):
    vz = make_vizier(one_d_space, rng)
    job = vz.next_job()
    assert vz.searcher.num_pending == 1
    vz.on_job_failed(job)
    assert vz.searcher.num_pending == 0
    assert vz.searcher.num_observations == 0


def test_max_trials_done(one_d_space, rng, toy_obj):
    vz = make_vizier(one_d_space, rng, max_trials=7)
    result = SimulatedCluster(3, seed=0).run(vz, toy_obj, time_limit=1e6)
    assert vz.is_done()
    assert result.jobs_dispatched == 7
