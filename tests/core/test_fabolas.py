"""Tests for the Fabolas stand-in (multi-fidelity GP over dataset fractions)."""

from __future__ import annotations

import pytest

from repro.backend import SimulatedCluster
from repro.core import Fabolas
from repro.experiments.toys import toy_objective


def make_fabolas(space, rng, **kwargs):
    defaults = dict(max_resource=64.0, num_init=4, num_candidates=32, incumbent_every=3)
    defaults.update(kwargs)
    return Fabolas(space, rng, **defaults)


def test_validation(one_d_space, rng):
    with pytest.raises(ValueError):
        make_fabolas(one_d_space, rng, max_resource=0.0)
    with pytest.raises(ValueError):
        make_fabolas(one_d_space, rng, fractions=(0.5, 0.25, 1.0))
    with pytest.raises(ValueError):
        make_fabolas(one_d_space, rng, fractions=(0.25, 0.5))
    with pytest.raises(ValueError):
        make_fabolas(one_d_space, rng, fractions=(-0.1, 1.0))


def test_initial_design_uses_two_smallest_fractions(one_d_space, rng):
    fab = make_fabolas(one_d_space, rng, num_init=3)
    jobs = [fab.next_job() for _ in range(6)]
    resources = sorted({j.resource for j in jobs})
    assert resources == [64.0 / 64, 64.0 / 16]


def test_proposals_choose_allowed_fractions(one_d_space, rng, curved_toy_obj):
    objective = toy_objective(max_resource=64.0, constant=False)
    fab = make_fabolas(one_d_space, rng, num_init=3)
    SimulatedCluster(1, seed=0).run(fab, objective, time_limit=3000.0)
    allowed = {64.0 * f for f in fab.fractions}
    fractions_used = {t.metadata["fraction"] * 64.0 for t in fab.trials.values()}
    assert fractions_used <= allowed
    assert len(fab._y) > 6  # proposals happened beyond the init design


def test_incumbent_history_recorded(one_d_space, rng):
    objective = toy_objective(max_resource=64.0, constant=True)
    fab = make_fabolas(one_d_space, rng, incumbent_every=2)
    SimulatedCluster(1, seed=0).run(fab, objective, time_limit=800.0)
    assert fab.incumbent_history
    for report_index, config in fab.incumbent_history:
        assert report_index % 2 == 0
        assert objective.space.contains(config)


def test_incumbent_none_before_data(one_d_space, rng):
    fab = make_fabolas(one_d_space, rng)
    assert fab.incumbent() is None


def test_incumbent_finds_good_region(rng):
    """On loss == x (constant in resource), the predicted-best config at the
    full dataset must land in the low-x region."""
    objective = toy_objective(max_resource=64.0, constant=True)
    fab = make_fabolas(objective.space, rng, num_init=6, max_trials=50)
    SimulatedCluster(1, seed=0).run(fab, objective, time_limit=1e6)
    incumbent = fab.incumbent()
    assert incumbent["quality"] < 0.25
