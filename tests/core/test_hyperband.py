"""Tests for synchronous Hyperband and its bracket sizing."""

from __future__ import annotations


from repro.backend import SimulatedCluster
from repro.core import Hyperband, hyperband_bracket_sizes
from repro.experiments.toys import toy_objective


class TestBracketSizes:
    def test_classic_example(self):
        # eta=3, R/r=9: s_max=2 -> n_s = ceil(3/(3-s) * 3**(2-s)).
        assert hyperband_bracket_sizes(1.0, 9.0, 3) == [9, 5, 3]

    def test_at_least_one_reaches_r(self):
        for eta in (2, 3, 4):
            for s_max in (1, 2, 3, 4):
                sizes = hyperband_bracket_sizes(1.0, float(eta**s_max), eta)
                for s, n_s in enumerate(sizes):
                    assert n_s >= eta ** (s_max - s)


class TestLooping:
    def test_brackets_run_in_order(self, one_d_space, rng, toy_obj):
        hb = Hyperband(one_d_space, rng, min_resource=1.0, max_resource=9.0, eta=3, max_loops=1)
        cluster = SimulatedCluster(2, seed=0)
        result = cluster.run(hb, toy_obj, time_limit=1e9)
        assert hb.is_done()
        assert hb.completed_brackets == 3
        # Bracket 0: 9 + 3 + 1 = 13 jobs; bracket 1: 5 + 1 = 6; bracket 2: 3.
        assert result.jobs_dispatched == 13 + 6 + 3

    def test_loops_again_without_cap(self, one_d_space, rng, toy_obj):
        hb = Hyperband(one_d_space, rng, min_resource=1.0, max_resource=9.0, eta=3)
        SimulatedCluster(2, seed=0).run(hb, toy_obj, time_limit=200.0)
        assert hb.completed_brackets > 3
        assert not hb.is_done()

    def test_base_resources_increase_with_s(self, one_d_space, rng, toy_obj):
        hb = Hyperband(one_d_space, rng, min_resource=1.0, max_resource=9.0, eta=3, max_loops=1)
        base_resources = []
        seen_brackets = set()
        while not hb.is_done():
            job = hb.next_job()
            if job is None:
                break
            if job.rung == 0 and hb._current_s not in seen_brackets:
                seen_brackets.add(hb._current_s)
                base_resources.append(job.resource)
            hb.report(job, job.config["quality"])
        assert base_resources == [1.0, 3.0, 9.0]

    def test_trial_table_shared(self, one_d_space, rng, toy_obj):
        hb = Hyperband(one_d_space, rng, min_resource=1.0, max_resource=9.0, eta=3, max_loops=1)
        SimulatedCluster(2, seed=0).run(hb, toy_obj, time_limit=1e9)
        # 9 + 5 + 3 distinct configurations, globally unique ids.
        assert hb.num_trials == 17
        assert sorted(hb.trials) == list(range(17))


class TestFailureHandling:
    def test_dropped_jobs_do_not_stall_looping(self, one_d_space, rng):
        objective = toy_objective()
        hb = Hyperband(one_d_space, rng, min_resource=1.0, max_resource=9.0, eta=3, max_loops=2)
        cluster = SimulatedCluster(3, seed=2, drop_probability=0.05)
        cluster.run(hb, objective, time_limit=1e9)
        assert hb.is_done()
        assert hb.completed_brackets == 6
