"""Tests for the rung leaderboard, including the O(log n) promotion query."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rung import Rung


def make_rung(losses: dict[int, float]) -> Rung:
    rung = Rung(index=0, resource=1.0)
    for trial_id, loss in losses.items():
        rung.record(trial_id, loss)
    return rung


class TestTopK:
    def test_orders_by_loss(self):
        rung = make_rung({0: 0.5, 1: 0.1, 2: 0.9, 3: 0.3})
        assert rung.top_k(2) == [1, 3]
        assert rung.top_k(4) == [1, 3, 0, 2]

    def test_k_clamps(self):
        rung = make_rung({0: 0.5})
        assert rung.top_k(0) == []
        assert rung.top_k(-1) == []
        assert rung.top_k(10) == [0]

    def test_nan_sorts_last(self):
        rung = make_rung({0: float("nan"), 1: 0.9, 2: 0.1})
        assert rung.top_k(3) == [2, 1, 0]

    def test_ties_broken_by_trial_id(self):
        rung = make_rung({5: 0.5, 2: 0.5, 9: 0.5})
        assert rung.top_k(3) == [2, 5, 9]


class TestPromotion:
    def test_quota_floor(self):
        rung = make_rung({i: i / 10 for i in range(7)})
        assert rung.promotion_quota(3) == 2
        assert rung.promotion_quota(4) == 1

    def test_first_promotable_best_unpromoted(self):
        rung = make_rung({0: 0.3, 1: 0.1, 2: 0.2, 3: 0.9, 4: 0.8, 5: 0.7})
        assert rung.first_promotable(3) == 1
        rung.mark_promoted(1)
        assert rung.first_promotable(3) == 2
        rung.mark_promoted(2)
        assert rung.first_promotable(3) is None  # quota (2) exhausted

    def test_no_promotion_below_eta_entries(self):
        rung = make_rung({0: 0.1, 1: 0.2})
        assert rung.first_promotable(3) is None

    def test_promoting_unknown_trial_raises(self):
        rung = make_rung({0: 0.1})
        with pytest.raises(KeyError):
            rung.mark_promoted(99)

    def test_late_better_entry_becomes_promotable(self):
        rung = make_rung({i: 0.5 + i / 100 for i in range(4)})
        rung.mark_promoted(rung.first_promotable(4))
        assert rung.first_promotable(4) is None
        # Four more entries arrive, one of them excellent.
        for i, loss in [(10, 0.9), (11, 0.01), (12, 0.95), (13, 0.99)]:
            rung.record(i, loss)
        assert rung.first_promotable(4) == 11

    def test_nan_never_promoted(self):
        rung = make_rung({0: float("nan"), 1: float("nan"), 2: float("nan"), 3: 0.5})
        assert rung.first_promotable(4) == 3
        rung.mark_promoted(3)
        assert rung.first_promotable(4) is None

    def test_promotable_list_matches_first(self):
        rung = make_rung({i: (i * 7919) % 100 / 100 for i in range(20)})
        for _ in range(5):
            cands = rung.promotable(4)
            first = rung.first_promotable(4)
            assert (cands[0] if cands else None) == first
            if first is None:
                break
            rung.mark_promoted(first)


class TestRecord:
    def test_rerecord_overwrites(self):
        rung = make_rung({0: 0.9, 1: 0.5})
        rung.record(0, 0.1)
        assert rung.losses[0] == 0.1
        assert rung.top_k(1) == [0]
        assert len(rung) == 2

    def test_rerecord_promoted_entry_keeps_promoted(self):
        rung = make_rung({0: 0.1, 1: 0.5, 2: 0.6})
        rung.mark_promoted(0)
        rung.record(0, 0.05)
        assert rung.first_promotable(3) is None  # still promoted, quota 1

    def test_best(self):
        assert Rung(0, 1.0).best() is None
        rung = make_rung({0: 0.5, 1: 0.2})
        assert rung.best() == (1, 0.2)


class TestUnmarkPromoted:
    def test_returns_entry_to_pool(self):
        rung = make_rung({0: 0.1, 1: 0.2, 2: 0.3})
        rung.mark_promoted(0)
        assert rung.first_promotable(3) is None
        rung.unmark_promoted(0)
        assert rung.first_promotable(3) == 0

    def test_idempotent_on_unpromoted(self):
        rung = make_rung({0: 0.1, 1: 0.2, 2: 0.3})
        rung.unmark_promoted(0)  # never promoted: no-op
        assert rung.first_promotable(3) == 0
        # And the pool did not gain a duplicate entry.
        rung.mark_promoted(0)
        assert rung.first_promotable(3) is None

    def test_mark_unmark_cycle_stable(self):
        rung = make_rung({i: i / 10 for i in range(9)})
        for _ in range(5):
            t = rung.first_promotable(3)
            rung.mark_promoted(t)
            rung.unmark_promoted(t)
            assert rung.first_promotable(3) == t
        assert len(rung.promoted) == 0


# ----------------------------------------------------------------- property


@settings(max_examples=50, deadline=None)
@given(
    losses=st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=80),
    eta=st.sampled_from([2, 3, 4]),
)
def test_promotion_invariant_never_exceeds_quota(losses, eta):
    """Draining promotions promotes exactly quota entries, best-first."""
    rung = Rung(0, 1.0)
    for i, loss in enumerate(losses):
        rung.record(i, loss)
    promoted = []
    while True:
        t = rung.first_promotable(eta)
        if t is None:
            break
        rung.mark_promoted(t)
        promoted.append(t)
    quota = len(losses) // eta
    assert len(promoted) == quota
    assert set(promoted) == set(rung.top_k(quota))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_incremental_promotions_subset_of_final_top_half(seed):
    """Any entry promoted during sequential arrival was in the running top
    1/eta at its promotion time (the ASHA guarantee)."""
    rng = np.random.default_rng(seed)
    eta = 2
    rung = Rung(0, 1.0)
    for i in range(40):
        loss = float(rng.random())
        rung.record(i, loss)
        t = rung.first_promotable(eta)
        if t is not None:
            quota = rung.promotion_quota(eta)
            assert t in rung.top_k(quota)
            rung.mark_promoted(t)
    assert math.isfinite(rung.best()[1])
