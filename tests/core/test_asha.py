"""Tests for ASHA (Algorithm 2)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import SimulatedCluster
from repro.core import ASHA, TrialStatus
from repro.experiments.toys import scripted_sampler, toy_objective


def make_asha(space, rng, **kwargs):
    defaults = dict(min_resource=1.0, max_resource=9.0, eta=3)
    defaults.update(kwargs)
    return ASHA(space, rng, **defaults)


class TestGetJob:
    def test_grows_base_rung_when_nothing_promotable(self, one_d_space, rng):
        asha = make_asha(one_d_space, rng)
        jobs = [asha.next_job() for _ in range(3)]
        assert all(j.rung == 0 for j in jobs)
        assert all(j.resource == 1.0 for j in jobs)
        assert asha.num_trials == 3

    def test_promotes_as_soon_as_quota_allows(self, one_d_space, rng):
        asha = make_asha(one_d_space, rng)
        jobs = [asha.next_job() for _ in range(3)]
        for job, loss in zip(jobs, (0.3, 0.1, 0.5)):
            asha.report(job, loss)
        promotion = asha.next_job()
        assert promotion.rung == 1
        assert promotion.trial_id == jobs[1].trial_id
        assert promotion.resource == 3.0

    def test_promotion_scan_prefers_top_rungs(self, one_d_space, rng):
        asha = make_asha(one_d_space, rng, max_resource=27.0)
        # Fill rung 0 with 9 results, promote 3 through rung 1.
        jobs = [asha.next_job() for _ in range(9)]
        for i, job in enumerate(jobs):
            asha.report(job, i / 10)
        for _ in range(3):
            j = asha.next_job()
            assert j.rung == 1
            asha.report(j, j.trial_id / 10)
        j = asha.next_job()
        assert j.rung == 2  # rung 1 now has 3 entries -> promote up, not out

    def test_checkpointed_promotion_pays_delta(self, one_d_space, rng):
        asha = make_asha(one_d_space, rng, from_checkpoint=True)
        jobs = [asha.next_job() for _ in range(3)]
        for job, loss in zip(jobs, (0.1, 0.2, 0.3)):
            asha.report(job, loss)
        promo = asha.next_job()
        assert promo.checkpoint_resource == 1.0
        assert promo.delta_resource == 2.0

    def test_scratch_promotion_pays_full(self, one_d_space, rng):
        asha = make_asha(one_d_space, rng, from_checkpoint=False)
        jobs = [asha.next_job() for _ in range(3)]
        for job, loss in zip(jobs, (0.1, 0.2, 0.3)):
            asha.report(job, loss)
        promo = asha.next_job()
        assert promo.checkpoint_resource == 0.0
        assert promo.delta_resource == 3.0

    def test_max_trials_stops_growth(self, one_d_space, rng):
        asha = make_asha(one_d_space, rng, max_trials=2)
        assert asha.next_job() is not None
        assert asha.next_job() is not None
        assert asha.next_job() is None
        assert not asha.is_done()  # two jobs still outstanding


class TestReport:
    def test_top_rung_completes_trial(self, one_d_space, rng):
        asha = make_asha(one_d_space, rng)
        statuses: dict[int, TrialStatus] = {}
        # Drive sequentially, echoing each trial's quality as its loss; the
        # rung-2 report must mark its trial COMPLETED, all others PAUSED.
        top_trials = set()
        for _ in range(20):
            job = asha.next_job()
            asha.report(job, job.config["quality"] * (1 + job.rung) / 10)
            status = asha.trials[job.trial_id].status
            if job.rung == 2:
                top_trials.add(job.trial_id)
                assert status == TrialStatus.COMPLETED
            else:
                assert status == TrialStatus.PAUSED
        assert top_trials  # the ladder was climbed at least once

    def test_failed_job_never_enters_rung(self, one_d_space, rng):
        asha = make_asha(one_d_space, rng)
        jobs = [asha.next_job() for _ in range(3)]
        asha.report(jobs[0], 0.9)
        asha.report(jobs[1], 0.8)
        asha.on_job_failed(jobs[2])
        assert asha.trials[jobs[2].trial_id].status == TrialStatus.FAILED
        assert len(asha.bracket.rung(0)) == 2
        # Quota 2//3 = 0: ASHA simply grows the base rung.
        assert asha.next_job().rung == 0


class TestInfiniteHorizon:
    def test_rungs_grow_unboundedly(self, one_d_space, rng):
        asha = ASHA(one_d_space, rng, min_resource=1.0, max_resource=None, eta=2)
        # Feed a strictly improving sequence so promotions chain upward.
        resources = []
        for step in range(40):
            job = asha.next_job()
            resources.append(job.resource)
            asha.report(job, 1.0 / (1 + job.trial_id) / (1 + job.rung))
        assert max(resources) >= 8.0  # climbed at least 3 rungs
        assert all(t.status != TrialStatus.COMPLETED for t in asha.trials.values())


class TestIsDone:
    def test_capped_run_drains(self, one_d_space, rng, toy_obj):
        asha = make_asha(one_d_space, rng, max_trials=9)
        cluster = SimulatedCluster(3, seed=0)
        result = cluster.run(asha, toy_obj, time_limit=1e6)
        assert asha.is_done()
        # 9 base + 3 rung-1 + 1 rung-2 jobs.
        assert result.jobs_dispatched == 13
        assert len(result.completions) == 1

    def test_is_done_reuses_cached_promotion_scan(self, one_d_space, rng, toy_obj, monkeypatch):
        """The backend's is_done + next_job poll pair costs one rung scan.

        ``is_done`` and ``next_job`` both consult the bracket's promotion
        scan; between rung mutations the second (and every later) query must
        come from the bracket's cache rather than rescanning the ladder.
        """
        from repro.core import rung as rung_module

        asha = make_asha(one_d_space, rng, max_trials=9)
        cluster = SimulatedCluster(3, seed=0)
        cluster.run(asha, toy_obj, time_limit=1e6)
        assert asha.is_done()

        calls = {"n": 0}
        original = rung_module.Rung.first_promotable

        def counting(self, eta):
            calls["n"] += 1
            return original(self, eta)

        monkeypatch.setattr(rung_module.Rung, "first_promotable", counting)
        # Drained scheduler, no rung mutations: the first poll may scan the
        # ladder once; every subsequent is_done/next_job pair is cache hits.
        assert asha.is_done()
        first_poll = calls["n"]
        assert first_poll <= len(asha.bracket.rungs)
        for _ in range(10):
            assert asha.is_done()
            assert asha.next_job() is None
        assert calls["n"] == first_poll


class TestAdaptiveSampler:
    def test_sampler_hook_used(self, one_d_space, rng):
        asha = make_asha(
            one_d_space, rng, sampler=scripted_sampler([0.11, 0.22, 0.33]), max_trials=3
        )
        jobs = [asha.next_job() for _ in range(3)]
        assert [j.config["quality"] for j in jobs] == [0.11, 0.22, 0.33]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), workers=st.integers(1, 16))
def test_rung_ratio_invariant(seed, workers):
    """Each rung holds about 1/eta of the rung below (Figure 2's rule).

    The bound is quota plus an O(sqrt(n) + workers) slack: Algorithm 2 can
    legitimately promote more than the instantaneous quota when later
    arrivals displace already-promoted entries from the top fraction —
    that surplus is exactly the paper's "incorrect promotions", which
    Section 3.3 argues scales like sqrt(n).
    """
    objective = toy_objective(max_resource=27.0, constant=False)
    rng = np.random.default_rng(seed)
    asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=27.0, eta=3)
    cluster = SimulatedCluster(workers, seed=seed)
    cluster.run(asha, objective, time_limit=300.0)
    rungs = asha.bracket.rungs
    for below, above in zip(rungs, rungs[1:]):
        slack = int(3 * np.sqrt(len(below))) + workers + 1
        assert len(above) <= len(below) // 3 + slack
        assert len(below.promoted) <= len(below) // 3 + slack
