"""Cross-scheduler property tests (hypothesis over seeds/shapes)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import SimulatedCluster
from repro.core import ASHA, PBT, SynchronousSHA
from repro.experiments.toys import toy_objective


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 5000),
    eta=st.sampled_from([2, 3, 4]),
    s_max=st.integers(1, 3),
)
def test_sha_bracket_job_count_closed_form(seed, eta, s_max):
    """A completed SHA bracket dispatches exactly sum_i floor(n / eta**i) jobs."""
    big_r = float(eta**s_max)
    n = eta**s_max
    objective = toy_objective(max_resource=big_r, constant=False)
    rng = np.random.default_rng(seed)
    sha = SynchronousSHA(
        objective.space, rng, n=n, min_resource=1.0, max_resource=big_r, eta=eta
    )
    result = SimulatedCluster(3, seed=seed).run(sha, objective, time_limit=1e9)
    expected = sum(n // eta**i for i in range(s_max + 1))
    assert result.jobs_dispatched == expected


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000), workers=st.integers(1, 8))
def test_asha_never_exceeds_max_resource(seed, workers):
    objective = toy_objective(max_resource=16.0, constant=False)
    rng = np.random.default_rng(seed)
    asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=16.0, eta=4)
    result = SimulatedCluster(workers, seed=seed, straggler_std=0.4).run(
        asha, objective, time_limit=400.0
    )
    assert all(m.resource <= 16.0 for m in result.measurements)
    assert all(t.resource <= 16.0 for t in asha.trials.values())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_pbt_population_invariants(seed):
    """Populations keep their size; stopped trials match exploit events;
    no member ever trains past the maximum resource."""
    objective = toy_objective(max_resource=32.0, constant=False)
    rng = np.random.default_rng(seed)
    pbt = PBT(
        objective.space,
        rng,
        max_resource=32.0,
        interval=8.0,
        population_size=5,
        spawn_populations=False,
    )
    SimulatedCluster(3, seed=seed).run(pbt, objective, time_limit=1e9)
    assert pbt.is_done()
    assert len(pbt.populations) == 1
    assert len(pbt.populations[0].members) == 5
    from repro.core import TrialStatus

    stopped = sum(1 for t in pbt.trials.values() if t.status == TrialStatus.STOPPED)
    clones = sum(1 for t in pbt.trials.values() if t.trial_id >= 5)
    assert stopped == clones  # every clone replaced exactly one stopped trial
    assert all(t.resource <= 32.0 for t in pbt.trials.values())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5000))
def test_simulator_work_conservation(seed):
    """Measured training time never exceeds workers x elapsed clock."""
    objective = toy_objective(max_resource=16.0, constant=False)
    rng = np.random.default_rng(seed)
    asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=16.0, eta=4)
    workers = 4
    cluster = SimulatedCluster(workers, seed=seed)
    result = cluster.run(asha, objective, time_limit=300.0)
    completed_work = sum(
        m.resource - next(
            (
                prev.resource
                for prev in reversed(result.measurements[:i])
                if prev.trial_id == m.trial_id
            ),
            0.0,
        )
        for i, m in enumerate(result.measurements)
    )
    assert completed_work <= workers * result.elapsed + 1e-6
