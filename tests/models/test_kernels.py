"""Tests for the covariance kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.kernels import Matern52, RBF, cdist_sq


def test_cdist_sq_matches_direct():
    rng = np.random.default_rng(0)
    a, b = rng.random((5, 3)), rng.random((7, 3))
    direct = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    np.testing.assert_allclose(cdist_sq(a, b), direct, atol=1e-12)


def test_cdist_sq_never_negative():
    x = np.full((4, 2), 1e8)
    assert np.all(cdist_sq(x, x) >= 0)


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
class TestKernelProperties:
    def test_diagonal_equals_variance(self, kernel_cls):
        k = kernel_cls(length_scale=0.3, variance=2.5)
        x = np.random.default_rng(0).random((6, 4))
        gram = k(x, x)
        np.testing.assert_allclose(np.diag(gram), 2.5, atol=1e-9)

    def test_symmetry(self, kernel_cls):
        k = kernel_cls()
        x = np.random.default_rng(1).random((5, 3))
        gram = k(x, x)
        np.testing.assert_allclose(gram, gram.T, atol=1e-12)

    def test_positive_semidefinite(self, kernel_cls):
        k = kernel_cls(length_scale=0.5)
        x = np.random.default_rng(2).random((20, 3))
        eigs = np.linalg.eigvalsh(k(x, x))
        assert eigs.min() > -1e-8

    def test_decays_with_distance(self, kernel_cls):
        k = kernel_cls(length_scale=0.2)
        x0 = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[0.9, 0.0]])
        assert k(x0, near)[0, 0] > k(x0, far)[0, 0]

    def test_with_params(self, kernel_cls):
        k = kernel_cls().with_params(0.7, 3.0)
        assert k.length_scale == 0.7
        assert k.variance == 3.0

    def test_validation(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(length_scale=0.0)
        with pytest.raises(ValueError):
            kernel_cls(variance=-1.0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 15))
def test_matern_gram_psd_property(seed, n):
    x = np.random.default_rng(seed).random((n, 3))
    gram = Matern52(length_scale=0.4)(x, x)
    eigs = np.linalg.eigvalsh(gram)
    assert eigs.min() > -1e-7
