"""Tests for the TPE-style KDE sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import DensityEstimate, TPESampler


class TestDensityEstimate:
    def test_requires_points(self):
        with pytest.raises(ValueError):
            DensityEstimate(np.empty((0, 2)))

    def test_pdf_peaks_at_data(self):
        points = np.array([[0.2, 0.2], [0.21, 0.19], [0.8, 0.8]])
        kde = DensityEstimate(points)
        dense = kde.pdf(np.array([[0.2, 0.2]]))[0]
        sparse = kde.pdf(np.array([[0.5, 0.5]]))[0]
        assert dense > sparse

    def test_samples_clipped_to_unit_cube(self):
        rng = np.random.default_rng(0)
        kde = DensityEstimate(np.array([[0.01, 0.99]]))
        samples = kde.sample(200, rng)
        assert np.all((0 <= samples) & (samples <= 1))

    def test_samples_near_kernel_centres(self):
        rng = np.random.default_rng(1)
        kde = DensityEstimate(np.full((5, 2), 0.5))
        samples = kde.sample(100, rng)
        assert np.all(np.abs(samples - 0.5) < 0.3)


class TestTPESampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            TPESampler(2, gamma=0.0)
        with pytest.raises(ValueError):
            TPESampler(2, gamma=1.0)

    def test_uniform_before_ready(self, rng):
        sampler = TPESampler(3, min_points=5)
        assert not sampler.model_ready()
        x = sampler.propose(rng)
        assert x.shape == (3,)
        assert np.all((0 <= x) & (x <= 1))

    def test_model_ready_threshold(self, rng):
        sampler = TPESampler(2, min_points=3, gamma=0.2)
        for i in range(5):
            sampler.observe(rng.random(2), float(i))
        assert not sampler.model_ready()  # needs n_good + min_points = 6
        sampler.observe(rng.random(2), 5.0)
        assert sampler.model_ready()

    def test_proposals_concentrate_on_good_region(self, rng):
        """Good points near 0.1, bad near 0.9: proposals should go low."""
        sampler = TPESampler(1, min_points=3, random_fraction=0.0, gamma=0.3)
        for _ in range(30):
            x = rng.random()
            sampler.observe(np.array([x]), abs(x - 0.1))
        proposals = np.array([sampler.propose(rng)[0] for _ in range(40)])
        assert np.mean(proposals) < 0.4

    def test_nonfinite_losses_counted_as_bad(self, rng):
        sampler = TPESampler(1, min_points=2, random_fraction=0.0, gamma=0.3)
        for x in np.linspace(0.0, 0.4, 8):
            sampler.observe(np.array([x]), x)
        for x in np.linspace(0.6, 1.0, 8):
            sampler.observe(np.array([x]), np.inf)
        proposals = np.array([sampler.propose(rng)[0] for _ in range(30)])
        assert np.mean(proposals) < 0.5  # inf region avoided

    def test_random_fraction_one_is_uniform(self, rng):
        sampler = TPESampler(1, random_fraction=1.0, min_points=1)
        for i in range(20):
            sampler.observe(np.array([0.0]), 0.0)
        proposals = np.array([sampler.propose(rng)[0] for _ in range(200)])
        assert proposals.mean() == pytest.approx(0.5, abs=0.15)
