"""Tests for acquisition functions and constant-liar batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import GaussianProcess, expected_improvement, propose_constant_liar, ucb


class TestExpectedImprovement:
    def test_zero_when_mean_far_above_best(self):
        ei = expected_improvement(np.array([10.0]), np.array([0.01]), best=0.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_large_when_mean_below_best(self):
        ei = expected_improvement(np.array([-1.0]), np.array([0.01]), best=0.0)
        assert ei[0] == pytest.approx(1.0, abs=1e-3)

    def test_monotone_in_std_at_equal_mean(self):
        ei = expected_improvement(np.array([0.5, 0.5]), np.array([0.1, 1.0]), best=0.0)
        assert ei[1] > ei[0]

    def test_never_negative(self):
        rng = np.random.default_rng(0)
        ei = expected_improvement(rng.normal(size=100), rng.random(100), best=0.0)
        assert np.all(ei >= 0)

    def test_xi_makes_greedy_less_attractive(self):
        ei0 = expected_improvement(np.array([-0.1]), np.array([0.05]), best=0.0, xi=0.0)
        ei1 = expected_improvement(np.array([-0.1]), np.array([0.05]), best=0.0, xi=0.5)
        assert ei1[0] < ei0[0]


def test_ucb_prefers_low_mean_high_std():
    scores = ucb(np.array([0.0, 0.0, 1.0]), np.array([1.0, 0.1, 1.0]), beta=2.0)
    assert scores[0] > scores[1]
    assert scores[0] > scores[2]


class TestConstantLiar:
    def test_batch_has_distinct_picks(self):
        rng = np.random.default_rng(0)
        x = rng.random((10, 2))
        y = x[:, 0]
        candidates = rng.random((50, 2))
        gp = GaussianProcess()
        picks = propose_constant_liar(gp, x, y, candidates, batch_size=5)
        assert len(picks) == 5
        assert len(set(picks)) == 5

    def test_batch_capped_by_candidates(self):
        rng = np.random.default_rng(1)
        x = rng.random((5, 2))
        y = x[:, 0]
        candidates = rng.random((3, 2))
        picks = propose_constant_liar(GaussianProcess(), x, y, candidates, batch_size=10)
        assert len(picks) == 3

    def test_liar_spreads_batch(self):
        """Without the liar, all picks would sit at the same argmin region;
        with it, successive picks explore."""
        x = np.linspace(0, 1, 8)[:, None]
        y = (x[:, 0] - 0.3) ** 2
        candidates = np.linspace(0, 1, 41)[:, None]
        picks = propose_constant_liar(GaussianProcess(), x, y, candidates, batch_size=4)
        locations = candidates[picks][:, 0]
        assert locations.std() > 0.02
