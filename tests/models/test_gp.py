"""Tests for Gaussian-process regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import GaussianProcess, Matern52, RBF


def test_validation():
    with pytest.raises(ValueError):
        GaussianProcess(noise=0.0)
    gp = GaussianProcess()
    with pytest.raises(ValueError):
        gp.fit(np.zeros((2, 1)), np.zeros(3))
    with pytest.raises(ValueError):
        gp.fit(np.zeros((0, 1)), np.zeros(0))
    with pytest.raises(RuntimeError):
        gp.predict(np.zeros((1, 1)))


def test_interpolates_training_points():
    rng = np.random.default_rng(0)
    x = rng.random((12, 2))
    y = np.sin(3 * x[:, 0]) + x[:, 1]
    gp = GaussianProcess(kernel=RBF(length_scale=0.4), noise=1e-6)
    gp.fit(x, y)
    mean, std = gp.predict(x)
    np.testing.assert_allclose(mean, y, atol=1e-2)
    assert np.all(std < 0.1)


def test_uncertainty_grows_away_from_data():
    x = np.array([[0.5, 0.5]])
    gp = GaussianProcess(kernel=Matern52(length_scale=0.2)).fit(x, np.array([1.0]))
    _, std_near = gp.predict(np.array([[0.5, 0.52]]))
    _, std_far = gp.predict(np.array([[0.0, 0.0]]))
    assert std_far[0] > std_near[0]


def test_normalisation_round_trip():
    """Constant shift/scale of targets must shift/scale predictions."""
    rng = np.random.default_rng(1)
    x = rng.random((15, 2))
    y = np.cos(4 * x[:, 0])
    gp1 = GaussianProcess().fit(x, y)
    gp2 = GaussianProcess().fit(x, 100.0 + 10.0 * y)
    m1, s1 = gp1.predict(x[:5])
    m2, s2 = gp2.predict(x[:5])
    np.testing.assert_allclose(m2, 100.0 + 10.0 * m1, rtol=1e-6)
    np.testing.assert_allclose(s2, 10.0 * s1, rtol=1e-6)


def test_nonfinite_targets_clamped():
    x = np.random.default_rng(2).random((6, 2))
    y = np.array([0.1, 0.2, np.inf, 0.3, np.nan, 0.4])
    gp = GaussianProcess().fit(x, y)
    mean, _ = gp.predict(x)
    assert np.all(np.isfinite(mean))


def test_all_nonfinite_targets():
    x = np.random.default_rng(3).random((3, 2))
    gp = GaussianProcess().fit(x, np.array([np.inf, np.nan, np.inf]))
    mean, _ = gp.predict(x)
    assert np.all(np.isfinite(mean))


def test_log_marginal_likelihood_prefers_true_scale():
    """The marginal likelihood should favour a length scale near the truth."""
    rng = np.random.default_rng(4)
    x = rng.random((40, 1))
    truth = Matern52(length_scale=0.2)
    cov = truth(x, x) + 1e-6 * np.eye(40)
    y = np.linalg.cholesky(cov) @ rng.normal(size=40)
    lls = {}
    for ls in (0.02, 0.2, 2.0):
        gp = GaussianProcess(kernel=Matern52(length_scale=ls), noise=1e-4)
        gp.fit(x, y)
        lls[ls] = gp.log_marginal_likelihood()
    assert lls[0.2] > lls[2.0]
    assert lls[0.2] > lls[0.02]


def test_fit_tuned_picks_reasonable_kernel():
    rng = np.random.default_rng(5)
    x = rng.random((30, 2))
    y = np.sin(6 * x[:, 0])
    gp = GaussianProcess(kernel=Matern52(), noise=1e-4)
    gp.fit_tuned(x, y)
    mean, _ = gp.predict(x)
    rmse = np.sqrt(np.mean((mean - y) ** 2))
    assert rmse < 0.2
    assert gp.num_observations == 30
