"""Tests for the perf-regression harness: schema, normalisation, and gate.

The microbenches themselves are exercised by CI's perf-smoke job (they take
seconds to minutes); here we pin what must never drift silently — the
BENCH_perf.json schema, the committed baseline, and the regression gate's
pass/fail logic.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
PERF_DIR = REPO_ROOT / "benchmarks" / "perf"

REQUIRED_TOP_KEYS = {"schema_version", "mode", "python", "calibration_ops_per_s", "benchmarks"}
REQUIRED_ENTRY_KEYS = {"value", "unit", "higher_is_better", "normalized", "meta"}
#: Benchmarks every report must carry — CI's gate and the docs rely on them.
REQUIRED_BENCHMARKS = {
    "scheduler_asha_ops",
    "simulator_events",
    "simulator_churn_events",
    "end_to_end_asha",
    "parallel_speedup",
}


def _load_module(name: str):
    spec = importlib.util.spec_from_file_location(name, PERF_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def perf_utils():
    return _load_module("perf_utils")


@pytest.fixture(scope="module")
def check_regression():
    return _load_module("check_regression")


def _validate_report(report: dict) -> None:
    assert REQUIRED_TOP_KEYS <= set(report)
    assert report["schema_version"] == 1
    assert report["mode"] in ("quick", "full")
    assert report["calibration_ops_per_s"] > 0
    assert REQUIRED_BENCHMARKS <= set(report["benchmarks"])
    for name, entry in report["benchmarks"].items():
        assert REQUIRED_ENTRY_KEYS <= set(entry), name
        assert entry["value"] > 0, name
        assert entry["normalized"] > 0, name
        assert isinstance(entry["higher_is_better"], bool), name


class TestCommittedArtifacts:
    def test_repo_root_report_schema(self):
        report = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
        _validate_report(report)
        assert report["mode"] == "full"

    def test_committed_baseline_schema(self):
        baseline = json.loads((PERF_DIR / "baseline.json").read_text())
        _validate_report(baseline)
        assert baseline["mode"] == "quick"

    def test_parallel_speedup_is_ungated(self):
        # A 1-core runner legitimately reports ~1x speedup; the gate must
        # never fail on it.
        baseline = json.loads((PERF_DIR / "baseline.json").read_text())
        assert baseline["benchmarks"]["parallel_speedup"]["meta"]["gated"] is False


class TestNormalisation:
    def test_throughput_divides_by_calibration(self, perf_utils):
        entry = perf_utils.benchmark_entry(
            5000.0, "jobs/s", higher_is_better=True, calibration_ops_per_s=1000.0
        )
        assert entry["normalized"] == pytest.approx(5.0)

    def test_duration_inverts_first(self, perf_utils):
        fast = perf_utils.benchmark_entry(
            2.0, "s", higher_is_better=False, calibration_ops_per_s=1000.0
        )
        slow = perf_utils.benchmark_entry(
            4.0, "s", higher_is_better=False, calibration_ops_per_s=1000.0
        )
        # Normalised scores are uniformly higher-is-better.
        assert fast["normalized"] > slow["normalized"]

    def test_rejects_nonpositive_values(self, perf_utils):
        with pytest.raises(ValueError):
            perf_utils.benchmark_entry(
                0.0, "jobs/s", higher_is_better=True, calibration_ops_per_s=1000.0
            )


def _report_with(normalized: dict[str, float], gated: dict[str, bool] | None = None) -> dict:
    gated = gated or {}
    return {
        "schema_version": 1,
        "mode": "quick",
        "python": "3.11",
        "calibration_ops_per_s": 1.0,
        "benchmarks": {
            name: {
                "value": score,
                "unit": "x",
                "higher_is_better": True,
                "normalized": score,
                "meta": {"gated": gated.get(name, True)},
            }
            for name, score in normalized.items()
        },
    }


class TestRegressionGate:
    def _run(self, check_regression, tmp_path, baseline, current, threshold=2.0):
        base_path = tmp_path / "baseline.json"
        cur_path = tmp_path / "current.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        return check_regression.main(
            [
                "--baseline",
                str(base_path),
                "--current",
                str(cur_path),
                "--threshold",
                str(threshold),
            ]
        )

    def test_identical_reports_pass(self, check_regression, tmp_path):
        report = _report_with({"a": 10.0, "b": 3.0})
        assert self._run(check_regression, tmp_path, report, report) == 0

    def test_mild_slowdown_within_threshold_passes(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0})
        current = _report_with({"a": 6.0})  # 1.67x slower < 2x threshold
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_regression_beyond_threshold_fails(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0})
        current = _report_with({"a": 4.0})  # 2.5x slower
        assert self._run(check_regression, tmp_path, baseline, current) == 1

    def test_ungated_benchmark_never_fails(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0}, gated={"a": False})
        current = _report_with({"a": 1.0}, gated={"a": False})
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_missing_benchmark_is_skipped(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0, "b": 5.0})
        current = _report_with({"a": 10.0})
        assert self._run(check_regression, tmp_path, baseline, current) == 0
