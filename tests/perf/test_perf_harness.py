"""Tests for the perf-regression harness: schema, normalisation, and gate.

The microbenches themselves are exercised by CI's perf-smoke job (they take
seconds to minutes); here we pin what must never drift silently — the
BENCH_perf.json schema, the committed baseline, and the regression gate's
pass/fail logic.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
PERF_DIR = REPO_ROOT / "benchmarks" / "perf"

REQUIRED_TOP_KEYS = {"schema_version", "mode", "python", "calibration_ops_per_s", "benchmarks"}
REQUIRED_ENTRY_KEYS = {"value", "unit", "higher_is_better", "normalized", "meta"}
#: Benchmarks every report must carry — CI's gate and the docs rely on them.
REQUIRED_BENCHMARKS = {
    "scheduler_asha_ops",
    "simulator_events",
    "simulator_churn_events",
    "end_to_end_asha",
    "parallel_speedup",
    "parallel_speedup_4",
    "parallel_speedup_8",
    "multiplex_studies",
    "multiplex_speedup",
}


def _load_module(name: str):
    spec = importlib.util.spec_from_file_location(name, PERF_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def perf_utils():
    return _load_module("perf_utils")


@pytest.fixture(scope="module")
def check_regression():
    return _load_module("check_regression")


def _validate_report(report: dict) -> None:
    assert REQUIRED_TOP_KEYS <= set(report)
    assert report["schema_version"] == 2
    assert report["mode"] in ("quick", "full")
    assert report["calibration_ops_per_s"] > 0
    assert REQUIRED_BENCHMARKS <= set(report["benchmarks"])
    for name, entry in report["benchmarks"].items():
        assert REQUIRED_ENTRY_KEYS <= set(entry), name
        assert isinstance(entry["higher_is_better"], bool), name
        if entry["meta"].get("skipped"):
            # Schema v2: a machine that cannot take a measurement records
            # null with an explicit reason — never a fake number.
            assert entry["value"] is None, name
            assert entry["normalized"] is None, name
            assert entry["meta"]["skip_reason"], name
        else:
            assert entry["value"] > 0, name
            assert entry["normalized"] > 0, name
        if name.startswith("parallel_speedup"):
            assert entry["meta"]["cpu_count"] >= 1, name
            assert "n_jobs" in entry["meta"], name


class TestCommittedArtifacts:
    def test_repo_root_report_schema(self):
        report = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
        _validate_report(report)
        assert report["mode"] == "full"

    def test_committed_baseline_schema(self):
        baseline = json.loads((PERF_DIR / "baseline.json").read_text())
        _validate_report(baseline)
        assert baseline["mode"] == "quick"

    def test_parallel_speedup_carries_hard_floor(self):
        # The headline gate: parallel_speedup must be gated with a 1.3x
        # floor on every committed artifact, measured or skipped (the floor
        # binds whenever a machine with enough cores runs the suite).
        for path in (PERF_DIR / "baseline.json", REPO_ROOT / "BENCH_perf.json"):
            entry = json.loads(path.read_text())["benchmarks"]["parallel_speedup"]
            assert entry["meta"]["gated"] is True, path
            assert entry["meta"]["floor"] == 1.3, path
            assert entry["meta"]["n_jobs"] == 2, path

    def test_multiplex_speedup_carries_hard_floor(self):
        # The service-regime gate: the multiplexer must beat the naive
        # loop-per-study baseline by >= 2x on every committed artifact.
        for path in (PERF_DIR / "baseline.json", REPO_ROOT / "BENCH_perf.json"):
            report = json.loads(path.read_text())
            entry = report["benchmarks"]["multiplex_speedup"]
            assert entry["meta"]["gated"] is True, path
            assert entry["meta"]["floor"] == 2.0, path
            assert entry["meta"]["studies"] == 1000, path
            assert entry["value"] >= 2.0, path
            # Capacity companion: the full-mode artifact hosted >= 10k
            # concurrent studies in one process.
            capacity = report["benchmarks"]["multiplex_studies"]
            expected = 10_000 if report["mode"] == "full" else 1_000
            assert capacity["meta"]["studies"] == expected, path
            assert capacity["value"] > 0, path

    def test_observability_overhead_carries_hard_ceiling(self):
        # The observability gate: enabled-probe overhead must stay within
        # 3% of the unprobed hot paths on every committed artifact.
        for path in (PERF_DIR / "baseline.json", REPO_ROOT / "BENCH_perf.json"):
            entry = json.loads(path.read_text())["benchmarks"]["observability_overhead"]
            assert entry["meta"]["gated"] is True, path
            assert entry["meta"]["ceiling"] == 1.03, path
            assert entry["higher_is_better"] is False, path
            assert entry["value"] <= 1.03, path
            # Both instrumented workloads recorded their own ratio.
            assert "ratio_study_scheduler" in entry["meta"], path
            assert "ratio_multiplex" in entry["meta"], path

    def test_skipped_speedups_record_their_reason(self):
        # Wherever a committed artifact skipped a speedup, the skip must be
        # loud: reason recorded, cpu_count below the requirement.
        for path in (PERF_DIR / "baseline.json", REPO_ROOT / "BENCH_perf.json"):
            report = json.loads(path.read_text())
            for name, entry in report["benchmarks"].items():
                if entry["meta"].get("skipped"):
                    assert "cores" in entry["meta"]["skip_reason"], name
                    assert entry["meta"]["cpu_count"] < 8, name


class TestNormalisation:
    def test_throughput_divides_by_calibration(self, perf_utils):
        entry = perf_utils.benchmark_entry(
            5000.0, "jobs/s", higher_is_better=True, calibration_ops_per_s=1000.0
        )
        assert entry["normalized"] == pytest.approx(5.0)

    def test_duration_inverts_first(self, perf_utils):
        fast = perf_utils.benchmark_entry(
            2.0, "s", higher_is_better=False, calibration_ops_per_s=1000.0
        )
        slow = perf_utils.benchmark_entry(
            4.0, "s", higher_is_better=False, calibration_ops_per_s=1000.0
        )
        # Normalised scores are uniformly higher-is-better.
        assert fast["normalized"] > slow["normalized"]

    def test_rejects_nonpositive_values(self, perf_utils):
        with pytest.raises(ValueError):
            perf_utils.benchmark_entry(
                0.0, "jobs/s", higher_is_better=True, calibration_ops_per_s=1000.0
            )


def _report_with(
    normalized: dict[str, float],
    gated: dict[str, bool] | None = None,
    floors: dict[str, float] | None = None,
    skipped: set[str] | None = None,
    ceilings: dict[str, float] | None = None,
) -> dict:
    gated = gated or {}
    floors = floors or {}
    skipped = skipped or set()
    ceilings = ceilings or {}
    benchmarks = {}
    for name, score in normalized.items():
        meta: dict = {"gated": gated.get(name, True)}
        if name in floors:
            meta["floor"] = floors[name]
        if name in ceilings:
            meta["ceiling"] = ceilings[name]
        if name in skipped:
            meta.update(skipped=True, skip_reason="requires >= 4 cores, machine has 1")
            benchmarks[name] = {
                "value": None,
                "unit": "x",
                "higher_is_better": True,
                "normalized": None,
                "meta": meta,
            }
            continue
        benchmarks[name] = {
            "value": score,
            "unit": "x",
            "higher_is_better": True,
            "normalized": score,
            "meta": meta,
        }
    return {
        "schema_version": 2,
        "mode": "quick",
        "python": "3.11",
        "calibration_ops_per_s": 1.0,
        "benchmarks": benchmarks,
    }


class TestRegressionGate:
    def _run(self, check_regression, tmp_path, baseline, current, threshold=2.0):
        base_path = tmp_path / "baseline.json"
        cur_path = tmp_path / "current.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        return check_regression.main(
            [
                "--baseline",
                str(base_path),
                "--current",
                str(cur_path),
                "--threshold",
                str(threshold),
            ]
        )

    def test_identical_reports_pass(self, check_regression, tmp_path):
        report = _report_with({"a": 10.0, "b": 3.0})
        assert self._run(check_regression, tmp_path, report, report) == 0

    def test_mild_slowdown_within_threshold_passes(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0})
        current = _report_with({"a": 6.0})  # 1.67x slower < 2x threshold
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_regression_beyond_threshold_fails(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0})
        current = _report_with({"a": 4.0})  # 2.5x slower
        assert self._run(check_regression, tmp_path, baseline, current) == 1

    def test_ungated_benchmark_never_fails(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0}, gated={"a": False})
        current = _report_with({"a": 1.0}, gated={"a": False})
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_missing_benchmark_is_skipped(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0, "b": 5.0})
        current = _report_with({"a": 10.0})
        assert self._run(check_regression, tmp_path, baseline, current) == 0


class TestFloorGate:
    _run = TestRegressionGate._run

    def test_value_below_floor_fails_with_named_benchmark(
        self, check_regression, tmp_path, capsys
    ):
        baseline = _report_with({"parallel_speedup": 1.5}, floors={"parallel_speedup": 1.3})
        current = _report_with({"parallel_speedup": 1.1}, floors={"parallel_speedup": 1.3})
        assert self._run(check_regression, tmp_path, baseline, current) == 1
        err = capsys.readouterr().err
        # Satellite: the failure message names the offending benchmark and
        # its floor.
        assert "parallel_speedup" in err
        assert "1.3" in err
        assert "floor" in err

    def test_value_at_floor_passes(self, check_regression, tmp_path):
        report = _report_with({"parallel_speedup": 1.3}, floors={"parallel_speedup": 1.3})
        assert self._run(check_regression, tmp_path, report, report) == 0

    def test_floor_binds_even_when_baseline_skipped(self, check_regression, tmp_path):
        # The committed baseline may come from a small machine (skipped
        # speedups); a 4-core CI runner measuring below the floor must
        # still fail.
        baseline = _report_with(
            {"parallel_speedup": 0.0},
            floors={"parallel_speedup": 1.3},
            skipped={"parallel_speedup"},
        )
        current = _report_with({"parallel_speedup": 1.0}, floors={"parallel_speedup": 1.3})
        assert self._run(check_regression, tmp_path, baseline, current) == 1

    def test_skipped_current_never_fails(self, check_regression, tmp_path):
        baseline = _report_with({"parallel_speedup": 1.5}, floors={"parallel_speedup": 1.3})
        current = _report_with(
            {"parallel_speedup": 0.0},
            floors={"parallel_speedup": 1.3},
            skipped={"parallel_speedup"},
        )
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_ungated_floor_is_informational(self, check_regression, tmp_path):
        report_kwargs = dict(
            gated={"parallel_speedup_8": False}, floors={"parallel_speedup_8": 2.5}
        )
        baseline = _report_with({"parallel_speedup_8": 3.0}, **report_kwargs)
        current = _report_with({"parallel_speedup_8": 2.0}, **report_kwargs)
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_meta_less_skipped_entry_does_not_crash(self, check_regression, tmp_path):
        # Bugfix: a skipped entry is anything with ``value: null`` — the
        # ``meta`` block is optional (hand-pruned baselines drop it), but the
        # comparison indexed ``entry["meta"]`` directly and raised KeyError
        # before it could render "skipped: no reason recorded".
        bare_skip = {
            "value": None,
            "unit": "x",
            "higher_is_better": True,
            "normalized": None,
        }
        baseline = _report_with({"a": 10.0})
        current = _report_with({"a": 10.0})
        current["benchmarks"]["a"] = dict(bare_skip)
        assert self._run(check_regression, tmp_path, baseline, current) == 0
        baseline["benchmarks"]["a"] = dict(bare_skip)
        current = _report_with({"a": 10.0})
        assert self._run(check_regression, tmp_path, baseline, current) == 0


class TestCeilingGate:
    """``meta.ceiling`` — the floor's dual, for overhead-ratio benchmarks."""

    _run = TestRegressionGate._run

    def test_value_above_ceiling_fails_with_named_benchmark(
        self, check_regression, tmp_path, capsys
    ):
        baseline = _report_with(
            {"observability_overhead": 1.0}, ceilings={"observability_overhead": 1.03}
        )
        current = _report_with(
            {"observability_overhead": 1.08}, ceilings={"observability_overhead": 1.03}
        )
        assert self._run(check_regression, tmp_path, baseline, current) == 1
        err = capsys.readouterr().err
        assert "observability_overhead" in err
        assert "1.03" in err
        assert "ceiling" in err

    def test_value_at_ceiling_passes(self, check_regression, tmp_path):
        report = _report_with(
            {"observability_overhead": 1.03}, ceilings={"observability_overhead": 1.03}
        )
        assert self._run(check_regression, tmp_path, report, report) == 0

    def test_ungated_ceiling_is_informational(self, check_regression, tmp_path):
        baseline = _report_with(
            {"obs": 1.0}, gated={"obs": False}, ceilings={"obs": 1.03}
        )
        current = _report_with(
            {"obs": 2.0}, gated={"obs": False}, ceilings={"obs": 1.03}
        )
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_candidate_only_ceiling_still_binds(self, check_regression, tmp_path, capsys):
        # A brand-new overhead benchmark missing from the baseline must
        # still enforce its ceiling, not just complain about staleness.
        baseline = _report_with({"other": 1.0})
        current = _report_with(
            {"other": 1.0, "observability_overhead": 1.5},
            ceilings={"observability_overhead": 1.03},
        )
        assert self._run(check_regression, tmp_path, baseline, current) == 1
        assert "ceiling" in capsys.readouterr().err

    def test_markdown_marks_above_ceiling(self, check_regression, tmp_path):
        baseline = _report_with({"obs": 1.0}, ceilings={"obs": 1.03})
        current = _report_with({"obs": 1.5}, ceilings={"obs": 1.03})
        base_path = tmp_path / "baseline.json"
        cur_path = tmp_path / "current.json"
        md_path = tmp_path / "trend.md"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        check_regression.main(
            [
                "--baseline",
                str(base_path),
                "--current",
                str(cur_path),
                "--markdown",
                str(md_path),
                "--no-gate",
            ]
        )
        assert "❌ ABOVE CEILING" in md_path.read_text()


class TestCandidateOnlyBenchmarks:
    """A benchmark name present only in the candidate report (stale baseline).

    Satellite: the gate must report a clear, named error — not a silent
    "only in current" row (which would skip the new benchmark's ratio *and*
    floor checks), and not a KeyError traceback.
    """

    _run = TestRegressionGate._run

    def test_gated_candidate_only_fails_with_regenerate_hint(
        self, check_regression, tmp_path, capsys
    ):
        baseline = _report_with({"a": 10.0})
        current = _report_with({"a": 10.0, "multiplex_speedup": 3.0})
        assert self._run(check_regression, tmp_path, baseline, current) == 1
        err = capsys.readouterr().err
        assert "multiplex_speedup" in err
        assert "missing from the baseline" in err
        assert "run_perf.py" in err  # says how to fix it

    def test_candidate_only_floor_still_binds(self, check_regression, tmp_path, capsys):
        # A brand-new gated benchmark below its hard floor must fail on the
        # floor (the stronger signal), not just on baseline staleness.
        baseline = _report_with({"a": 10.0})
        current = _report_with(
            {"a": 10.0, "multiplex_speedup": 1.2}, floors={"multiplex_speedup": 2.0}
        )
        assert self._run(check_regression, tmp_path, baseline, current) == 1
        err = capsys.readouterr().err
        assert "below" in err and "floor" in err and "multiplex_speedup" in err

    def test_ungated_candidate_only_passes(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0})
        current = _report_with(
            {"a": 10.0, "experimental": 1.0}, gated={"experimental": False}
        )
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_skipped_candidate_only_passes(self, check_regression, tmp_path):
        # A new benchmark that this machine cannot run (value: null) is a
        # loud skip, not a staleness failure.
        baseline = _report_with({"a": 10.0})
        current = _report_with(
            {"a": 10.0, "multiplex_speedup": 0.0}, skipped={"multiplex_speedup"}
        )
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_baseline_only_is_still_benign(self, check_regression, tmp_path):
        # The inverse direction (retired benchmark) stays a non-failure.
        baseline = _report_with({"a": 10.0, "retired": 5.0})
        current = _report_with({"a": 10.0})
        assert self._run(check_regression, tmp_path, baseline, current) == 0

    def test_malformed_entry_reports_instead_of_crashing(
        self, check_regression, tmp_path, capsys
    ):
        baseline = _report_with({"a": 10.0})
        current = _report_with({"a": 10.0})
        current["benchmarks"]["broken"] = {"value": 1.0}  # no normalized/unit/meta
        assert self._run(check_regression, tmp_path, baseline, current) == 1
        err = capsys.readouterr().err
        assert "broken" in err and "missing required key" in err


class TestReporting:
    def _run(self, check_regression, tmp_path, baseline, current, extra_args=()):
        base_path = tmp_path / "baseline.json"
        cur_path = tmp_path / "current.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        return check_regression.main(
            ["--baseline", str(base_path), "--current", str(cur_path), *extra_args]
        )

    def test_no_gate_reports_but_exits_zero(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0})
        current = _report_with({"a": 1.0})  # 10x regression
        assert self._run(check_regression, tmp_path, baseline, current) == 1
        assert (
            self._run(check_regression, tmp_path, baseline, current, ["--no-gate"]) == 0
        )

    def test_markdown_trend_table(self, check_regression, tmp_path):
        baseline = _report_with({"a": 10.0, "parallel_speedup": 1.5})
        current = _report_with({"a": 12.0, "parallel_speedup": 1.6})
        md_path = tmp_path / "summary.md"
        assert (
            self._run(
                check_regression,
                tmp_path,
                baseline,
                current,
                ["--markdown", str(md_path)],
            )
            == 0
        )
        table = md_path.read_text()
        assert "| benchmark |" in table
        assert "`parallel_speedup`" in table
        assert "+20.0%" in table  # a's delta
        assert "✅" in table

    def test_markdown_marks_floor_failures(self, check_regression, tmp_path):
        baseline = _report_with({"parallel_speedup": 1.5}, floors={"parallel_speedup": 1.3})
        current = _report_with({"parallel_speedup": 1.0}, floors={"parallel_speedup": 1.3})
        md_path = tmp_path / "summary.md"
        assert (
            self._run(
                check_regression,
                tmp_path,
                baseline,
                current,
                ["--markdown", str(md_path), "--no-gate"],
            )
            == 0
        )
        assert "BELOW FLOOR" in md_path.read_text()

    def test_markdown_renders_skipped_rows_with_reason(self, check_regression, tmp_path):
        # Satellite: a benchmark skipped on the current machine (small CI
        # runner) must show up as "skipped: <reason>", not as a row of null
        # deltas that reads like missing data.
        baseline = _report_with({"a": 10.0, "parallel_speedup": 1.5})
        current = _report_with(
            {"a": 10.0, "parallel_speedup": 0.0}, skipped={"parallel_speedup"}
        )
        md_path = tmp_path / "summary.md"
        assert (
            self._run(
                check_regression,
                tmp_path,
                baseline,
                current,
                ["--markdown", str(md_path)],
            )
            == 0
        )
        table = md_path.read_text()
        row = next(line for line in table.splitlines() if "`parallel_speedup`" in line)
        assert "skipped: requires >= 4 cores, machine has 1" in row
        # The delta column says why it is empty instead of a bare null.
        assert "| skipped on current |" in row

    def test_markdown_renders_baseline_skips_with_reason(self, check_regression, tmp_path):
        baseline = _report_with(
            {"a": 10.0, "parallel_speedup": 0.0}, skipped={"parallel_speedup"}
        )
        current = _report_with({"a": 10.0, "parallel_speedup": 1.5})
        md_path = tmp_path / "summary.md"
        assert (
            self._run(
                check_regression,
                tmp_path,
                baseline,
                current,
                ["--markdown", str(md_path)],
            )
            == 0
        )
        row = next(
            line
            for line in md_path.read_text().splitlines()
            if "`parallel_speedup`" in line
        )
        assert "skipped: requires >= 4 cores, machine has 1" in row
        assert "skipped on baseline" in row
