"""Tests for the high-level tune() facade."""

from __future__ import annotations

import pytest

from repro import FunctionObjective, tune
from repro.searchspace import SearchSpace, Uniform

SPACE = SearchSpace({"x": Uniform(0.0, 1.0)})


def quadratic_train(config, state, from_resource, to_resource):
    """Resumable toy: loss approaches (x - 0.3)^2 as resource grows."""
    target = (config["x"] - 0.3) ** 2
    progress = min(to_resource / 16.0, 1.0)
    return None, 1.0 * (1 - progress) + target * progress


class TestFunctionObjective:
    def test_wraps_callable(self):
        obj = FunctionObjective(quadratic_train, SPACE, 16.0)
        assert obj.evaluate({"x": 0.3}, 16.0) == pytest.approx(0.0)
        assert obj.cost({"x": 0.3}, 0.0, 8.0) == 8.0

    def test_custom_cost(self):
        obj = FunctionObjective(
            quadratic_train, SPACE, 16.0, cost_fn=lambda c, a, b: 3.0 * (b - a)
        )
        assert obj.cost({"x": 0.1}, 2.0, 4.0) == 6.0


@pytest.mark.parametrize(
    "scheduler",
    ["asha", "sha", "hyperband", "async_hyperband", "bohb", "random", "pbt", "gp"],
)
def test_every_scheduler_name_runs(scheduler):
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler=scheduler,
        num_workers=2,
        time_limit=2000.0,
        seed=1,
    )
    assert result.best_config is not None
    assert result.best_loss is not None
    assert result.num_trials > 0


def test_asha_finds_the_optimum():
    result = tune(
        quadratic_train, SPACE, max_resource=16.0, num_workers=4, time_limit=5000.0
    )
    assert abs(result.best_config["x"] - 0.3) < 0.1
    assert result.best_loss < 0.02


def test_unknown_names_rejected():
    with pytest.raises(KeyError):
        tune(quadratic_train, SPACE, max_resource=16.0, scheduler="magic")
    with pytest.raises(KeyError):
        tune(quadratic_train, SPACE, max_resource=16.0, backend="quantum")


def test_threads_backend():
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        backend="threads",
        num_workers=2,
        time_limit=5.0,
        scheduler_kwargs={"max_trials": 30},
    )
    assert result.best_loss is not None
    assert result.best_loss < 0.3


def test_scheduler_kwargs_passed_through():
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler="random",
        scheduler_kwargs={"max_trials": 5},
        time_limit=1e6,
    )
    assert result.num_trials == 5


def test_deterministic_given_seed():
    kwargs = dict(max_resource=16.0, num_workers=3, time_limit=1000.0, seed=42)
    a = tune(quadratic_train, SPACE, **kwargs)
    b = tune(quadratic_train, SPACE, **kwargs)
    assert a.best_config == b.best_config
    assert a.best_loss == b.best_loss
