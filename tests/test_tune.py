"""Tests for the high-level tune() facade."""

from __future__ import annotations

import pytest

from repro import FunctionObjective, tune
from repro.searchspace import SearchSpace, Uniform

SPACE = SearchSpace({"x": Uniform(0.0, 1.0)})


def quadratic_train(config, state, from_resource, to_resource):
    """Resumable toy: loss approaches (x - 0.3)^2 as resource grows."""
    target = (config["x"] - 0.3) ** 2
    progress = min(to_resource / 16.0, 1.0)
    return None, 1.0 * (1 - progress) + target * progress


class TestFunctionObjective:
    def test_wraps_callable(self):
        obj = FunctionObjective(quadratic_train, SPACE, 16.0)
        assert obj.evaluate({"x": 0.3}, 16.0) == pytest.approx(0.0)
        assert obj.cost({"x": 0.3}, 0.0, 8.0) == 8.0

    def test_custom_cost(self):
        obj = FunctionObjective(
            quadratic_train, SPACE, 16.0, cost_fn=lambda c, a, b: 3.0 * (b - a)
        )
        assert obj.cost({"x": 0.1}, 2.0, 4.0) == 6.0


@pytest.mark.parametrize(
    "scheduler",
    ["asha", "sha", "hyperband", "async_hyperband", "bohb", "random", "pbt", "gp"],
)
def test_every_scheduler_name_runs(scheduler):
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler=scheduler,
        num_workers=2,
        time_limit=2000.0,
        seed=1,
    )
    assert result.best_config is not None
    assert result.best_loss is not None
    assert result.num_trials > 0


def test_asha_finds_the_optimum():
    result = tune(
        quadratic_train, SPACE, max_resource=16.0, num_workers=4, time_limit=5000.0
    )
    assert abs(result.best_config["x"] - 0.3) < 0.1
    assert result.best_loss < 0.02


def test_unknown_names_rejected():
    with pytest.raises(KeyError) as excinfo:
        tune(quadratic_train, SPACE, max_resource=16.0, scheduler="magic")
    # The error lists both axes of choice.
    assert "scheduler options" in str(excinfo.value)
    assert "searcher options" in str(excinfo.value)
    with pytest.raises(KeyError):
        tune(quadratic_train, SPACE, max_resource=16.0, backend="quantum")
    with pytest.raises(KeyError):
        tune(quadratic_train, SPACE, max_resource=16.0, searcher="magic")


def test_vizier_aliases_gp():
    from repro.core import VizierGP

    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler="vizier",
        scheduler_kwargs={"max_trials": 8},
        time_limit=1e6,
    )
    assert isinstance(result.scheduler, VizierGP)
    assert result.num_trials == 8


def test_prebuilt_scheduler_instance_accepted():
    import numpy as np

    from repro.core import RandomSearch

    sched = RandomSearch(SPACE, np.random.default_rng(3), max_resource=16.0, max_trials=6)
    result = tune(quadratic_train, SPACE, max_resource=16.0, scheduler=sched, time_limit=1e6)
    assert result.scheduler is sched
    assert result.num_trials == 6


def test_prebuilt_scheduler_rejects_extra_config():
    import numpy as np

    from repro.core import RandomSearch

    sched = RandomSearch(SPACE, np.random.default_rng(3), max_resource=16.0, max_trials=6)
    with pytest.raises(ValueError):
        tune(
            quadratic_train,
            SPACE,
            max_resource=16.0,
            scheduler=sched,
            scheduler_kwargs={"max_trials": 2},
        )
    with pytest.raises(ValueError):
        tune(quadratic_train, SPACE, max_resource=16.0, scheduler=sched, searcher="kde")


@pytest.mark.parametrize("searcher", ["random", "kde", "gp", "grid"])
@pytest.mark.parametrize("scheduler", ["asha", "sha", "random"])
def test_scheduler_searcher_combinations_run(scheduler, searcher):
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler=scheduler,
        searcher=searcher,
        searcher_kwargs={"num_init": 4, "num_candidates": 16} if searcher == "gp" else None,
        num_workers=2,
        time_limit=1500.0,
        seed=2,
    )
    assert result.best_config is not None
    assert result.num_trials > 0


def test_searcher_on_threads_backend():
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler="asha",
        searcher="kde",
        backend="threads",
        num_workers=2,
        time_limit=5.0,
        scheduler_kwargs={"max_trials": 20},
    )
    assert result.best_loss is not None


def test_bohb_rejects_searcher():
    with pytest.raises(ValueError, match="owns its own sampling"):
        tune(quadratic_train, SPACE, max_resource=16.0, scheduler="bohb", searcher="kde")


def test_origin_telemetry_and_model_hit_rate():
    """Explicit searchers stamp proposal origins; metrics derive the hit rate."""
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler="asha",
        searcher="kde",
        searcher_kwargs={"random_fraction": 0.1},
        num_workers=2,
        time_limit=4000.0,
        seed=3,
        telemetry=True,
    )
    report = result.backend_result.telemetry
    tagged = {k: v for k, v in report.counters.items() if k.startswith("proposals.")}
    assert sum(tagged.values()) == result.num_trials
    assert "proposals.random_fallback" in tagged  # warm-up is always random
    hit_rate = report.model_hit_rate()
    assert 0.0 <= hit_rate <= 1.0
    if "proposals.model_based" in tagged:
        assert hit_rate > 0.0


def test_default_paths_emit_no_origin():
    """Legacy/default schedulers keep their telemetry streams origin-free."""
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler="bohb",
        num_workers=2,
        time_limit=1000.0,
        telemetry=True,
    )
    report = result.backend_result.telemetry
    assert not any(k.startswith("proposals.") for k in report.counters)
    import math

    assert math.isnan(report.model_hit_rate())


def test_threads_backend():
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        backend="threads",
        num_workers=2,
        time_limit=5.0,
        scheduler_kwargs={"max_trials": 30},
    )
    assert result.best_loss is not None
    assert result.best_loss < 0.3


def test_scheduler_kwargs_passed_through():
    result = tune(
        quadratic_train,
        SPACE,
        max_resource=16.0,
        scheduler="random",
        scheduler_kwargs={"max_trials": 5},
        time_limit=1e6,
    )
    assert result.num_trials == 5


def test_deterministic_given_seed():
    kwargs = dict(max_resource=16.0, num_workers=3, time_limit=1000.0, seed=42)
    a = tune(quadratic_train, SPACE, **kwargs)
    b = tune(quadratic_train, SPACE, **kwargs)
    assert a.best_config == b.best_config
    assert a.best_loss == b.best_loss


def test_retry_policy_passes_through_to_backend():
    from repro import RetryPolicy

    calls = {}

    def flaky_train(config, state, from_resource, to_resource):
        key = round(config["x"], 12)
        calls[key] = calls.get(key, 0) + 1
        if calls[key] == 1:
            raise RuntimeError("transient failure")
        return quadratic_train(config, state, from_resource, to_resource)

    result = tune(
        flaky_train,
        SPACE,
        max_resource=16.0,
        scheduler="random",
        scheduler_kwargs={"max_trials": 4},
        num_workers=2,
        time_limit=1e6,
        retry_policy=RetryPolicy(max_attempts=3),
    )
    # Every config's first training call crashed, yet all four finished.
    assert result.backend_result.jobs_retried == 4
    assert result.backend_result.trials_abandoned == 0
    assert len(result.backend_result.measurements) == 4
    assert result.best_config is not None
