"""Tests for the parallel experiment engine.

The contract under test: process fan-out changes *nothing* about the
results — parallel runs return byte-identical records and telemetry metric
reports in the same order as the in-process path — and everything that
cannot run in parallel degrades gracefully to that path.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.methods import MethodSettings, standard_methods
from repro.experiments.parallel import JOBS_ENV_VAR, chunk_spans, parallel_map, resolve_jobs
from repro.experiments.runner import run_methods, run_trials, sequence_seeds
from repro.objectives import sim_workload
from repro.telemetry import TelemetryHub


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise RuntimeError(f"task {x} failed")


# ------------------------------------------------------------ resolve_jobs


def test_resolve_jobs_argument_wins(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "7")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env_fallback(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "5")
    assert resolve_jobs(None) == 5
    monkeypatch.delenv(JOBS_ENV_VAR)
    assert resolve_jobs(None) == 1
    monkeypatch.setenv(JOBS_ENV_VAR, "")
    assert resolve_jobs(None) == 1


def test_resolve_jobs_negative_means_all_cores():
    assert resolve_jobs(-1) >= 1


def test_resolve_jobs_rejects_zero_and_garbage(monkeypatch):
    with pytest.raises(ValueError):
        resolve_jobs(0)
    monkeypatch.setenv(JOBS_ENV_VAR, "lots")
    with pytest.raises(ValueError):
        resolve_jobs(None)


# ------------------------------------------------------------- chunk_spans


def test_chunk_spans_default_one_dispatch_per_worker():
    # The overhead contract: ceil(n/jobs)-sized chunks mean per-dispatch
    # costs (submit, pipe round-trip, result pickle) are paid `jobs` times
    # per pool, not `n` times.
    assert chunk_spans(8, 2) == [(0, 4), (4, 8)]
    assert chunk_spans(10, 4) == [(0, 3), (3, 6), (6, 9), (9, 10)]
    assert chunk_spans(3, 8) == [(0, 1), (1, 2), (2, 3)]


def test_chunk_spans_cover_every_task_exactly_once():
    for n_tasks in (0, 1, 7, 16, 23):
        for jobs in (1, 2, 5, 8):
            spans = chunk_spans(n_tasks, jobs)
            covered = [i for start, stop in spans for i in range(start, stop)]
            assert covered == list(range(n_tasks)), (n_tasks, jobs)
            assert len(spans) <= max(jobs, 1) or n_tasks == 0


def test_chunk_spans_explicit_chunksize():
    assert chunk_spans(5, 2, chunksize=2) == [(0, 2), (2, 4), (4, 5)]
    assert chunk_spans(4, 2, chunksize=10) == [(0, 4)]


def test_chunk_spans_rejects_bad_arguments():
    with pytest.raises(ValueError):
        chunk_spans(-1, 2)
    with pytest.raises(ValueError):
        chunk_spans(4, 0)
    with pytest.raises(ValueError):
        chunk_spans(4, 2, chunksize=0)


# ------------------------------------------------------------ parallel_map


def test_parallel_map_preserves_order():
    tasks = list(range(20))
    assert parallel_map(_square, tasks, 4) == [x * x for x in tasks]


def test_parallel_map_sequential_path():
    assert parallel_map(_square, [3], 8) == [9]
    assert parallel_map(_square, list(range(5)), 1) == [0, 1, 4, 9, 16]
    assert parallel_map(_square, [], 4) == []


def test_parallel_map_handles_closures():
    offset = 10
    assert parallel_map(lambda x: x + offset, [1, 2, 3], 2) == [11, 12, 13]


def test_parallel_map_task_errors_surface():
    with pytest.raises(RuntimeError, match="task 0 failed"):
        parallel_map(_boom, [0, 1], 2)


def _boom_on_five(x: int) -> int:
    if x == 5:
        raise RuntimeError(f"task {x} failed")
    return x * x


def test_parallel_map_mid_chunk_error_reraised_at_failing_task():
    # Task 5 sits mid-chunk (chunks of 4: [0..3], [4..7]); the failed chunk
    # is recomputed in-process in task order, so the *original* error for
    # the *right* task surfaces — not a pool error, not a neighbour's.
    with pytest.raises(RuntimeError, match="task 5 failed"):
        parallel_map(_boom_on_five, list(range(8)), 2)


def test_parallel_map_explicit_chunksize_preserves_order():
    tasks = list(range(17))
    assert parallel_map(_square, tasks, 4, chunksize=3) == [x * x for x in tasks]


def test_parallel_map_falls_back_when_fork_unavailable(monkeypatch):
    import repro.experiments.parallel as parallel_mod

    calls = []
    monkeypatch.setattr(parallel_mod, "_can_fork", lambda: False)

    def tracked(x):
        calls.append(x)
        return x * x

    # No fork start method: the engine must run in-process (calls recorded
    # in our interpreter prove it) and still return correct, ordered output.
    assert parallel_map(tracked, [1, 2, 3, 4], 4) == [1, 4, 9, 16]
    assert calls == [1, 2, 3, 4]


def test_parallel_map_unpicklable_results_fall_back():
    # Closures cannot be pickled back from a worker; the engine must fall
    # back to computing them in-process rather than crashing.
    results = parallel_map(lambda x: (lambda: x), [1, 2, 3], 2)
    assert [f() for f in results] == [1, 2, 3]


def test_parallel_map_injected_executor():
    with ThreadPoolExecutor(max_workers=2) as pool:
        assert parallel_map(_square, list(range(8)), executor=pool) == [
            x * x for x in range(8)
        ]


# ---------------------------------------------------------- sequence_seeds


def test_sequence_seeds_exported_and_deterministic():
    from repro.experiments.runner import __all__ as runner_all

    assert "sequence_seeds" in runner_all
    assert list(sequence_seeds(3, 4)) == [3, 1003, 2003, 3003]


# ----------------------------------------------- parallel == sequential


def _make_objective(seed: int):
    return sim_workload.make_objective(seed_salt=seed)


def _run_suite(n_jobs: int):
    settings = MethodSettings(eta=4, min_resource=1.0, max_resource=16.0, n=16)
    factories = standard_methods(settings, include=("ASHA", "SHA"))
    return run_methods(
        factories,
        _make_objective,
        num_workers=4,
        time_limit=80.0,
        seeds=sequence_seeds(0, 3),
        telemetry=lambda seed: TelemetryHub.with_metrics(),
        n_jobs=n_jobs,
    )


def test_parallel_records_identical_to_sequential():
    """Satellite: n_jobs=4 output is byte-identical to n_jobs=1.

    Two methods, three seeds, telemetry on: every record (trace + backend
    log) and every metrics report must serialise to the same bytes.
    """
    sequential = _run_suite(1)
    parallel = _run_suite(4)
    assert list(sequential) == list(parallel) == ["ASHA", "SHA"]
    for method in sequential:
        seq_records = sequential[method]
        par_records = parallel[method]
        assert [r.seed for r in seq_records] == [r.seed for r in par_records]
        for seq, par in zip(seq_records, par_records):
            assert pickle.dumps(seq.trace) == pickle.dumps(par.trace)
            assert seq.backend.telemetry is not None
            # The whole backend log — measurements, failures, utilisation,
            # metrics report — must serialise identically.
            assert pickle.dumps(seq.backend) == pickle.dumps(par.backend)


def test_run_trials_parallel_matches_sequential():
    def make_scheduler(objective, rng):
        from repro.core import ASHA

        return ASHA(objective.space, rng, min_resource=1.0, max_resource=16.0, eta=4)

    kwargs = dict(num_workers=3, time_limit=60.0, seeds=[0, 11, 42])
    seq = run_trials("ASHA", make_scheduler, _make_objective, **kwargs, n_jobs=1)
    par = run_trials("ASHA", make_scheduler, _make_objective, **kwargs, n_jobs=3)
    assert [r.seed for r in seq] == [r.seed for r in par] == [0, 11, 42]
    for a, b in zip(seq, par):
        assert a.trace.times == b.trace.times
        assert a.trace.values == b.trace.values


def test_run_trials_env_knob(monkeypatch):
    def make_scheduler(objective, rng):
        from repro.core import ASHA

        return ASHA(objective.space, rng, min_resource=1.0, max_resource=16.0, eta=4)

    kwargs = dict(num_workers=2, time_limit=40.0, seeds=[0, 1])
    seq = run_trials("ASHA", make_scheduler, _make_objective, **kwargs)
    monkeypatch.setenv(JOBS_ENV_VAR, "2")
    par = run_trials("ASHA", make_scheduler, _make_objective, **kwargs)
    for a, b in zip(seq, par):
        assert a.trace.times == b.trace.times
        assert a.trace.values == b.trace.values
