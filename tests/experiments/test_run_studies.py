"""run_studies: the multiplexed fan-in entry point, pinned against run_trials."""

from __future__ import annotations

from repro.core import ASHA
from repro.experiments.runner import journal_path, run_studies, run_trials
from repro.experiments.toys import toy_objective
from repro.study import read_journal


def objective_factory(seed):
    return toy_objective(constant=False)


def make_scheduler(objective, rng):
    return ASHA(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)


COMMON = dict(
    num_workers=4,
    time_limit=40.0,
    seeds=[0, 1000, 2000],
    straggler_std=0.2,
    drop_probability=0.01,
)


def test_run_studies_matches_run_trials(tmp_path):
    """Multiplexed trials produce the exact records of the sequential path."""
    sequential = run_trials(
        "ASHA",
        make_scheduler,
        objective_factory,
        journal_out=tmp_path / "seq",
        **COMMON,
    )
    multiplexed = run_studies(
        "ASHA",
        make_scheduler,
        objective_factory,
        journal_out=tmp_path / "mux",
        fair_share=2,
        **COMMON,
    )
    assert len(sequential) == len(multiplexed)
    for seq, mux in zip(sequential, multiplexed):
        assert seq.method == mux.method and seq.seed == mux.seed
        assert seq.backend.measurements == mux.backend.measurements
        assert seq.backend.elapsed == mux.backend.elapsed
        assert seq.backend.utilization == mux.backend.utilization
        assert seq.trace.times == mux.trace.times
        assert seq.trace.values == mux.trace.values
        assert seq.trace.trial_ids == mux.trace.trial_ids
        seq_journal = journal_path(tmp_path / "seq", "ASHA", seq.seed).read_bytes()
        mux_journal = journal_path(tmp_path / "mux", "ASHA", mux.seed).read_bytes()
        assert seq_journal == mux_journal


def test_run_studies_without_journals():
    records = run_studies("ASHA", make_scheduler, objective_factory, **COMMON)
    assert len(records) == 3
    assert all(r.backend.measurements for r in records)


def test_run_studies_journals_are_valid(tmp_path):
    run_studies(
        "ASHA",
        make_scheduler,
        objective_factory,
        journal_out=tmp_path,
        commit_interval=1,
        **COMMON,
    )
    for seed in COMMON["seeds"]:
        records, _, terminated = read_journal(journal_path(tmp_path, "ASHA", seed))
        assert terminated
        assert records[0]["kind"] == "journal_header"


def test_output_dirs_created_before_fanout(tmp_path):
    """The journal/telemetry dirs exist even with zero trials to fan out.

    Pins the satellite fix: directory creation happens once in the parent,
    before the parallel map, not lazily inside forked workers.
    """
    out_j = tmp_path / "nested" / "journals"
    out_t = tmp_path / "nested" / "events"
    records = run_trials(
        "ASHA",
        make_scheduler,
        objective_factory,
        num_workers=2,
        time_limit=5.0,
        seeds=[],
        journal_out=out_j,
        telemetry_out=out_t,
    )
    assert records == []
    assert out_j.is_dir() and out_t.is_dir()
    assert run_studies(
        "ASHA",
        make_scheduler,
        objective_factory,
        num_workers=2,
        time_limit=5.0,
        seeds=[],
        journal_out=out_j,
    ) == []
