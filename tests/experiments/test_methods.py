"""Tests for MethodSettings defaults and factory wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ASHA, BOHB, PBT, SynchronousSHA
from repro.experiments.methods import MethodSettings, standard_methods
from repro.experiments.toys import toy_objective


def test_pbt_interval_defaults_to_thirty_rounds():
    s = MethodSettings(eta=4, min_resource=1.0, max_resource=3000.0)
    assert s.pbt_interval == pytest.approx(100.0)


def test_explicit_pbt_interval_kept():
    s = MethodSettings(eta=4, min_resource=1.0, max_resource=3000.0, pbt_interval=7.0)
    assert s.pbt_interval == 7.0


def test_factories_build_requested_types():
    settings = MethodSettings(eta=3, min_resource=1.0, max_resource=9.0, n=9, pbt_interval=3.0)
    objective = toy_objective()
    rng = np.random.default_rng(0)
    factories = standard_methods(settings)
    assert isinstance(factories["ASHA"](objective, rng), ASHA)
    assert isinstance(factories["SHA"](objective, rng), SynchronousSHA)
    assert isinstance(factories["BOHB"](objective, rng), BOHB)
    assert isinstance(factories["PBT"](objective, rng), PBT)


def test_grow_brackets_flag_propagates():
    settings = MethodSettings(
        eta=3, min_resource=1.0, max_resource=9.0, n=9, grow_brackets=True, pbt_interval=3.0
    )
    objective = toy_objective()
    sha = standard_methods(settings)["SHA"](objective, np.random.default_rng(0))
    assert sha.grow_brackets is True


def test_frozen_keys_propagate_to_pbt():
    settings = MethodSettings(
        eta=3,
        min_resource=1.0,
        max_resource=9.0,
        pbt_interval=3.0,
        pbt_frozen=frozenset({"quality"}),
    )
    objective = toy_objective()
    pbt = standard_methods(settings)["PBT"](objective, np.random.default_rng(0))
    assert pbt.frozen == frozenset({"quality"})
