"""Tests for the experiment runner and method factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ASHA
from repro.experiments.methods import MethodSettings, standard_methods
from repro.experiments.runner import aggregate_methods, run_trials
from repro.experiments.toys import toy_objective


def settings_for_toy() -> MethodSettings:
    return MethodSettings(eta=3, min_resource=1.0, max_resource=9.0, n=9, pbt_interval=3.0)


def test_standard_methods_names():
    factories = standard_methods(settings_for_toy())
    assert set(factories) == {
        "Random",
        "SHA",
        "Hyperband",
        "PBT",
        "ASHA",
        "ASHA (KDE)",
        "ASHA (GP)",
        "Hyperband (async)",
        "BOHB",
    }


def test_standard_methods_include_filter():
    factories = standard_methods(settings_for_toy(), include=("ASHA", "Random"))
    assert list(factories) == ["ASHA", "Random"]
    with pytest.raises(KeyError):
        standard_methods(settings_for_toy(), include=("Nope",))


def test_factories_build_working_schedulers():
    factories = standard_methods(settings_for_toy())
    objective = toy_objective()
    for name, factory in factories.items():
        scheduler = factory(objective, np.random.default_rng(0))
        job = scheduler.next_job()
        assert job is not None, name
        scheduler.report(job, 0.5)


def test_run_trials_produces_one_record_per_seed():
    def objective_factory(seed):
        return toy_objective(constant=False)

    def make_scheduler(objective, rng):
        return ASHA(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)

    records = run_trials(
        "ASHA",
        make_scheduler,
        objective_factory,
        num_workers=2,
        time_limit=60.0,
        seeds=range(3),
    )
    assert [r.seed for r in records] == [0, 1, 2]
    assert all(r.method == "ASHA" for r in records)
    assert all(r.trace.times for r in records)
    assert all(r.backend is not None for r in records)


def test_run_trials_deterministic_per_seed():
    def objective_factory(seed):
        return toy_objective(constant=False)

    def make_scheduler(objective, rng):
        return ASHA(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)

    kwargs = dict(num_workers=2, time_limit=50.0, seeds=[7])
    a = run_trials("ASHA", make_scheduler, objective_factory, **kwargs)[0]
    b = run_trials("ASHA", make_scheduler, objective_factory, **kwargs)[0]
    assert a.trace.times == b.trace.times
    assert a.trace.values == b.trace.values


def test_aggregate_methods_common_grid():
    def objective_factory(seed):
        return toy_objective(constant=False)

    def make_scheduler(objective, rng):
        return ASHA(objective.space, rng, min_resource=1.0, max_resource=9.0, eta=3)

    records = {
        "ASHA": run_trials(
            "ASHA",
            make_scheduler,
            objective_factory,
            num_workers=2,
            time_limit=40.0,
            seeds=range(2),
        )
    }
    curves = aggregate_methods(records, time_limit=40.0, grid_points=10)
    assert curves["ASHA"].grid.shape == (10,)
    assert np.isfinite(curves["ASHA"].mean[-1])
