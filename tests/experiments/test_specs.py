"""Tests that the experiment registry stays consistent with the code."""

from __future__ import annotations

import os

import pytest

from repro.experiments import EXPERIMENTS, figures, get_spec

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_every_figure_has_a_spec():
    ids = {spec.experiment_id for spec in EXPERIMENTS}
    for fig in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
        assert fig in ids


def test_drivers_exist():
    for spec in EXPERIMENTS:
        assert hasattr(figures, spec.driver), spec.experiment_id


def test_bench_files_exist():
    for spec in EXPERIMENTS:
        path = os.path.join(REPO_ROOT, spec.bench)
        assert os.path.exists(path), f"{spec.experiment_id}: missing {spec.bench}"


def test_get_spec():
    assert get_spec("fig5").paper_artifact == "Figure 5"
    with pytest.raises(KeyError):
        get_spec("fig99")
