"""``journal_out`` threading through the experiment engine."""

from __future__ import annotations

import numpy as np

from repro.core import build_scheduler
from repro.experiments.runner import journal_path, run_trials
from repro.experiments.toys import toy_objective
from repro.study import read_journal


def _make_scheduler(objective, rng):
    return build_scheduler(
        "asha", objective.space, rng,
        min_resource=1.0, max_resource=9.0, eta=3, kwargs={"max_trials": 6},
    )


def _make_objective(seed):
    return toy_objective()


def test_run_trials_writes_one_journal_per_seed(tmp_path):
    run_trials(
        "asha", _make_scheduler, _make_objective,
        num_workers=2, time_limit=60.0, seeds=[0, 1], journal_out=tmp_path,
    )
    for seed in (0, 1):
        records, _, terminated = read_journal(journal_path(tmp_path, "asha", seed))
        assert terminated
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "journal_header"
        assert kinds.count("tell") >= 6


def test_parallel_fanout_journals_match_sequential(tmp_path):
    sequential, parallel = tmp_path / "seq", tmp_path / "par"
    run_trials(
        "asha", _make_scheduler, _make_objective,
        num_workers=2, time_limit=60.0, seeds=[0, 1], journal_out=sequential,
    )
    run_trials(
        "asha", _make_scheduler, _make_objective,
        num_workers=2, time_limit=60.0, seeds=[0, 1], journal_out=parallel, n_jobs=2,
    )
    for seed in (0, 1):
        assert (
            journal_path(parallel, "asha", seed).read_bytes()
            == journal_path(sequential, "asha", seed).read_bytes()
        )


def test_method_slug_sanitised(tmp_path):
    assert journal_path(tmp_path, "asha/eta=3", 0).name == "asha_eta_3-seed0.journal.jsonl"
