"""Smoke + shape tests for the per-figure reproduction drivers.

These run heavily scaled-down versions of each driver (the benches run the
full versions) and assert structural correctness plus the coarsest shape
facts the paper reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures


class TestFigure1:
    def test_exact_table(self):
        rows = figures.figure1_rows()
        by_bracket = {}
        for row in rows:
            by_bracket.setdefault(row["bracket"], []).append(row)
        assert [(r["n_i"], r["r_i"]) for r in by_bracket[0]] == [(9, 1.0), (3, 3.0), (1, 9.0)]
        assert [(r["n_i"], r["r_i"]) for r in by_bracket[1]] == [(9, 3.0), (3, 9.0)]
        assert [(r["n_i"], r["r_i"]) for r in by_bracket[2]] == [(9, 9.0)]
        assert all(r["total"] == r["n_i"] * r["r_i"] for r in rows)


class TestFigure2:
    def test_sha_trace(self):
        traces = figures.figure2_traces()
        sha = traces["SHA"]
        # Nine rung-0 jobs, then three rung-1, then one rung-2.
        assert [rung for _, rung in sha] == [0] * 9 + [1] * 3 + [2]
        # Configurations 1, 6, 8 promoted; 8 wins (1-indexed labels).
        assert {label for label, rung in sha if rung == 1} == {1, 6, 8}
        assert [label for label, rung in sha if rung == 2] == [8]

    def test_asha_trace_interleaves(self):
        traces = figures.figure2_traces()
        asha = traces["ASHA"]
        assert len(asha) == 13
        rungs = [rung for _, rung in asha]
        # ASHA promotes *before* the base rung is full: a rung-1 job appears
        # while rung-0 jobs are still being submitted.
        first_r1 = rungs.index(1)
        assert 0 in rungs[first_r1:]
        assert {label for label, rung in asha if rung == 1} == {1, 6, 8}
        assert [label for label, rung in asha if rung == 2] == [8]


class TestSequentialAndDistributed:
    def test_figure3_structure(self):
        curves = figures.figure3(
            "cifar_convnet",
            num_trials=1,
            horizon_multiple=6.0,
            methods=("Random", "ASHA"),
            grid_points=8,
        )
        assert set(curves) == {"Random", "ASHA"}
        for curve in curves.values():
            assert curve.grid.shape == (8,)
            assert np.isfinite(curve.final_mean)
        # Early stopping beats random at equal budget.
        assert curves["ASHA"].final_mean <= curves["Random"].final_mean + 0.02

    def test_figure4_structure(self):
        curves = figures.figure4(
            "cifar_smallcnn",
            num_trials=1,
            num_workers=5,
            horizon_multiple=1.5,
            methods=("ASHA", "SHA"),
            grid_points=8,
        )
        assert set(curves) == {"ASHA", "SHA"}

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            figures.figure3("imagenet")


class TestRobustnessFigures:
    def test_figure7_rows(self):
        rows = figures.figure7(
            straggler_stds=(0.1,),
            drop_probs=(0.0, 0.01),
            num_sims=2,
            num_workers=6,
            time_budget=600.0,
        )
        assert len(rows) == 4  # 2 methods x 1 std x 2 drop probs
        by_key = {(r["method"], r["drop_prob"]): r["mean_completed"] for r in rows}
        # Drops reduce completions for synchronous SHA.
        assert by_key[("SHA", 0.01)] <= by_key[("SHA", 0.0)]

    def test_figure8_rows(self):
        rows = figures.figure8(
            straggler_stds=(0.0,),
            drop_probs=(0.0,),
            num_sims=2,
            num_workers=6,
            time_budget=600.0,
        )
        assert len(rows) == 2
        for row in rows:
            assert 0 < row["mean_first_completion"] <= 600.0


class TestClaims:
    def test_wallclock_claim_exact(self):
        out = figures.claim_wallclock()
        # Section 3.2: 13/9 x time(R) from scratch, time(R) with checkpoints.
        assert out["from_scratch"] == pytest.approx(13.0)
        assert out["checkpointed"] == pytest.approx(9.0)
        assert out["time_R"] == 9.0

    def test_mispromotion_claim(self):
        studies = figures.claim_mispromotion(ns=(64, 256), repeats=5)
        assert [s.n for s in studies] == [64, 256]
        assert all(s.ratio < 3.0 for s in studies)
