"""Tests for the scripted toy fixtures."""

from __future__ import annotations

import pytest

from repro.experiments.toys import (
    FIGURE2_QUALITIES,
    scripted_sampler,
    toy_objective,
)


def test_scripted_sampler_in_order(rng):
    sampler = scripted_sampler([0.1, 0.2])
    assert sampler(rng) == {"quality": 0.1}
    assert sampler(rng) == {"quality": 0.2}
    with pytest.raises(RuntimeError):
        sampler(rng)


def test_figure2_qualities_realise_the_story():
    """Trials 0, 5, 7 are prefix-of-three minima; 7 is the rung-1 winner."""
    q = FIGURE2_QUALITIES
    assert min(q[:3]) == q[0]
    assert min(q[3:6]) == q[5]
    assert min(q[6:9]) == q[7]
    assert min(q[0], q[5], q[7]) == q[7]


def test_constant_toy_loss_is_flat():
    obj = toy_objective(constant=True)
    assert obj.evaluate({"quality": 0.4}, 1.0) == obj.evaluate({"quality": 0.4}, 9.0)


def test_curved_toy_decays():
    obj = toy_objective(constant=False)
    assert obj.evaluate({"quality": 0.4}, 9.0) < obj.evaluate({"quality": 0.4}, 1.0)
