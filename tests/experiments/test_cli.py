"""Tests for the ``python -m repro.experiments`` CLI."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import _QUICK_RUNNERS, main


def test_list_prints_registry(capsys):
    main([])
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "Figure 5" in out
    assert "benchmarks/bench_fig9_fabolas.py" in out


def test_list_subcommand(capsys):
    main(["list"])
    assert "Reproduction registry" in capsys.readouterr().out


def test_run_fig1(capsys):
    main(["run", "fig1"])
    out = capsys.readouterr().out
    assert "bracket" in out
    assert "81" in out  # bracket 2's budget


def test_run_claim_wallclock(capsys):
    main(["run", "claim-wallclock"])
    out = capsys.readouterr().out
    assert "13.0" in out and "9.0" in out


def test_run_fig2(capsys):
    main(["run", "fig2"])
    out = capsys.readouterr().out
    assert "SHA" in out and "ASHA" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_every_quick_runner_has_callable():
    for runner in _QUICK_RUNNERS.values():
        assert callable(runner)
