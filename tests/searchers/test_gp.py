"""Tests for GPEISearcher: warm-up, EI proposals, pending bookkeeping."""

from __future__ import annotations

import numpy as np

from repro.core.types import Trial
from repro.searchers import ORIGIN_MODEL, ORIGIN_RANDOM, GPEISearcher


def run_warmup(searcher, rng, n):
    """Suggest + report n trials with loss == quality; returns the trials."""
    trials = []
    for i in range(n):
        config = searcher.suggest(rng)
        trial = Trial(trial_id=i, config=config)
        searcher.on_result(trial, 9.0, config["quality"])
        trials.append(trial)
    return trials


def test_random_warmup_then_model(one_d_space, rng):
    searcher = GPEISearcher(num_init=4, num_candidates=32).setup(one_d_space)
    run_warmup(searcher, rng, 4)
    assert searcher.origin == ORIGIN_RANDOM
    searcher.suggest(rng)
    assert searcher.origin == ORIGIN_MODEL
    assert searcher.num_observations == 4


def test_pending_pool_tracks_unreported_proposals(one_d_space, rng):
    searcher = GPEISearcher(num_init=2).setup(one_d_space)
    configs = [searcher.suggest(rng) for _ in range(3)]
    assert searcher.num_pending == 3
    trial = Trial(trial_id=0, config=configs[0])
    searcher.on_result(trial, 9.0, 0.5)
    assert searcher.num_pending == 2
    # A dropped trial's pending entry is forgotten too.
    searcher.on_trial_error(Trial(trial_id=1, config=configs[1]))
    assert searcher.num_pending == 1


def test_highest_fidelity_observation_wins(one_d_space, rng):
    """Re-reports at higher resource overwrite; stale low-fidelity ones don't."""
    searcher = GPEISearcher(num_init=2).setup(one_d_space)
    config = searcher.suggest(rng)
    trial = Trial(trial_id=0, config=config)
    searcher.on_result(trial, 1.0, 0.9)
    searcher.on_result(trial, 4.0, 0.5, rung=1)
    assert searcher.observed_losses == [0.5]
    searcher.on_result(trial, 2.0, 0.7)  # stale: lower resource
    assert searcher.observed_losses == [0.5]
    assert searcher.num_observations == 1


def test_ei_concentrates_near_optimum(one_d_space):
    rng = np.random.default_rng(11)
    searcher = GPEISearcher(num_init=8, num_candidates=128, refit_every=1).setup(one_d_space)
    run_warmup(searcher, rng, 8)
    proposals = []
    for i in range(12):
        config = searcher.suggest(rng)
        proposals.append(config["quality"])
        searcher.on_result(Trial(trial_id=100 + i, config=config), 9.0, config["quality"])
    assert min(proposals) < 0.1
    assert np.mean(proposals) < 0.4
