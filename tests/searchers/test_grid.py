"""Tests for GridSearcher: exhaustion, coverage, shuffling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ASHA, RandomSearch
from repro.searchers import ORIGIN_GRID, GridSearcher, SearcherError


def drain(searcher, rng):
    configs = []
    while not searcher.is_done():
        configs.append(searcher.suggest(rng))
    return configs


def test_visits_every_point_once(mixed_space, rng):
    searcher = GridSearcher(points_per_dim=3).setup(mixed_space)
    configs = drain(searcher, rng)
    assert len(configs) == searcher.grid_size
    keys = {tuple(sorted(c.items())) for c in configs}
    assert len(keys) == len(configs)  # no duplicates
    assert searcher.origin == ORIGIN_GRID


def test_suggest_after_exhaustion_rejected(one_d_space, rng):
    searcher = GridSearcher(points_per_dim=2).setup(one_d_space)
    drain(searcher, rng)
    with pytest.raises(SearcherError):
        searcher.suggest(rng)


def test_shuffle_draws_from_scheduler_rng(one_d_space):
    ordered = GridSearcher(points_per_dim=5, shuffle=False).setup(one_d_space)
    shuffled = GridSearcher(points_per_dim=5, shuffle=True).setup(one_d_space)
    a = drain(ordered, np.random.default_rng(3))
    b = drain(shuffled, np.random.default_rng(3))
    assert sorted(c["quality"] for c in a) == sorted(c["quality"] for c in b)
    assert a != b  # the permutation actually reorders a 5-point grid


def test_random_search_plus_grid_terminates(one_d_space, rng, toy_obj):
    """RandomSearch + GridSearcher == classic grid search, and it finishes."""
    from repro.backend import SimulatedCluster

    sched = RandomSearch(
        one_d_space, rng, max_resource=9.0, searcher=GridSearcher(points_per_dim=4)
    )
    result = SimulatedCluster(2, seed=0).run(sched, toy_obj, time_limit=1e6)
    assert sched.is_done()
    assert result.jobs_dispatched == 4
    assert sched.num_trials == 4


def test_asha_plus_grid_stops_growing_but_finishes_promotions(one_d_space, rng, toy_obj):
    from repro.backend import SimulatedCluster

    sched = ASHA(
        one_d_space,
        rng,
        min_resource=1.0,
        max_resource=9.0,
        eta=3,
        searcher=GridSearcher(points_per_dim=9),
    )
    SimulatedCluster(2, seed=0).run(sched, toy_obj, time_limit=1e6)
    assert sched.is_done()
    assert sched.num_trials == 9  # every grid point entered the base rung
