"""Tests for KDESearcher: per-rung model bank + highest-ready-rung rule."""

from __future__ import annotations

import numpy as np

from repro.core.types import Trial
from repro.searchers import ORIGIN_MODEL, ORIGIN_RANDOM, KDESearcher


def feed(searcher, space, rng, n, rung=0):
    """Observe n (config, loss) pairs with loss == quality."""
    for i in range(n):
        config = space.sample(rng)
        trial = Trial(trial_id=1000 * rung + i, config=config)
        searcher.on_result(trial, 1.0, config["quality"], rung=rung)


def test_uniform_until_model_ready(one_d_space, rng):
    searcher = KDESearcher().setup(one_d_space)
    searcher.suggest(rng)
    assert searcher.origin == ORIGIN_RANDOM
    feed(searcher, one_d_space, rng, 2)
    searcher.suggest(rng)
    assert searcher.origin == ORIGIN_RANDOM  # 2 points < min needed


def test_model_kicks_in_with_observations(one_d_space, rng):
    searcher = KDESearcher(random_fraction=0.0).setup(one_d_space)
    feed(searcher, one_d_space, rng, 30)
    searcher.suggest(rng)
    assert searcher.origin == ORIGIN_MODEL
    assert searcher.num_observations(0) == 30


def test_highest_ready_rung_wins(one_d_space, rng):
    """With rung 1 ready, proposals come from its model, not rung 0's."""
    searcher = KDESearcher(random_fraction=0.0).setup(one_d_space)
    feed(searcher, one_d_space, rng, 30, rung=0)
    feed(searcher, one_d_space, rng, 30, rung=1)
    before = searcher.models[1].last_proposal_was_model
    searcher.suggest(rng)
    assert searcher.models[1].last_proposal_was_model
    assert searcher.origin == ORIGIN_MODEL
    del before


def test_model_concentrates_on_good_region(one_d_space):
    """Loss == quality, so proposals should skew far below the uniform mean."""
    rng = np.random.default_rng(7)
    searcher = KDESearcher(random_fraction=0.0).setup(one_d_space)
    feed(searcher, one_d_space, rng, 60)
    proposals = [searcher.suggest(rng)["quality"] for _ in range(30)]
    assert np.mean(proposals) < 0.35
