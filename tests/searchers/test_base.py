"""Tests for the Searcher protocol base class (setup, counters, origins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Trial
from repro.searchers import (
    ORIGIN_RANDOM,
    RandomSearcher,
    SearcherError,
    build_searcher,
)
from repro.searchspace import SearchSpace, Uniform


def make_trial(trial_id=0, config=None):
    return Trial(trial_id=trial_id, config=config or {"x": 0.5})


def test_suggest_before_setup_rejected(rng):
    with pytest.raises(SearcherError):
        RandomSearcher().suggest(rng)


def test_setup_idempotent_for_same_space(one_d_space):
    searcher = RandomSearcher()
    searcher.setup(one_d_space)
    searcher.setup(one_d_space)  # composite schedulers share one searcher
    assert searcher.space is one_d_space


def test_rebind_to_different_space_rejected(one_d_space):
    searcher = RandomSearcher()
    searcher.setup(one_d_space)
    with pytest.raises(SearcherError):
        searcher.setup(SearchSpace({"other": Uniform(0.0, 1.0)}))


def test_counters_track_protocol_calls(one_d_space, rng):
    searcher = RandomSearcher()
    searcher.setup(one_d_space)
    config = searcher.suggest(rng)
    assert set(config) == set(one_d_space.names)
    assert searcher.num_suggestions == 1
    trial = make_trial(config=config)
    searcher.on_result(trial, 1.0, 0.4)
    searcher.on_result(trial, 4.0, 0.3, rung=1)
    assert searcher.num_results == 2
    searcher.on_trial_complete(trial, 0.3)
    assert searcher.num_completions == 1


def test_origin_recorded_by_default(one_d_space, rng):
    searcher = RandomSearcher()
    searcher.setup(one_d_space)
    searcher.suggest(rng)
    assert searcher.origin == ORIGIN_RANDOM


def test_origin_suppressed_when_recording_off(one_d_space, rng):
    searcher = RandomSearcher(record_origin=False)
    searcher.setup(one_d_space)
    searcher.suggest(rng)
    assert searcher.origin is None


def test_registry_resolves_every_name(one_d_space, rng):
    for name in ("random", "kde", "gp", "grid"):
        searcher = build_searcher(name, {})
        searcher.setup(one_d_space)
        assert set(searcher.suggest(rng)) == set(one_d_space.names)


def test_registry_rejects_unknown_name():
    with pytest.raises(KeyError, match="unknown searcher"):
        build_searcher("magic", {})


def test_registry_passes_instances_through(one_d_space):
    instance = RandomSearcher()
    assert build_searcher(instance, {}) is instance
    with pytest.raises(ValueError):
        build_searcher(instance, {"gamma": 0.2})
