"""Tests for the unit-cube encoder used by model-based searchers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchspace import UnitCubeEncoder


def test_encode_shape_and_range(mixed_space, rng):
    enc = UnitCubeEncoder(mixed_space)
    x = enc.encode(mixed_space.sample(rng))
    assert x.shape == (4,)
    assert np.all(x >= 0.0) and np.all(x <= 1.0)


def test_encode_many(mixed_space, rng):
    enc = UnitCubeEncoder(mixed_space)
    configs = mixed_space.sample_batch(7, rng)
    x = enc.encode_many(configs)
    assert x.shape == (7, 4)
    assert enc.encode_many([]).shape == (0, 4)


def test_decode_shape_check(mixed_space):
    enc = UnitCubeEncoder(mixed_space)
    with pytest.raises(ValueError):
        enc.decode(np.zeros(3))


def test_round_trip_continuous_exact(mixed_space, rng):
    enc = UnitCubeEncoder(mixed_space)
    config = mixed_space.sample(rng)
    out = enc.decode(enc.encode(config))
    assert out["lr"] == pytest.approx(config["lr"], rel=1e-9)
    assert out["momentum"] == pytest.approx(config["momentum"], abs=1e-12)


def test_round_trip_discrete_exact(mixed_space, rng):
    enc = UnitCubeEncoder(mixed_space)
    for _ in range(50):
        config = mixed_space.sample(rng)
        out = enc.decode(enc.encode(config))
        assert out["width"] == config["width"]
        assert out["batch"] == config["batch"]


def test_sample_unit_shape(mixed_space, rng):
    enc = UnitCubeEncoder(mixed_space)
    x = enc.sample_unit(10, rng)
    assert x.shape == (10, 4)
    assert np.all((0 <= x) & (x <= 1))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_round_trip_is_projection(seed):
    """decode(encode(.)) is idempotent: a second round trip changes nothing."""
    from repro.searchspace import Choice, IntUniform, LogUniform, SearchSpace, Uniform

    mixed_space = SearchSpace(
        {
            "lr": LogUniform(1e-5, 1.0),
            "width": IntUniform(4, 64),
            "momentum": Uniform(0.0, 1.0),
            "batch": Choice([16, 32, 64, 128]),
        }
    )
    enc = UnitCubeEncoder(mixed_space)
    config = mixed_space.sample(np.random.default_rng(seed))
    once = enc.decode(enc.encode(config))
    twice = enc.decode(enc.encode(once))
    assert once == twice
