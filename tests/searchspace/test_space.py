"""Tests for SearchSpace: sampling, clipping, perturbation, grids."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchspace import Choice, LogUniform, SearchSpace, Uniform


def test_empty_space_rejected():
    with pytest.raises(ValueError):
        SearchSpace({})


def test_names_preserve_order(mixed_space):
    assert mixed_space.names == ["lr", "width", "momentum", "batch"]
    assert mixed_space.dim == 4
    assert len(mixed_space) == 4
    assert "lr" in mixed_space


def test_sample_contains(mixed_space, rng):
    for _ in range(100):
        config = mixed_space.sample(rng)
        assert mixed_space.contains(config)


def test_sample_batch_matches_algorithm1_subroutine(mixed_space, rng):
    configs = mixed_space.sample_batch(17, rng)
    assert len(configs) == 17
    assert all(mixed_space.contains(c) for c in configs)


def test_clip_projects_out_of_range(mixed_space):
    config = {"lr": 100.0, "width": 1000, "momentum": -1.0, "batch": 50}
    clipped = mixed_space.clip(config)
    assert mixed_space.contains(clipped)
    assert clipped["lr"] == 1.0
    assert clipped["width"] == 64
    assert clipped["momentum"] == 0.0
    assert clipped["batch"] in (32, 64)


def test_clip_missing_key_raises(mixed_space):
    with pytest.raises(KeyError):
        mixed_space.clip({"lr": 0.1})


def test_contains_rejects_extra_and_missing_keys(mixed_space, rng):
    config = mixed_space.sample(rng)
    assert not mixed_space.contains({**config, "extra": 1})
    del config["lr"]
    assert not mixed_space.contains(config)


class TestPerturb:
    def test_stays_in_space(self, mixed_space, rng):
        config = mixed_space.sample(rng)
        for _ in range(50):
            config = mixed_space.perturb(config, rng)
            assert mixed_space.contains(config)

    def test_frozen_keys_unchanged(self, mixed_space, rng):
        config = mixed_space.sample(rng)
        for _ in range(20):
            out = mixed_space.perturb(config, rng, frozen={"batch", "width"})
            assert out["batch"] == config["batch"]
            assert out["width"] == config["width"]

    def test_zero_resample_prob_only_perturbs(self, rng):
        space = SearchSpace({"x": Uniform(0.0, 100.0)})
        out = space.perturb({"x": 10.0}, rng, resample_probability=0.0)
        assert out["x"] in (8.0, 12.0)

    def test_full_resample_prob_draws_fresh(self, rng):
        space = SearchSpace({"x": Uniform(0.0, 1.0)})
        outs = {space.perturb({"x": 0.5}, rng, resample_probability=1.0)["x"] for _ in range(50)}
        assert len(outs) > 10  # fresh uniform draws, not the two factors


def test_grid_includes_all_choices(rng):
    space = SearchSpace({"a": Choice([1, 2, 3]), "b": Uniform(0.0, 1.0)})
    grid = space.grid(points_per_dim=2)
    assert len(grid) == 3 * 2
    assert {g["a"] for g in grid} == {1, 2, 3}
    assert {g["b"] for g in grid} == {0.0, 1.0}


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_sampling_deterministic_given_rng(seed):
    space = SearchSpace({"lr": LogUniform(1e-5, 1.0), "batch": Choice([16, 32, 64])})
    a = space.sample(np.random.default_rng(seed))
    b = space.sample(np.random.default_rng(seed))
    assert a == b


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_log_domain_sampling_in_bounds(seed):
    space = SearchSpace({"lr": LogUniform(1e-8, 1e2)})
    config = space.sample(np.random.default_rng(seed))
    assert 1e-8 <= config["lr"] <= 1e2
