"""Unit and property tests for hyperparameter domains."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchspace import Choice, IntUniform, LogUniform, QUniform, Uniform

RNG = np.random.default_rng(1234)


class TestUniform:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)

    def test_sample_within_bounds(self, rng):
        dom = Uniform(-2.0, 5.0)
        samples = [dom.sample(rng) for _ in range(200)]
        assert all(-2.0 <= s <= 5.0 for s in samples)

    def test_clip(self):
        dom = Uniform(0.0, 1.0)
        assert dom.clip(-3.0) == 0.0
        assert dom.clip(7.0) == 1.0
        assert dom.clip(0.4) == 0.4

    def test_unit_round_trip(self):
        dom = Uniform(2.0, 10.0)
        assert dom.from_unit(dom.to_unit(6.0)) == pytest.approx(6.0)
        assert dom.to_unit(2.0) == 0.0
        assert dom.to_unit(10.0) == 1.0

    def test_perturb_stays_in_bounds(self, rng):
        dom = Uniform(0.0, 1.0)
        value = 0.9
        for _ in range(50):
            value = dom.perturb(value, rng)
            assert 0.0 <= value <= 1.0

    def test_perturb_uses_given_factors(self, rng):
        dom = Uniform(0.0, 100.0)
        seen = {dom.perturb(10.0, rng) for _ in range(100)}
        assert seen == {8.0, 12.0}


class TestLogUniform:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogUniform(0.0, 1.0)
        with pytest.raises(ValueError):
            LogUniform(-1.0, 1.0)
        with pytest.raises(ValueError):
            LogUniform(2.0, 1.0)

    def test_sampling_is_log_scaled(self, rng):
        dom = LogUniform(1e-4, 1.0)
        samples = np.array([dom.sample(rng) for _ in range(4000)])
        # Median of a log-uniform sits at the geometric mean of the bounds.
        geometric_mid = math.sqrt(1e-4 * 1.0)
        assert np.median(samples) == pytest.approx(geometric_mid, rel=0.5)

    def test_unit_round_trip(self):
        dom = LogUniform(1e-3, 1e3)
        assert dom.to_unit(1.0) == pytest.approx(0.5)
        assert dom.from_unit(0.5) == pytest.approx(1.0)

    def test_perturb_clips(self, rng):
        dom = LogUniform(1.0, 2.0)
        assert dom.perturb(2.0, rng, factors=(1.5, 1.5)) == 2.0


class TestIntUniform:
    def test_sample_bounds_inclusive(self, rng):
        dom = IntUniform(1, 3)
        seen = {dom.sample(rng) for _ in range(200)}
        assert seen == {1, 2, 3}

    def test_clip_rounds(self):
        dom = IntUniform(0, 10)
        assert dom.clip(4.6) == 5
        assert dom.clip(-3) == 0
        assert dom.clip(99) == 10

    def test_perturb_always_moves_or_stays_valid(self, rng):
        dom = IntUniform(1, 4)
        for value in (1, 2, 3, 4):
            out = dom.perturb(value, rng)
            assert 1 <= out <= 4

    def test_perturb_moves_small_values(self, rng):
        dom = IntUniform(1, 100)
        # 2 * 0.8 = 1.6 -> rounds to 2: the fallback must still move it.
        outs = {dom.perturb(2, rng) for _ in range(100)}
        assert 2 not in outs or len(outs) > 1


class TestQUniform:
    def test_quantisation(self, rng):
        dom = QUniform(0.0, 1.0, 0.25)
        samples = {dom.sample(rng) for _ in range(100)}
        assert samples <= {0.0, 0.25, 0.5, 0.75, 1.0}

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            QUniform(0.0, 1.0, 0.0)

    def test_unit_round_trip_quantises(self):
        dom = QUniform(0.0, 10.0, 2.0)
        assert dom.from_unit(0.33) in (2.0, 4.0)


class TestChoice:
    def test_requires_two_distinct(self):
        with pytest.raises(ValueError):
            Choice([1])
        with pytest.raises(ValueError):
            Choice([1, 1])

    def test_sample_coverage(self, rng):
        dom = Choice(["a", "b", "c"])
        assert {dom.sample(rng) for _ in range(200)} == {"a", "b", "c"}

    def test_clip_snaps_numeric(self):
        dom = Choice([16, 32, 64])
        assert dom.clip(40) == 32
        assert dom.clip(64) == 64

    def test_perturb_adjacent_only(self, rng):
        dom = Choice([1, 2, 3, 4])
        assert {dom.perturb(1, rng) for _ in range(50)} == {2}
        assert {dom.perturb(3, rng) for _ in range(100)} == {2, 4}

    def test_unit_round_trip(self):
        dom = Choice([10, 20, 30])
        for v in (10, 20, 30):
            assert dom.from_unit(dom.to_unit(v)) == v

    def test_contains(self):
        dom = Choice([1, 2])
        assert dom.contains(1)
        assert not dom.contains(3)


# ----------------------------------------------------------------- property


@settings(max_examples=60, deadline=None)
@given(
    low=st.floats(-1e6, 1e6, allow_nan=False),
    span=st.floats(1e-3, 1e6, allow_nan=False),
    u=st.floats(0.0, 1.0),
)
def test_uniform_from_unit_always_in_bounds(low, span, u):
    dom = Uniform(low, low + span)
    value = dom.from_unit(u)
    assert dom.low <= value <= dom.high


@settings(max_examples=60, deadline=None)
@given(
    exp_low=st.integers(-8, 2),
    decades=st.integers(1, 8),
    u=st.floats(0.0, 1.0),
)
def test_loguniform_round_trip(exp_low, decades, u):
    dom = LogUniform(10.0**exp_low, 10.0 ** (exp_low + decades))
    value = dom.from_unit(u)
    assert dom.low <= value <= dom.high
    assert dom.to_unit(value) == pytest.approx(u, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(-100, 100), min_size=2, max_size=10, unique=True))
def test_choice_round_trip_identity(values):
    dom = Choice(values)
    for v in values:
        assert dom.from_unit(dom.to_unit(v)) == v


@settings(max_examples=40, deadline=None)
@given(
    low=st.integers(-50, 50),
    span=st.integers(1, 100),
    data=st.data(),
)
def test_intuniform_perturb_in_bounds(low, span, data):
    dom = IntUniform(low, low + span)
    value = data.draw(st.integers(low, low + span))
    out = dom.perturb(value, RNG)
    assert dom.low <= out <= dom.high
    assert isinstance(out, int)
