"""Tests for incumbent tracking and the two accounting schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import IncumbentTrace, trace_incumbent
from repro.backend import SimulatedCluster
from repro.backend.trial_runner import BackendResult
from repro.core import Hyperband, RandomSearch
from repro.core.types import Measurement


class TestIncumbentTrace:
    def test_value_at_step_function(self):
        trace = IncumbentTrace()
        trace.append(1.0, 0.5, 0)
        trace.append(3.0, 0.3, 1)
        assert trace.value_at(0.5) == float("inf")
        assert trace.value_at(1.0) == 0.5
        assert trace.value_at(2.9) == 0.5
        assert trace.value_at(3.0) == 0.3
        assert trace.value_at(100.0) == 0.3
        assert trace.final == 0.3

    def test_resample(self):
        trace = IncumbentTrace()
        trace.append(1.0, 0.5, 0)
        trace.append(3.0, 0.3, 1)
        grid = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(
            trace.resample(grid), [np.inf, 0.5, 0.5, 0.3, 0.3]
        )

    def test_empty_trace_resample(self):
        assert np.all(np.isinf(IncumbentTrace().resample(np.array([0.0, 1.0]))))

    def test_times_must_not_decrease(self):
        trace = IncumbentTrace()
        trace.append(2.0, 0.5, 0)
        with pytest.raises(ValueError):
            trace.append(1.0, 0.4, 1)


class TestByRungAccounting:
    def test_running_minimum(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=20)
        backend = SimulatedCluster(1, seed=0).run(rs, toy_obj, time_limit=1e6)
        trace = trace_incumbent(backend, rs)
        assert trace.values == sorted(trace.values, reverse=True)
        observed = [m.loss for m in backend.measurements]
        assert trace.final == min(observed)

    def test_nan_losses_skipped(self, one_d_space, rng):
        result = BackendResult()
        result.measurements = [
            Measurement(0, 1.0, float("nan"), time=1.0),
            Measurement(1, 1.0, 0.4, time=2.0),
        ]
        result.bracket_snapshots = [None, None]
        rs = RandomSearch(one_d_space, rng, max_resource=9.0)
        rs.new_trial({"quality": 0.5})
        rs.new_trial({"quality": 0.4})
        trace = trace_incumbent(result, rs)
        assert trace.values == [0.4]

    def test_evaluate_callback(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=5)
        backend = SimulatedCluster(1, seed=0).run(rs, toy_obj, time_limit=1e6)
        trace = trace_incumbent(backend, rs, evaluate=lambda config, r: 42.0)
        assert set(trace.values) == {42.0}


class TestByBracketAccounting:
    def test_updates_only_on_bracket_completion(self, one_d_space, rng, toy_obj):
        hb = Hyperband(
            one_d_space, rng, min_resource=1.0, max_resource=9.0, eta=3, max_loops=1
        )
        backend = SimulatedCluster(1, seed=0).run(hb, toy_obj, time_limit=1e6)
        by_rung = trace_incumbent(backend, hb, accounting="by_rung")
        by_bracket = trace_incumbent(backend, hb, accounting="by_bracket")
        assert len(by_bracket.times) <= hb.completed_brackets
        # By-bracket incumbency can never lead by-rung incumbency.
        for t in np.linspace(0.0, backend.elapsed, 20):
            assert by_bracket.value_at(t) >= by_rung.value_at(t) - 1e-12

    def test_scheduler_without_brackets_never_updates(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=10)
        backend = SimulatedCluster(1, seed=0).run(rs, toy_obj, time_limit=1e6)
        trace = trace_incumbent(backend, rs, accounting="by_bracket")
        assert trace.times == []

    def test_unknown_accounting_rejected(self, one_d_space, rng, toy_obj):
        rs = RandomSearch(one_d_space, rng, max_resource=9.0, max_trials=2)
        backend = SimulatedCluster(1, seed=0).run(rs, toy_obj, time_limit=1e6)
        with pytest.raises(ValueError):
            trace_incumbent(backend, rs, accounting="by_vibes")
