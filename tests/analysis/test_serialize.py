"""Round-trip tests for result serialisation."""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    IncumbentTrace,
    RunRecord,
    aggregate,
    curve_from_dict,
    curve_to_dict,
    load_records,
    record_from_dict,
    record_to_dict,
    save_records,
    trace_from_dict,
    trace_to_dict,
)
from repro.backend.trial_runner import BackendResult


def make_trace():
    trace = IncumbentTrace()
    trace.append(1.0, 0.9, 3)
    trace.append(2.5, 0.4, 7)
    return trace


def test_trace_round_trip():
    original = make_trace()
    restored = trace_from_dict(trace_to_dict(original))
    assert restored.times == original.times
    assert restored.values == original.values
    assert restored.trial_ids == original.trial_ids


def test_trace_with_nonfinite_values():
    trace = IncumbentTrace()
    trace.append(0.0, float("inf"), 0)
    trace.append(1.0, float("nan"), 1)
    restored = trace_from_dict(trace_to_dict(trace))
    assert restored.values[0] == float("inf")
    assert restored.values[1] != restored.values[1]  # NaN


def test_record_round_trip_drops_backend():
    backend = BackendResult(jobs_dispatched=7, elapsed=10.0, utilization=0.9)
    record = RunRecord(method="ASHA", seed=3, trace=make_trace(), backend=backend)
    data = record_to_dict(record)
    assert data["summary"]["jobs_dispatched"] == 7
    restored = record_from_dict(data)
    assert restored.method == "ASHA"
    assert restored.seed == 3
    assert restored.backend is None
    assert restored.trace.final == 0.4


def test_curve_round_trip():
    grid = np.linspace(0, 10, 5)
    records = [RunRecord("m", i, make_trace()) for i in range(3)]
    curve = aggregate("m", records, grid)
    restored = curve_from_dict(curve_to_dict(curve))
    np.testing.assert_allclose(restored.grid, curve.grid)
    np.testing.assert_allclose(restored.mean, curve.mean)
    np.testing.assert_allclose(restored.lo, curve.lo)
    assert restored.method == "m"


def test_save_load_records(tmp_path):
    records = [RunRecord("ASHA", i, make_trace()) for i in range(4)]
    path = str(tmp_path / "records.json")
    save_records(path, records)
    restored = load_records(path)
    assert len(restored) == 4
    assert [r.seed for r in restored] == [0, 1, 2, 3]
    assert all(r.trace.final == 0.4 for r in restored)
