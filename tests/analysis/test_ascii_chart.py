"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_chart, sparkline


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] < line[-1]  # unicode blocks sort by height

    def test_constant_series(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_nonfinite_as_spaces(self):
        line = sparkline([float("inf"), 1.0, float("nan"), 2.0])
        assert line[0] == " "
        assert line[2] == " "

    def test_all_nonfinite(self):
        assert sparkline([float("nan")] * 3) == "   "


class TestRenderChart:
    def test_basic_structure(self):
        grid = np.linspace(0, 10, 20)
        out = render_chart(
            grid,
            {"down": 1.0 - grid / 20.0, "up": grid / 20.0},
            width=40,
            height=8,
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) >= 8 + 3
        assert "A=down" in out and "B=up" in out

    def test_markers_placed(self):
        grid = [0.0, 1.0]
        out = render_chart(grid, {"s": [0.0, 1.0]}, width=20, height=5)
        assert "A" in out

    def test_nonfinite_skipped(self):
        grid = [0.0, 1.0, 2.0]
        out = render_chart(grid, {"s": [float("inf"), 0.5, 1.0]}, width=20, height=5)
        assert "A" in out

    def test_no_finite_data(self):
        assert render_chart([0.0], {"s": [float("inf")]}) == "(no finite data)"

    def test_too_many_series_rejected(self):
        with pytest.raises(ValueError):
            render_chart([0.0], {f"s{i}": [0.0] for i in range(40)})

    def test_y_bounds_labelled(self):
        out = render_chart([0, 1], {"s": [2.0, 8.0]}, width=20, height=5)
        assert "8" in out.splitlines()[0]
        assert "2" in out.splitlines()[4]
