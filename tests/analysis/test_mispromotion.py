"""Tests for the Section 3.3 mispromotion Monte-Carlo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import mispromotion_curve, simulate_mispromotions


def test_tiny_pool_has_no_promotions():
    rng = np.random.default_rng(0)
    assert simulate_mispromotions(2, eta=4, rng=rng) == 0


def test_counts_nonnegative_and_bounded():
    rng = np.random.default_rng(0)
    for n in (16, 64, 256):
        count = simulate_mispromotions(n, eta=4, rng=rng)
        assert 0 <= count <= n // 4


def test_sqrt_scaling():
    """Mean mispromotions / sqrt(n) stays bounded as n grows (Section 3.3)."""
    studies = mispromotion_curve([64, 256, 1024], eta=4, repeats=15, seed=1)
    ratios = [s.ratio for s in studies]
    # Ratios stay O(1): within a small constant band, no growth trend > ~2x.
    assert all(0.05 < r < 3.0 for r in ratios)
    assert ratios[-1] < ratios[0] * 2.5


def test_counts_grow_sublinearly():
    studies = mispromotion_curve([64, 1024], eta=4, repeats=15, seed=2)
    small, large = studies[0].mean, studies[1].mean
    assert large > small  # more configs, more mistakes...
    assert large / small < (1024 / 64) * 0.5  # ...but much slower than linear


def test_study_fields():
    (study,) = mispromotion_curve([100], eta=3, repeats=5, seed=0)
    assert study.n == 100
    assert study.eta == 3
    assert study.sqrt_n == pytest.approx(10.0)
    assert study.std >= 0.0
