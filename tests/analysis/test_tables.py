"""Tests for the ASCII table renderer used by the benches."""

from __future__ import annotations

import numpy as np

from repro.analysis import format_value, render_series, render_table


class TestFormatValue:
    def test_ints_and_floats(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"
        assert format_value(0.123456, precision=3) == "0.123"
        assert format_value(None) == "-"
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value("abc") == "abc"
        assert format_value(np.float64(2.5)) == "2.5"


def test_render_table_alignment():
    out = render_table(["name", "value"], [["a", 1], ["bb", 22.5]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2].replace(" ", "")) == {"-"}
    assert len(lines) == 5
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows aligned


def test_render_series_thins_grid():
    grid = list(range(100))
    out = render_series(grid, {"a": list(range(100))}, max_points=5)
    data_lines = out.splitlines()[2:]
    assert len(data_lines) <= 6
    assert data_lines[0].split()[0] == "0"
    assert data_lines[-1].split()[0] == "99"


def test_render_series_multiple_columns():
    grid = [0.0, 1.0]
    out = render_series(grid, {"x": [1, 2], "y": [3, 4]}, time_label="t")
    header = out.splitlines()[0].split()
    assert header == ["t", "x", "y"]
