"""Tests for multi-seed aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import IncumbentTrace, RunRecord, aggregate


def record(method: str, seed: int, points: list[tuple[float, float]]) -> RunRecord:
    trace = IncumbentTrace()
    for t, v in points:
        trace.append(t, v, trial_id=0)
    return RunRecord(method=method, seed=seed, trace=trace)


def test_requires_records():
    with pytest.raises(ValueError):
        aggregate("m", [], np.array([0.0, 1.0]))


def test_band_name_validated():
    with pytest.raises(ValueError):
        aggregate("m", [record("m", 0, [(0.0, 1.0)])], np.array([0.0]), band="sigma")


def test_mean_and_minmax():
    grid = np.array([0.0, 1.0, 2.0])
    records = [
        record("m", 0, [(0.0, 1.0), (2.0, 0.2)]),
        record("m", 1, [(0.0, 0.6)]),
    ]
    curve = aggregate("m", records, grid)
    np.testing.assert_allclose(curve.mean, [0.8, 0.8, 0.4])
    np.testing.assert_allclose(curve.lo, [0.6, 0.6, 0.2])
    np.testing.assert_allclose(curve.hi, [1.0, 1.0, 0.6])
    assert curve.finals == [0.2, 0.6]


def test_not_yet_reported_filled_with_column_worst():
    grid = np.array([0.0, 1.0])
    records = [
        record("m", 0, [(0.5, 0.4)]),
        record("m", 1, [(5.0, 0.1)]),  # nothing before the grid end
    ]
    curve = aggregate("m", records, grid)
    # At t=1: record 0 has 0.4, record 1 imputed with the column worst (0.4).
    assert curve.mean[1] == pytest.approx(0.4)
    # At t=0 nothing has reported anywhere: stays inf.
    assert np.isinf(curve.mean[0])


def test_quartile_band():
    grid = np.array([1.0])
    records = [record("m", i, [(0.0, float(i))]) for i in range(8)]
    curve = aggregate("m", records, grid, band="quartile")
    assert curve.lo[0] == pytest.approx(np.percentile(range(8), 25))
    assert curve.hi[0] == pytest.approx(np.percentile(range(8), 75))


def test_time_to_reach():
    grid = np.linspace(0.0, 10.0, 11)
    curve = aggregate("m", [record("m", 0, [(0.0, 1.0), (4.0, 0.3)])], grid)
    assert curve.time_to_reach(0.5) == 4.0
    assert curve.time_to_reach(0.1) is None
    assert curve.final_mean == pytest.approx(0.3)
