"""Tests for the run-record statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import IncumbentTrace, RunRecord
from repro.analysis.stats import (
    bootstrap_ci,
    summarize,
    time_to_target,
    times_to_target,
    win_matrix,
)


def record(method, seed, points):
    trace = IncumbentTrace()
    for t, v in points:
        trace.append(t, v, 0)
    return RunRecord(method=method, seed=seed, trace=trace)


class TestBootstrapCI:
    def test_requires_values(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_contains_mean_for_tight_data(self):
        lo, hi = bootstrap_ci([5.0] * 10)
        assert lo == hi == 5.0

    def test_widens_with_spread(self):
        tight = bootstrap_ci([1.0, 1.1, 0.9, 1.0, 1.05, 0.95])
        wide = bootstrap_ci([0.0, 2.0, 0.1, 1.9, 0.2, 1.8])
        assert (wide[1] - wide[0]) > (tight[1] - tight[0])

    def test_deterministic_given_seed(self):
        values = list(np.random.default_rng(0).random(20))
        assert bootstrap_ci(values, seed=1) == bootstrap_ci(values, seed=1)


class TestTimeToTarget:
    def test_first_crossing(self):
        r = record("m", 0, [(1.0, 0.9), (5.0, 0.4), (9.0, 0.2)])
        assert time_to_target(r, 0.5, horizon=100.0) == 5.0
        assert time_to_target(r, 0.9, horizon=100.0) == 1.0

    def test_censoring(self):
        r = record("m", 0, [(1.0, 0.9)])
        assert time_to_target(r, 0.1, horizon=50.0) == 50.0

    def test_batch(self):
        records = [record("m", i, [(float(i + 1), 0.1)]) for i in range(3)]
        assert times_to_target(records, 0.5, horizon=10.0) == [1.0, 2.0, 3.0]


class TestWinMatrix:
    def test_paired_wins(self):
        by_method = {
            "A": [record("A", 0, [(1.0, 0.1)]), record("A", 1, [(1.0, 0.5)])],
            "B": [record("B", 0, [(1.0, 0.2)]), record("B", 1, [(1.0, 0.4)])],
        }
        wins = win_matrix(by_method)
        assert wins[("A", "B")] == 0.5
        assert wins[("B", "A")] == 0.5

    def test_no_shared_seeds_is_nan(self):
        by_method = {
            "A": [record("A", 0, [(1.0, 0.1)])],
            "B": [record("B", 5, [(1.0, 0.2)])],
        }
        wins = win_matrix(by_method)
        assert wins[("A", "B")] != wins[("A", "B")]  # NaN


class TestSummarize:
    def test_requires_records(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_target_requires_horizon(self):
        with pytest.raises(ValueError):
            summarize([record("m", 0, [(1.0, 0.5)])], target=0.4)

    def test_full_summary(self):
        records = [
            record("m", 0, [(2.0, 0.4), (8.0, 0.2)]),
            record("m", 1, [(3.0, 0.45)]),
        ]
        s = summarize(records, target=0.41, horizon=10.0)
        assert s.method == "m"
        assert s.num_seeds == 2
        assert s.final_mean == pytest.approx((0.2 + 0.45) / 2)
        assert s.final_ci[0] <= s.final_mean <= s.final_ci[1]
        # Seed 0 hits 0.41 at t=2; seed 1 never does (censored at 10).
        assert s.time_to_target_mean == pytest.approx(6.0)
        assert s.censored_runs == 1
