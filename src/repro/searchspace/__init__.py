"""Search-space definitions and sampling."""

from .domains import Choice, Domain, IntUniform, LogUniform, QUniform, Uniform
from .encoding import UnitCubeEncoder
from .space import Config, SearchSpace

__all__ = [
    "Choice",
    "Config",
    "Domain",
    "IntUniform",
    "LogUniform",
    "QUniform",
    "SearchSpace",
    "Uniform",
    "UnitCubeEncoder",
]
