"""Config <-> vector encoding for model-based searchers.

Model-based methods (the Vizier GP-EI stand-in, Fabolas, and BOHB's KDE
sampler) operate on points in the unit hypercube.  :class:`UnitCubeEncoder`
maps configurations to vectors in ``[0, 1]^d`` using each domain's natural
scale (log domains are encoded in log space) and back again.

The round trip ``decode(encode(config))`` is the identity up to the
discretisation of integer and categorical domains — a property verified by
the hypothesis test suite.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from .space import Config, SearchSpace

__all__ = ["UnitCubeEncoder"]


class UnitCubeEncoder:
    """Invertible map between configurations and points in ``[0, 1]^d``."""

    def __init__(self, space: SearchSpace):
        self.space = space
        self.names = space.names

    @property
    def dim(self) -> int:
        return self.space.dim

    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode one configuration as a vector in the unit cube."""
        return np.array(
            [self.space[name].to_unit(config[name]) for name in self.names], dtype=float
        )

    def encode_many(self, configs: list[Config]) -> np.ndarray:
        """Encode a list of configurations as an ``(n, d)`` array."""
        if not configs:
            return np.empty((0, self.dim))
        return np.stack([self.encode(c) for c in configs])

    def decode(self, x: np.ndarray) -> Config:
        """Decode a unit-cube vector back into a configuration."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {x.shape}")
        return {name: self.space[name].from_unit(float(u)) for name, u in zip(self.names, x)}

    def sample_unit(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` points uniformly in the unit cube (candidate pool)."""
        return rng.random((n, self.dim))
