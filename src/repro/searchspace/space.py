"""Search spaces: named collections of hyperparameter domains.

A :class:`SearchSpace` is the object every searcher in :mod:`repro.core`
draws configurations from.  It supports uniform random sampling (SHA / ASHA /
Hyperband / random search), PBT-style perturbation of an existing
configuration, and clipping arbitrary dicts back into the space.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

import numpy as np

from .domains import Choice, Domain

__all__ = ["SearchSpace"]

Config = dict[str, Any]


class SearchSpace:
    """An ordered mapping from hyperparameter name to :class:`Domain`.

    Parameters
    ----------
    domains:
        Mapping of hyperparameter name to domain.  Iteration order is
        preserved and defines the dimension order used by
        :mod:`repro.searchspace.encoding`.
    """

    def __init__(self, domains: Mapping[str, Domain]):
        if not domains:
            raise ValueError("SearchSpace requires at least one domain")
        self._domains: dict[str, Domain] = dict(domains)
        # Pre-bound (name, sample) pairs: ``sample`` is the single hottest
        # call in the simulated benchmarks, and the attribute lookups in the
        # naive ``{name: dom.sample(rng) ...}`` dictcomp are pure overhead.
        # Draw order per domain is unchanged, so seeded streams are
        # bit-identical to the unspecialised loop.
        self._samplers: list[tuple[str, Any]] = [
            (name, dom.sample) for name, dom in self._domains.items()
        ]

    @property
    def names(self) -> list[str]:
        """Hyperparameter names in dimension order."""
        return list(self._domains)

    @property
    def dim(self) -> int:
        """Number of hyperparameters."""
        return len(self._domains)

    def __len__(self) -> int:
        return len(self._domains)

    def __iter__(self) -> Iterator[str]:
        return iter(self._domains)

    def __getitem__(self, name: str) -> Domain:
        return self._domains[name]

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._domains.items())
        return f"SearchSpace({inner})"

    def sample(self, rng: np.random.Generator) -> Config:
        """Draw one configuration uniformly at random."""
        return {name: draw(rng) for name, draw in self._samplers}

    def sample_batch(self, n: int, rng: np.random.Generator) -> list[Config]:
        """Draw ``n`` i.i.d. configurations.

        This is the paper's ``get_hyperparameter_configuration(n)``
        subroutine (Algorithm 1, line 4).
        """
        return [self.sample(rng) for _ in range(n)]

    def clip(self, config: Mapping[str, Any]) -> Config:
        """Project every value of ``config`` back into its domain."""
        self._check_keys(config)
        return {name: dom.clip(config[name]) for name, dom in self._domains.items()}

    def contains(self, config: Mapping[str, Any]) -> bool:
        """Whether every value of ``config`` lies inside its domain."""
        if set(config) != set(self._domains):
            return False
        return all(dom.contains(config[name]) for name, dom in self._domains.items())

    def perturb(
        self,
        config: Mapping[str, Any],
        rng: np.random.Generator,
        *,
        resample_probability: float = 0.25,
        factors: tuple[float, float] = (0.8, 1.2),
        frozen: frozenset[str] | set[str] = frozenset(),
    ) -> Config:
        """PBT explore step (Appendix A.3 of the paper).

        With probability ``resample_probability`` a hyperparameter is
        resampled uniformly from its domain; otherwise it is perturbed by a
        factor of 0.8 or 1.2 (adjacent choice for discrete domains).
        Hyperparameters named in ``frozen`` are copied unchanged — the paper
        freezes architecture-changing hyperparameters because inherited
        weights would be invalid if they moved.
        """
        self._check_keys(config)
        out: Config = {}
        for name, dom in self._domains.items():
            if name in frozen:
                out[name] = config[name]
            elif rng.random() < resample_probability:
                out[name] = dom.sample(rng)
            else:
                out[name] = dom.perturb(config[name], rng, factors)
        return out

    def grid(self, points_per_dim: int, rng: np.random.Generator | None = None) -> list[Config]:
        """A coarse axis-aligned grid, used by acquisition optimisers.

        Categorical domains contribute all of their values; continuous
        domains contribute ``points_per_dim`` evenly spaced quantiles.  The
        cross product is capped implicitly by callers choosing small
        ``points_per_dim``.
        """
        axes: list[list[Any]] = []
        for dom in self._domains.values():
            if isinstance(dom, Choice):
                axes.append(list(dom.values))
            else:
                axes.append([dom.from_unit(u) for u in np.linspace(0.0, 1.0, points_per_dim)])
        configs: list[Config] = [{}]
        for name, axis in zip(self._domains, axes):
            configs = [dict(c, **{name: v}) for c in configs for v in axis]
        return configs

    def _check_keys(self, config: Mapping[str, Any]) -> None:
        missing = set(self._domains) - set(config)
        if missing:
            raise KeyError(f"config missing hyperparameters: {sorted(missing)}")
