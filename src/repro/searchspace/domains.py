"""Hyperparameter domain definitions.

A :class:`Domain` describes the range and scale of a single hyperparameter.
Domains know how to sample themselves, clip values back into range, perturb
values (used by Population Based Training's explore step), and map values to
and from the unit interval (used by model-based searchers such as the Vizier
and Fabolas stand-ins).

The concrete domains mirror the kinds of hyperparameters that appear in the
paper's search spaces (Tables 1-3): continuous linear, continuous
log-scale, bounded integers, and categorical choices.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = [
    "Domain",
    "Uniform",
    "LogUniform",
    "IntUniform",
    "QUniform",
    "Choice",
]


class Domain(ABC):
    """A single hyperparameter's domain.

    Subclasses implement sampling, clipping, PBT-style perturbation, and an
    invertible mapping to the unit interval.  All randomness flows through an
    explicit :class:`numpy.random.Generator` so callers control determinism.
    """

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value uniformly (on the domain's natural scale)."""

    @abstractmethod
    def clip(self, value: Any) -> Any:
        """Project ``value`` back into the domain."""

    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map ``value`` to [0, 1] on the domain's natural scale."""

    @abstractmethod
    def from_unit(self, u: float) -> Any:
        """Inverse of :meth:`to_unit` (up to discretisation)."""

    @abstractmethod
    def perturb(
        self, value: Any, rng: np.random.Generator, factors: tuple[float, float] = (0.8, 1.2)
    ) -> Any:
        """PBT explore step: nudge ``value`` by one of ``factors``.

        Continuous domains multiply by a randomly chosen factor and clip;
        discrete domains move to an adjacent choice, following Appendix A.3
        of the paper ("discrete hyperparameters are perturbed to two adjacent
        choices").
        """

    def contains(self, value: Any) -> bool:
        """Whether ``value`` lies inside the domain."""
        return self.clip(value) == value


@dataclass(frozen=True)
class Uniform(Domain):
    """Continuous hyperparameter sampled uniformly on a linear scale."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"Uniform requires low < high, got [{self.low}, {self.high}]")
        object.__setattr__(self, "_span", self.high - self.low)

    def sample(self, rng: np.random.Generator) -> float:
        # Bit-identical to rng.uniform(low, high): numpy computes exactly
        # low + (high - low) * random(), but the Generator.uniform wrapper
        # costs ~3.5x this inlined form (argument broadcasting + array
        # round-trip) — and sample() dominates the scheduler hot path.
        return self.low + self._span * rng.random()  # type: ignore[attr-defined]

    def clip(self, value: float) -> float:
        return float(min(max(value, self.low), self.high))

    def to_unit(self, value: float) -> float:
        return (self.clip(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        return float(self.low + (self.high - self.low) * min(max(u, 0.0), 1.0))

    def perturb(
        self, value: float, rng: np.random.Generator, factors: tuple[float, float] = (0.8, 1.2)
    ) -> float:
        return self.clip(value * factors[rng.integers(len(factors))])


@dataclass(frozen=True)
class LogUniform(Domain):
    """Continuous hyperparameter sampled uniformly in log space."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 < self.low < self.high:
            raise ValueError(f"LogUniform requires 0 < low < high, got [{self.low}, {self.high}]")
        log_low = math.log(self.low)
        object.__setattr__(self, "_log_low", log_low)
        object.__setattr__(self, "_log_span", math.log(self.high) - log_low)

    def sample(self, rng: np.random.Generator) -> float:
        # Same draw as exp(rng.uniform(log(low), log(high))) bit for bit
        # (see Uniform.sample); the endpoint logs are hoisted to init.
        return math.exp(
            self._log_low + self._log_span * rng.random()  # type: ignore[attr-defined]
        )

    def clip(self, value: float) -> float:
        return float(min(max(value, self.low), self.high))

    def to_unit(self, value: float) -> float:
        lo, hi = math.log(self.low), math.log(self.high)
        return (math.log(self.clip(value)) - lo) / (hi - lo)

    def from_unit(self, u: float) -> float:
        lo, hi = math.log(self.low), math.log(self.high)
        # Clip: exp(log(low)) can undershoot low by one ulp.
        return self.clip(math.exp(lo + (hi - lo) * min(max(u, 0.0), 1.0)))

    def perturb(
        self, value: float, rng: np.random.Generator, factors: tuple[float, float] = (0.8, 1.2)
    ) -> float:
        return self.clip(value * factors[rng.integers(len(factors))])


@dataclass(frozen=True)
class IntUniform(Domain):
    """Integer hyperparameter sampled uniformly from [low, high] inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"IntUniform requires low < high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def clip(self, value: int) -> int:
        return int(min(max(round(value), self.low), self.high))

    def to_unit(self, value: int) -> float:
        return (self.clip(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        return self.clip(self.low + (self.high - self.low) * min(max(u, 0.0), 1.0))

    def perturb(
        self, value: int, rng: np.random.Generator, factors: tuple[float, float] = (0.8, 1.2)
    ) -> int:
        scaled = self.clip(value * factors[rng.integers(len(factors))])
        if scaled == value:
            # Guarantee movement for small integers where *0.8/1.2 rounds back.
            step = 1 if rng.random() < 0.5 else -1
            scaled = self.clip(value + step)
        return scaled


@dataclass(frozen=True)
class QUniform(Domain):
    """Quantised continuous hyperparameter: uniform on [low, high], rounded to a multiple of q."""

    low: float
    high: float
    q: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"QUniform requires low < high, got [{self.low}, {self.high}]")
        if self.q <= 0:
            raise ValueError(f"QUniform requires q > 0, got {self.q}")
        object.__setattr__(self, "_span", self.high - self.low)

    def _quantise(self, value: float) -> float:
        return float(round(value / self.q) * self.q)

    def sample(self, rng: np.random.Generator) -> float:
        # Bit-identical to clip(rng.uniform(low, high)); see Uniform.sample.
        return self.clip(self.low + self._span * rng.random())  # type: ignore[attr-defined]

    def clip(self, value: float) -> float:
        return float(min(max(self._quantise(value), self.low), self.high))

    def to_unit(self, value: float) -> float:
        return (self.clip(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        return self.clip(self.low + (self.high - self.low) * min(max(u, 0.0), 1.0))

    def perturb(
        self, value: float, rng: np.random.Generator, factors: tuple[float, float] = (0.8, 1.2)
    ) -> float:
        scaled = self.clip(value * factors[rng.integers(len(factors))])
        if scaled == value:
            step = self.q if rng.random() < 0.5 else -self.q
            scaled = self.clip(value + step)
        return scaled


@dataclass(frozen=True)
class Choice(Domain):
    """Categorical hyperparameter drawn uniformly from an ordered list of values.

    The order matters for :meth:`perturb`: PBT moves to an *adjacent* choice,
    so ordinal categoricals (e.g. batch size in {64, 128, 256, 512}) perturb
    sensibly.
    """

    values: tuple = field(default_factory=tuple)

    def __init__(self, values: Sequence[Any]):
        if len(values) < 2:
            raise ValueError("Choice requires at least two values")
        if len(set(values)) != len(values):
            raise ValueError("Choice values must be distinct")
        object.__setattr__(self, "values", tuple(values))

    def sample(self, rng: np.random.Generator) -> Any:
        return self.values[rng.integers(len(self.values))]

    def clip(self, value: Any) -> Any:
        if value in self.values:
            return value
        # Snap numerics to the nearest value; otherwise fall back to the first.
        try:
            return min(self.values, key=lambda v: abs(v - value))
        except TypeError:
            return self.values[0]

    def index(self, value: Any) -> int:
        """Position of ``value`` in the ordered choice list."""
        return self.values.index(self.clip(value))

    def to_unit(self, value: Any) -> float:
        if len(self.values) == 1:
            return 0.0
        return self.index(value) / (len(self.values) - 1)

    def from_unit(self, u: float) -> Any:
        idx = int(round(min(max(u, 0.0), 1.0) * (len(self.values) - 1)))
        return self.values[idx]

    def perturb(
        self, value: Any, rng: np.random.Generator, factors: tuple[float, float] = (0.8, 1.2)
    ) -> Any:
        idx = self.index(value)
        candidates = [i for i in (idx - 1, idx + 1) if 0 <= i < len(self.values)]
        return self.values[candidates[rng.integers(len(candidates))]]

    def contains(self, value: Any) -> bool:
        return value in self.values
