"""Canonical compact JSON encoding, hand-rolled for the hot write paths.

Both persistence surfaces of this repo — study journals
(:mod:`repro.study.journal`) and telemetry JSONL sinks
(:mod:`repro.telemetry.sinks`) — pin their bytes to
``json.dumps(obj, sort_keys=True, separators=(",", ":"))`` with numpy
scalars unwrapped.  That canonical form is load-bearing: journals are
byte-compared across resume/replay, telemetry streams across seeded runs.
It is also hot: one journal line per ask/tell and one sink line per
telemetry event, tens of thousands of times per simulated run.

:func:`encode_canonical` produces those exact bytes without the generic
``json.dumps`` machinery (sort_keys comparator, default-hook dispatch,
separator handling) for the overwhelmingly common shape — nested dicts with
string keys, lists, and plain Python scalars.  Anything else (numpy
scalars, exotic keys, custom objects) falls back to ``json.dumps`` with the
same options, so the output is byte-identical by construction either way;
``tests/telemetry/test_canonical.py`` fuzzes that equivalence and pins the
two-build byte-identity of a real telemetry stream.

The same fast-path idea (exact ``type`` checks, ``repr`` for numbers,
json's own C string escaper) already proved out in
``repro.objectives.base._encode_plain``; this module is the compact-
separator sibling, kept dependency-free so both ``study`` and ``telemetry``
can import it without cycles.
"""

from __future__ import annotations

import json
from json.encoder import encode_basestring_ascii as _escape
from typing import Any

__all__ = ["encode_canonical"]

_INF = float("inf")
_NINF = float("-inf")


def _json_default(value: Any) -> Any:
    """Serialise numpy scalars (and other ``.item()`` carriers) in the fallback."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def _write(value: Any, parts: list[str]) -> bool:
    """Append ``value``'s canonical encoding to ``parts``; False → needs json.

    Exact ``type`` checks (never ``isinstance``) keep numpy scalars — which
    subclass Python numerics but must encode via ``.item()`` — and bool-vs-
    int straight: ``type(True) is int`` is False, so each branch matches
    exactly one built-in.  ``repr`` of a plain float/int is exactly what the
    C encoder emits (shortest-repr doubles, decimal ints), and the
    non-finite floats get json's ``NaN``/``Infinity`` literals — journals
    rely on NaN losses round-tripping.  On a False return the caller
    discards ``parts``; partial output is never observable.
    """
    tv = type(value)
    if tv is str:
        parts.append(_escape(value))
        return True
    if tv is float:
        if value != value:
            parts.append("NaN")
        elif value == _INF:
            parts.append("Infinity")
        elif value == _NINF:
            parts.append("-Infinity")
        else:
            parts.append(repr(value))
        return True
    if tv is int:
        parts.append(repr(value))
        return True
    if tv is bool:
        parts.append("true" if value else "false")
        return True
    if value is None:
        parts.append("null")
        return True
    if tv is dict:
        if not value:
            parts.append("{}")
            return True
        try:
            keys = sorted(value)
        except TypeError:
            return False  # mixed-type keys: let json.dumps raise its own error
        parts.append("{")
        sep = ""
        for key in keys:
            if type(key) is not str:
                return False  # json stringifies int/float keys; rare, slow path
            parts.append(sep)
            sep = ","
            parts.append(_escape(key))
            parts.append(":")
            if not _write(value[key], parts):
                return False
        parts.append("}")
        return True
    if tv is list or tv is tuple:
        if not value:
            parts.append("[]")
            return True
        parts.append("[")
        sep = ""
        for item in value:
            parts.append(sep)
            sep = ","
            if not _write(item, parts):
                return False
        parts.append("]")
        return True
    return False


def encode_canonical(obj: Any) -> str:
    """Canonical compact encoding of ``obj``.

    Byte-identical to
    ``json.dumps(obj, sort_keys=True, separators=(",", ":"), default=unwrap)``
    where ``unwrap`` maps ``.item()`` carriers (numpy scalars) through their
    Python value and anything else through ``str`` — the encoding both the
    journal and the JSONL telemetry sink have always pinned.
    """
    parts: list[str] = []
    if _write(obj, parts):
        return "".join(parts)
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_json_default)
