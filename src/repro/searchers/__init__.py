"""Searchers: *how configurations are proposed*, decoupled from scheduling.

Schedulers (:mod:`repro.core`) decide promotion and resource allocation;
searchers decide which configuration to try next and learn from every
reported loss.  Any scheduler accepting ``searcher=`` can drive any
searcher — ``ASHA + KDESearcher`` is asynchronous BOHB, ``ASHA +
GPEISearcher`` is a MOBSTER-family tuner, ``SynchronousSHA + KDESearcher``
*is* BOHB.
"""

from .base import ORIGIN_GRID, ORIGIN_MODEL, ORIGIN_RANDOM, Searcher, SearcherError
from .gp import GPEISearcher
from .grid import GridSearcher
from .kde import KDESearcher
from .random import FunctionSearcher, RandomSearcher
from .registry import SEARCHERS, build_searcher

__all__ = [
    "ORIGIN_GRID",
    "ORIGIN_MODEL",
    "ORIGIN_RANDOM",
    "SEARCHERS",
    "FunctionSearcher",
    "GPEISearcher",
    "GridSearcher",
    "KDESearcher",
    "RandomSearcher",
    "Searcher",
    "SearcherError",
    "build_searcher",
]
