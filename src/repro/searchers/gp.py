"""GP-EI proposal with constant-liar batching — Vizier's model, extracted.

The Gaussian-process expected-improvement machinery that powered the
:class:`~repro.core.vizier.VizierGP` comparator (Golovin et al. [2017]) as a
standalone :class:`Searcher`:

* a Matern-5/2 GP over unit-cube-encoded configurations;
* expected improvement maximised over a fresh uniform candidate pool;
* constant-liar imputation of pending proposals so hundreds of parallel
  workers receive de-duplicated suggestions [Ginsbourger et al., 2010];
* optional loss capping against heavy-tailed objectives (Section 4.3).

Paired with ASHA this is an asynchronous model-based tuner in the MOBSTER
family [Klein et al., 2020]: promotions stay asynchronous while the GP is
fit to each trial's **highest-fidelity** observation so far (a multi-fidelity
observation policy in the spirit of Hyper-Tune [Li et al., 2022]).  Paired
with a full-budget scheduler it reproduces the paper's Vizier stand-in
exactly — seeded trial streams match the pre-refactor ``VizierGP``.

Speed knobs (``refit_every``, ``max_fit_points``) carry over unchanged: the
GP is refit every ``refit_every`` proposals rather than on each one, and is
conditioned on a uniform subsample (best point always kept) once the history
outgrows ``max_fit_points``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..models.acquisition import expected_improvement
from ..models.gp import GaussianProcess
from ..models.kernels import Matern52
from ..searchspace import Config, SearchSpace, UnitCubeEncoder
from .base import ORIGIN_MODEL, ORIGIN_RANDOM, Searcher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.types import Trial

__all__ = ["GPEISearcher"]


class GPEISearcher(Searcher):
    """Batched GP-EI proposals over any scheduler's observation stream.

    Parameters
    ----------
    num_init:
        Uniformly random configurations before the model activates.
    num_candidates:
        Uniform candidate pool size per proposal.
    loss_cap:
        If set, observed losses are clipped to this value before fitting.
    refit_every, max_fit_points:
        Refit cadence and observation-subsample cap (speed knobs).
    """

    def __init__(
        self,
        *,
        num_init: int = 10,
        num_candidates: int = 256,
        loss_cap: float | None = None,
        refit_every: int = 10,
        max_fit_points: int = 400,
        record_origin: bool = True,
    ):
        super().__init__(record_origin=record_origin)
        self.num_init = num_init
        self.num_candidates = num_candidates
        self.loss_cap = loss_cap
        self.refit_every = refit_every
        self.max_fit_points = max_fit_points
        self.encoder: UnitCubeEncoder | None = None
        # One observation per trial, in first-report order; later reports at
        # a higher resource overwrite the loss in place (highest-fidelity
        # observation policy), keeping fit inputs order-stable.
        self._obs_x: dict[int, np.ndarray] = {}
        self._obs_y: dict[int, float] = {}
        self._obs_resource: dict[int, float] = {}
        # Encoded proposals awaiting their first result (constant-liar pool).
        self._pending: list[np.ndarray] = []
        self._gp: GaussianProcess | None = None
        self._proposals_since_fit = 0

    def _setup(self, space: SearchSpace) -> None:
        self.encoder = UnitCubeEncoder(space)

    # ------------------------------------------------------------ proposals

    def _propose(self, rng: np.random.Generator) -> tuple[Config, str]:
        assert self.space is not None and self.encoder is not None
        if len(self._obs_y) < self.num_init:
            config = self.space.sample(rng)
            origin = ORIGIN_RANDOM
        else:
            gp = self._fit_if_needed(rng)
            candidates = self.encoder.sample_unit(self.num_candidates, rng)
            mean, std = gp.predict(candidates)
            finite = [y for y in self._obs_y.values() if np.isfinite(y)]
            best = min(finite) if finite else 0.0
            scores = expected_improvement(mean, std, best)
            config = self.encoder.decode(candidates[int(np.argmax(scores))])
            origin = ORIGIN_MODEL
        self._pending.append(self.encoder.encode(config))
        return config, origin

    # ------------------------------------------------------------- feedback

    def _observe(self, trial: "Trial", resource: float, loss: float, rung: int) -> None:
        assert self.encoder is not None
        tid = trial.trial_id
        if tid not in self._obs_x:
            x = self._pop_pending(trial.config)
            if x is None:
                x = self.encoder.encode(trial.config)
            self._obs_x[tid] = x
            self._obs_y[tid] = self._clean(loss)
            self._obs_resource[tid] = resource
        elif resource >= self._obs_resource[tid]:
            self._obs_y[tid] = self._clean(loss)
            self._obs_resource[tid] = resource
        else:
            return  # stale lower-fidelity result; keep the better observation
        self._gp = None  # force refit at the next proposal window

    def on_trial_error(self, trial: "Trial") -> None:
        """Forget the pending proposal of a dropped, never-reported trial."""
        if trial.trial_id not in self._obs_x:
            self._pop_pending(trial.config)

    # ------------------------------------------------------------- insight

    @property
    def num_observations(self) -> int:
        return len(self._obs_y)

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    @property
    def observed_losses(self) -> list[float]:
        """Cleaned losses in observation order (tests, diagnostics)."""
        return list(self._obs_y.values())

    # --------------------------------------------------------------- model

    def _clean(self, loss: float) -> float:
        if not np.isfinite(loss):
            loss = self.loss_cap if self.loss_cap is not None else 1e12
        if self.loss_cap is not None:
            loss = min(loss, self.loss_cap)
        return float(loss)

    def _pop_pending(self, config: Config) -> np.ndarray | None:
        assert self.encoder is not None
        x = self.encoder.encode(config)
        for i, pending in enumerate(self._pending):
            if np.array_equal(pending, x):
                return self._pending.pop(i)
        return None

    def _fit_if_needed(self, rng: np.random.Generator) -> GaussianProcess:
        self._proposals_since_fit += 1
        if self._gp is not None and self._proposals_since_fit < self.refit_every:
            return self._gp
        self._proposals_since_fit = 0
        x = np.stack(list(self._obs_x.values()))
        y = np.asarray(list(self._obs_y.values()))
        if len(y) > self.max_fit_points:
            # Uniform subsample plus the current best observation.  Keeping a
            # *best-biased* subsample here would quietly filter out the
            # heavy-tailed losses Section 4.3 shows degrading model-based
            # methods, changing the algorithm under study.
            keep = rng.choice(len(y), size=self.max_fit_points - 1, replace=False)
            keep = np.append(keep, int(np.argmin(y)))
            x, y = x[keep], y[keep]
        # Constant-liar imputation of pending points (batch parallelism).
        if self._pending:
            pend = list(self._pending)
            if len(pend) > 100:
                idx = rng.choice(len(pend), size=100, replace=False)
                pend = [pend[i] for i in idx]
            lie = float(np.min(y)) if len(y) else 0.0
            x = np.vstack([x, np.stack(pend)])
            y = np.concatenate([y, np.full(len(pend), lie)])
        gp = GaussianProcess(kernel=Matern52(), noise=1e-3)
        # Small marginal-likelihood grid: the fit happens inside a 500-worker
        # dispatch loop, and three length scales cover the unit cube well.
        gp.fit_tuned(x, y, length_scales=(0.15, 0.3, 0.6), variances=(1.0,))
        self._gp = gp
        return gp
