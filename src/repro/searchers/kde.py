"""TPE/KDE proposal — BOHB's model bank, extracted from the scheduler.

"BOHB uses SHA to perform early-stopping and differs only in how
configurations are sampled" (Section 4.1).  This searcher *is* that
difference: one TPE-style KDE model per rung ("budget"), proposals from the
model of the highest rung with enough observations, a fixed fraction kept
uniformly random.  Pre-refactor this logic was welded into
``repro.core.bohb`` as a private ``_RungModels``; as a searcher it composes
with any scheduler — synchronous SHA reproduces BOHB, ASHA yields the
asynchronous model-based tuner the paper's conclusion gestures at.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..models.kde import TPESampler
from ..searchspace import Config, SearchSpace, UnitCubeEncoder
from .base import ORIGIN_MODEL, ORIGIN_RANDOM, Searcher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.types import Trial

__all__ = ["KDESearcher"]


class KDESearcher(Searcher):
    """Per-rung TPE models + highest-ready-rung proposal rule.

    Parameters
    ----------
    gamma, num_candidates, random_fraction, min_points:
        See :class:`repro.models.kde.TPESampler` (BOHB defaults).
    """

    def __init__(
        self,
        *,
        gamma: float = 0.15,
        num_candidates: int = 24,
        random_fraction: float = 1.0 / 3.0,
        min_points: int | None = None,
        record_origin: bool = True,
    ):
        super().__init__(record_origin=record_origin)
        self.gamma = gamma
        self.num_candidates = num_candidates
        self.random_fraction = random_fraction
        self.min_points = min_points
        self.encoder: UnitCubeEncoder | None = None
        #: rung -> TPE model over that rung's observations.
        self.models: dict[int, TPESampler] = {}

    def _setup(self, space: SearchSpace) -> None:
        self.encoder = UnitCubeEncoder(space)

    def _observe(self, trial: "Trial", resource: float, loss: float, rung: int) -> None:
        assert self.encoder is not None
        model = self.models.get(rung)
        if model is None:
            model = self.models[rung] = TPESampler(
                self.encoder.dim,
                gamma=self.gamma,
                num_candidates=self.num_candidates,
                random_fraction=self.random_fraction,
                min_points=self.min_points,
            )
        model.observe(self.encoder.encode(trial.config), loss)

    def _propose(self, rng: np.random.Generator) -> tuple[Config, str]:
        assert self.encoder is not None
        for rung in sorted(self.models, reverse=True):
            model = self.models[rung]
            if model.model_ready():
                x = model.propose(rng)
                origin = ORIGIN_MODEL if model.last_proposal_was_model else ORIGIN_RANDOM
                return self.encoder.decode(x), origin
        return self.encoder.decode(rng.random(self.encoder.dim)), ORIGIN_RANDOM

    # ------------------------------------------------------------ snapshots

    def _searcher_state(self) -> dict:
        return {
            "models": {
                str(rung): {
                    "x": [x.tolist() for x in model._x],
                    "y": list(model._y),
                    "last_proposal_was_model": model.last_proposal_was_model,
                }
                for rung, model in self.models.items()
            }
        }

    def _load_searcher_state(self, extra: dict) -> None:
        self.models = {}
        for rung_key, model_state in extra["models"].items():
            model = TPESampler(
                self.encoder.dim if self.encoder is not None else len(model_state["x"][0]),
                gamma=self.gamma,
                num_candidates=self.num_candidates,
                random_fraction=self.random_fraction,
                min_points=self.min_points,
            )
            model._x = [np.asarray(x, dtype=float) for x in model_state["x"]]
            model._y = [float(y) for y in model_state["y"]]
            model.last_proposal_was_model = bool(model_state["last_proposal_was_model"])
            self.models[int(rung_key)] = model

    # ------------------------------------------------------------- insight

    def num_observations(self, rung: int) -> int:
        """Observations filed into the rung's model (0 if it has none)."""
        model = self.models.get(rung)
        return model.num_observations if model is not None else 0
