"""Grid proposal: walk a precomputed axis-aligned lattice, then stop.

The classical non-adaptive baseline as a :class:`Searcher`, so the grid can
now be paired with *any* scheduler — including early-stopping ones, which
the standalone :class:`~repro.core.grid_search.GridSearch` scheduler never
allowed.  A finite searcher: :meth:`is_done` flips once the lattice is
exhausted and schedulers stop growing new trials while promotions continue.
"""

from __future__ import annotations

import numpy as np

from ..searchspace import Config, SearchSpace
from .base import ORIGIN_GRID, Searcher, SearcherError

__all__ = ["GridSearcher"]


class GridSearcher(Searcher):
    """Propose every point of an axis-aligned grid exactly once.

    Parameters
    ----------
    points_per_dim:
        Quantiles per continuous dimension (categoricals use all values).
    shuffle:
        Visit the grid in random order (recommended: axis order biases
        early incumbents otherwise).  The permutation is drawn from the
        scheduler's rng on the first proposal, keeping construction
        rng-free.
    """

    def __init__(self, *, points_per_dim: int = 3, shuffle: bool = True, record_origin: bool = True):
        super().__init__(record_origin=record_origin)
        if points_per_dim < 2:
            raise ValueError(f"points_per_dim must be >= 2, got {points_per_dim}")
        self.points_per_dim = points_per_dim
        self.shuffle = shuffle
        self._queue: list[Config] = []
        self._shuffled = False
        self._cursor = 0

    def _setup(self, space: SearchSpace) -> None:
        self._queue = space.grid(self.points_per_dim)

    @property
    def grid_size(self) -> int:
        return len(self._queue)

    def is_done(self) -> bool:
        return self.space is not None and self._cursor >= len(self._queue)

    def _propose(self, rng: np.random.Generator) -> tuple[Config, str]:
        if self.shuffle and not self._shuffled:
            order = rng.permutation(len(self._queue))
            self._queue = [self._queue[i] for i in order]
            self._shuffled = True
        if self._cursor >= len(self._queue):
            raise SearcherError("grid exhausted: suggest() called after is_done()")
        config = self._queue[self._cursor]
        self._cursor += 1
        return config, ORIGIN_GRID

    # ------------------------------------------------------------ snapshots

    def _searcher_state(self) -> dict:
        # The queue is serialized in its *current* (possibly shuffled) order,
        # so restoring never replays the permutation draw.
        return {
            "queue": [dict(config) for config in self._queue],
            "shuffled": self._shuffled,
            "cursor": self._cursor,
        }

    def _load_searcher_state(self, extra: dict) -> None:
        self._queue = [dict(config) for config in extra["queue"]]
        self._shuffled = bool(extra["shuffled"])
        self._cursor = int(extra["cursor"])
