"""Uniform random proposal — the paper's default — plus a callable adapter.

Random search over a well-designed space is the baseline every adaptive
method in the paper is measured against; as a :class:`Searcher` it is
stateless and ignores all feedback.  :class:`FunctionSearcher` wraps a bare
``sampler(rng) -> config`` callable (the pre-refactor scheduler escape
hatch, still used by the scripted Figure-2 replays) in the same protocol.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..searchspace import Config, SearchSpace
from .base import ORIGIN_RANDOM, Searcher

__all__ = ["RandomSearcher", "FunctionSearcher"]


class RandomSearcher(Searcher):
    """Propose i.i.d. uniform samples from the search space."""

    def _propose(self, rng: np.random.Generator) -> tuple[Config, str]:
        assert self.space is not None
        return self.space.sample(rng), ORIGIN_RANDOM

    def _searcher_state(self) -> dict:
        return {}

    def _load_searcher_state(self, extra: dict) -> None:
        pass


class FunctionSearcher(Searcher):
    """Adapt a plain ``sampler(rng) -> config`` callable to the protocol.

    Feedback is dropped on the floor — a bare callable has nowhere to put
    it.  Built by schedulers when given the legacy ``sampler=`` argument, so
    origin recording defaults off (the stream predates the origin tag).
    """

    def __init__(
        self,
        fn: Callable[[np.random.Generator], Config],
        *,
        record_origin: bool = False,
    ):
        super().__init__(record_origin=record_origin)
        self._fn = fn

    def _setup(self, space: SearchSpace) -> None:
        pass

    def _propose(self, rng: np.random.Generator) -> tuple[Config, str]:
        return self._fn(rng), ORIGIN_RANDOM

    def _searcher_state(self) -> dict:
        # The wrapped callable owns any state (scripted queues etc.); only a
        # pure function of the rng round-trips — which is the documented use.
        return {}

    def _load_searcher_state(self, extra: dict) -> None:
        pass
