"""The ``Searcher`` protocol: how configurations are *proposed*.

The paper's conclusion ("combining ASHA with adaptive selection methods",
Section 5) observes that ASHA's promotion logic is orthogonal to how new
configurations are chosen — and the strongest follow-ups (MOBSTER,
Hyper-Tune) get their gains precisely from pairing asynchronous promotion
with model-based sampling.  This module makes that orthogonality a
first-class axis: a :class:`Searcher` owns proposal and observation state,
a :class:`~repro.core.scheduler.Scheduler` owns promotion and resource
allocation, and any scheduler can drive any searcher.

Protocol (template methods, so call bookkeeping is uniform and the contract
checker can audit it):

* ``setup(space)`` — bind the search space once, before the first proposal;
* ``suggest(rng) -> Config`` — propose the next configuration;
* ``on_result(trial, resource, loss, rung=...)`` — observation feedback for
  every reported loss, at any fidelity;
* ``on_trial_complete(trial, loss)`` — the trial reached its terminal rung;
* ``on_trial_error(trial)`` — the trial was dropped without a result;
* ``is_done()`` — the searcher can propose nothing further (finite
  searchers only, e.g. grid); ``suggest`` must not be called afterwards.

Every proposal is tagged with an *origin* — :data:`ORIGIN_MODEL` when an
adaptive model produced it, :data:`ORIGIN_RANDOM` for uniform sampling or a
random fallback — which schedulers forward into ``trial_started`` telemetry
so the metrics layer can report model-hit rates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from ..searchspace import Config, SearchSpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from ..core.types import Trial

__all__ = ["Searcher", "SearcherError", "ORIGIN_MODEL", "ORIGIN_RANDOM", "ORIGIN_GRID"]

#: Proposal came out of a fitted model (KDE ratio argmax, GP-EI argmax, ...).
ORIGIN_MODEL = "model_based"
#: Proposal is uniform — either by design or as a model warm-up/fallback.
ORIGIN_RANDOM = "random_fallback"
#: Proposal came off a precomputed deterministic lattice.
ORIGIN_GRID = "grid"


class SearcherError(RuntimeError):
    """A searcher was driven outside its protocol (setup/suggest misuse)."""


class Searcher(ABC):
    """Base class for proposal strategies attachable to schedulers.

    Subclasses implement :meth:`_propose` (and optionally :meth:`_setup`,
    :meth:`_observe`, :meth:`_complete`); the public methods wrap them with
    the bookkeeping — call counters and the last proposal's origin — that
    :class:`~repro.core.contract.ContractChecker` audits.

    Parameters
    ----------
    record_origin:
        Whether :attr:`origin` exposes the proposal origin for telemetry.
        Searchers constructed *internally* by legacy composite schedulers
        (BOHB, VizierGP) switch this off so their seeded telemetry streams
        stay byte-identical with the pre-refactor recordings; searchers
        attached explicitly (``tune(..., searcher=...)``) record origins.
    """

    def __init__(self, *, record_origin: bool = True):
        self.record_origin = record_origin
        self.space: SearchSpace | None = None
        self._last_origin: str | None = None
        #: Protocol counters, audited by the scheduler contract checker.
        self.num_suggestions = 0
        self.num_results = 0
        self.num_completions = 0

    # ------------------------------------------------------------ lifecycle

    def setup(self, space: SearchSpace) -> "Searcher":
        """Bind the search space; idempotent for the same space object.

        Composite schedulers (Hyperband's inner SHA brackets, the async
        variants' ASHA ladders) share one searcher across sub-schedulers, so
        ``setup`` is called once per sub-scheduler with the same space.
        Rebinding to a *different* space would silently mix observation
        scales, so it is an error.
        """
        if self.space is not None:
            if self.space is not space:
                raise SearcherError(
                    f"{type(self).__name__} is already bound to a search space; "
                    "build a fresh searcher per search"
                )
            return self
        self.space = space
        self._setup(space)
        return self

    def _setup(self, space: SearchSpace) -> None:
        """Subclass hook: build encoders/queues once the space is known."""

    # ------------------------------------------------------------ proposals

    def suggest(self, rng: np.random.Generator) -> Config:
        """Propose the next configuration to evaluate."""
        if self.space is None:
            raise SearcherError(f"{type(self).__name__}.setup(space) must run before suggest()")
        config, origin = self._propose(rng)
        self._last_origin = origin
        self.num_suggestions += 1
        return config

    @abstractmethod
    def _propose(self, rng: np.random.Generator) -> tuple[Config, str]:
        """Return ``(config, origin)``; origin is one of the ``ORIGIN_*`` tags."""

    @property
    def origin(self) -> str | None:
        """Origin of the last proposal, or ``None`` when recording is off."""
        return self._last_origin if self.record_origin else None

    def is_done(self) -> bool:
        """Whether the searcher is exhausted.  Must never flip back to False."""
        return False

    # ------------------------------------------------------------- feedback

    def on_result(self, trial: "Trial", resource: float, loss: float, *, rung: int = 0) -> None:
        """Ingest one reported loss for ``trial`` at cumulative ``resource``.

        Schedulers forward **every** reported loss exactly once, passing the
        rung the result was filed into (0 for rung-less schedulers).
        """
        self.num_results += 1
        self._observe(trial, resource, loss, rung)

    def _observe(self, trial: "Trial", resource: float, loss: float, rung: int) -> None:
        """Subclass hook: update proposal models with one observation."""

    def on_trial_complete(self, trial: "Trial", loss: float) -> None:
        """``trial`` reached its terminal rung with final ``loss``."""
        self.num_completions += 1
        self._complete(trial, loss)

    def _complete(self, trial: "Trial", loss: float) -> None:
        """Subclass hook: terminal-result bookkeeping."""

    def on_trial_error(self, trial: "Trial") -> None:
        """``trial`` was dropped without a usable result (default: ignore)."""

    # ------------------------------------------------------------ snapshots

    def state_dict(self) -> dict:
        """Serialize proposal state as JSON-safe plain data.

        The base captures the protocol counters and origin; model internals
        go through :meth:`_searcher_state`.  Restoring into a freshly
        constructed searcher (same constructor arguments, bound to the same
        space) via :meth:`load_state` must resume the exact proposal
        sequence given the same rng stream.
        """
        return {
            "type": type(self).__name__,
            "last_origin": self._last_origin,
            "num_suggestions": self.num_suggestions,
            "num_results": self.num_results,
            "num_completions": self.num_completions,
            "extra": self._searcher_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this searcher."""
        expected = state["type"]
        if expected != type(self).__name__:
            raise SearcherError(
                f"state is for searcher {expected!r}, not {type(self).__name__!r}"
            )
        self._last_origin = state["last_origin"]
        self.num_suggestions = int(state["num_suggestions"])
        self.num_results = int(state["num_results"])
        self.num_completions = int(state["num_completions"])
        self._load_searcher_state(state["extra"])

    def _searcher_state(self) -> dict:
        """Subclass hook: model internals beyond the base counters."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state serialization"
        )

    def _load_searcher_state(self, extra: dict) -> None:
        """Subclass hook: restore :meth:`_searcher_state` output."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state serialization"
        )
