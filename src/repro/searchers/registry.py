"""Name -> searcher factory registry, mirroring ``tune``'s ``SCHEDULERS``.

Kept beside the searchers (rather than in :mod:`repro.tune`) so lower
layers — experiment factories, benchmarks, tests — can resolve searcher
names without importing the high-level API.
"""

from __future__ import annotations

from typing import Any

from .base import Searcher
from .gp import GPEISearcher
from .grid import GridSearcher
from .kde import KDESearcher
from .random import RandomSearcher

__all__ = ["SEARCHERS", "build_searcher"]

#: Searcher names accepted by :func:`repro.tune.tune` and :func:`build_searcher`.
SEARCHERS = ("random", "kde", "gp", "grid")


def build_searcher(searcher: str | Searcher, kwargs: dict[str, Any] | None = None) -> Searcher:
    """Resolve a searcher name (or pass an instance through).

    Parameters
    ----------
    searcher:
        One of :data:`SEARCHERS`, or an already-constructed
        :class:`~repro.searchers.base.Searcher` (returned as-is; ``kwargs``
        must then be empty).
    kwargs:
        Forwarded to the searcher's constructor.
    """
    if isinstance(searcher, Searcher):
        if kwargs:
            raise ValueError(
                "searcher_kwargs cannot be combined with an already-constructed "
                f"searcher instance ({type(searcher).__name__})"
            )
        return searcher
    options = dict(kwargs or {})
    if searcher == "random":
        return RandomSearcher(**options)
    if searcher == "kde":
        return KDESearcher(**options)
    if searcher == "gp":
        return GPEISearcher(**options)
    if searcher == "grid":
        return GridSearcher(**options)
    raise KeyError(f"unknown searcher {searcher!r}; options: {sorted(SEARCHERS)}")
