"""The shared experiment driver: one search = scheduler + objective + cluster.

Every figure bench assembles the same pieces: build an objective (a fresh
instance per experiment trial, mimicking fresh data splits), build a
scheduler seeded per trial, run it on a simulated cluster, and track the
incumbent.  :func:`run_trials` does this across seeds and returns the
records the analysis layer aggregates.

Experiment trials are independent and fully seed-determined, so
:func:`run_trials` and :func:`run_methods` fan them out across processes
when asked (``n_jobs=`` / ``executor=`` / the ``REPRO_JOBS`` environment
variable — see :mod:`repro.experiments.parallel`).  Parallel output is
identical to sequential output: same records in the same order, same
telemetry metric reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..analysis.results import AggregateCurve, RunRecord, aggregate
from ..analysis.tracker import trace_incumbent
from ..backend.process_pool import ProcessPoolBackend
from ..backend.simulation import SimulatedCluster
from ..core.scheduler import Scheduler
from ..objectives.base import Objective
from ..objectives.surrogate import SurrogateObjective
from ..study import Journal, Study, StudyMultiplexer
from ..telemetry import JSONLSink, TelemetryHub
from .parallel import parallel_map

__all__ = [
    "run_trials",
    "run_methods",
    "run_studies",
    "aggregate_methods",
    "sequence_seeds",
    "telemetry_event_path",
    "journal_path",
    "SchedulerFactory",
    "ObjectiveFactory",
    "TrialTask",
    "run_trial_task",
]

SchedulerFactory = Callable[[Objective, np.random.Generator], Scheduler]
ObjectiveFactory = Callable[[int], Objective]
TelemetryFactory = Callable[[int], TelemetryHub | None]


@dataclass(frozen=True)
class TrialTask:
    """One ``(method, seed)`` experiment trial, ready to execute anywhere.

    The spec itself is a plain frozen dataclass — picklable whenever its
    factories are (module-level functions).  Closure factories still work
    with the default fork-based pool, which inherits the spec instead of
    pickling it; see :mod:`repro.experiments.parallel`.
    """

    method: str
    make_scheduler: SchedulerFactory
    make_objective: ObjectiveFactory
    seed: int
    num_workers: int
    time_limit: float
    straggler_std: float = 0.0
    drop_probability: float = 0.0
    accounting: str = "by_rung"
    offline_validation: bool = False
    max_measurements: int | None = None
    telemetry: TelemetryFactory | None = None
    #: Directory for a per-trial JSONL event export (one file per
    #: ``(method, seed)``); mutually exclusive with ``telemetry``.
    telemetry_out: str | None = None
    #: Directory for a per-trial crash-safety journal (one write-ahead JSONL
    #: file per ``(method, seed)``); see ``docs/study.md``.
    journal_out: str | None = None
    #: Execution backend for the trial's cluster: ``"simulated"`` (inline
    #: training) or ``"processes"`` (:class:`ProcessPoolBackend` — training
    #: increments run in a fork-based process pool, byte-identical output).
    backend: str = "simulated"


def telemetry_event_path(directory: str | Path, method: str, seed: int) -> Path:
    """Canonical event-file location for one ``(method, seed)`` trial."""
    slug = "".join(c if c.isalnum() or c in "-_." else "_" for c in method)
    return Path(directory) / f"{slug}-seed{seed}.jsonl"


def journal_path(directory: str | Path, method: str, seed: int) -> Path:
    """Canonical journal location for one ``(method, seed)`` trial."""
    slug = "".join(c if c.isalnum() or c in "-_." else "_" for c in method)
    return Path(directory) / f"{slug}-seed{seed}.journal.jsonl"


def _ensure_output_dirs(*directories: str | Path | None) -> None:
    """Create output directories once, before any parallel fan-out.

    Forked trial workers used to each ``mkdir`` the telemetry/journal
    output directory on first use; creating it up front (``exist_ok=True``)
    removes the concurrent-mkdir window entirely, so workers only ever see
    an existing directory.
    """
    for directory in directories:
        if directory is not None:
            Path(directory).mkdir(parents=True, exist_ok=True)


def run_trial_task(task: TrialTask) -> RunRecord:
    """Execute one experiment trial; the unit of work of the parallel engine."""
    seed = task.seed
    objective = task.make_objective(seed)
    rng = np.random.default_rng(seed)
    scheduler = task.make_scheduler(objective, rng)
    if task.backend not in ("simulated", "processes"):
        raise KeyError(
            f"unknown trial backend {task.backend!r}; options: simulated, processes"
        )
    cluster_cls = ProcessPoolBackend if task.backend == "processes" else SimulatedCluster
    cluster = cluster_cls(
        task.num_workers,
        straggler_std=task.straggler_std,
        drop_probability=task.drop_probability,
        seed=seed + 10_000,
    )
    hub = task.telemetry(seed) if task.telemetry is not None else None
    owned_hub = None
    if hub is None and task.telemetry_out is not None:
        path = telemetry_event_path(task.telemetry_out, task.method, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        hub = owned_hub = TelemetryHub.with_metrics(JSONLSink(path))
    runnable: Scheduler | Study = scheduler
    if task.journal_out is not None:
        jpath = journal_path(task.journal_out, task.method, seed)
        jpath.parent.mkdir(parents=True, exist_ok=True)
        runnable = Study(scheduler, journal=jpath)
    backend_result = cluster.run(
        runnable,
        objective,
        time_limit=task.time_limit,
        max_measurements=task.max_measurements,
        telemetry=hub,
    )
    if owned_hub is not None:
        owned_hub.close()
    evaluate = None
    if task.offline_validation and isinstance(objective, SurrogateObjective):
        evaluate = objective.clean_loss_at
    trace = trace_incumbent(
        backend_result, scheduler, accounting=task.accounting, evaluate=evaluate
    )
    return RunRecord(method=task.method, seed=seed, trace=trace, backend=backend_result)


def run_trials(
    method: str,
    make_scheduler: SchedulerFactory,
    make_objective: ObjectiveFactory,
    *,
    num_workers: int,
    time_limit: float,
    seeds: Iterable[int],
    straggler_std: float = 0.0,
    drop_probability: float = 0.0,
    accounting: str = "by_rung",
    offline_validation: bool = False,
    max_measurements: int | None = None,
    telemetry: TelemetryFactory | None = None,
    telemetry_out: str | Path | None = None,
    journal_out: str | Path | None = None,
    n_jobs: int | None = None,
    executor=None,
    backend: str = "simulated",
) -> list[RunRecord]:
    """Run one tuning method across several experiment trials.

    Parameters
    ----------
    make_scheduler:
        ``(objective, rng) -> Scheduler``; the rng is seeded per trial.
    make_objective:
        ``seed -> Objective``; a fresh benchmark instance per trial.
    offline_validation:
        For surrogate objectives, report the incumbent's *noise-free*
        from-scratch loss at its trained resource instead of the noisy
        observation.  Off by default: it misvalues trials whose state was
        inherited (PBT clones), and the paper's curves track the best
        observed validation loss anyway.
    telemetry:
        Optional ``seed -> TelemetryHub | None`` factory — one hub per
        experiment trial (e.g. one JSONL file per seed).  Each run's
        metrics report is reachable via its record's
        ``backend.telemetry``.  Under a process pool the hub lives in the
        worker; inspect the returned report (or a file sink), not the hub
        object itself.
    telemetry_out:
        Directory to write one JSONL event file per ``(method, seed)``
        trial into (``<method>-seed<N>.jsonl``, created on demand), so a
        span/timeline trace can be rebuilt from any experiment run with
        ``python -m repro.telemetry.trace``.  Ignored when a ``telemetry``
        factory is given (the factory owns sink placement then).
    journal_out:
        Directory to write one crash-safety journal per ``(method, seed)``
        trial into (``<method>-seed<N>.journal.jsonl``, created on demand).
        Each trial then runs through a journal-backed
        :class:`~repro.study.Study`, so an interrupted experiment can be
        resumed per trial with ``Study.resume``; see ``docs/study.md``.
    n_jobs:
        Trials to run concurrently in separate processes.  ``None`` defers
        to ``$REPRO_JOBS`` (default 1); ``-1`` means all cores.  Records
        come back in seed order and are byte-identical to ``n_jobs=1``.
    executor:
        Optional pre-built :class:`concurrent.futures.Executor` to submit
        trials to instead of the engine's own fork pool (tasks must then be
        picklable); mutually composable with ``n_jobs`` only in the sense
        that the executor wins when both are given.
    backend:
        Per-trial execution backend — ``"simulated"`` (default) or
        ``"processes"`` for CPU-bound objectives (see
        :class:`~repro.backend.ProcessPoolBackend`).  Orthogonal to
        ``n_jobs``, which fans out *whole trials*; the process backend
        parallelises training *within* one trial, so prefer ``n_jobs``
        when there are many trials and ``backend="processes"`` when one
        expensive trial dominates.
    """
    # An explicit telemetry factory wins over telemetry_out (per-task logic
    # below), so only pre-create the directory when it will actually be used.
    _ensure_output_dirs(telemetry_out if telemetry is None else None, journal_out)
    tasks = [
        TrialTask(
            method=method,
            make_scheduler=make_scheduler,
            make_objective=make_objective,
            seed=seed,
            num_workers=num_workers,
            time_limit=time_limit,
            straggler_std=straggler_std,
            drop_probability=drop_probability,
            accounting=accounting,
            offline_validation=offline_validation,
            max_measurements=max_measurements,
            telemetry=telemetry,
            telemetry_out=str(telemetry_out) if telemetry_out is not None else None,
            journal_out=str(journal_out) if journal_out is not None else None,
            backend=backend,
        )
        for seed in seeds
    ]
    return parallel_map(run_trial_task, tasks, n_jobs, executor=executor)


def run_methods(
    methods: Mapping[str, SchedulerFactory],
    make_objective: ObjectiveFactory,
    *,
    num_workers: int,
    time_limit: float,
    seeds: Iterable[int],
    straggler_std: float = 0.0,
    drop_probability: float = 0.0,
    accounting: str = "by_rung",
    offline_validation: bool = False,
    max_measurements: int | None = None,
    telemetry: TelemetryFactory | None = None,
    telemetry_out: str | Path | None = None,
    journal_out: str | Path | None = None,
    n_jobs: int | None = None,
    executor=None,
    backend: str = "simulated",
) -> dict[str, list[RunRecord]]:
    """Run a whole method suite, fanning out across ``(method, seed)`` pairs.

    The flat task list lets a pool of ``n_jobs`` workers chew through every
    method's trials at once instead of parallelising one method at a time —
    at Figure-5 scale the method with the slowest trials no longer gates the
    others.  Output is identical to calling :func:`run_trials` per method.
    """
    seeds = list(seeds)
    _ensure_output_dirs(telemetry_out if telemetry is None else None, journal_out)
    tasks = [
        TrialTask(
            method=name,
            make_scheduler=factory,
            make_objective=make_objective,
            seed=seed,
            num_workers=num_workers,
            time_limit=time_limit,
            straggler_std=straggler_std,
            drop_probability=drop_probability,
            accounting=accounting,
            offline_validation=offline_validation,
            max_measurements=max_measurements,
            telemetry=telemetry,
            telemetry_out=str(telemetry_out) if telemetry_out is not None else None,
            journal_out=str(journal_out) if journal_out is not None else None,
            backend=backend,
        )
        for name, factory in methods.items()
        for seed in seeds
    ]
    records = parallel_map(run_trial_task, tasks, n_jobs, executor=executor)
    out: dict[str, list[RunRecord]] = {name: [] for name in methods}
    for task, record in zip(tasks, records):
        out[task.method].append(record)
    return out


def run_studies(
    method: str,
    make_scheduler: SchedulerFactory,
    make_objective: ObjectiveFactory,
    *,
    num_workers: int,
    time_limit: float,
    seeds: Iterable[int],
    straggler_std: float = 0.0,
    drop_probability: float = 0.0,
    accounting: str = "by_rung",
    offline_validation: bool = False,
    max_measurements: int | None = None,
    journal_out: str | Path | None = None,
    fair_share: int | None = None,
    commit_interval: int = 64,
) -> list[RunRecord]:
    """Run one method's trials as concurrent studies in a single multiplexer.

    The multiplexed sibling of :func:`run_trials`: instead of one driver
    loop (or one forked process) per trial, every seed's study runs
    concurrently over one shared simulated clock via
    :class:`~repro.study.StudyMultiplexer` — one process, one event loop,
    one group-commit journal writer.  Per-trial outputs are **identical**
    to sequential :func:`run_trials` (same records in the same order, and
    byte-identical journals when ``journal_out`` is set): the multiplexer's
    contract is that co-hosted studies cannot observe each other.

    Prefer this entry point when trials are cheap and numerous (the
    service-scale regime: many small studies through one process);
    :func:`run_trials` with ``n_jobs`` still wins when individual trials
    are heavy enough to want real CPU parallelism.

    ``fair_share`` and ``commit_interval`` are the multiplexer's knobs —
    see :class:`~repro.study.StudyMultiplexer`.
    """
    _ensure_output_dirs(journal_out)
    mux = StudyMultiplexer(fair_share=fair_share, commit_interval=commit_interval)
    built: list[tuple[int, Scheduler, Objective]] = []
    for seed in seeds:
        objective = make_objective(seed)
        rng = np.random.default_rng(seed)
        scheduler = make_scheduler(objective, rng)
        runnable: Scheduler | Study = scheduler
        if journal_out is not None:
            runnable = Study(
                scheduler,
                journal=Journal(
                    journal_path(journal_out, method, seed), writer=mux.journal_writer
                ),
            )
        # Same cluster construction as run_trial_task, so records match the
        # sequential path bit for bit.
        cluster = SimulatedCluster(
            num_workers,
            straggler_std=straggler_std,
            drop_probability=drop_probability,
            seed=seed + 10_000,
        )
        mux.add(
            runnable,
            objective,
            cluster=cluster,
            time_limit=time_limit,
            max_measurements=max_measurements,
        )
        built.append((seed, scheduler, objective))
    if not built:
        return []
    results = mux.run()
    records = []
    for (seed, scheduler, objective), backend_result in zip(built, results):
        evaluate = None
        if offline_validation and isinstance(objective, SurrogateObjective):
            evaluate = objective.clean_loss_at
        trace = trace_incumbent(
            backend_result, scheduler, accounting=accounting, evaluate=evaluate
        )
        records.append(
            RunRecord(method=method, seed=seed, trace=trace, backend=backend_result)
        )
    return records


def aggregate_methods(
    records_by_method: dict[str, list[RunRecord]],
    *,
    time_limit: float,
    grid_points: int = 64,
    band: str = "minmax",
) -> dict[str, AggregateCurve]:
    """Aggregate each method's records on a shared time grid."""
    grid = np.linspace(0.0, time_limit, grid_points)
    return {
        method: aggregate(method, records, grid, band=band)
        for method, records in records_by_method.items()
    }


def sequence_seeds(base: int, count: int) -> Sequence[int]:
    """Deterministic per-trial seeds for an experiment family."""
    return [base + 1000 * i for i in range(count)]
