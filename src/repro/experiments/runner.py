"""The shared experiment driver: one search = scheduler + objective + cluster.

Every figure bench assembles the same pieces: build an objective (a fresh
instance per experiment trial, mimicking fresh data splits), build a
scheduler seeded per trial, run it on a simulated cluster, and track the
incumbent.  :func:`run_trials` does this across seeds and returns the
records the analysis layer aggregates.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..analysis.results import AggregateCurve, RunRecord, aggregate
from ..analysis.tracker import trace_incumbent
from ..backend.simulation import SimulatedCluster
from ..core.scheduler import Scheduler
from ..objectives.base import Objective
from ..objectives.surrogate import SurrogateObjective
from ..telemetry import TelemetryHub

__all__ = ["run_trials", "aggregate_methods", "SchedulerFactory", "ObjectiveFactory"]

SchedulerFactory = Callable[[Objective, np.random.Generator], Scheduler]
ObjectiveFactory = Callable[[int], Objective]
TelemetryFactory = Callable[[int], TelemetryHub | None]


def run_trials(
    method: str,
    make_scheduler: SchedulerFactory,
    make_objective: ObjectiveFactory,
    *,
    num_workers: int,
    time_limit: float,
    seeds: Iterable[int],
    straggler_std: float = 0.0,
    drop_probability: float = 0.0,
    accounting: str = "by_rung",
    offline_validation: bool = False,
    max_measurements: int | None = None,
    telemetry: TelemetryFactory | None = None,
) -> list[RunRecord]:
    """Run one tuning method across several experiment trials.

    Parameters
    ----------
    make_scheduler:
        ``(objective, rng) -> Scheduler``; the rng is seeded per trial.
    make_objective:
        ``seed -> Objective``; a fresh benchmark instance per trial.
    offline_validation:
        For surrogate objectives, report the incumbent's *noise-free*
        from-scratch loss at its trained resource instead of the noisy
        observation.  Off by default: it misvalues trials whose state was
        inherited (PBT clones), and the paper's curves track the best
        observed validation loss anyway.
    telemetry:
        Optional ``seed -> TelemetryHub | None`` factory — one hub per
        experiment trial (e.g. one JSONL file per seed).  Each run's
        metrics report is reachable via its record's
        ``backend.telemetry``.
    """
    records = []
    for seed in seeds:
        objective = make_objective(seed)
        rng = np.random.default_rng(seed)
        scheduler = make_scheduler(objective, rng)
        cluster = SimulatedCluster(
            num_workers,
            straggler_std=straggler_std,
            drop_probability=drop_probability,
            seed=seed + 10_000,
        )
        backend_result = cluster.run(
            scheduler,
            objective,
            time_limit=time_limit,
            max_measurements=max_measurements,
            telemetry=telemetry(seed) if telemetry is not None else None,
        )
        evaluate = None
        if offline_validation and isinstance(objective, SurrogateObjective):
            evaluate = objective.clean_loss_at
        trace = trace_incumbent(
            backend_result, scheduler, accounting=accounting, evaluate=evaluate
        )
        records.append(RunRecord(method=method, seed=seed, trace=trace, backend=backend_result))
    return records


def aggregate_methods(
    records_by_method: dict[str, list[RunRecord]],
    *,
    time_limit: float,
    grid_points: int = 64,
    band: str = "minmax",
) -> dict[str, AggregateCurve]:
    """Aggregate each method's records on a shared time grid."""
    grid = np.linspace(0.0, time_limit, grid_points)
    return {
        method: aggregate(method, records, grid, band=band)
        for method, records in records_by_method.items()
    }


def sequence_seeds(base: int, count: int) -> Sequence[int]:
    """Deterministic per-trial seeds for an experiment family."""
    return [base + 1000 * i for i in range(count)]
