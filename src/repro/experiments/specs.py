"""The experiment registry: every paper table/figure and how to regenerate it.

This is machine-readable documentation — the README/DESIGN index, the
``python -m repro.experiments`` listing, and the bench files all reference
these specs, so the mapping from paper artefact to code cannot silently
drift.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_spec"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper artefact and its reproduction entry points."""

    experiment_id: str
    paper_artifact: str
    description: str
    workload: str
    driver: str  # function in repro.experiments.figures
    bench: str  # file under benchmarks/


EXPERIMENTS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        "fig1",
        "Figure 1 (right table)",
        "SHA promotion scheme: rung sizes, resources and budgets per bracket",
        "analytic (n=9, r=1, R=9, eta=3)",
        "figure1_rows",
        "benchmarks/bench_fig1_promotion_scheme.py",
    ),
    ExperimentSpec(
        "fig2",
        "Figure 2",
        "Chronological job traces of synchronous SHA vs ASHA on bracket 0",
        "scripted toy objective, 1 worker",
        "figure2_traces",
        "benchmarks/bench_fig2_promotion_trace.py",
    ),
    ExperimentSpec(
        "fig3",
        "Figure 3",
        "Sequential comparison of SHA/Hyperband/Random/PBT/ASHA/async-HB/BOHB",
        "CIFAR-10 surrogates (benchmarks 1-2), 1 worker",
        "figure3",
        "benchmarks/bench_fig3_sequential.py",
    ),
    ExperimentSpec(
        "fig4",
        "Figure 4",
        "Limited-scale distributed comparison (25 workers)",
        "CIFAR-10 surrogates, simulated 25-worker cluster",
        "figure4",
        "benchmarks/bench_fig4_distributed25.py",
    ),
    ExperimentSpec(
        "fig5",
        "Figure 5",
        "Large-scale comparison vs Vizier (500 workers, PTB LSTM)",
        "PTB LSTM surrogate with heavy-tailed divergence",
        "figure5",
        "benchmarks/bench_fig5_vizier500.py",
    ),
    ExperimentSpec(
        "fig6",
        "Figure 6",
        "ASHA vs PBT on the AWD-LSTM task (16 workers)",
        "AWD-LSTM (Merity et al. 2018) surrogate",
        "figure6",
        "benchmarks/bench_fig6_awdlstm16.py",
    ),
    ExperimentSpec(
        "fig7",
        "Figure 7 (Appendix A.1)",
        "Completions within 2000 time units vs drop probability / straggler std",
        "unit-cost simulated workload (eta=4, r=1, R=256, n=256)",
        "figure7",
        "benchmarks/bench_fig7_stragglers.py",
    ),
    ExperimentSpec(
        "fig8",
        "Figure 8 (Appendix A.1)",
        "Time until first completion vs drop probability / straggler std",
        "unit-cost simulated workload",
        "figure8",
        "benchmarks/bench_fig8_first_completion.py",
    ),
    ExperimentSpec(
        "fig9",
        "Figure 9 (Appendix A.2)",
        "Hyperband (by rung / by bracket) vs Fabolas vs Random",
        "real synthetic-data SVM (vehicle/MNIST stand-ins) + CNN surrogates",
        "figure9",
        "benchmarks/bench_fig9_fabolas.py",
    ),
    ExperimentSpec(
        "table1-3",
        "Tables 1, 2, 3",
        "Search-space definitions for the CNN/LSTM/AWD-LSTM tasks",
        "definitions",
        "SEQUENTIAL_BENCHMARKS",
        "benchmarks/bench_tables_searchspaces.py",
    ),
    ExperimentSpec(
        "claim-wallclock",
        "Section 3.2",
        "ASHA returns a fully trained config in 13/9 x time(R) (or time(R) checkpointed)",
        "toy bracket, 9 workers",
        "claim_wallclock",
        "benchmarks/bench_claim_wallclock.py",
    ),
    ExperimentSpec(
        "claim-scaling",
        "Section 4.2",
        "ASHA scales linearly with the number of workers",
        "benchmark-2 surrogate, worker sweep {1, 5, 25}",
        "figure4",
        "benchmarks/bench_claim_linear_scaling.py",
    ),
    ExperimentSpec(
        "claim-mispromotion",
        "Section 3.3",
        "Rung-0 mispromotions scale like sqrt(n)",
        "Monte-Carlo on i.i.d. losses",
        "claim_mispromotion",
        "benchmarks/bench_claim_mispromotion.py",
    ),
)


def get_spec(experiment_id: str) -> ExperimentSpec:
    for spec in EXPERIMENTS:
        if spec.experiment_id == experiment_id:
            return spec
    raise KeyError(f"unknown experiment {experiment_id!r}")
