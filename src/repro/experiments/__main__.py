"""Command-line access to the reproduction registry.

``python -m repro.experiments``            list every paper artefact
``python -m repro.experiments run fig1``   run one driver at quick scale

The ``run`` subcommand uses reduced trial counts/horizons so it answers in
seconds-to-minutes; the benches under ``benchmarks/`` run the full scale.
"""

from __future__ import annotations

import argparse
from typing import Any

from ..analysis.tables import render_series, render_table
from . import figures
from .specs import EXPERIMENTS, get_spec


def _print_curves(curves: dict[str, Any]) -> None:
    grid = list(next(iter(curves.values())).grid)
    series = {name: list(curve.mean.round(4)) for name, curve in curves.items()}
    print(render_series(grid, series, time_label="sim time"))
    print()
    print(
        render_table(
            ["method", "final mean"],
            [[name, round(float(c.final_mean), 4)] for name, c in curves.items()],
        )
    )


_QUICK_RUNNERS = {
    "fig1": lambda **kw: print(
        render_table(
            ["bracket", "rung", "n_i", "r_i", "total"],
            [
                [r["bracket"], r["rung"], r["n_i"], r["r_i"], r["total"]]
                for r in figures.figure1_rows()
            ],
        )
    ),
    "fig2": lambda **kw: print(
        render_table(
            ["scheduler", "jobs (config @ rung)"],
            [[k, " ".join(f"{c}@{r}" for c, r in v)] for k, v in figures.figure2_traces().items()],
        )
    ),
    "fig3": lambda **kw: _print_curves(figures.figure3(num_trials=2, horizon_multiple=20, **kw)),
    "fig4": lambda **kw: _print_curves(figures.figure4(num_trials=2, **kw)),
    "fig5": lambda **kw: _print_curves(figures.figure5(num_trials=1, **kw)),
    "fig6": lambda **kw: _print_curves(figures.figure6(num_trials=2, **kw)),
    "fig7": lambda **kw: print(
        render_table(
            ["method", "std", "drop p", "mean done", "std"],
            [
                [
                    r["method"],
                    r["train_std"],
                    r["drop_prob"],
                    round(r["mean_completed"], 2),
                    round(r["std_completed"], 2),
                ]
                for r in figures.figure7(num_sims=4)
            ],
        )
    ),
    "fig8": lambda **kw: print(
        render_table(
            ["method", "std", "drop p", "mean first R", "std"],
            [
                [
                    r["method"],
                    r["train_std"],
                    r["drop_prob"],
                    round(r["mean_first_completion"], 1),
                    round(r["std_first_completion"], 1),
                ]
                for r in figures.figure8(num_sims=4)
            ],
        )
    ),
    "fig9": lambda **kw: _print_curves(figures.figure9(num_trials=2)),
    "claim-wallclock": lambda **kw: print(figures.claim_wallclock()),
    "claim-mispromotion": lambda **kw: print(
        render_table(
            ["n", "mean", "sqrt(n)", "ratio"],
            [
                [s.n, round(s.mean, 2), round(s.sqrt_n, 1), round(s.ratio, 3)]
                for s in figures.claim_mispromotion(repeats=10)
            ],
        )
    ),
}

#: Experiments whose quick runners can export per-(method, seed) event files.
_TELEMETRY_CAPABLE = frozenset({"fig3", "fig4", "fig5", "fig6"})


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list the reproduction registry (default)")
    run = sub.add_parser("run", help="run one experiment at quick scale")
    run.add_argument("experiment_id", choices=sorted(_QUICK_RUNNERS))
    run.add_argument(
        "--telemetry-out",
        metavar="DIR",
        default=None,
        help="write one telemetry JSONL file per (method, seed) into DIR "
        "(curve experiments only); rebuild traces with "
        "'python -m repro.telemetry.trace'",
    )
    args = parser.parse_args(argv)

    if args.command == "run":
        spec = get_spec(args.experiment_id) if args.experiment_id in {
            s.experiment_id for s in EXPERIMENTS
        } else None
        if spec is not None:
            print(f"{spec.paper_artifact}: {spec.description}\n")
        kwargs = {}
        if args.telemetry_out is not None:
            if args.experiment_id in _TELEMETRY_CAPABLE:
                kwargs["telemetry_out"] = args.telemetry_out
            else:
                print(
                    f"note: --telemetry-out is ignored for {args.experiment_id} "
                    f"(supported: {', '.join(sorted(_TELEMETRY_CAPABLE))})"
                )
        _QUICK_RUNNERS[args.experiment_id](**kwargs)
        return

    rows = [[s.experiment_id, s.paper_artifact, s.workload, s.bench] for s in EXPERIMENTS]
    print(
        render_table(
            ["id", "paper artefact", "workload", "bench"],
            rows,
            title="Reproduction registry (drivers live in repro.experiments.figures)",
        )
    )


if __name__ == "__main__":
    main()
