"""Deterministic toy fixtures for Figures 1-2 and the Section 3.2 claims.

Figure 2 depicts SHA and ASHA on Bracket 0 of the ``n = 9, r = 1, R = 9,
eta = 3`` example, with configurations 1, 6 and 8 (1-indexed) promoted to
rung 1 and configuration 8 to rung 2.  To replay that exact story we need
(a) configurations arriving in a scripted order and (b) losses that realise
the figure's ranking.  :func:`scripted_sampler` and :func:`toy_objective`
provide both; tests assert the reproduced job sequence matches the figure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..objectives.curves import CurveProfile
from ..objectives.surrogate import SurrogateObjective
from ..searchspace import Config, SearchSpace, Uniform

__all__ = ["FIGURE2_QUALITIES", "scripted_sampler", "toy_objective", "toy_space"]

#: Qualities for trials 0..8 chosen so that, in arrival order, the rung-0
#: promotions are trials 0, 5, 7 (configurations 1, 6, 8 in the figure's
#: 1-indexed labels) and the rung-1 promotion is trial 7 (configuration 8).
FIGURE2_QUALITIES: tuple[float, ...] = (0.3, 0.8, 0.9, 0.7, 0.6, 0.2, 0.5, 0.1, 0.4)


def toy_space() -> SearchSpace:
    return SearchSpace({"quality": Uniform(0.0, 1.0)})


def scripted_sampler(qualities: Sequence[float]):
    """A sampler that returns ``{"quality": q}`` for each q in order.

    Raises if asked for more configurations than scripted — schedulers under
    test must not over-sample.
    """
    queue = list(qualities)

    def sample(rng: np.random.Generator) -> Config:
        if not queue:
            raise RuntimeError("scripted sampler exhausted")
        return {"quality": queue.pop(0)}

    return sample


def toy_objective(max_resource: float = 9.0, *, constant: bool = True) -> SurrogateObjective:
    """Loss equals the scripted quality (optionally with a mild curve).

    With ``constant=True`` the loss is flat in the resource, so rankings are
    identical at every rung — the assumption behind Figure 2's colouring.
    """

    def profile(config: Config, seed: int) -> CurveProfile:
        q = config["quality"]
        if constant:
            return CurveProfile(asymptote=q, initial_loss=q, gamma=1.0, half_resource=1.0)
        return CurveProfile(asymptote=q, initial_loss=q + 0.5, gamma=1.0, half_resource=2.0)

    return SurrogateObjective(toy_space(), max_resource, profile)
