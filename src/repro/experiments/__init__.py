"""Per-figure reproduction drivers and the experiment registry."""

from . import figures
from .methods import MethodSettings, standard_methods
from .parallel import JOBS_ENV_VAR, parallel_map, resolve_jobs
from .runner import (
    aggregate_methods,
    run_methods,
    run_studies,
    run_trials,
    sequence_seeds,
)
from .specs import EXPERIMENTS, ExperimentSpec, get_spec

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "JOBS_ENV_VAR",
    "MethodSettings",
    "aggregate_methods",
    "figures",
    "get_spec",
    "parallel_map",
    "resolve_jobs",
    "run_methods",
    "run_studies",
    "run_trials",
    "sequence_seeds",
    "standard_methods",
]
