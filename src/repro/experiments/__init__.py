"""Per-figure reproduction drivers and the experiment registry."""

from . import figures
from .methods import MethodSettings, standard_methods
from .runner import aggregate_methods, run_trials
from .specs import EXPERIMENTS, ExperimentSpec, get_spec

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "MethodSettings",
    "aggregate_methods",
    "figures",
    "get_spec",
    "run_trials",
    "standard_methods",
]
