"""Reproduction drivers: one entry point per paper figure / claim.

Each ``figure*`` function runs the corresponding experiment end-to-end on
the simulated cluster and returns structured data (rows or aggregate
curves); the scripts under ``benchmarks/`` print them.  Defaults are scaled
to finish in CI-friendly time — the paper's exact trial counts and horizons
are noted per function and reachable through the parameters.

Time units: the simulator's clock advances by one unit per resource unit of
training at cost multiplier 1, so "time(R)" equals ``R`` for an average
configuration.  The paper's wall-clock axes (minutes) map linearly onto
these units; the *shape* comparisons (who wins, crossover ordering, rough
factors) are scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.mispromotion import MispromotionStudy, mispromotion_curve
from ..analysis.results import AggregateCurve, RunRecord, aggregate
from ..analysis.tracker import IncumbentTrace, trace_incumbent
from ..backend.simulation import SimulatedCluster
from ..core import (
    ASHA,
    PBT,
    AsyncHyperband,
    Fabolas,
    Hyperband,
    RandomSearch,
    SynchronousSHA,
    VizierGP,
)
from ..core.bracket import Bracket, sha_rung_schedule
from ..objectives import (
    cifar_convnet,
    cifar_smallcnn,
    ptb_awd_lstm,
    ptb_lstm,
    sim_workload,
    svhn_smallcnn,
    svm,
)
from ..objectives.base import Objective
from ..objectives.surrogate import SurrogateObjective
from .methods import MethodSettings, standard_methods
from .parallel import parallel_map
from .runner import aggregate_methods, run_methods
from .toys import FIGURE2_QUALITIES, scripted_sampler, toy_objective

__all__ = [
    "figure1_rows",
    "figure2_traces",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "claim_wallclock",
    "claim_mispromotion",
    "SEQUENTIAL_BENCHMARKS",
]


# --------------------------------------------------------------------------
# Figure 1: the SHA promotion-scheme table.
# --------------------------------------------------------------------------


def figure1_rows(
    n: int = 9, min_resource: float = 1.0, max_resource: float = 9.0, eta: int = 3
) -> list[dict]:
    """All rows of Figure 1 (right): every bracket's rung schedule."""
    probe = Bracket(min_resource, max_resource, eta, 0)
    rows = []
    for s in range(probe.s_max + 1):
        for row in sha_rung_schedule(n, min_resource, max_resource, eta, s):
            rows.append({"bracket": s, **row})
    return rows


# --------------------------------------------------------------------------
# Figure 2: chronological job traces of SHA vs ASHA on the toy bracket.
# --------------------------------------------------------------------------


def figure2_traces() -> dict[str, list[tuple[int, int]]]:
    """Job sequences (config label, rung) for SHA and ASHA, Figure 2's toy.

    One worker, ``n = 9, r = 1, R = 9, eta = 3``, losses scripted so that
    configurations 1, 6, 8 (1-indexed) are promoted to rung 1 and
    configuration 8 to rung 2.  Labels are 1-indexed like the figure.
    """
    objective = toy_objective()
    traces: dict[str, list[tuple[int, int]]] = {}
    for name in ("SHA", "ASHA"):
        rng = np.random.default_rng(0)
        if name == "SHA":
            scheduler = SynchronousSHA(
                objective.space,
                rng,
                n=9,
                min_resource=1.0,
                max_resource=9.0,
                eta=3,
                sampler=scripted_sampler(FIGURE2_QUALITIES),
                from_checkpoint=False,
            )
        else:
            scheduler = ASHA(
                objective.space,
                rng,
                min_resource=1.0,
                max_resource=9.0,
                eta=3,
                max_trials=9,
                sampler=scripted_sampler(FIGURE2_QUALITIES),
                from_checkpoint=False,
            )
        jobs: list[tuple[int, int]] = []
        cluster = SimulatedCluster(1, seed=0)
        original_next = scheduler.next_job
        original_next_batch = scheduler.next_job_batch
        # The backend may pull work through either surface (the batched one
        # bypasses ``next_job`` in ASHA/Hyperband), so hook both and dedupe
        # by job id for schedulers whose batch path delegates to next_job.
        seen: set[int] = set()

        def record(job):
            if job is not None and job.job_id not in seen:
                seen.add(job.job_id)
                jobs.append((job.trial_id + 1, job.rung))

        def recording_next(original=original_next):
            job = original()
            record(job)
            return job

        def recording_next_batch(k, original=original_next_batch):
            batch = original(k)
            for job in batch:
                record(job)
            return batch

        scheduler.next_job = recording_next  # type: ignore[method-assign]
        scheduler.next_job_batch = recording_next_batch  # type: ignore[method-assign]
        cluster.run(scheduler, objective, time_limit=1e9)
        traces[name] = jobs
    return traces


# --------------------------------------------------------------------------
# Figures 3/4: the two CIFAR-10 benchmarks, sequential and 25 workers.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchmarkSpec:
    """One tuning workload plus the paper's method settings for it."""

    name: str
    make_objective: Callable[[int], Objective]
    settings: MethodSettings
    #: Loss level the text calls "a good configuration".
    good_loss: float


def _cifar_settings(frozen: frozenset[str], grow: bool) -> MethodSettings:
    r = cifar_convnet.R
    return MethodSettings(
        eta=4,
        min_resource=r / 256.0,
        max_resource=r,
        n=256,
        pbt_interval=1000.0,
        pbt_population=25,
        pbt_frozen=frozen,
        grow_brackets=grow,
    )


def sequential_benchmarks(grow_brackets: bool = False) -> dict[str, BenchmarkSpec]:
    """The Section 4.1/4.2 benchmark pair."""
    return {
        "cifar_convnet": BenchmarkSpec(
            name="CIFAR10 small cuda-convnet",
            make_objective=lambda seed: cifar_convnet.make_objective(seed_salt=seed),
            settings=_cifar_settings(frozenset(), grow_brackets),
            good_loss=0.21,
        ),
        "cifar_smallcnn": BenchmarkSpec(
            name="CIFAR10 small CNN architecture",
            make_objective=lambda seed: cifar_smallcnn.make_objective(seed_salt=seed),
            settings=_cifar_settings(cifar_smallcnn.ARCHITECTURE_KEYS, grow_brackets),
            good_loss=0.23,
        ),
    }


SEQUENTIAL_BENCHMARKS = tuple(sequential_benchmarks())


def figure3(
    benchmark: str = "cifar_convnet",
    *,
    num_trials: int = 5,
    horizon_multiple: float = 40.0,
    methods: Sequence[str] | None = None,
    grid_points: int = 48,
    n_jobs: int | None = None,
    telemetry_out: str | None = None,
    backend: str = "simulated",
) -> dict[str, AggregateCurve]:
    """Sequential experiments (1 worker), Figure 3.

    Paper settings: 10 trials, ~ 2500 minutes (~ 60 x time(R)); defaults here
    are 5 trials and 40 x time(R) for bench runtime, same ordering.
    ``telemetry_out`` writes one JSONL event file per (method, seed) into
    that directory for offline trace reconstruction (see ``docs/tracing.md``).
    """
    spec = sequential_benchmarks()[benchmark]
    time_limit = horizon_multiple * spec.settings.max_resource
    factories = standard_methods(spec.settings, include=methods)
    records = run_methods(
        factories,
        spec.make_objective,
        num_workers=1,
        time_limit=time_limit,
        seeds=range(num_trials),
        n_jobs=n_jobs,
        telemetry_out=telemetry_out,
        backend=backend,
    )
    return aggregate_methods(
        records, time_limit=time_limit, grid_points=grid_points, band="quartile"
    )


def figure4(
    benchmark: str = "cifar_convnet",
    *,
    num_trials: int = 5,
    num_workers: int = 25,
    horizon_multiple: float = 3.75,
    methods: Sequence[str] | None = ("ASHA", "PBT", "SHA", "BOHB"),
    straggler_std: float = 0.25,
    grid_points: int = 48,
    n_jobs: int | None = None,
    telemetry_out: str | None = None,
    backend: str = "simulated",
) -> dict[str, AggregateCurve]:
    """Limited-scale distributed experiments (25 workers), Figure 4.

    The 150-minute wall-clock budget corresponds to ~ 3.75 x time(R) on the
    paper's hardware.  Synchronous methods grow extra brackets when blocked,
    per Section 3.1's description of parallel SHA.
    """
    spec = sequential_benchmarks(grow_brackets=True)[benchmark]
    time_limit = horizon_multiple * spec.settings.max_resource
    factories = standard_methods(spec.settings, include=methods)
    records = run_methods(
        factories,
        spec.make_objective,
        num_workers=num_workers,
        time_limit=time_limit,
        seeds=range(num_trials),
        straggler_std=straggler_std,
        n_jobs=n_jobs,
        telemetry_out=telemetry_out,
        backend=backend,
    )
    return aggregate_methods(records, time_limit=time_limit, grid_points=grid_points)


# --------------------------------------------------------------------------
# Figure 5: ASHA vs async Hyperband vs Vizier, 500 workers, PTB LSTM.
# --------------------------------------------------------------------------


def figure5(
    *,
    num_trials: int = 3,
    num_workers: int = 500,
    horizon_multiple: float = 6.0,
    vizier_loss_cap: float | None = 1000.0,
    grid_points: int = 48,
    n_jobs: int | None = None,
    telemetry_out: str | None = None,
    backend: str = "simulated",
) -> dict[str, AggregateCurve]:
    """Large-scale benchmark, Figure 5 (paper: 5 trials, 500 workers).

    Section 4.3 settings: ``eta = 4, r = R/64, s = 0``; async Hyperband
    loops brackets ``s = 0..3``; Vizier proposes full-``R`` evaluations
    (perplexities capped at 1000, the paper's mitigation attempt).
    """
    r_max = ptb_lstm.R
    time_limit = horizon_multiple * r_max

    def asha_factory(objective, rng):
        return ASHA(objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4)

    def hb_factory(objective, rng):
        return AsyncHyperband(
            objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4, brackets=4
        )

    def vizier_factory(objective, rng):
        return VizierGP(
            objective.space,
            rng,
            max_resource=r_max,
            loss_cap=vizier_loss_cap,
            refit_every=25,
            max_fit_points=250,
        )

    factories = {
        "ASHA": asha_factory,
        "Hyperband (Loop Brackets)": hb_factory,
        "Vizier": vizier_factory,
    }
    records = run_methods(
        factories,
        lambda seed: ptb_lstm.make_objective(seed_salt=seed),
        num_workers=num_workers,
        time_limit=time_limit,
        seeds=range(num_trials),
        n_jobs=n_jobs,
        telemetry_out=telemetry_out,
        backend=backend,
    )
    return aggregate_methods(records, time_limit=time_limit, grid_points=grid_points)


# --------------------------------------------------------------------------
# Figure 6: ASHA vs PBT on the AWD-LSTM task, 16 workers.
# --------------------------------------------------------------------------


def figure6(
    *,
    num_trials: int = 5,
    num_workers: int = 16,
    horizon_multiple: float = 5.0,
    grid_points: int = 48,
    n_jobs: int | None = None,
    telemetry_out: str | None = None,
    backend: str = "simulated",
) -> dict[str, AggregateCurve]:
    """Modern LSTM benchmark, Figure 6.

    Section 4.3.1 settings: ASHA with ``eta = 4, r = 1, R = 256``; PBT with
    population 20 and explore/exploit every 8 epochs.
    """
    r_max = ptb_awd_lstm.R
    time_limit = horizon_multiple * r_max

    def asha_factory(objective, rng):
        return ASHA(objective.space, rng, min_resource=1.0, max_resource=r_max, eta=4)

    def pbt_factory(objective, rng):
        return PBT(
            objective.space,
            rng,
            max_resource=r_max,
            interval=8.0,
            population_size=20,
        )

    records = run_methods(
        {"PBT": pbt_factory, "ASHA": asha_factory},
        lambda seed: ptb_awd_lstm.make_objective(seed_salt=seed),
        num_workers=num_workers,
        time_limit=time_limit,
        seeds=range(num_trials),
        n_jobs=n_jobs,
        telemetry_out=telemetry_out,
        backend=backend,
    )
    return aggregate_methods(records, time_limit=time_limit, grid_points=grid_points)


# --------------------------------------------------------------------------
# Figures 7/8: straggler and dropped-job robustness (Appendix A.1).
# --------------------------------------------------------------------------


def _robustness_schedulers(objective: Objective, rng: np.random.Generator):
    """SHA and ASHA with the Appendix A.1 settings (eta=4, r=1, R=256, n=256)."""
    sha = SynchronousSHA(
        objective.space,
        rng,
        n=256,
        min_resource=1.0,
        max_resource=256.0,
        eta=4,
        grow_brackets=True,
    )
    asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=256.0, eta=4)
    return {"SHA": sha, "ASHA": asha}


@dataclass(frozen=True)
class _RobustnessTask:
    """One simulation of the Appendix A.1 sweep — picklable for fan-out."""

    name: str
    std: float
    drop_prob: float
    sim: int
    num_workers: int
    time_budget: float
    seed_multiplier: int
    stop_on_first_completion: bool


def _run_robustness_task(task: _RobustnessTask) -> tuple[int, float | None]:
    """(completion count, first completion time) of one robustness sim."""
    objective = sim_workload.make_objective(seed_salt=task.sim)
    rng = np.random.default_rng(task.sim)
    scheduler = _robustness_schedulers(objective, rng)[task.name]
    cluster = SimulatedCluster(
        task.num_workers,
        straggler_std=task.std,
        drop_probability=task.drop_prob,
        seed=task.seed_multiplier * task.sim + (0 if task.name == "SHA" else 1),
    )
    result = cluster.run(
        scheduler,
        objective,
        time_limit=task.time_budget,
        stop_on_first_completion=task.stop_on_first_completion,
    )
    return result.num_completions(), result.first_completion_time()


def figure7(
    *,
    straggler_stds: Sequence[float] = (0.1, 0.24, 0.56, 1.33),
    drop_probs: Sequence[float] = (0.0, 0.002, 0.005, 0.01),
    num_sims: int = 10,
    num_workers: int = 10,
    time_budget: float = 2000.0,
    n_jobs: int | None = None,
) -> list[dict]:
    """Configurations trained to R within the budget (paper: 25 sims).

    The paper does not state the worker count; 10 workers reproduces its
    y-axis scale (~ 16 completions for ASHA at low drop rates).  Returns one
    row per (method, std, drop probability) with the mean/std completion
    count.
    """
    tasks = [
        _RobustnessTask(name, std, p, sim, num_workers, time_budget, 7919, False)
        for std in straggler_stds
        for p in drop_probs
        for sim in range(num_sims)
        for name in ("SHA", "ASHA")
    ]
    outcomes = parallel_map(_run_robustness_task, tasks, n_jobs)
    rows = []
    for std in straggler_stds:
        for p in drop_probs:
            for name in ("SHA", "ASHA"):
                counts = [
                    completions
                    for task, (completions, _) in zip(tasks, outcomes)
                    if task.name == name and task.std == std and task.drop_prob == p
                ]
                rows.append(
                    {
                        "method": name,
                        "train_std": std,
                        "drop_prob": p,
                        "mean_completed": float(np.mean(counts)),
                        "std_completed": float(np.std(counts)),
                    }
                )
    return rows


def figure8(
    *,
    straggler_stds: Sequence[float] = (0.0, 0.33, 0.67, 1.0, 1.33, 1.67),
    drop_probs: Sequence[float] = (0.0, 0.001, 0.002, 0.003),
    num_sims: int = 10,
    num_workers: int = 10,
    time_budget: float = 2000.0,
    n_jobs: int | None = None,
) -> list[dict]:
    """Time until the first configuration trained to R (paper: 25 sims).

    Runs that never complete a configuration within the budget contribute
    the budget itself (a right-censored observation, as in the figure's
    capped y-axis).
    """
    tasks = [
        _RobustnessTask(name, std, p, sim, num_workers, time_budget, 104729, True)
        for std in straggler_stds
        for p in drop_probs
        for sim in range(num_sims)
        for name in ("SHA", "ASHA")
    ]
    outcomes = parallel_map(_run_robustness_task, tasks, n_jobs)
    rows = []
    for std in straggler_stds:
        for p in drop_probs:
            for name in ("SHA", "ASHA"):
                times = [
                    first if first is not None else time_budget
                    for task, (_, first) in zip(tasks, outcomes)
                    if task.name == name and task.std == std and task.drop_prob == p
                ]
                rows.append(
                    {
                        "method": name,
                        "train_std": std,
                        "drop_prob": p,
                        "mean_first_completion": float(np.mean(times)),
                        "std_first_completion": float(np.std(times)),
                    }
                )
    return rows


# --------------------------------------------------------------------------
# Figure 9: Hyperband (two accountings) vs Fabolas vs Random (Appendix A.2).
# --------------------------------------------------------------------------

FIGURE9_BENCHMARKS = ("svm_vehicle", "svm_mnist", "cifar_convnet", "svhn_smallcnn")


def _figure9_objective(benchmark: str, seed: int) -> Objective:
    if benchmark == "svm_vehicle":
        return svm.make_objective("vehicle", seed=seed, max_train=2048, num_val=768)
    if benchmark == "svm_mnist":
        return svm.make_objective("mnist", seed=seed, max_train=2048, num_val=768)
    if benchmark == "cifar_convnet":
        return cifar_convnet.make_objective(seed_salt=seed)
    if benchmark == "svhn_smallcnn":
        return svhn_smallcnn.make_objective(seed_salt=seed)
    raise KeyError(f"unknown figure-9 benchmark {benchmark!r}")


@dataclass(frozen=True)
class _Figure9Task:
    """One seed of the Appendix A.2 comparison — picklable for fan-out."""

    benchmark: str
    seed: int
    r_max: float
    time_limit: float
    fabolas_max_trials: int | None


def _run_figure9_seed(task: _Figure9Task) -> dict[str, RunRecord]:
    """All four method records of one figure-9 seed."""
    seed = task.seed
    r_max = task.r_max
    time_limit = task.time_limit
    objective = _figure9_objective(task.benchmark, seed)
    if isinstance(objective, SurrogateObjective):
        evaluate = objective.clean_loss_at
    else:
        def evaluate(config, resource):
            return objective.evaluate(config, r_max)
    out: dict[str, RunRecord] = {}
    # --- Hyperband, one run, two accountings.
    rng = np.random.default_rng(seed)
    hb = Hyperband(
        objective.space, rng, min_resource=r_max / 256.0, max_resource=r_max, eta=4
    )
    cluster = SimulatedCluster(1, seed=seed + 10_000)
    backend = cluster.run(hb, objective, time_limit=time_limit)
    out["Hyperband (by rung)"] = RunRecord(
        "Hyperband (by rung)",
        seed,
        trace_incumbent(backend, hb, accounting="by_rung", evaluate=evaluate),
    )
    out["Hyperband (by bracket)"] = RunRecord(
        "Hyperband (by bracket)",
        seed,
        trace_incumbent(backend, hb, accounting="by_bracket", evaluate=evaluate),
    )
    # --- Random search.
    rng = np.random.default_rng(seed)
    rs = RandomSearch(objective.space, rng, max_resource=r_max)
    backend = SimulatedCluster(1, seed=seed + 20_000).run(
        rs, objective, time_limit=time_limit
    )
    out["Random"] = RunRecord(
        "Random",
        seed,
        trace_incumbent(backend, rs, accounting="by_rung", evaluate=evaluate),
    )
    # --- Fabolas: incumbent history -> offline validation.
    rng = np.random.default_rng(seed)
    fab = Fabolas(
        objective.space, rng, max_resource=r_max, max_trials=task.fabolas_max_trials
    )
    backend = SimulatedCluster(1, seed=seed + 30_000).run(
        fab, objective, time_limit=time_limit
    )
    trace = IncumbentTrace()
    best_so_far = float("inf")
    for report_index, config in fab.incumbent_history:
        time = backend.measurements[report_index - 1].time
        value = evaluate(config, r_max)
        best_so_far = min(best_so_far, value)
        trace.append(time, best_so_far, -1)
    out["Fabolas"] = RunRecord("Fabolas", seed, trace)
    return out


def figure9(
    benchmark: str = "svm_vehicle",
    *,
    num_trials: int = 3,
    horizon_multiple: float = 30.0,
    grid_points: int = 32,
    fabolas_max_trials: int | None = 120,
    n_jobs: int | None = None,
) -> dict[str, AggregateCurve]:
    """Sequential Fabolas comparison, Figure 9 (paper: 10 trials, eta = 4).

    ``Hyperband (by rung)`` and ``Hyperband (by bracket)`` are the *same
    runs* under the two incumbent accountings of Appendix A.2.  Fabolas's
    incumbent (lowest predicted full-data loss) is validated offline by
    training it to R, the paper's evaluation framework.
    """
    probe = _figure9_objective(benchmark, 0)
    r_max = probe.max_resource
    time_limit = horizon_multiple * r_max
    grid = np.linspace(0.0, time_limit, grid_points)
    tasks = [
        _Figure9Task(benchmark, seed, r_max, time_limit, fabolas_max_trials)
        for seed in range(num_trials)
    ]
    per_seed = parallel_map(_run_figure9_seed, tasks, n_jobs)
    out = {}
    for name in ("Hyperband (by rung)", "Hyperband (by bracket)", "Fabolas", "Random"):
        records = [result[name] for result in per_seed]
        out[name] = aggregate(name, records, grid, band="minmax")
    return out


# --------------------------------------------------------------------------
# Section 3.2 / 3.3 claims.
# --------------------------------------------------------------------------


def claim_wallclock() -> dict[str, float]:
    """Section 3.2's wall-clock arithmetic on the toy bracket, verified.

    With 9 workers on Bracket 0 (``r = 1, R = 9, eta = 3``):

    * training each rung from scratch, ASHA returns a fully trained
      configuration at ``13/9 x time(R)`` (13 time units);
    * with checkpoint resume, at ``time(R)`` (9 units).
    """
    out = {}
    for label, from_checkpoint in (("from_scratch", False), ("checkpointed", True)):
        objective = toy_objective()
        rng = np.random.default_rng(0)
        scheduler = ASHA(
            objective.space,
            rng,
            min_resource=1.0,
            max_resource=9.0,
            eta=3,
            max_trials=9,
            sampler=scripted_sampler(FIGURE2_QUALITIES),
            from_checkpoint=from_checkpoint,
        )
        cluster = SimulatedCluster(9, seed=0)
        result = cluster.run(scheduler, objective, time_limit=100.0)
        out[label] = result.first_completion_time() or float("inf")
    out["time_R"] = 9.0
    return out


def claim_mispromotion(
    ns: Sequence[int] = (64, 256, 1024, 4096), eta: int = 4, repeats: int = 20
) -> list[MispromotionStudy]:
    """Section 3.3: rung-0 mispromotions grow like sqrt(n)."""
    return mispromotion_curve(list(ns), eta=eta, repeats=repeats)
