"""Process-based fan-out for experiment trials.

The paper's whole point is the large-scale regime, and reproducing it means
running many independent ``(method, seed)`` searches — Figure 5 alone is
three methods x several seeds x ~10^5 simulated jobs each.  Every one of
those searches is deterministic given its seed and shares nothing with its
siblings, so they parallelise perfectly across processes (threads do not
help: the simulation is pure Python and GIL-bound).

Design constraints, in order:

* **Identical output.**  A parallel run must produce byte-identical
  :class:`~repro.analysis.results.RunRecord` lists — same traces, same
  backend logs, same telemetry metric reports — as the sequential path.
  Each trial derives every RNG from its seed, so where it executes cannot
  matter; results are always returned in task order, never completion
  order.
* **Closures welcome.**  Scheduler factories are usually closures over
  method settings (see :func:`~repro.experiments.methods.standard_methods`)
  and closures do not pickle.  The pool therefore uses the ``fork`` start
  method and hands workers an *index* into a module-level task table
  inherited through the fork — the only things crossing the pipe are small
  picklable task specs (ints) and the picklable results.
* **Graceful fallback.**  Anything that prevents parallel execution — no
  ``fork`` on the platform, an unpicklable result, a broken pool — quietly
  degrades to the in-process path, which is always correct.

The worker count comes from the ``n_jobs=`` argument or, when that is
``None``, the ``REPRO_JOBS`` environment variable — the shared knob the
figure benches expose via ``--jobs`` (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

__all__ = ["JOBS_ENV_VAR", "parallel_map", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable supplying the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Fork-inherited task table: ``(fn, tasks)`` while a pool is alive.  Workers
#: receive indices and look the work up here, so unpicklable callables
#: (closures over method settings) never cross a process boundary.
_WORK: tuple[Callable[[Any], Any], Sequence[Any]] | None = None

#: True inside pool workers; nested ``parallel_map`` calls run in-process
#: (one level of process fan-out is the useful one).
_IN_WORKER = False


def resolve_jobs(n_jobs: int | None = None) -> int:
    """The effective worker count for a parallel experiment run.

    ``n_jobs`` wins when given; otherwise ``$REPRO_JOBS`` is consulted and
    an unset/empty variable means 1 (the in-process path).  Negative values
    mean "all cores", joblib-style.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}") from exc
    if n_jobs == 0:
        raise ValueError("n_jobs must be nonzero (use 1 for sequential, -1 for all cores)")
    if n_jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return n_jobs


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _fork_entry(index: int) -> Any:
    """Pool entry point: run one task from the fork-inherited table."""
    assert _WORK is not None, "worker forked without a task table"
    fn, tasks = _WORK
    return fn(tasks[index])


def _can_fork() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    n_jobs: int | None = None,
    *,
    executor: Executor | None = None,
) -> list[R]:
    """``[fn(t) for t in tasks]`` fanned out across processes.

    Results are returned in task order regardless of completion order.  With
    ``n_jobs`` resolving to 1, a single task, or inside a pool worker the
    in-process path runs directly.  An injected ``executor`` is used as-is
    (its tasks must then be picklable); otherwise a fork-based pool is
    created for the duration of the call.  Any failure to execute remotely
    falls back to computing the affected tasks in-process, so genuine task
    errors still surface — re-raised from the fallback path.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(n_jobs)
    if executor is not None:
        return _map_with_executor(fn, tasks, executor)
    if jobs <= 1 or len(tasks) <= 1 or _IN_WORKER or not _can_fork():
        return [fn(t) for t in tasks]
    global _WORK
    results: list[Any] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    _WORK = (fn, tasks)
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            mp_context=context,
            initializer=_mark_worker,
        ) as pool:
            futures = [(i, pool.submit(_fork_entry, i)) for i in pending]
            for i, future in futures:
                results[i] = future.result()
                pending.remove(i)
    except Exception:
        # Fallback: whatever the pool could not deliver (no fork, broken
        # pool, unpicklable result, or a real task error) is computed — and
        # any genuine error re-raised — in-process.
        for i in list(pending):
            results[i] = fn(tasks[i])
            pending.remove(i)
    finally:
        _WORK = None
    return results


def _map_with_executor(
    fn: Callable[[T], R], tasks: list[T], executor: Executor
) -> list[R]:
    """Map over an injected executor, falling back per-task on failure."""
    futures: list[Future[R] | None] = []
    for task in tasks:
        try:
            futures.append(executor.submit(fn, task))
        except Exception:  # unpicklable task for this executor type
            futures.append(None)
    results: list[Any] = [None] * len(tasks)
    for i, future in enumerate(futures):
        if future is None:
            results[i] = fn(tasks[i])
            continue
        try:
            results[i] = future.result()
        except Exception:
            # Executor-side failure (e.g. pickling the closure for a spawn
            # pool); the in-process retry re-raises genuine task errors.
            results[i] = fn(tasks[i])
    return results
