"""Process-based fan-out for experiment trials.

The paper's whole point is the large-scale regime, and reproducing it means
running many independent ``(method, seed)`` searches — Figure 5 alone is
three methods x several seeds x ~10^5 simulated jobs each.  Every one of
those searches is deterministic given its seed and shares nothing with its
siblings, so they parallelise perfectly across processes (threads do not
help: the simulation is pure Python and GIL-bound).

Design constraints, in order:

* **Identical output.**  A parallel run must produce byte-identical
  :class:`~repro.analysis.results.RunRecord` lists — same traces, same
  backend logs, same telemetry metric reports — as the sequential path.
  Each trial derives every RNG from its seed, so where it executes cannot
  matter; results are always returned in task order, never completion
  order.
* **Closures welcome.**  Scheduler factories are usually closures over
  method settings (see :func:`~repro.experiments.methods.standard_methods`)
  and closures do not pickle.  The pool therefore uses the ``fork`` start
  method and hands workers *index spans* into a module-level task table
  inherited through the fork — the only things crossing the pipe are small
  picklable chunk specs (two ints) and the picklable results.
* **Amortised dispatch.**  Tasks are batched into contiguous *chunks* sized
  so each worker receives ~one dispatch per pool lifetime (``ceil(n_tasks /
  n_jobs)`` tasks per chunk by default).  One submit, one pipe round-trip
  and one result pickle per chunk instead of per task — at Figure-5 scale
  the per-task dispatch overhead used to eat the whole speedup.
* **Graceful fallback.**  Anything that prevents parallel execution — no
  ``fork`` on the platform, an unpicklable result, a broken pool — quietly
  degrades to the in-process path, which is always correct.  Genuine task
  errors still surface: a chunk whose worker raised is recomputed
  in-process in task order, so the original exception is re-raised at the
  task that caused it.

The worker count comes from the ``n_jobs=`` argument or, when that is
``None``, the ``REPRO_JOBS`` environment variable — the shared knob the
figure benches expose via ``--jobs`` (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

__all__ = ["JOBS_ENV_VAR", "chunk_spans", "parallel_map", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable supplying the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Fork-inherited task table: ``(fn, tasks)`` while a pool is alive.  Workers
#: receive index spans and look the work up here, so unpicklable callables
#: (closures over method settings) never cross a process boundary.
_WORK: tuple[Callable[[Any], Any], Sequence[Any]] | None = None

#: True inside pool workers; nested ``parallel_map`` calls run in-process
#: (one level of process fan-out is the useful one).
_IN_WORKER = False


def resolve_jobs(n_jobs: int | None = None) -> int:
    """The effective worker count for a parallel experiment run.

    ``n_jobs`` wins when given; otherwise ``$REPRO_JOBS`` is consulted and
    an unset/empty variable means 1 (the in-process path).  Negative values
    mean "all cores", joblib-style.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}") from exc
    if n_jobs == 0:
        raise ValueError("n_jobs must be nonzero (use 1 for sequential, -1 for all cores)")
    if n_jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return n_jobs


def chunk_spans(
    n_tasks: int, jobs: int, chunksize: int | None = None
) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` spans batching ``n_tasks`` across ``jobs``.

    The default chunk size is ``ceil(n_tasks / jobs)`` — every worker gets
    one dispatch, so per-chunk overhead (submit, pipe round-trip, result
    pickle) is paid ``jobs`` times per pool instead of ``n_tasks`` times.
    Pass an explicit ``chunksize`` for finer load balancing when task
    durations are very uneven (smaller chunks re-balance better but dispatch
    more often).
    """
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if chunksize is None:
        chunksize = max(1, math.ceil(n_tasks / jobs))
    elif chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    return [(start, min(start + chunksize, n_tasks)) for start in range(0, n_tasks, chunksize)]


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _fork_entry(start: int, stop: int) -> list[Any]:
    """Pool entry point: run one chunk of tasks from the fork-inherited table."""
    assert _WORK is not None, "worker forked without a task table"
    fn, tasks = _WORK
    return [fn(tasks[i]) for i in range(start, stop)]


def _can_fork() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    n_jobs: int | None = None,
    *,
    executor: Executor | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(t) for t in tasks]`` fanned out across processes.

    Results are returned in task order regardless of completion order.  With
    ``n_jobs`` resolving to 1, a single task, or inside a pool worker the
    in-process path runs directly.  An injected ``executor`` is used as-is
    (its tasks must then be picklable and are submitted one at a time);
    otherwise a fork-based pool is created for the duration of the call and
    tasks are dispatched in contiguous chunks (see :func:`chunk_spans`;
    override the sizing heuristic with ``chunksize=``).  Any failure to
    execute a chunk remotely falls back to computing that chunk in-process,
    so genuine task errors still surface — re-raised from the fallback path
    at the task that caused them.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(n_jobs)
    if executor is not None:
        return _map_with_executor(fn, tasks, executor)
    if jobs <= 1 or len(tasks) <= 1 or _IN_WORKER or not _can_fork():
        return [fn(t) for t in tasks]
    global _WORK
    spans = chunk_spans(len(tasks), jobs, chunksize)
    results: list[Any] = [None] * len(tasks)
    delivered = [False] * len(spans)
    _WORK = (fn, tasks)
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(spans)),
            mp_context=context,
            initializer=_mark_worker,
        ) as pool:
            futures = [pool.submit(_fork_entry, start, stop) for start, stop in spans]
            for k, future in enumerate(futures):
                try:
                    chunk = future.result()
                except Exception:
                    # This chunk could not be delivered (unpicklable result,
                    # broken pool, or a genuine mid-chunk task error); it is
                    # recomputed — and any genuine error re-raised — below.
                    continue
                start, stop = spans[k]
                results[start:stop] = chunk
                delivered[k] = True
    except Exception:
        # Pool setup or submission failed outright (no fork, resource
        # limits): every undelivered chunk is recomputed in-process below.
        pass
    finally:
        _WORK = None
    for k, (start, stop) in enumerate(spans):
        if not delivered[k]:
            for i in range(start, stop):
                results[i] = fn(tasks[i])
    return results


def _map_with_executor(
    fn: Callable[[T], R], tasks: list[T], executor: Executor
) -> list[R]:
    """Map over an injected executor, falling back per-task on failure."""
    futures: list[Future[R] | None] = []
    for task in tasks:
        try:
            futures.append(executor.submit(fn, task))
        except Exception:  # unpicklable task for this executor type
            futures.append(None)
    results: list[Any] = [None] * len(tasks)
    for i, future in enumerate(futures):
        if future is None:
            results[i] = fn(tasks[i])
            continue
        try:
            results[i] = future.result()
        except Exception:
            # Executor-side failure (e.g. pickling the closure for a spawn
            # pool); the in-process retry re-raises genuine task errors.
            results[i] = fn(tasks[i])
    return results
