"""Scheduler factories configured the way the paper's experiments were.

Appendix A.3 fixes the settings shared by Sections 4.1 and 4.2: SHA and
BOHB with ``n = 256, eta = 4, s = 0, r = R/256``; Hyperband looping five
brackets; ASHA/async-Hyperband with the same geometry; PBT with population
25, perturbation interval 1000 iterations, truncation fraction 20%.  These
helpers build ``(objective, rng) -> Scheduler`` factories so every figure
bench assembles methods identically.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core import (
    ASHA,
    BOHB,
    PBT,
    AsyncHyperband,
    Hyperband,
    RandomSearch,
    Scheduler,
    SynchronousSHA,
)
from ..objectives.base import Objective
from ..searchers import GPEISearcher, KDESearcher
from .runner import SchedulerFactory

__all__ = ["standard_methods", "MethodSettings"]


class MethodSettings:
    """Geometry + PBT settings for one benchmark's experiments."""

    def __init__(
        self,
        *,
        eta: int,
        min_resource: float,
        max_resource: float,
        n: int = 256,
        early_stopping_rate: int = 0,
        hyperband_brackets: int | None = None,
        pbt_interval: float | None = None,
        pbt_population: int = 25,
        pbt_frozen: frozenset[str] = frozenset(),
        grow_brackets: bool = False,
    ):
        self.eta = eta
        self.min_resource = min_resource
        self.max_resource = max_resource
        self.n = n
        self.early_stopping_rate = early_stopping_rate
        self.hyperband_brackets = hyperband_brackets
        self.pbt_interval = pbt_interval if pbt_interval is not None else max_resource / 30.0
        self.pbt_population = pbt_population
        self.pbt_frozen = pbt_frozen
        self.grow_brackets = grow_brackets


def standard_methods(
    settings: MethodSettings, include: Iterable[str] | None = None
) -> dict[str, SchedulerFactory]:
    """The paper's method suite as a name -> factory mapping.

    Names follow the figure legends: ``Random``, ``SHA``, ``Hyperband``,
    ``PBT``, ``ASHA``, ``Hyperband (async)``, ``BOHB`` — plus the
    scheduler x searcher combinations the conclusion gestures at:
    ``ASHA (KDE)`` (asynchronous BOHB) and ``ASHA (GP)`` (MOBSTER-family).
    """
    s = settings

    def random_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return RandomSearch(objective.space, rng, max_resource=s.max_resource)

    def sha_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return SynchronousSHA(
            objective.space,
            rng,
            n=s.n,
            min_resource=s.min_resource,
            max_resource=s.max_resource,
            eta=s.eta,
            early_stopping_rate=s.early_stopping_rate,
            grow_brackets=s.grow_brackets,
        )

    def hyperband_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return Hyperband(
            objective.space,
            rng,
            min_resource=s.min_resource,
            max_resource=s.max_resource,
            eta=s.eta,
        )

    def asha_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return ASHA(
            objective.space,
            rng,
            min_resource=s.min_resource,
            max_resource=s.max_resource,
            eta=s.eta,
            early_stopping_rate=s.early_stopping_rate,
        )

    def async_hb_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return AsyncHyperband(
            objective.space,
            rng,
            min_resource=s.min_resource,
            max_resource=s.max_resource,
            eta=s.eta,
            brackets=s.hyperband_brackets,
        )

    def bohb_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return BOHB(
            objective.space,
            rng,
            n=s.n,
            min_resource=s.min_resource,
            max_resource=s.max_resource,
            eta=s.eta,
            early_stopping_rate=s.early_stopping_rate,
            grow_brackets=s.grow_brackets,
        )

    def asha_kde_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return ASHA(
            objective.space,
            rng,
            min_resource=s.min_resource,
            max_resource=s.max_resource,
            eta=s.eta,
            early_stopping_rate=s.early_stopping_rate,
            searcher=KDESearcher(),
        )

    def asha_gp_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return ASHA(
            objective.space,
            rng,
            min_resource=s.min_resource,
            max_resource=s.max_resource,
            eta=s.eta,
            early_stopping_rate=s.early_stopping_rate,
            searcher=GPEISearcher(),
        )

    def pbt_factory(objective: Objective, rng: np.random.Generator) -> Scheduler:
        return PBT(
            objective.space,
            rng,
            max_resource=s.max_resource,
            interval=s.pbt_interval,
            population_size=s.pbt_population,
            frozen=s.pbt_frozen,
        )

    factories: dict[str, SchedulerFactory] = {
        "Random": random_factory,
        "SHA": sha_factory,
        "Hyperband": hyperband_factory,
        "PBT": pbt_factory,
        "ASHA": asha_factory,
        "ASHA (KDE)": asha_kde_factory,
        "ASHA (GP)": asha_gp_factory,
        "Hyperband (async)": async_hb_factory,
        "BOHB": bohb_factory,
    }
    if include is None:
        return factories
    missing = set(include) - set(factories)
    if missing:
        raise KeyError(f"unknown methods requested: {sorted(missing)}")
    return {name: factories[name] for name in include}
