"""Benchmark 1: the small cuda-convnet model on CIFAR-10.

Section 4.1's first benchmark tunes "a convolutional neural network (CNN)
with the cuda-convnet architecture and the same search space as Li et al.
[2017]" — learning rate, per-layer-group l2 penalties, and the local
response normalisation parameters, all on CIFAR-10 with ``R = 30000`` SGD
iterations.

Surrogate calibration (targets read off Figures 3 and 4):

* best reachable test error ~ 0.18; a good configuration is < 0.21;
* random configurations cluster around 0.25-0.45 with a divergent tail at
  high learning rates (error pinned at chance, 0.90);
* roughly 1-2% of random samples are "good", so the sequential setting
  needs a few hundred evaluations — matching the paper's observation that
  benchmark 1 "only required evaluating a few hundred configurations";
* training cost is uniform across configurations (fixed architecture),
  which is why ASHA's edge over synchronous SHA is modest here (Section 4.2
  reports 1.5x) compared to benchmark 2.
"""

from __future__ import annotations

import math

from ..searchspace import Config, LogUniform, SearchSpace, Uniform
from .curves import CurveProfile
from .response import log_band
from .surrogate import SurrogateObjective, seeded_normal, seeded_uniform

__all__ = ["space", "make_objective", "R", "CHANCE_ERROR", "BEST_ERROR"]

#: Maximum resource: SGD iterations (Appendix A.3).
R = 30_000.0
#: CIFAR-10 chance error.
CHANCE_ERROR = 0.90
#: Best achievable test error in this search space.
BEST_ERROR = 0.176


def space() -> SearchSpace:
    """The cuda-convnet search space of Li et al. [2017]."""
    return SearchSpace(
        {
            "learning_rate": LogUniform(5e-5, 5.0),
            "conv1_l2": LogUniform(5e-5, 5.0),
            "conv2_l2": LogUniform(5e-5, 5.0),
            "conv3_l2": LogUniform(5e-5, 5.0),
            "fc_l2": LogUniform(5e-3, 500.0),
            "lrn_scale": LogUniform(5e-6, 5.0),
            "lrn_power": Uniform(0.01, 3.0),
        }
    )


def profile(config: Config, seed: int) -> CurveProfile:
    """Quality model for one configuration."""
    lr = config["learning_rate"]
    # Divergence cliff: very high learning rates never leave chance error.
    diverge_margin = math.log10(lr) - math.log10(1.5)
    if diverge_margin > 0 and seeded_uniform(seed, 1.0) < min(1.0, 0.5 + diverge_margin):
        return CurveProfile(
            asymptote=CHANCE_ERROR - 0.02,
            initial_loss=CHANCE_ERROR,
            gamma=0.3,
            half_resource=R,
            noise_std=0.005,
        )
    penalty = (
        log_band(lr, 0.06, 0.9, 0.055)
        + log_band(config["conv1_l2"], 1e-3, 1.6, 0.012)
        + log_band(config["conv2_l2"], 1e-3, 1.6, 0.012)
        + log_band(config["conv3_l2"], 1e-3, 1.6, 0.012)
        + log_band(config["fc_l2"], 0.5, 1.6, 0.015)
        + log_band(config["lrn_scale"], 5e-4, 2.0, 0.008)
        + 0.004 * abs(config["lrn_power"] - 0.75)
    )
    idiosyncratic = 0.015 * abs(seeded_normal(seed, 2.0))
    asymptote = min(BEST_ERROR + penalty + idiosyncratic, CHANCE_ERROR - 0.03)
    # Slower convergence for tiny learning rates: they would eventually get
    # there but not within R — early stopping correctly discards them.
    slow = max(0.0, math.log10(0.01 / max(lr, 1e-12)))
    # Config-seeded convergence-speed spread: learning curves cross, so
    # early-rung rankings are informative but imperfect (the reality that
    # makes Section 3.3's mispromotion analysis non-vacuous).
    speed = 10.0 ** (0.35 * seeded_normal(seed, 5.0))
    half = R / 60.0 * (1.0 + 3.0 * slow) * speed
    return CurveProfile(
        asymptote=asymptote,
        initial_loss=CHANCE_ERROR,
        gamma=1.2,
        half_resource=half,
        noise_std=0.01,
    )


def make_objective(seed_salt: int = 0) -> SurrogateObjective:
    """Benchmark-1 objective; vary ``seed_salt`` across experiment trials."""
    return SurrogateObjective(space(), R, profile, seed_salt=seed_salt)
