"""Real kernel-classifier objective with *dataset size* as the resource.

Appendix A.2 benchmarks Hyperband and Fabolas on tuning an SVM where "the
allocated resource is number of training datapoints".  We cannot ship the
proprietary 'vehicle' dataset or MNIST, so this module builds the closest
synthetic equivalent that exercises the same code path (see DESIGN.md):

* a fixed synthetic binary classification dataset drawn from overlapping
  Gaussian mixtures, with a difficulty knob calibrated so the reproducible
  Bayes-ish error floors match Figure 9's y-ranges ('vehicle' ~ 0.25,
  'mnist' ~ 0.02);
* a genuinely-trained model: random Fourier features (bandwidth = the
  ``gamma`` hyperparameter) followed by ridge-regularised least squares
  (regularisation ``1/C``), i.e. an approximate kernel SVM fit in closed
  form — real training, deterministic, and fast enough for tuning loops;
* training on the first ``resource`` datapoints, evaluating 0/1 error on a
  held-out validation set — so more data genuinely reduces error with
  diminishing returns, the structure Fabolas exploits.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..searchspace import Config, LogUniform, SearchSpace
from .base import Objective

__all__ = ["SVMObjective", "space", "make_objective", "DATASETS"]

#: Difficulty presets: (class separation, label noise, target floor).
DATASETS = {
    "vehicle": {"separation": 2.0, "label_noise": 0.15, "n_informative": 6},
    "mnist": {"separation": 3.5, "label_noise": 0.005, "n_informative": 10},
}


def space() -> SearchSpace:
    """The SVM search space of Klein et al. [2017]: C and gamma, log scale."""
    return SearchSpace(
        {
            "C": LogUniform(math.exp(-10.0), math.exp(10.0)),
            "gamma": LogUniform(math.exp(-10.0), math.exp(3.0)),
        }
    )


class SVMObjective(Objective):
    """Approximate-kernel classifier trained on data subsets.

    Parameters
    ----------
    dataset:
        ``"vehicle"`` (hard, error floor ~ 0.25) or ``"mnist"`` (easy,
        floor ~ 0.02).
    max_train:
        Full training-set size (= ``R``).
    num_val:
        Held-out validation points.
    num_features, rff_dim:
        Input dimensionality and random-Fourier-feature width.
    seed:
        Dataset seed; vary across experiment trials for fresh splits.
    """

    def __init__(
        self,
        dataset: str = "vehicle",
        *,
        max_train: int = 4096,
        num_val: int = 1024,
        num_features: int = 10,
        rff_dim: int = 96,
        seed: int = 0,
    ):
        if dataset not in DATASETS:
            raise ValueError(f"unknown dataset {dataset!r}; options: {sorted(DATASETS)}")
        self.space = space()
        self.max_resource = float(max_train)
        self.dataset = dataset
        self.rff_dim = rff_dim
        preset = DATASETS[dataset]
        rng = np.random.default_rng(seed)
        n = max_train + num_val
        d = num_features
        informative = preset["n_informative"]
        # Two anisotropic Gaussian clusters, informative dims separated.
        labels = rng.integers(0, 2, size=n)
        centers = np.zeros((2, d))
        centers[1, :informative] = preset["separation"] / math.sqrt(informative)
        scales = rng.uniform(0.7, 1.5, size=d)
        x = centers[labels] + rng.normal(0.0, 1.0, size=(n, d)) * scales
        flip = rng.random(n) < preset["label_noise"]
        labels = np.where(flip, 1 - labels, labels)
        self._x_train, self._y_train = x[:max_train], labels[:max_train]
        self._x_val, self._y_val = x[max_train:], labels[max_train:]
        # Fixed RFF directions; the gamma hyperparameter rescales them.
        self._w = rng.normal(0.0, 1.0, size=(d, rff_dim))
        self._b = rng.uniform(0.0, 2 * math.pi, size=rff_dim)

    # ---------------------------------------------------------- Objective

    def initial_state(self, config: Config) -> Any:
        return None  # subset training always refits from scratch

    def _features(self, x: np.ndarray, gamma: float) -> np.ndarray:
        proj = x @ (self._w * math.sqrt(2.0 * gamma)) + self._b
        return math.sqrt(2.0 / self.rff_dim) * np.cos(proj)

    def train(
        self, state: Any, config: Config, from_resource: float, to_resource: float
    ) -> tuple[Any, float]:
        n = int(min(max(to_resource, 2.0), self.max_resource))
        phi = self._features(self._x_train[:n], config["gamma"])
        y = 2.0 * self._y_train[:n] - 1.0
        # Constant (not per-sample) ridge strength: small subsets overfit the
        # random-feature model and large ones do not, which is what gives the
        # dataset-size resource its diminishing-returns structure.
        lam = max(1.0 / config["C"], 1e-10)
        gram = phi.T @ phi
        gram[np.diag_indices_from(gram)] += lam
        weights = np.linalg.solve(gram, phi.T @ y)
        scores = self._features(self._x_val, config["gamma"]) @ weights
        predictions = (scores > 0).astype(int)
        error = float(np.mean(predictions != self._y_val))
        return None, error

    def cost(self, config: Config, from_resource: float, to_resource: float) -> float:
        """Subset training is not incremental: cost follows the *target* size."""
        return max(to_resource, 1.0)


def make_objective(dataset: str = "vehicle", seed: int = 0, **kwargs) -> SVMObjective:
    """The Appendix A.2 SVM benchmark on a synthetic stand-in dataset."""
    return SVMObjective(dataset, seed=seed, **kwargs)
