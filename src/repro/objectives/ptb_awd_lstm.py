"""The modern AWD-LSTM benchmark (Section 4.3.1, Table 3).

Merity et al. [2018]'s LSTM with DropConnect on PTB, with the paper's search
space "constructed around their configuration" (Table 3).  Calibration from
Figure 6 and the text:

* Merity et al.'s own configuration reaches validation perplexity ~ 60.7
  without fine-tuning; the best configuration ASHA found reached 60.2 — the
  surrogate's optimum sits just above 59.9;
* most of the space is mildly worse (validation perplexity 61-70, the
  y-range of Figure 6), since the space is a tight box around a known-good
  configuration;
* training is 256 epochs (``r = 1, R = 256, eta = 4``); PBT runs
  population 20 with explore/exploit every 8 epochs.

Costs are nearly uniform (the architecture is fixed); only batch size and
BPTT length move per-epoch time slightly.
"""

from __future__ import annotations

from ..searchspace import Choice, Config, LogUniform, SearchSpace, Uniform
from .curves import CurveProfile
from .response import band, log_band
from .surrogate import SurrogateObjective, seeded_normal, seeded_uniform

__all__ = ["space", "make_objective", "R", "BEST_PERPLEXITY", "INITIAL_PERPLEXITY"]

R = 256.0
BEST_PERPLEXITY = 59.2
INITIAL_PERPLEXITY = 320.0


def space() -> SearchSpace:
    """Table 3: hyperparameters for the 16-GPU near-SOTA LSTM task."""
    return SearchSpace(
        {
            "learning_rate": LogUniform(10.0, 100.0),
            "dropout_rnn": Uniform(0.15, 0.35),
            "dropout_input": Uniform(0.3, 0.5),
            "dropout_embedding": Uniform(0.05, 0.2),
            "dropout_output": Uniform(0.3, 0.5),
            "dropout_dropconnect": Uniform(0.4, 0.6),
            "weight_decay": LogUniform(0.5e-6, 2e-6),
            "batch_size": Choice([15, 20, 25]),
            "time_steps": Choice([65, 70, 75]),
        }
    )


def profile(config: Config, seed: int) -> CurveProfile:
    lr = config["learning_rate"]
    # Rare blow-ups: very high lr with weak regularisation.
    if lr > 70 and config["dropout_dropconnect"] < 0.45:
        if seeded_uniform(seed, 3.0) < 0.5:
            return CurveProfile(
                asymptote=900.0,
                initial_loss=1500.0,
                gamma=0.2,
                half_resource=R,
                noise_std=0.02,
            )
    penalty = (
        log_band(lr, 30.0, 0.35, 2.2)
        + band(config["dropout_rnn"], 0.25, 0.07, 1.4)
        + band(config["dropout_input"], 0.4, 0.07, 1.2)
        + band(config["dropout_embedding"], 0.1, 0.05, 1.0)
        + band(config["dropout_output"], 0.4, 0.07, 1.2)
        + band(config["dropout_dropconnect"], 0.5, 0.07, 1.6)
        + log_band(config["weight_decay"], 1.2e-6, 0.35, 0.8)
        + band(float(config["batch_size"]), 20.0, 6.0, 0.3)
        + band(float(config["time_steps"]), 70.0, 6.0, 0.2)
    )
    idiosyncratic = 1.0 * abs(seeded_normal(seed, 2.0))
    asymptote = BEST_PERPLEXITY + penalty + idiosyncratic
    cost = (config["batch_size"] / 20.0) ** 0.3 * (config["time_steps"] / 70.0) ** 0.3
    # Config-seeded convergence-speed spread (uncorrelated with quality):
    # learning curves cross, so rankings at 8 epochs differ from rankings at
    # 256.  PBT's truncation selection acts on the 8-epoch view every round
    # and systematically favours fast convergers; ASHA re-ranks at each
    # deeper rung, which is the dynamic behind Figure 6's crossover.
    half = 8.0 * 10.0 ** (0.25 * seeded_normal(seed, 5.0))
    return CurveProfile(
        asymptote=asymptote,
        initial_loss=INITIAL_PERPLEXITY,
        gamma=1.4,
        half_resource=half,
        noise_std=0.004,
        cost_multiplier=cost,
        noise_mode="relative",
    )


def make_objective(seed_salt: int = 0) -> SurrogateObjective:
    """AWD-LSTM objective for the 16-worker benchmark (Figure 6)."""
    return SurrogateObjective(space(), R, profile, seed_salt=seed_salt)
