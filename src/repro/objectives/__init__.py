"""Tuning workloads: the paper's benchmarks as surrogate or real objectives."""

from . import (
    cifar_convnet,
    cifar_smallcnn,
    mlp_real,
    ptb_awd_lstm,
    ptb_lstm,
    sim_workload,
    svhn_smallcnn,
    svm,
)
from .base import Objective, config_seed
from .curves import CurveProfile, advance_loss, curve_loss, invert_curve
from .mlp_real import RealMLPObjective
from .surrogate import CurveState, SurrogateObjective
from .svm import SVMObjective

__all__ = [
    "CurveProfile",
    "CurveState",
    "Objective",
    "RealMLPObjective",
    "SVMObjective",
    "SurrogateObjective",
    "advance_loss",
    "cifar_convnet",
    "cifar_smallcnn",
    "config_seed",
    "curve_loss",
    "invert_curve",
    "mlp_real",
    "ptb_awd_lstm",
    "ptb_lstm",
    "sim_workload",
    "svhn_smallcnn",
    "svm",
]
