"""The large-scale PTB LSTM benchmark (Section 4.3, Table 2).

A one-layer LSTM language model on Penn Treebank, with the search space of
Table 2 built around the LSTMs of Zaremba et al. [2014].  The paper's key
observations, built into the surrogate:

* the best model found by ASHA reached test perplexity **76.6**, beating the
  78.4 of Zaremba et al.'s large LSTM — our best-reachable asymptote sits
  just below 76;
* "certain hyperparameter configurations in this benchmark induce
  perplexities that are orders of magnitude larger than the average case",
  which breaks model-based methods (Vizier) even when capped at 1000 — the
  surrogate has a divergent region (high learning rate, weak gradient
  clipping) whose perplexities land in ``10**3..10**6``;
* bigger hidden states and longer BPTT horizons help, learning rate and
  dropout have band optima.

The resource is abstract "training record" units with ``R = 256``; Figure 5
measures time in multiples of ``time(R)`` and Section 4.3 uses
``eta = 4, r = R/64, s = 0``.
"""

from __future__ import annotations

import math

from ..searchspace import Config, IntUniform, SearchSpace, Uniform
from .curves import CurveProfile
from .response import band, log_band, ramp
from .surrogate import SurrogateObjective, seeded_normal, seeded_uniform

__all__ = ["space", "make_objective", "R", "BEST_PERPLEXITY", "INITIAL_PERPLEXITY"]

R = 256.0
BEST_PERPLEXITY = 73.0
INITIAL_PERPLEXITY = 5000.0


def space() -> SearchSpace:
    """Table 2: hyperparameters for the PTB LSTM task.

    Note: "all hyperparameters are tuned on a linear scale and sampled
    uniform over the specified range" (Appendix A.5) — including the
    learning rate and weight-initialisation range, whose useful values
    occupy a narrow sliver of the axis.  That is part of why model-based
    methods have a hard time on this benchmark.
    """
    return SearchSpace(
        {
            "batch_size": IntUniform(10, 80),
            "time_steps": IntUniform(10, 80),
            "hidden_nodes": IntUniform(200, 1500),
            "learning_rate": Uniform(0.01, 100.0),
            "decay_rate": Uniform(0.01, 0.99),
            "decay_epochs": IntUniform(1, 10),
            "clip_gradients": Uniform(1.0, 10.0),
            "dropout": Uniform(0.1, 1.0),
            "weight_init_range": Uniform(0.001, 1.0),
        }
    )


def _diverges(config: Config, seed: int) -> bool:
    """High learning rate with weak clipping blows the model up."""
    lr = config["learning_rate"]
    clip = config["clip_gradients"]
    if lr <= 30.0:
        return False
    # Probability grows with lr and with looser clipping.
    hazard = min(1.0, 0.35 * (math.log10(lr) - math.log10(30.0)) * (clip / 6.0))
    return seeded_uniform(seed, 3.0) < hazard


def profile(config: Config, seed: int) -> CurveProfile:
    if _diverges(config, seed):
        # Orders-of-magnitude blow-up: perplexity lands in 1e3..1e6.
        scale = 3.0 + 3.0 * seeded_uniform(seed, 4.0)
        blown = 10.0**scale
        return CurveProfile(
            asymptote=blown,
            initial_loss=max(blown * 1.5, INITIAL_PERPLEXITY),
            gamma=0.2,
            half_resource=R,
            noise_std=0.02,
            noise_mode="relative",
        )
    penalty = (
        ramp(config["hidden_nodes"], 200, 1500, 14.0)
        + log_band(config["learning_rate"], 6.0, 0.8, 8.0)
        + band(config["dropout"], 0.5, 0.25, 7.0)
        + ramp(config["time_steps"], 10, 80, 5.0)
        + log_band(config["weight_init_range"], 0.06, 1.0, 4.0)
        + band(config["decay_rate"], 0.65, 0.35, 3.0)
        + band(float(config["decay_epochs"]), 6.0, 4.5, 2.0)
        + band(float(config["batch_size"]), 25.0, 35.0, 2.0)
    )
    idiosyncratic = 1.5 * abs(seeded_normal(seed, 2.0))
    asymptote = BEST_PERPLEXITY + penalty + idiosyncratic
    # Small learning rates converge slowly; large (non-divergent) ones fast.
    slow = max(0.0, math.log10(1.0 / max(config["learning_rate"], 1e-9)))
    half = R / 400.0 * (1.0 + 8.0 * slow)
    return CurveProfile(
        asymptote=asymptote,
        initial_loss=INITIAL_PERPLEXITY,
        gamma=1.3,
        half_resource=half,
        noise_std=0.004,
        noise_mode="relative",
    )


def make_objective(seed_salt: int = 0) -> SurrogateObjective:
    """PTB LSTM objective for the 500-worker benchmark (Figure 5)."""
    return SurrogateObjective(space(), R, profile, seed_salt=seed_salt)
