"""The small-CNN architecture tuning task on SVHN (Appendix A.2 / A.4).

Same Table-1 search space and cost structure as the CIFAR-10 variant
(:mod:`repro.objectives.cifar_smallcnn`), recalibrated to SVHN error levels:
Figure 9 (bottom right) shows methods converging to ~ 0.03-0.05 test error
with random search near 0.08, and SVHN's 10-class chance error ~ 0.80 after
the Sermanet et al. [2012] splits.
"""

from __future__ import annotations

import math

from ..searchspace import Config, SearchSpace
from .cifar_smallcnn import cost_multiplier, space as _space
from .curves import CurveProfile
from .response import log_band, ramp
from .surrogate import SurrogateObjective, seeded_normal, seeded_uniform

__all__ = ["space", "make_objective", "R", "CHANCE_ERROR", "BEST_ERROR"]

R = 30_000.0
CHANCE_ERROR = 0.80
BEST_ERROR = 0.024


def space() -> SearchSpace:
    """Table 1's space (shared with the CIFAR-10 variant)."""
    return _space()


def profile(config: Config, seed: int) -> CurveProfile:
    lr = config["learning_rate"]
    mult = cost_multiplier(config)
    diverge_margin = math.log10(lr) - math.log10(2.0)
    if diverge_margin > 0 and seeded_uniform(seed, 1.0) < min(1.0, 0.6 + diverge_margin):
        return CurveProfile(
            asymptote=CHANCE_ERROR - 0.02,
            initial_loss=CHANCE_ERROR,
            gamma=0.3,
            half_resource=R,
            noise_std=0.003,
            cost_multiplier=mult,
        )
    architecture = (
        ramp(config["num_layers"], 2, 4, 0.02)
        + ramp(math.log2(config["num_filters"]), 4, 6, 0.025)
        + 0.004 * abs(math.log2(config["batch_size"]) - 7)
    )
    penalty = (
        log_band(lr, 0.08, 1.0, 0.035, cap=3.0)
        + log_band(config["weight_init_std1"], 1e-2, 1.2, 0.008, cap=2.0)
        + log_band(config["weight_init_std2"], 3e-2, 1.2, 0.008, cap=2.0)
        + log_band(config["weight_init_std3"], 3e-2, 1.2, 0.008, cap=2.0)
        + log_band(config["l2_penalty1"], 1e-3, 1.8, 0.006, cap=2.0)
        + log_band(config["l2_penalty2"], 1e-3, 1.8, 0.006, cap=2.0)
        + log_band(config["l2_penalty3"], 0.1, 1.8, 0.006, cap=2.0)
    )
    idiosyncratic = 0.008 * abs(seeded_normal(seed, 2.0))
    asymptote = min(BEST_ERROR + architecture + penalty + idiosyncratic, CHANCE_ERROR - 0.05)
    slow = max(0.0, math.log10(0.01 / max(lr, 1e-12)))
    # Config-seeded convergence-speed spread: learning curves cross, so
    # early-rung rankings are informative but imperfect (the reality that
    # makes Section 3.3's mispromotion analysis non-vacuous).
    speed = 10.0 ** (0.35 * seeded_normal(seed, 5.0))
    half = R / 60.0 * (1.0 + 3.0 * slow) * speed
    return CurveProfile(
        asymptote=asymptote,
        initial_loss=CHANCE_ERROR,
        gamma=1.2,
        half_resource=half,
        noise_std=0.008,
        cost_multiplier=mult,
    )


def make_objective(seed_salt: int = 0) -> SurrogateObjective:
    """SVHN architecture-tuning objective (Appendix A.2 benchmark 3)."""
    return SurrogateObjective(space(), R, profile, seed_salt=seed_salt)
