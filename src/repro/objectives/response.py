"""Response-surface building blocks for the benchmark profile functions.

Each surrogate benchmark composes its configuration-quality function from a
handful of primitives: log-scale and linear-scale quadratic *bands* (there
is a sweet spot; quality degrades away from it) and *ramps* (monotone
better-with-more effects like network width).  Penalties are additive on the
loss asymptote and capped so no single hyperparameter drives the loss out of
its benchmark's plausible range — except explicit divergence, which the
benchmarks model separately.
"""

from __future__ import annotations

import math

__all__ = ["log_band", "band", "ramp", "log_ramp"]


def log_band(
    value: float, optimum: float, width_decades: float, strength: float, cap: float = 4.0
) -> float:
    """Quadratic penalty in log10 space around ``optimum``.

    ``width_decades`` is the scale at which the penalty reaches ``strength``;
    the penalty saturates at ``strength * cap``.
    """
    if value <= 0 or optimum <= 0:
        return strength * cap
    z = (math.log10(value) - math.log10(optimum)) / width_decades
    return strength * min(z * z, cap)


def band(value: float, optimum: float, width: float, strength: float, cap: float = 4.0) -> float:
    """Quadratic penalty on a linear scale around ``optimum``."""
    z = (value - optimum) / width
    return strength * min(z * z, cap)


def ramp(value: float, low: float, high: float, strength: float) -> float:
    """Monotone penalty: ``strength`` at ``value=low`` shrinking to 0 at ``high``.

    Models better-with-more hyperparameters (layers, filters, hidden units).
    """
    if high <= low:
        raise ValueError("ramp requires high > low")
    frac = (min(max(value, low), high) - low) / (high - low)
    return strength * (1.0 - frac)


def log_ramp(value: float, low: float, high: float, strength: float) -> float:
    """Like :func:`ramp` but interpolated in log10 space."""
    if value <= 0 or low <= 0 or high <= low:
        return strength
    lv, ll, lh = math.log10(min(max(value, low), high)), math.log10(low), math.log10(high)
    return strength * (1.0 - (lv - ll) / (lh - ll))
