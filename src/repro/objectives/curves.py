"""Parametric learning-curve families for the surrogate objectives.

All surrogate workloads share one curve family: a power-law decay from an
initial loss toward a configuration-dependent asymptote,

    ``loss(r) = a + (l0 - a) * (1 + r / h) ** (-gamma)``

which matches the empirically observed shape of validation-loss curves for
SGD-trained models (cf. Domhan et al. 2015's pow3/pow4 families).  The
family is invertible in ``r``, which is what lets a curve be *resumed from a
loss level* — the mechanism PBT's weight inheritance rides on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CurveProfile", "curve_loss", "invert_curve", "advance_loss"]


@dataclass(frozen=True)
class CurveProfile:
    """Everything the surrogate needs to know about one configuration.

    Parameters
    ----------
    asymptote:
        Loss as resource -> infinity (the configuration's quality).
    initial_loss:
        Loss at zero resource (chance performance).
    gamma:
        Power-law decay exponent; larger = faster convergence.
    half_resource:
        Resource scale ``h``; the curve reaches roughly halfway to the
        asymptote after a few multiples of ``h``.
    noise_std:
        Std of per-measurement observation noise.  With the default
        ``noise_mode="gap"`` it is relative to the initial-to-asymptote gap;
        with ``noise_mode="relative"`` it is multiplicative on the clean
        loss (the right model for perplexities, whose gap spans orders of
        magnitude).
    cost_multiplier:
        Per-resource-unit training cost relative to the benchmark average —
        the source of training-time variance across configurations.
    """

    asymptote: float
    initial_loss: float
    gamma: float = 0.7
    half_resource: float = 1.0
    noise_std: float = 0.0
    cost_multiplier: float = 1.0
    noise_mode: str = "gap"

    def __post_init__(self) -> None:
        if self.initial_loss < self.asymptote:
            raise ValueError(
                f"initial_loss ({self.initial_loss}) must be >= asymptote ({self.asymptote})"
            )
        if self.gamma <= 0 or self.half_resource <= 0:
            raise ValueError("gamma and half_resource must be positive")
        if self.cost_multiplier <= 0:
            raise ValueError("cost_multiplier must be positive")
        if self.noise_mode not in ("gap", "relative"):
            raise ValueError(f"unknown noise_mode {self.noise_mode!r}")


def curve_loss(profile: CurveProfile, resource: float) -> float:
    """Noise-free loss after training from scratch for ``resource``."""
    if resource < 0:
        raise ValueError(f"resource must be >= 0, got {resource}")
    gap = profile.initial_loss - profile.asymptote
    return profile.asymptote + gap * (1.0 + resource / profile.half_resource) ** (-profile.gamma)


def invert_curve(profile: CurveProfile, loss: float) -> float:
    """The resource at which the curve passes through ``loss``.

    Returns ``inf`` for losses at/below the asymptote and ``0`` for losses
    at/above the initial loss.
    """
    if loss >= profile.initial_loss:
        return 0.0
    if loss <= profile.asymptote:
        return math.inf
    gap = profile.initial_loss - profile.asymptote
    ratio = (loss - profile.asymptote) / gap
    return profile.half_resource * (ratio ** (-1.0 / profile.gamma) - 1.0)


def advance_loss(profile: CurveProfile, current_loss: float, delta_resource: float) -> float:
    """Continue training from ``current_loss`` for ``delta_resource`` more.

    If the current loss sits *on or above* the configuration's own curve, we
    locate the effective position on the curve and slide along it — this is
    how checkpoint resume works.  If the current loss is *better than the
    configuration can achieve* (a PBT clone inheriting strong weights under
    weaker hyperparameters), the loss relaxes exponentially toward the
    configuration's asymptote instead.
    """
    if delta_resource < 0:
        raise ValueError(f"delta_resource must be >= 0, got {delta_resource}")
    if delta_resource == 0:
        return current_loss
    if current_loss <= profile.asymptote:
        # Better than this config can sustain: drift up toward its asymptote.
        # The relaxation is fast (one half_resource scale) — inherited weights
        # help less under worse hyperparameters than under the donor's own,
        # which keeps PBT's exploit step from being a free lunch.
        tau = profile.half_resource
        return profile.asymptote + (current_loss - profile.asymptote) * math.exp(
            -delta_resource / tau
        )
    effective = invert_curve(profile, current_loss)
    return curve_loss(profile, effective + delta_resource)
