"""The Appendix A.1 simulated workload for straggler/drop experiments.

"We assume that the expected training time for each job is the same as the
allocated resource" — cost is exactly the resource delta, and configuration
quality is an arbitrary (uniform) draw, constant in rank across rungs.  The
straggler multiplier and drop process live in the *cluster*
(:class:`repro.backend.SimulatedCluster`), not here, matching the paper's
setup where they are properties of the infrastructure.
"""

from __future__ import annotations

from ..searchspace import Config, SearchSpace, Uniform
from .curves import CurveProfile
from .surrogate import SurrogateObjective

__all__ = ["space", "make_objective", "R"]

R = 256.0


def space() -> SearchSpace:
    """A single dummy hyperparameter; quality is i.i.d. uniform anyway."""
    return SearchSpace({"x": Uniform(0.0, 1.0)})


def profile(config: Config, seed: int) -> CurveProfile:
    # Quality equals the sampled hyperparameter itself: uniform on [0, 1],
    # with a mild learning curve so early rungs are informative.
    quality = config["x"]
    return CurveProfile(
        asymptote=quality,
        initial_loss=quality + 0.5,
        gamma=1.0,
        half_resource=8.0,
        noise_std=0.0,
    )


def make_objective(seed_salt: int = 0) -> SurrogateObjective:
    """Unit-cost workload used by Figures 7 and 8."""
    return SurrogateObjective(space(), R, profile, seed_salt=seed_salt)
