"""Surrogate objectives: seeded, resumable learning-curve workloads.

A :class:`SurrogateObjective` turns a *profile function* — a deterministic
map from configuration to :class:`~repro.objectives.curves.CurveProfile` —
into a full :class:`~repro.objectives.base.Objective`: resumable state,
deterministic per-(config, resource) observation noise, and a config-
dependent cost model.

Why this preserves the paper's behaviour: every scheduler in this library
consumes only ``(config, resource) -> loss`` and ``cost(config, delta)``.
The profile functions in the benchmark modules are built so that the
*response surface structure* (learning-rate cliffs, size/cost coupling,
heavy-tailed divergence) matches what the paper describes for each workload;
absolute values are calibrated to the figures' reported ranges.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable

from ..searchspace import Config, SearchSpace
from .base import Objective, config_payload, config_seed
from .curves import CurveProfile, advance_loss, curve_loss

__all__ = ["CurveState", "SurrogateObjective", "seeded_normal", "seeded_uniform"]


# Precompiled packers for the overwhelmingly common arities: building and
# parsing an f-string format per draw was measurable at simulator scale.
# The packed bytes are identical to ``struct.pack(f"<Q{n}d", ...)``.
_PACK_1 = struct.Struct("<Qd").pack
_PACK_2 = struct.Struct("<Qdd").pack
_MASK = 2**64 - 1
_blake2b = hashlib.blake2b


def _hash_floats(seed: int, *values: float) -> int:
    """Stable 64-bit hash of a seed plus float values (for measurement noise)."""
    n = len(values)
    if n == 1:
        payload = _PACK_1(seed & _MASK, values[0])
    elif n == 2:
        payload = _PACK_2(seed & _MASK, values[0], values[1])
    else:
        payload = struct.pack(f"<Q{n}d", seed & _MASK, *values)
    return int.from_bytes(_blake2b(payload, digest_size=8).digest(), "little")


_NORMAL = NormalDist()


def seeded_normal(seed: int, *values: float) -> float:
    """A deterministic N(0, 1) draw keyed by ``(seed, values)``.

    Implemented as the inverse normal CDF of a hash-derived uniform — much
    cheaper than constructing a ``numpy`` generator per draw, which matters
    because the simulator calls this once per reported job.
    """
    return _NORMAL.inv_cdf(seeded_uniform(seed, *values))


def seeded_uniform(seed: int, *values: float) -> float:
    """A deterministic U(0, 1) draw keyed by ``(seed, values)``."""
    # 53 mantissa bits of the 64-bit hash -> uniform in (0, 1) exclusive.
    u = (_hash_floats(seed, *values) >> 11) * (1.0 / (1 << 53))
    return min(max(u, 1e-16), 1.0 - 1e-16)


@dataclass
class CurveState:
    """Training state of one surrogate trial: its current clean loss level."""

    clean_loss: float


class SurrogateObjective(Objective):
    """An objective defined by a per-configuration curve profile.

    Parameters
    ----------
    space:
        Hyperparameter space.
    max_resource:
        The benchmark's ``R``.
    profile_fn:
        Deterministic map ``(config, seed) -> CurveProfile``; the seed is a
        stable per-config value the function may use for idiosyncratic
        (config-level) variation.
    seed_salt:
        Varies the benchmark instance across experiment trials, mimicking
        different train/validation splits: the same config gets a different
        (but still deterministic) curve under a different salt.
    """

    def __init__(
        self,
        space: SearchSpace,
        max_resource: float,
        profile_fn: Callable[[Config, int], CurveProfile],
        *,
        seed_salt: int = 0,
    ):
        self.space = space
        self.max_resource = max_resource
        self.profile_fn = profile_fn
        self.seed_salt = seed_salt
        self._profile_cache: dict[int, CurveProfile] = {}
        # Hot-path cache keyed by the config dict's identity: trials hold one
        # stable config object for their lifetime, and hashing the dict
        # contents (JSON + blake2b) per job is measurable at 500-worker
        # scale.  The config reference is kept so the id cannot be recycled.
        self._id_cache: dict[int, tuple[Config, CurveProfile, int]] = {}

    # ---------------------------------------------------------- Objective

    def _lookup(self, config: Config) -> tuple[CurveProfile, int]:
        """(profile, noise seed) for ``config``, cached on the dict identity."""
        key = id(config)
        hit = self._id_cache.get(key)
        if hit is not None and hit[0] is config:
            return hit[1], hit[2]
        # Canonicalise the config once: both seeds hash the same payload
        # under different salts, and the JSON encoding is the expensive part
        # (one fresh config per sampled trial at 500-worker scale).
        payload = config_payload(config)
        seed = config_seed(config, salt=self.seed_salt, payload=payload)
        profile = self._profile_cache.get(seed)
        if profile is None:
            profile = self.profile_fn(config, seed)
            self._profile_cache[seed] = profile
        noise_seed = config_seed(config, salt=self.seed_salt + 1, payload=payload)
        self._id_cache[key] = (config, profile, noise_seed)
        return profile, noise_seed

    def profile(self, config: Config) -> CurveProfile:
        """The (cached) curve profile of ``config``."""
        return self._lookup(config)[0]

    def initial_state(self, config: Config) -> CurveState:
        return CurveState(clean_loss=self.profile(config).initial_loss)

    def train(
        self, state: CurveState, config: Config, from_resource: float, to_resource: float
    ) -> tuple[CurveState, float]:
        if to_resource < from_resource:
            raise ValueError(
                f"cannot train backwards: {from_resource} -> {to_resource}"
            )
        profile, noise_seed = self._lookup(config)
        clean = advance_loss(profile, state.clean_loss, to_resource - from_resource)
        observed = clean
        if profile.noise_std > 0:
            z = seeded_normal(noise_seed, to_resource)
            if profile.noise_mode == "relative":
                observed = clean * (1.0 + profile.noise_std * z)
            else:
                gap = profile.initial_loss - profile.asymptote
                observed = clean + profile.noise_std * gap * z
        return CurveState(clean_loss=clean), observed

    def cost_multiplier(self, config: Config) -> float:
        return self.profile(config).cost_multiplier

    # ------------------------------------------------------------ insight

    def clean_loss_at(self, config: Config, resource: float) -> float:
        """Noise-free from-scratch loss (ground truth for analysis/tests)."""
        return curve_loss(self.profile(config), resource)

    def best_possible(self, configs: list[Config]) -> float:
        """Lowest asymptote among ``configs`` (oracle value for diagnostics)."""
        return min(self.profile(c).asymptote for c in configs)
