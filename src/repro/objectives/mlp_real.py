"""A real, resumable numpy MLP objective (no surrogate anywhere).

This objective exists to demonstrate that the schedulers drive *genuine*
iterative training with checkpoint resume, exactly as Section 3.2's
"when training is iterative, ASHA can return an answer in time(R), since
incrementally trained configurations can be checkpointed and resumed."
It is the workload for the :class:`repro.backend.ThreadPoolBackend`
examples and the end-to-end integration tests.

Model: one-hidden-layer tanh MLP with softmax output, trained by mini-batch
SGD on a fixed synthetic two-spirals classification problem.  The resource
is *epochs*; the training state is the full parameter set plus the epoch
counter, so pausing/resuming/cloning (PBT) are all exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..searchspace import Choice, Config, LogUniform, SearchSpace
from .base import Objective, config_seed

__all__ = ["MLPState", "RealMLPObjective", "space", "make_objective"]


def space() -> SearchSpace:
    """Learning rate, width, l2, and batch size — the classic quartet."""
    return SearchSpace(
        {
            "learning_rate": LogUniform(1e-3, 3.0),
            "hidden_units": Choice([8, 16, 32, 64]),
            "l2": LogUniform(1e-7, 1e-1),
            "batch_size": Choice([16, 32, 64]),
        }
    )


@dataclass
class MLPState:
    """Weights plus progress counter; deep-copyable for PBT inheritance."""

    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: np.ndarray
    epoch: int


def _two_spirals(n: int, noise: float, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """The two-spirals dataset: nonlinear, low-dimensional, unambiguous."""
    half = n // 2
    theta = np.sqrt(rng.random(half)) * 3 * math.pi
    r = theta / (3 * math.pi)
    base = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)
    x = np.vstack([base, -base]) + rng.normal(0.0, noise, size=(2 * half, 2))
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(half, dtype=int)])
    perm = rng.permutation(len(y))
    return x[perm], y[perm]


class RealMLPObjective(Objective):
    """Tune a small MLP on two spirals; resource = training epochs."""

    def __init__(
        self,
        *,
        max_epochs: int = 64,
        num_train: int = 512,
        num_val: int = 256,
        noise: float = 0.08,
        seed: int = 0,
    ):
        self.space = space()
        self.max_resource = float(max_epochs)
        rng = np.random.default_rng(seed)
        self._x_train, self._y_train = _two_spirals(num_train, noise, rng)
        self._x_val, self._y_val = _two_spirals(num_val, noise, rng)
        self._seed = seed

    # ---------------------------------------------------------- Objective

    def initial_state(self, config: Config) -> MLPState:
        rng = np.random.default_rng(config_seed(config, salt=self._seed))
        h = int(config["hidden_units"])
        return MLPState(
            w1=rng.normal(0.0, 1.0 / math.sqrt(2), size=(2, h)),
            b1=np.zeros(h),
            w2=rng.normal(0.0, 1.0 / math.sqrt(h), size=(h, 2)),
            b2=np.zeros(2),
            epoch=0,
        )

    def train(
        self, state: MLPState, config: Config, from_resource: float, to_resource: float
    ) -> tuple[MLPState, float]:
        lr = float(config["learning_rate"])
        l2 = float(config["l2"])
        batch = int(config["batch_size"])
        target = int(round(to_resource))
        x, y = self._x_train, self._y_train
        n = len(y)
        while state.epoch < target:
            # Epoch-indexed shuffling: the same epoch shuffles identically no
            # matter when training was paused, keeping resume exact.
            order = np.random.default_rng((self._seed, state.epoch)).permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                self._sgd_step(state, x[idx], y[idx], lr, l2)
            state.epoch += 1
        return state, self._validation_error(state)

    def cost_multiplier(self, config: Config) -> float:
        """Wider nets and smaller batches cost more per epoch."""
        width = (int(config["hidden_units"]) / 32.0) ** 0.5
        return width * (32.0 / int(config["batch_size"])) ** 0.2

    # ------------------------------------------------------------- model

    @staticmethod
    def _forward(state: MLPState, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(x @ state.w1 + state.b1)
        logits = hidden @ state.w2 + state.b2
        return hidden, logits

    def _sgd_step(
        self, state: MLPState, x: np.ndarray, y: np.ndarray, lr: float, l2: float
    ) -> None:
        hidden, logits = self._forward(state, x)
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        grad_logits = probs
        grad_logits[np.arange(len(y)), y] -= 1.0
        grad_logits /= len(y)
        grad_w2 = hidden.T @ grad_logits + l2 * state.w2
        grad_b2 = grad_logits.sum(axis=0)
        grad_hidden = (grad_logits @ state.w2.T) * (1.0 - hidden**2)
        grad_w1 = x.T @ grad_hidden + l2 * state.w1
        grad_b1 = grad_hidden.sum(axis=0)
        state.w2 -= lr * grad_w2
        state.b2 -= lr * grad_b2
        state.w1 -= lr * grad_w1
        state.b1 -= lr * grad_b1

    def _validation_error(self, state: MLPState) -> float:
        _, logits = self._forward(state, self._x_val)
        predictions = logits.argmax(axis=1)
        return float(np.mean(predictions != self._y_val))


def make_objective(seed: int = 0, **kwargs) -> RealMLPObjective:
    """A real trainable objective for examples and integration tests."""
    return RealMLPObjective(seed=seed, **kwargs)
