"""Benchmark 2: the small-CNN *architecture tuning* task (Table 1).

Section 4.1's second benchmark tunes "a CNN architecture with varying number
of layers, batch size, and number of filters" over the ten hyperparameters of
Table 1, again with ``R = 30000`` SGD iterations on CIFAR-10.

Two properties of this benchmark matter for the paper's story and are built
into the surrogate:

* **architecture hyperparameters change model size**, so training cost
  varies wildly across configurations — the paper reports time-to-R of
  "30 minutes with a standard deviation of 27 minutes".  Our cost
  multiplier reproduces a coefficient of variation near 0.9, which is what
  "exacerbates the sensitivity of synchronous SHA to stragglers"
  (Section 4.2) and makes BOHB's bias toward expensive configurations hurt;
* the search space is *harder* than benchmark 1 (more good-region volume
  spread over interacting dimensions), producing the linear 25-worker
  speedup observed in Figure 4 (700 sequential minutes -> under 25).

Calibration targets from Figures 3/4: best error ~ 0.20, good < 0.23,
random-search plateau ~ 0.25-0.26.
"""

from __future__ import annotations

import math

from ..searchspace import Choice, Config, LogUniform, SearchSpace
from .curves import CurveProfile
from .response import log_band, ramp
from .surrogate import SurrogateObjective, seeded_normal, seeded_uniform

__all__ = ["space", "make_objective", "R", "CHANCE_ERROR", "BEST_ERROR", "ARCHITECTURE_KEYS"]

R = 30_000.0
CHANCE_ERROR = 0.90
BEST_ERROR = 0.196

#: Hyperparameters PBT must freeze during explore (they change the weights'
#: shapes; Appendix A.3).
ARCHITECTURE_KEYS = frozenset({"batch_size", "num_layers", "num_filters"})


def space() -> SearchSpace:
    """Table 1: hyperparameters for the small CNN architecture tuning task."""
    return SearchSpace(
        {
            "batch_size": Choice([64, 128, 256, 512]),
            "num_layers": Choice([2, 3, 4]),
            "num_filters": Choice([16, 32, 48, 64]),
            "weight_init_std1": LogUniform(1e-4, 1e-1),
            "weight_init_std2": LogUniform(1e-3, 1.0),
            "weight_init_std3": LogUniform(1e-3, 1.0),
            "l2_penalty1": LogUniform(1e-5, 1.0),
            "l2_penalty2": LogUniform(1e-5, 1.0),
            "l2_penalty3": LogUniform(1e-3, 1e2),
            "learning_rate": LogUniform(1e-5, 10.0),
        }
    )


def cost_multiplier(config: Config) -> float:
    """Relative time per SGD iteration for this architecture.

    Deeper/wider networks and larger batches cost more per iteration; the
    induced distribution over uniform samples has mean ~1 and coefficient of
    variation ~0.9, matching the 30 +/- 27 minute spread of Section 4.2.
    """
    layers = config["num_layers"]
    filters = config["num_filters"]
    batch = config["batch_size"]
    return (layers / 3.0) ** 1.3 * (filters / 36.0) ** 1.6 * (batch / 200.0) ** 0.8 / 1.45


def profile(config: Config, seed: int) -> CurveProfile:
    lr = config["learning_rate"]
    mult = cost_multiplier(config)
    diverge_margin = math.log10(lr) - math.log10(2.0)
    if diverge_margin > 0 and seeded_uniform(seed, 1.0) < min(1.0, 0.6 + diverge_margin):
        return CurveProfile(
            asymptote=CHANCE_ERROR - 0.02,
            initial_loss=CHANCE_ERROR,
            gamma=0.3,
            half_resource=R,
            noise_std=0.005,
            cost_multiplier=mult,
        )
    architecture = (
        ramp(config["num_layers"], 2, 4, 0.03)
        + ramp(math.log2(config["num_filters"]), 4, 6, 0.035)
        + 0.006 * abs(math.log2(config["batch_size"]) - 7)  # mild optimum at 128
    )
    penalty = (
        log_band(lr, 0.08, 1.2, 0.032, cap=3.0)
        + log_band(config["weight_init_std1"], 1e-2, 1.2, 0.009, cap=2.0)
        + log_band(config["weight_init_std2"], 3e-2, 1.2, 0.009, cap=2.0)
        + log_band(config["weight_init_std3"], 3e-2, 1.2, 0.009, cap=2.0)
        + log_band(config["l2_penalty1"], 1e-3, 1.8, 0.006, cap=2.0)
        + log_band(config["l2_penalty2"], 1e-3, 1.8, 0.006, cap=2.0)
        + log_band(config["l2_penalty3"], 0.1, 1.8, 0.006, cap=2.0)
    )
    idiosyncratic = 0.010 * abs(seeded_normal(seed, 2.0))
    asymptote = min(BEST_ERROR + architecture + penalty + idiosyncratic, CHANCE_ERROR - 0.03)
    slow = max(0.0, math.log10(0.01 / max(lr, 1e-12)))
    # Config-seeded convergence-speed spread: learning curves cross, so
    # early-rung rankings are informative but imperfect (the reality that
    # makes Section 3.3's mispromotion analysis non-vacuous).
    speed = 10.0 ** (0.35 * seeded_normal(seed, 5.0))
    half = R / 60.0 * (1.0 + 3.0 * slow) * speed
    return CurveProfile(
        asymptote=asymptote,
        initial_loss=CHANCE_ERROR,
        gamma=1.2,
        half_resource=half,
        noise_std=0.01,
        cost_multiplier=mult,
    )


def make_objective(seed_salt: int = 0) -> SurrogateObjective:
    """Benchmark-2 objective; vary ``seed_salt`` across experiment trials."""
    return SurrogateObjective(space(), R, profile, seed_salt=seed_salt)
