"""The objective protocol: what schedulers tune and backends execute.

An :class:`Objective` is a resumable training process.  Backends hold one
opaque *state* per trial (the "weights" / checkpoint) and advance it in
resource increments:

``state = initial_state(config)`` then repeatedly
``state, loss = train(state, config, from_resource, to_resource)``.

``cost`` reports how long an increment takes in backend time units — for the
simulated cluster this *is* the clock; for the threaded backend it is
ignored (real time is real).  The default cost model is the paper's
assumption that "training time for a configuration scales linearly with the
allocated resource" (Section 3.1), optionally scaled by a config-dependent
multiplier (the source of benchmark 2's straggler pain in Section 4.2).

Determinism contract: ``train`` must be a pure function of
``(state, config, from_resource, to_resource)`` so that a configuration's
learning curve is identical no matter which scheduler runs it — that is what
makes cross-scheduler comparisons and the promotion-equivalence tests fair.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from json.encoder import encode_basestring_ascii as _escape
from typing import Any

from ..searchspace import Config, SearchSpace

__all__ = ["Objective", "config_payload", "config_seed"]


# Interned canonical encodings, keyed by config identity.  A configuration
# dict is created once (at sampling) and then encoded repeatedly — journal
# ask records at every rung, surrogate profile/noise seeds, scheduler
# snapshots — so the canonicalisation is paid once and shared.  The config
# reference in the value keeps the id stable (and guards against reuse);
# the cache is cleared wholesale at a size cap to bound memory across many
# studies in one process.
_PAYLOAD_CACHE: dict[int, tuple[Config, bytes]] = {}
_PAYLOAD_CACHE_CAP = 65536


def config_payload(config: Config) -> bytes:
    """The canonical JSON encoding of a configuration (interned).

    Callers that derive several seeds from the same configuration (e.g. a
    profile seed and a noise seed) encode once and pass the payload to
    :func:`config_seed` — the JSON canonicalisation dominates the hashing.
    Repeat calls for the *same config object* return the cached bytes;
    configurations are treated as immutable throughout.
    """
    key = id(config)
    hit = _PAYLOAD_CACHE.get(key)
    if hit is not None and hit[0] is config:
        return hit[1]
    payload = _encode_plain(config)
    if payload is None:
        payload = json.dumps(
            {k: _canonical(v) for k, v in config.items()}, sort_keys=True
        ).encode()
    if len(_PAYLOAD_CACHE) >= _PAYLOAD_CACHE_CAP:
        _PAYLOAD_CACHE.clear()
    _PAYLOAD_CACHE[key] = (config, payload)
    return payload


def config_seed(config: Config, salt: int = 0, *, payload: bytes | None = None) -> int:
    """A stable 64-bit seed derived from a configuration's contents.

    Uses a canonical JSON encoding hashed with blake2b, so the same
    configuration yields the same seed across processes and schedulers
    (Python's built-in ``hash`` is salted per process and unusable here).
    ``payload`` short-circuits the encoding when the caller already holds
    :func:`config_payload`'s output for this configuration.
    """
    if payload is None:
        payload = config_payload(config)
    digest = hashlib.blake2b(payload, digest_size=8, salt=salt.to_bytes(8, "little"))
    return int.from_bytes(digest.digest(), "little")


_INF = float("inf")
_NINF = float("-inf")


def _encode_plain(config: Config) -> bytes | None:
    """Canonical encoding fast path, or ``None`` if any value needs json.

    Byte-identical to ``json.dumps(config, sort_keys=True).encode()`` for
    dicts of plain Python scalars: ``repr`` of a float/int is exactly what
    the C encoder emits (shortest-repr doubles, decimal ints), the default
    separators are ``", "`` / ``": "``, and string escaping reuses json's
    own C ``encode_basestring_ascii``.  Exact ``type`` checks (never
    ``isinstance``) route numpy scalars — which subclass Python numerics but
    encode via ``.item()`` — to the slow path, as well as non-finite floats
    (json spells those ``Infinity``/``NaN``).  This is the hot path: one
    fresh config per sampled trial, encoded for journal records and
    surrogate seeds, and ``json.dumps`` overhead dominated the simulated
    benchmarks' profile.
    """
    parts = []
    for k in sorted(config):
        v = config[k]
        tv = type(v)
        if tv is float:
            if v != v or v == _INF or v == _NINF:
                return None
            s = repr(v)
        elif tv is int:
            s = repr(v)
        elif tv is str:
            s = _escape(v)
        elif tv is bool:
            s = "true" if v else "false"
        elif v is None:
            s = "null"
        else:
            return None
        parts.append(_escape(k) + ": " + s)
    return ("{" + ", ".join(parts) + "}").encode()


def _canonical(value: Any) -> Any:
    """Normalise numpy scalars so json encoding is stable."""
    if hasattr(value, "item"):
        return value.item()
    return value


class Objective(ABC):
    """A resumable, deterministic training process over a search space."""

    #: The hyperparameter space this objective is tuned over.
    space: SearchSpace
    #: The maximum meaningful resource ``R`` (informational; schedulers set
    #: their own horizons).
    max_resource: float
    #: Whether ``train`` may run in a forked worker process: its states and
    #: losses must pickle, and it must not mutate master-side state the rest
    #: of the run observes (counters, shared RNGs).  Stateful wrappers like
    #: :class:`~repro.backend.faults.FailureInjectingObjective` set this
    #: False, and :class:`~repro.backend.process_pool.ProcessPoolBackend`
    #: then trains inline rather than silently diverging.
    process_safe: bool = True

    @abstractmethod
    def initial_state(self, config: Config) -> Any:
        """Fresh training state ("random init weights") for ``config``."""

    @abstractmethod
    def train(
        self, state: Any, config: Config, from_resource: float, to_resource: float
    ) -> tuple[Any, float]:
        """Advance ``state`` from ``from_resource`` to ``to_resource``.

        Returns the new state and the validation loss at ``to_resource``.
        """

    def cost(self, config: Config, from_resource: float, to_resource: float) -> float:
        """Backend time units to train the increment.

        Default: linear in the resource delta, scaled by
        :meth:`cost_multiplier`.
        """
        return max(to_resource - from_resource, 0.0) * self.cost_multiplier(config)

    def nominal_cost(self, config: Config, from_resource: float, to_resource: float) -> float:
        """The *expected* cost of an increment, for planning purposes.

        Identical to :meth:`cost` by default.  Fault-injection wrappers
        (:class:`~repro.backend.faults.FailureInjectingObjective`) override
        ``cost`` to model hangs while keeping ``nominal_cost`` clean, so job
        deadlines (``RetryPolicy.timeout_factor``) are computed from what the
        job *should* take, not from the fault being injected.
        """
        return self.cost(config, from_resource, to_resource)

    def cost_multiplier(self, config: Config) -> float:
        """Config-dependent per-unit training cost (default 1).

        Benchmarks where model size varies (e.g. the small-CNN architecture
        task, Table 1) override this — the paper reports a 30 +/- 27 minute
        spread in time-to-R there, which drives synchronous SHA's straggler
        problem.
        """
        return 1.0

    def evaluate(self, config: Config, resource: float) -> float:
        """Convenience: loss of ``config`` trained from scratch to ``resource``.

        Used for offline validation of incumbents (the Appendix A.2
        evaluation framework) and in tests.
        """
        state = self.initial_state(config)
        _, loss = self.train(state, config, 0.0, resource)
        return loss
