"""The pull-based scheduler interface every tuning algorithm implements.

The interface mirrors ASHA's structure (Algorithm 2): an execution backend
repeatedly asks the scheduler for work via :meth:`Scheduler.next_job` whenever
a worker is free, and feeds results back via :meth:`Scheduler.report`.
Synchronous algorithms (SHA, Hyperband, BOHB, PBT with synchronised rounds)
return ``None`` from ``next_job`` while they are blocked waiting for
outstanding jobs — which leaves workers idle and is precisely the straggler
bottleneck Section 3.1 analyses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from ..searchers.base import Searcher
from ..searchspace import SearchSpace
from ..telemetry import NULL_HUB, EventKind
from .serialization import config_state, rng_state, set_rng_state, trial_from_state, trial_state
from .types import Config, IdAllocator, Job, Measurement, Trial, TrialStatus

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Base class for all tuning algorithms.

    Subclasses implement :meth:`next_job` and :meth:`report`.  The base class
    owns the trial table and id allocation so that all algorithms expose a
    uniform view of their history to trackers and tests.

    Parameters
    ----------
    space:
        The search space configurations are drawn from.
    rng:
        Source of randomness; every stochastic decision flows through it.
    searcher:
        Optional :class:`~repro.searchers.base.Searcher` owning config
        proposal.  ``None`` (the default) means uniform random sampling
        straight from the space — byte-identical to the pre-searcher
        behaviour.  Schedulers that support a searcher route every proposal
        through :meth:`propose_config` and every reported loss into
        :meth:`~repro.searchers.base.Searcher.on_result`.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        searcher: Searcher | None = None,
    ):
        self.space = space
        self.rng = rng
        self.searcher = searcher
        if searcher is not None:
            searcher.setup(space)
        self.trials: dict[int, Trial] = {}
        self._trial_ids = IdAllocator()
        self._job_ids = IdAllocator()
        #: Lifecycle-event hub; the falsy ``NULL_HUB`` by default, so every
        #: emission site costs one branch when telemetry is off.
        self.telemetry: Any = NULL_HUB

    def attach_telemetry(self, hub) -> "Scheduler":
        """Attach a :class:`~repro.telemetry.TelemetryHub` and return ``self``.

        Composite schedulers (Hyperband's inner SHA brackets, AsyncHyperband's
        inner ASHA ladders) override this to propagate the hub to their parts.
        """
        self.telemetry = hub
        return self

    # ------------------------------------------------------------------ API

    @abstractmethod
    def next_job(self) -> Job | None:
        """Return work for a free worker, or ``None`` if blocked / finished.

        Returning ``None`` does not mean the search is over — synchronous
        schedulers return ``None`` while waiting on stragglers.  Use
        :meth:`is_done` to distinguish.
        """

    @abstractmethod
    def report(self, job: Job, loss: float) -> None:
        """Ingest the validation loss of a completed job."""

    def next_job_batch(self, k: int) -> list[Job]:
        """Return up to ``k`` jobs for free workers.

        Equivalent — job for job, rng draw for rng draw — to calling
        :meth:`next_job` ``k`` times and dropping the trailing ``None``:
        a short batch means the scheduler is (currently) blocked or
        finished, exactly like a ``None`` from the single-job form.

        The default loops; schedulers with per-call overhead worth
        amortising (ASHA's promotion scan, rung bookkeeping) override.
        Backends use this to fill all free workers in one call instead of
        one ask per worker.
        """
        jobs: list[Job] = []
        for _ in range(k):
            job = self.next_job()
            if job is None:
                break
            jobs.append(job)
        return jobs

    def report_batch(self, results: list[tuple[Job, float]]) -> None:
        """Ingest a batch of completed-job losses, in order.

        Equivalent to calling :meth:`report` per ``(job, loss)`` pair in
        sequence; overrides may amortise shared bookkeeping but must keep
        the per-result effects (trial status, telemetry, searcher updates)
        identical and ordered.
        """
        for job, loss in results:
            self.report(job, loss)

    def on_job_failed(self, job: Job) -> None:
        """Handle a dropped or crashed job.

        Default policy: mark the trial failed and forget it.  Subclasses
        override to e.g. re-queue the work (synchronous SHA must, or a rung
        never completes).
        """
        trial = self.trials[job.trial_id]
        trial.status = TrialStatus.FAILED

    def on_job_requeued(self, job: Job) -> None:
        """A failed job is about to be re-dispatched by the backend.

        Called instead of :meth:`on_job_failed` when a
        :class:`~repro.backend.faults.RetryPolicy` grants a retry: the very
        same job (same target resource, rung and bracket) will run again, so
        the trial re-enters the rung it left rather than forfeiting.  The
        trial stays ``RUNNING`` and any rung bookkeeping (synchronous SHA's
        outstanding set, ASHA's promoted marks) remains exactly as it was at
        dispatch — which is why the default is a no-op.  Subclasses that
        key state off individual dispatches must override.
        """

    def on_trial_abandoned(self, job: Job) -> None:
        """A trial exhausted its retry budget: quarantine it for good.

        Unlike :meth:`on_job_failed` — which some schedulers answer by
        making the work eligible again (ASHA re-queues dropped promotions) —
        this is terminal: the trial must never be dispatched again.  The
        default forfeits the job through :meth:`on_job_failed` (so rung
        barriers still close) and then forces the trial's status to
        ``FAILED``.
        """
        self.on_job_failed(job)
        self.trials[job.trial_id].status = TrialStatus.FAILED

    def is_done(self) -> bool:
        """Whether the scheduler will never produce another job.

        Anytime algorithms (ASHA, random search) never finish on their own;
        fixed-budget algorithms (SHA) finish when their bracket completes.
        """
        return False

    # ------------------------------------------------------------ snapshots

    def state_dict(self) -> dict[str, Any]:
        """Serialize the complete scheduler state as JSON-safe plain data.

        The base class captures what every scheduler owns — rng stream, id
        cursors, trial table, searcher state — and delegates algorithm
        internals (rungs, brackets, pending queues) to :meth:`_state_extra`.
        Restoring into a *freshly constructed* scheduler of the same type and
        constructor arguments via :meth:`load_state` must resume the exact
        decision sequence; :class:`~repro.study.Study` snapshots are built on
        this contract.
        """
        return {
            "type": type(self).__name__,
            "rng": rng_state(self.rng),
            "trial_ids": self._trial_ids.state(),
            "job_ids": self._job_ids.state(),
            "trials": {str(tid): trial_state(t) for tid, t in self.trials.items()},
            "searcher": None if self.searcher is None else self.searcher.state_dict(),
            "extra": self._state_extra(),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output into this (fresh) scheduler.

        The trial table is mutated in place rather than rebound — composite
        schedulers (Hyperband) alias it across inner brackets.
        """
        expected = state["type"]
        if expected != type(self).__name__:
            raise ValueError(f"state is for scheduler {expected!r}, not {type(self).__name__!r}")
        set_rng_state(self.rng, state["rng"])
        self._trial_ids.load(state["trial_ids"])
        self._job_ids.load(state["job_ids"])
        self.trials.clear()
        self.trials.update(
            {int(tid): trial_from_state(ts) for tid, ts in state["trials"].items()}
        )
        if self.searcher is not None:
            if state["searcher"] is None:
                raise ValueError("state has no searcher but scheduler was built with one")
            self.searcher.load_state(state["searcher"])
        elif state["searcher"] is not None:
            raise ValueError("state carries a searcher but scheduler was built without one")
        self._load_extra(state["extra"])

    def _state_extra(self) -> dict[str, Any]:
        """Algorithm-specific state beyond the base tables (JSON-safe).

        Schedulers that support snapshot/resume implement this together with
        :meth:`_load_extra`; the base raises so unsupported algorithms fail
        loudly at snapshot time instead of silently resuming corrupt.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state serialization"
        )

    def _load_extra(self, extra: dict[str, Any]) -> None:
        """Restore :meth:`_state_extra` output; counterpart hook."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state serialization"
        )

    # -------------------------------------------------------------- helpers

    def note_result(self, job: Job, loss: float) -> None:
        """Record a completed job's measurement on its trial.

        Every ``report`` implementation calls this first, so schedulers stay
        correct even when driven directly (without a backend recording
        measurements).  The measurement's ``time`` field is left at zero —
        backend clocks live in the backend's own result log.
        """
        trial = self.trials[job.trial_id]
        trial.record(Measurement(trial_id=job.trial_id, resource=job.resource, loss=loss))

    def propose_config(self) -> tuple[Config, str | None]:
        """Draw the next configuration and its proposal origin.

        Routes through the attached searcher when one is set, falling back
        to uniform sampling from the space (the pre-searcher default, kept
        rng-identical).  The origin is ``None`` unless the searcher records
        one; pass it to :meth:`new_trial` so telemetry can attribute the
        proposal.
        """
        if self.searcher is not None:
            config = self.searcher.suggest(self.rng)
            return config, self.searcher.origin
        return self.space.sample(self.rng), None

    def searcher_exhausted(self) -> bool:
        """Whether the attached searcher has nothing further to propose."""
        return self.searcher is not None and self.searcher.is_done()

    def new_trial(self, config: Config, *, origin: str | None = None) -> Trial:
        """Register a new trial for ``config`` and return it.

        ``origin`` (``"model_based"`` / ``"random_fallback"`` / ``"grid"``)
        is stamped onto the ``trial_started`` event when provided, so the
        metrics layer can report model-hit rates; omitted otherwise to keep
        legacy streams byte-identical.
        """
        trial = Trial(trial_id=self._trial_ids.next(), config=config)
        self.trials[trial.trial_id] = trial
        if self.telemetry:
            extra = {"origin": origin} if origin is not None else {}
            # The interned canonical form, not a fresh copy: the same dict
            # object later backs the journal's ask records and the trace
            # builder, so each config is canonicalised exactly once.  The
            # bytes every sink emits are unchanged (canonical encoders
            # sort keys and unwrap numpy scalars either way).
            self.telemetry.emit(
                EventKind.TRIAL_STARTED,
                trial_id=trial.trial_id,
                config=config_state(config),
                **extra,
            )
        return trial

    def make_job(
        self,
        trial: Trial,
        resource: float,
        *,
        rung: int = 0,
        bracket: int = 0,
        from_checkpoint: bool = True,
    ) -> Job:
        """Build a job training ``trial`` up to cumulative ``resource``."""
        checkpoint = trial.resource if from_checkpoint else 0.0
        trial.status = TrialStatus.RUNNING
        return Job(
            job_id=self._job_ids.next(),
            trial_id=trial.trial_id,
            config=trial.config,
            resource=resource,
            checkpoint_resource=checkpoint,
            rung=rung,
            bracket=bracket,
        )

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def best_trial(self) -> Trial | None:
        """Trial with the lowest observed loss at its highest resource.

        This is ASHA's intermediate-loss incumbent rule (Section 3.3): the
        current best is judged by latest observed loss, not only by fully
        trained configurations.
        """
        measured = [
            t
            for t in self.trials.values()
            if t.measurements and t.measurements[-1].loss == t.measurements[-1].loss
        ]
        if not measured:
            # Everything measured so far diverged (NaN); surface one anyway.
            measured = [t for t in self.trials.values() if t.measurements]
        if not measured:
            return None
        return min(measured, key=lambda t: t.measurements[-1].loss)
