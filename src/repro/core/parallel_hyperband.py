"""The other asynchronous Hyperband from Section 3.2: concurrent brackets.

"We can asynchronously parallelize Hyperband by either running multiple
brackets of ASHA or looping through brackets of ASHA sequentially."  The
looping variant lives in :mod:`repro.core.async_hyperband` (it is what the
paper evaluates); this module implements the first option so the two can be
compared: one ASHA instance per early-stopping rate runs *concurrently*,
and each new job is routed to the bracket with the least dispatched
resource relative to its SHA-equivalent budget share.

This weighted routing keeps the long-run budget split identical to the
looping variant while letting every bracket make progress at all times —
the natural choice when worker counts are large.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..searchers.base import Searcher
from ..searchspace import SearchSpace
from .asha import ASHA
from .bracket import Bracket
from .hyperband import hyperband_bracket_sizes
from .scheduler import Scheduler
from .types import Job

__all__ = ["ParallelAsyncHyperband"]


class ParallelAsyncHyperband(Scheduler):
    """Run all ASHA brackets concurrently with budget-proportional routing.

    Parameters
    ----------
    min_resource, max_resource, eta:
        Shared bracket geometry (finite horizon).
    brackets:
        How many early-stopping rates to run, starting at ``s = 0``;
        defaults to all of them.
    searcher:
        Optional shared :class:`~repro.searchers.base.Searcher` driving every
        concurrent ASHA bracket.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        min_resource: float,
        max_resource: float,
        eta: int = 4,
        brackets: int | None = None,
        from_checkpoint: bool = True,
        searcher: Searcher | None = None,
    ):
        super().__init__(space, rng, searcher=searcher)
        if max_resource is None:
            raise ValueError("ParallelAsyncHyperband requires a finite max_resource")
        sizes = hyperband_bracket_sizes(min_resource, max_resource, eta)
        if brackets is not None:
            if not 1 <= brackets <= len(sizes):
                raise ValueError(f"brackets must be in [1, {len(sizes)}], got {brackets}")
            sizes = sizes[:brackets]
        self.eta = eta
        self._ashas: list[ASHA] = []
        self._shares: list[float] = []
        for s, n_s in enumerate(sizes):
            asha = ASHA(
                space,
                rng,
                min_resource=min_resource,
                max_resource=max_resource,
                eta=eta,
                early_stopping_rate=s,
                from_checkpoint=from_checkpoint,
                searcher=searcher,
            )
            asha.trials = self.trials
            asha._trial_ids = self._trial_ids
            asha._job_ids = self._job_ids
            self._ashas.append(asha)
            self._shares.append(Bracket(min_resource, max_resource, eta, s).total_budget(n_s))
        total = sum(self._shares)
        self._shares = [share / total for share in self._shares]
        self._spent = [0.0] * len(self._ashas)
        self._bracket_of_trial: dict[int, int] = {}

    # ----------------------------------------------------------------- API

    def attach_telemetry(self, hub):
        """Propagate the hub to every concurrent ASHA bracket."""
        super().attach_telemetry(hub)
        for asha in self._ashas:
            asha.telemetry = hub
        return self

    def next_job(self) -> Job | None:
        # Route to the bracket furthest behind its budget share.
        deficits = [
            self._spent[i] - self._shares[i] * (sum(self._spent) + 1e-12)
            for i in range(len(self._ashas))
        ]
        order = np.argsort(deficits)
        for i in order:
            job = self._ashas[i].next_job()
            if job is None:
                continue
            owner = self._bracket_of_trial.setdefault(job.trial_id, int(i))
            self._spent[i] += job.delta_resource
            return dataclasses.replace(job, bracket=owner)
        return None

    def report(self, job: Job, loss: float) -> None:
        self._ashas[self._bracket_of_trial[job.trial_id]].report(job, loss)

    def on_job_failed(self, job: Job) -> None:
        self._ashas[self._bracket_of_trial[job.trial_id]].on_job_failed(job)

    def on_trial_abandoned(self, job: Job) -> None:
        self._ashas[self._bracket_of_trial[job.trial_id]].on_trial_abandoned(job)

    # ------------------------------------------------------------ insight

    def budget_split(self) -> list[float]:
        """Fraction of dispatched resource per bracket (→ shares in the limit)."""
        total = sum(self._spent)
        if total == 0:
            return [0.0] * len(self._spent)
        return [s / total for s in self._spent]

    def rung_sizes(self) -> list[list[int]]:
        return [a.rung_sizes() for a in self._ashas]
