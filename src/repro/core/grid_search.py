"""Grid search: the classical non-adaptive baseline.

Not part of the paper's comparison set, but the baseline most
practitioners start from; it rounds out the library so that the switch to
random search and early stopping (Figures 3-4's theme) can be demonstrated
against the historical default.  Categorical domains contribute every
value; continuous domains contribute evenly spaced quantiles.
"""

from __future__ import annotations

import numpy as np

from ..searchspace import SearchSpace
from .scheduler import Scheduler
from .types import Job, TrialStatus

__all__ = ["GridSearch"]


class GridSearch(Scheduler):
    """Evaluate an axis-aligned grid, each point trained to ``max_resource``.

    Parameters
    ----------
    max_resource:
        Resource every grid point is trained to.
    points_per_dim:
        Quantiles per continuous dimension (categoricals use all values).
    shuffle:
        Visit the grid in random order (recommended: axis order biases the
        early incumbents otherwise).
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        max_resource: float,
        points_per_dim: int = 3,
        shuffle: bool = True,
    ):
        super().__init__(space, rng)
        if max_resource <= 0:
            raise ValueError(f"max_resource must be positive, got {max_resource}")
        if points_per_dim < 2:
            raise ValueError(f"points_per_dim must be >= 2, got {points_per_dim}")
        self.max_resource = max_resource
        self._queue = space.grid(points_per_dim)
        if shuffle:
            order = rng.permutation(len(self._queue))
            self._queue = [self._queue[i] for i in order]
        self._cursor = 0

    @property
    def grid_size(self) -> int:
        return len(self._queue)

    def next_job(self) -> Job | None:
        if self._cursor >= len(self._queue):
            return None
        trial = self.new_trial(self._queue[self._cursor])
        self._cursor += 1
        return self.make_job(trial, self.max_resource)

    def report(self, job: Job, loss: float) -> None:
        self.note_result(job, loss)
        self.trials[job.trial_id].status = TrialStatus.COMPLETED

    def is_done(self) -> bool:
        if self._cursor < len(self._queue):
            return False
        return not any(t.status == TrialStatus.RUNNING for t in self.trials.values())
