"""ASHA: the Asynchronous Successive Halving Algorithm (Algorithm 2).

ASHA removes synchronous SHA's rung barrier: whenever a worker frees up it
either *promotes* the best not-yet-promoted configuration in the top
``1/eta`` fraction of some rung (scanning from the top rung down), or —
if no promotion is possible — *grows the base rung* with a freshly sampled
configuration.  No worker ever idles waiting for a rung to fill, which is
what makes ASHA robust to stragglers and dropped jobs (Appendix A.1) and
suitable for the large-scale regime (Section 3.2).

Both horizons from Section 3.3 are supported:

* finite (``max_resource=R``): configurations reaching the top rung stop, and
  the number of rungs is fixed;
* infinite (``max_resource=None``): the rung ladder grows without bound as
  configurations keep being promoted.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..searchers.base import Searcher
from ..searchers.random import FunctionSearcher
from ..searchspace import SearchSpace
from ..telemetry import EventKind
from .bracket import Bracket
from .scheduler import Scheduler
from .types import Config, Job, Measurement, TrialStatus

__all__ = ["ASHA"]


class ASHA(Scheduler):
    """Asynchronous Successive Halving.

    Parameters
    ----------
    space, rng:
        See :class:`~repro.core.scheduler.Scheduler`.
    min_resource:
        ``r``, the minimum resource per configuration.
    max_resource:
        ``R``; pass ``None`` for the infinite horizon.
    eta:
        Reduction factor.
    early_stopping_rate:
        ``s``; the base rung trains to ``r * eta**s``.
    from_checkpoint:
        If true (default, matching iterative training with checkpoints,
        Section 3.2), a promoted configuration resumes from its previous
        resource and pays only for the increment; otherwise it retrains from
        scratch.
    max_trials:
        Optional cap on the number of configurations sampled into the base
        rung; ``None`` (the default) matches the paper, where ASHA keeps
        growing the bottom rung for as long as it runs.
    searcher:
        Optional :class:`~repro.searchers.base.Searcher` proposing base-rung
        configurations and receiving every reported loss — ``KDESearcher``
        yields asynchronous BOHB, ``GPEISearcher`` a MOBSTER-family tuner.
        Default ``None``: uniform random sampling (the paper's ASHA).
    sampler:
        Legacy escape hatch: a bare ``sampler(rng) -> config`` callable,
        wrapped in a feedback-less :class:`~repro.searchers.random.FunctionSearcher`.
        Mutually exclusive with ``searcher``.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        min_resource: float,
        max_resource: float | None,
        eta: int = 4,
        early_stopping_rate: int = 0,
        from_checkpoint: bool = True,
        max_trials: int | None = None,
        searcher: Searcher | None = None,
        sampler: Callable[[np.random.Generator], Config] | None = None,
    ):
        if sampler is not None:
            if searcher is not None:
                raise ValueError("pass either searcher= or the legacy sampler=, not both")
            searcher = FunctionSearcher(sampler)
        super().__init__(space, rng, searcher=searcher)
        self.bracket = Bracket(min_resource, max_resource, eta, early_stopping_rate)
        self.from_checkpoint = from_checkpoint
        self.max_trials = max_trials

    # ----------------------------------------------------------------- API

    def next_job(self) -> Job | None:
        """Algorithm 2's ``get_job``: promote if possible, else grow rung 0."""
        promotion = self.bracket.find_promotion()
        if promotion is not None:
            trial_id, target_rung = promotion
            self.bracket.promote(trial_id, target_rung - 1)
            trial = self.trials[trial_id]
            trial.rung = target_rung
            if self.telemetry:
                self.telemetry.emit(
                    EventKind.PROMOTION,
                    trial_id=trial_id,
                    rung=target_rung,
                    from_rung=target_rung - 1,
                )
            return self.make_job(
                trial,
                self.bracket.rung_resource(target_rung),
                rung=target_rung,
                from_checkpoint=self.from_checkpoint,
            )
        if self.max_trials is not None and self.num_trials >= self.max_trials:
            return None
        if self.searcher_exhausted():
            return None
        config, origin = self.propose_config()
        trial = self.new_trial(config, origin=origin)
        return self.make_job(trial, self.bracket.rung_resource(0), rung=0)

    def next_job_batch(self, k: int) -> list[Job]:
        """Batched ``get_job``: identical decisions, shared bookkeeping.

        Drains promotions (each ``find_promotion`` poll hits the bracket's
        cache unless the previous promotion changed the answer) and then
        grows the base rung, with the searcher/cap guards hoisted out of
        the loop where they are constant.  Job for job and rng draw for
        rng draw the same as ``k`` single calls.
        """
        jobs: list[Job] = []
        bracket = self.bracket
        trials = self.trials
        uncapped_sampling = self.max_trials is None and self.searcher is None
        while len(jobs) < k:
            promotion = bracket.find_promotion()
            if promotion is not None:
                trial_id, target_rung = promotion
                bracket.promote(trial_id, target_rung - 1)
                trial = trials[trial_id]
                trial.rung = target_rung
                if self.telemetry:
                    self.telemetry.emit(
                        EventKind.PROMOTION,
                        trial_id=trial_id,
                        rung=target_rung,
                        from_rung=target_rung - 1,
                    )
                jobs.append(
                    self.make_job(
                        trial,
                        bracket.rung_resource(target_rung),
                        rung=target_rung,
                        from_checkpoint=self.from_checkpoint,
                    )
                )
                continue
            if not uncapped_sampling:
                if self.max_trials is not None and len(trials) >= self.max_trials:
                    break
                if self.searcher_exhausted():
                    break
            config, origin = self.propose_config()
            trial = self.new_trial(config, origin=origin)
            jobs.append(self.make_job(trial, bracket.rung_resource(0), rung=0))
        return jobs

    def report(self, job: Job, loss: float) -> None:
        """File the result into the job's rung and pause/complete the trial."""
        self.note_result(job, loss)
        trial = self.trials[job.trial_id]
        if self.searcher is not None:
            self.searcher.on_result(trial, job.resource, loss, rung=job.rung)
        self.bracket.record(job.rung, job.trial_id, loss)
        top = self.bracket.top_rung_index
        if top is not None and job.rung >= top:
            trial.status = TrialStatus.COMPLETED
            if self.searcher is not None:
                self.searcher.on_trial_complete(trial, loss)
        else:
            trial.status = TrialStatus.PAUSED

    def report_batch(self, results: list[tuple[Job, float]]) -> None:
        """Batched :meth:`report`: same per-result effects, hoisted lookups.

        The rung records still land one by one (each invalidates the
        promotion cache exactly as the single-call path does), but the
        trial-table/bracket attribute chases and the searcher-absence check
        are paid once per batch instead of once per result.
        """
        trials = self.trials
        bracket = self.bracket
        searcher = self.searcher
        top = bracket.top_rung_index
        if searcher is not None:
            for job, loss in results:
                self.report(job, loss)
            return
        for job, loss in results:
            trial = trials[job.trial_id]
            trial.record(
                Measurement(trial_id=job.trial_id, resource=job.resource, loss=loss)
            )
            bracket.record(job.rung, job.trial_id, loss)
            if top is not None and job.rung >= top:
                trial.status = TrialStatus.COMPLETED
            else:
                trial.status = TrialStatus.PAUSED

    def on_job_failed(self, job: Job) -> None:
        """Dropped base-rung jobs are forgotten; dropped promotions retry.

        A dropped rung-0 job simply never enters the rung — the base rung
        grows with fresh configurations instead, so nothing can dead-lock
        the way a synchronous rung barrier can (Appendix A.1).  A dropped
        *promotion* job returns its configuration to the promotable pool:
        it still sits in the top ``1/eta`` of its rung, and the master
        re-issues the promotion the next time a worker frees up.
        """
        if job.rung > 0:
            self.bracket.rung(job.rung - 1).unmark_promoted(job.trial_id)
            trial = self.trials[job.trial_id]
            trial.status = TrialStatus.PAUSED
            trial.rung = job.rung - 1
        else:
            super().on_job_failed(job)
            if self.searcher is not None:
                self.searcher.on_trial_error(self.trials[job.trial_id])

    def on_trial_abandoned(self, job: Job) -> None:
        """Quarantine a poison trial: terminal, unlike :meth:`on_job_failed`.

        A quarantined promotion is deliberately *not* returned to the
        promotable pool (its promoted mark in the rung below stays set), so
        the master never re-issues it — otherwise a configuration that
        crashes every attempt would be re-promoted forever.
        """
        trial = self.trials[job.trial_id]
        trial.status = TrialStatus.FAILED
        if self.searcher is not None:
            self.searcher.on_trial_error(trial)

    def is_done(self) -> bool:
        """Only a trial-capped (or searcher-exhausted) ASHA finishes on its own.

        Backends poll ``is_done`` immediately before ``next_job`` for every
        free worker; the promotability check below reuses the bracket's
        cached promotion scan (invalidated only when a rung mutates), so the
        pair costs one rung scan at most — not two per poll.
        """
        capped = self.max_trials is not None and self.num_trials >= self.max_trials
        if not capped and not self.searcher_exhausted():
            return False
        if self.bracket.find_promotion() is not None:
            return False
        return not any(t.status == TrialStatus.RUNNING for t in self.trials.values())

    # ------------------------------------------------------------ snapshots

    def _state_extra(self) -> dict:
        return {"bracket": self.bracket.state()}

    def _load_extra(self, extra: dict) -> None:
        self.bracket.load(extra["bracket"])

    # ------------------------------------------------------------ insight

    def rung_sizes(self) -> list[int]:
        """Number of results currently filed in each rung (diagnostics)."""
        return [len(r) for r in self.bracket.rungs]
