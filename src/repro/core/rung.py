"""Rungs: the per-resource-level leaderboards of SHA-family schedulers.

"All configurations trained for a given i constitute a 'rung'" (Algorithm 1).
A :class:`Rung` records the loss of every configuration evaluated at its
resource level, remembers which of them have already been promoted, and
answers the two questions the schedulers ask:

* SHA: who are the top ``k`` performers? (synchronous elimination)
* ASHA: is any configuration in the top ``1/eta`` fraction *and* not yet
  promoted? (Algorithm 2's ``get_job``)

ASHA in the large-scale regime polls the promotion question once per free
worker and records one result per completion, and base rungs grow to tens
of thousands of entries in the 500-worker benchmark — so *both* operations
must avoid O(n) work.  A sorted leaderboard answers queries fast but pays
an O(n) memmove per insert, which turns the 100k-job benchmark
superlinear.  Instead the rung keeps:

* ``_unpromoted_heap`` — a lazy-deletion min-heap of ``(loss, trial_id)``
  keys over not-yet-promoted entries: O(log n) insert, amortised O(1)
  best-unpromoted peek (stale keys — overwritten losses or promoted
  trials — are dropped when they surface);
* ``_promoted_keys`` — a small sorted list of promoted entries' keys.

The promotion query needs the best unpromoted entry's *rank in the full
leaderboard*; every other unpromoted entry sorts after it, so its rank is
exactly the number of promoted entries with smaller keys — one bisect of
``_promoted_keys``.  Promoted counts stay tiny (≤ len/eta), so the insort
there is cheap.  Full-leaderboard views (``top_k``, ``best``) are off the
hot path and recompute on demand.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import Callable

__all__ = ["Rung"]


def _sort_loss(loss: float) -> float:
    """NaN losses sort last, so diverged trials are never promoted."""
    return math.inf if loss != loss else loss


class Rung:
    """Results recorded at one rung of a bracket.

    Parameters
    ----------
    index:
        Rung number within its bracket, base rung = 0.
    resource:
        Cumulative resource a configuration must be trained to in order to
        enter this rung (``r_i = r * eta**(i + s)``).
    """

    def __init__(
        self, index: int, resource: float, *, on_change: Callable[[int], None] | None = None
    ):
        self.index = index
        self.resource = resource
        self.losses: dict[int, float] = {}
        self.promoted: set[int] = set()
        # Lazy-deletion heap of (loss, trial_id) keys over unpromoted
        # entries; ties broken by trial id for determinism, NaN mapped to
        # +inf at insertion.  May hold stale keys — entries re-recorded,
        # promoted, or duplicated by unmark/mark cycles — which are
        # validated against ``losses``/``promoted`` when they reach the top.
        self._unpromoted_heap: list[tuple[float, int]] = []
        # Sorted keys of the promoted entries (small: at most len//eta).
        self._promoted_keys: list[tuple[float, int]] = []
        # Owner notification: the bracket holding this rung registers a
        # callback so it can invalidate its cached promotion scan whenever
        # the leaderboard (and therefore promotability) changes.
        self._on_change = on_change

    def __len__(self) -> int:
        return len(self.losses)

    def _key(self, trial_id: int) -> tuple[float, int]:
        return (_sort_loss(self.losses[trial_id]), trial_id)

    def record(self, trial_id: int, loss: float) -> None:
        """File ``trial_id``'s loss at this rung.

        Re-reporting overwrites — relevant for PBT-style re-evaluation, and
        harmless for SHA/ASHA where each trial reaches a rung once.
        """
        promoted = trial_id in self.promoted
        if promoted and trial_id in self.losses:
            _remove_sorted(self._promoted_keys, self._key(trial_id))
        self.losses[trial_id] = loss
        key = (_sort_loss(loss), trial_id)
        if promoted:
            bisect.insort(self._promoted_keys, key)
        else:
            # Any previous key for this trial goes stale and is dropped
            # lazily when it surfaces at the heap top.
            heapq.heappush(self._unpromoted_heap, key)
        if self._on_change is not None:
            self._on_change(self.index)

    def top_k(self, k: int) -> list[int]:
        """Ids of the ``k`` lowest-loss entries (ties broken by trial id).

        Off the hot path (SHA calls it once per rung closure): recomputed
        from the loss table rather than kept incrementally sorted.
        """
        if k <= 0:
            return []
        keys = heapq.nsmallest(
            k, ((_sort_loss(loss), tid) for tid, loss in self.losses.items())
        )
        return [trial_id for _, trial_id in keys]

    def promotion_quota(self, eta: int) -> int:
        """How many entries the top ``1/eta`` fraction currently holds."""
        return len(self.losses) // eta

    def first_promotable(self, eta: int) -> int | None:
        """Best promotable trial id, or ``None`` (Algorithm 2, lines 14-16).

        A trial is promotable when it sits in the top ``|rung|/eta`` entries
        by loss and has not already been promoted out of this rung.
        Amortised O(log n): peek the best unpromoted key (discarding stale
        heap entries), then rank it by bisecting the promoted keys.
        """
        quota = len(self.losses) // eta
        if quota == 0:
            return None
        heap = self._unpromoted_heap
        losses = self.losses
        promoted = self.promoted
        while heap:
            loss_key, trial_id = heap[0]
            if trial_id in promoted or _sort_loss(losses[trial_id]) != loss_key:
                heapq.heappop(heap)
                continue
            # Rank of the best unpromoted entry in the full leaderboard:
            # all other unpromoted entries sort after it, so only promoted
            # entries with smaller keys precede it.
            rank = bisect.bisect_left(self._promoted_keys, heap[0])
            if rank < quota:
                return trial_id
            return None
        return None

    def promotable(self, eta: int) -> list[int]:
        """All promotable candidates, best first (used by tests/diagnostics)."""
        quota = self.promotion_quota(eta)
        return [t for t in self.top_k(quota) if t not in self.promoted]

    def mark_promoted(self, trial_id: int) -> None:
        """Record that ``trial_id`` has been promoted out of this rung."""
        if trial_id not in self.losses:
            raise KeyError(f"trial {trial_id} has no result in rung {self.index}")
        if trial_id not in self.promoted:
            self.promoted.add(trial_id)
            bisect.insort(self._promoted_keys, self._key(trial_id))
            if self._on_change is not None:
                self._on_change(self.index)

    def unmark_promoted(self, trial_id: int) -> None:
        """Return a promoted entry to the promotable pool (failed promotion).

        Used when the job training the promoted configuration toward the
        next rung is dropped: the configuration still sits in this rung's
        top fraction and may be promoted again.
        """
        if trial_id in self.promoted:
            self.promoted.discard(trial_id)
            key = self._key(trial_id)
            _remove_sorted(self._promoted_keys, key)
            heapq.heappush(self._unpromoted_heap, key)
            if self._on_change is not None:
                self._on_change(self.index)

    def state(self) -> dict:
        """JSON-safe snapshot: the leaderboard and the promoted set.

        The heap and promoted-key index are derived data and are rebuilt by
        :meth:`load`.
        """
        return {
            "losses": {str(tid): loss for tid, loss in self.losses.items()},
            "promoted": sorted(self.promoted),
        }

    def load(self, state: dict) -> None:
        """Restore :meth:`state` output, rebuilding the derived indexes."""
        self.losses = {int(tid): float(loss) for tid, loss in state["losses"].items()}
        self.promoted = set(int(tid) for tid in state["promoted"])
        keys = [(_sort_loss(loss), tid) for tid, loss in self.losses.items()]
        self._unpromoted_heap = [key for key in keys if key[1] not in self.promoted]
        heapq.heapify(self._unpromoted_heap)
        self._promoted_keys = sorted(key for key in keys if key[1] in self.promoted)
        if self._on_change is not None:
            self._on_change(self.index)

    def best(self) -> tuple[int, float] | None:
        """(trial_id, loss) of the current leader, or ``None`` if empty."""
        if not self.losses:
            return None
        _, trial_id = min((_sort_loss(loss), tid) for tid, loss in self.losses.items())
        return trial_id, self.losses[trial_id]


def _remove_sorted(entries: list[tuple[float, int]], key: tuple[float, int]) -> None:
    pos = bisect.bisect_left(entries, key)
    if pos < len(entries) and entries[pos] == key:
        entries.pop(pos)
