"""Rungs: the per-resource-level leaderboards of SHA-family schedulers.

"All configurations trained for a given i constitute a 'rung'" (Algorithm 1).
A :class:`Rung` records the loss of every configuration evaluated at its
resource level, remembers which of them have already been promoted, and
answers the two questions the schedulers ask:

* SHA: who are the top ``k`` performers? (synchronous elimination)
* ASHA: is any configuration in the top ``1/eta`` fraction *and* not yet
  promoted? (Algorithm 2's ``get_job``)

ASHA in the large-scale regime polls the promotion question once per free
worker, and base rungs grow to tens of thousands of entries in the
500-worker benchmark, so the promotion query must not rescan the
leaderboard.  The rung keeps two sorted lists — all entries, and the
not-yet-promoted entries — and answers in O(log n): the best unpromoted
entry is promotable iff its rank in the full leaderboard is within the
``len//eta`` quota.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable

__all__ = ["Rung"]


def _sort_loss(loss: float) -> float:
    """NaN losses sort last, so diverged trials are never promoted."""
    return math.inf if loss != loss else loss


class Rung:
    """Results recorded at one rung of a bracket.

    Parameters
    ----------
    index:
        Rung number within its bracket, base rung = 0.
    resource:
        Cumulative resource a configuration must be trained to in order to
        enter this rung (``r_i = r * eta**(i + s)``).
    """

    def __init__(
        self, index: int, resource: float, *, on_change: Callable[[], None] | None = None
    ):
        self.index = index
        self.resource = resource
        self.losses: dict[int, float] = {}
        self.promoted: set[int] = set()
        # Entries sorted by (loss, trial_id); ties broken by trial id for
        # determinism.  NaN is mapped to +inf at insertion.
        self._sorted: list[tuple[float, int]] = []
        self._unpromoted: list[tuple[float, int]] = []
        # Owner notification: the bracket holding this rung registers a
        # callback so it can invalidate its cached promotion scan whenever
        # the leaderboard (and therefore promotability) changes.
        self._on_change = on_change

    def __len__(self) -> int:
        return len(self.losses)

    def record(self, trial_id: int, loss: float) -> None:
        """File ``trial_id``'s loss at this rung.

        Re-reporting overwrites — relevant for PBT-style re-evaluation, and
        harmless for SHA/ASHA where each trial reaches a rung once.
        """
        if trial_id in self.losses:
            old = (_sort_loss(self.losses[trial_id]), trial_id)
            self._remove(self._sorted, old)
            if trial_id not in self.promoted:
                self._remove(self._unpromoted, old)
        self.losses[trial_id] = loss
        key = (_sort_loss(loss), trial_id)
        bisect.insort(self._sorted, key)
        if trial_id not in self.promoted:
            bisect.insort(self._unpromoted, key)
        if self._on_change is not None:
            self._on_change()

    @staticmethod
    def _remove(entries: list[tuple[float, int]], key: tuple[float, int]) -> None:
        pos = bisect.bisect_left(entries, key)
        if pos < len(entries) and entries[pos] == key:
            entries.pop(pos)

    def top_k(self, k: int) -> list[int]:
        """Ids of the ``k`` lowest-loss entries (ties broken by trial id)."""
        if k <= 0:
            return []
        return [trial_id for _, trial_id in self._sorted[:k]]

    def promotion_quota(self, eta: int) -> int:
        """How many entries the top ``1/eta`` fraction currently holds."""
        return len(self.losses) // eta

    def first_promotable(self, eta: int) -> int | None:
        """Best promotable trial id, or ``None`` (Algorithm 2, lines 14-16).

        A trial is promotable when it sits in the top ``|rung|/eta`` entries
        by loss and has not already been promoted out of this rung.  O(log n):
        the best unpromoted entry's rank in the full leaderboard decides.
        """
        if not self._unpromoted:
            return None
        quota = self.promotion_quota(eta)
        if quota == 0:
            return None
        best = self._unpromoted[0]
        rank = bisect.bisect_left(self._sorted, best)
        if rank < quota:
            return best[1]
        return None

    def promotable(self, eta: int) -> list[int]:
        """All promotable candidates, best first (used by tests/diagnostics)."""
        quota = self.promotion_quota(eta)
        return [t for _, t in self._sorted[:quota] if t not in self.promoted]

    def mark_promoted(self, trial_id: int) -> None:
        """Record that ``trial_id`` has been promoted out of this rung."""
        if trial_id not in self.losses:
            raise KeyError(f"trial {trial_id} has no result in rung {self.index}")
        if trial_id not in self.promoted:
            self.promoted.add(trial_id)
            self._remove(self._unpromoted, (_sort_loss(self.losses[trial_id]), trial_id))
            if self._on_change is not None:
                self._on_change()

    def unmark_promoted(self, trial_id: int) -> None:
        """Return a promoted entry to the promotable pool (failed promotion).

        Used when the job training the promoted configuration toward the
        next rung is dropped: the configuration still sits in this rung's
        top fraction and may be promoted again.
        """
        if trial_id in self.promoted:
            self.promoted.discard(trial_id)
            bisect.insort(self._unpromoted, (_sort_loss(self.losses[trial_id]), trial_id))
            if self._on_change is not None:
                self._on_change()

    def state(self) -> dict:
        """JSON-safe snapshot: the leaderboard and the promoted set.

        The sorted indexes are derived data and are rebuilt by :meth:`load`.
        """
        return {
            "losses": {str(tid): loss for tid, loss in self.losses.items()},
            "promoted": sorted(self.promoted),
        }

    def load(self, state: dict) -> None:
        """Restore :meth:`state` output, rebuilding the sorted indexes."""
        self.losses = {int(tid): float(loss) for tid, loss in state["losses"].items()}
        self.promoted = set(int(tid) for tid in state["promoted"])
        self._sorted = sorted((_sort_loss(loss), tid) for tid, loss in self.losses.items())
        self._unpromoted = [entry for entry in self._sorted if entry[1] not in self.promoted]
        if self._on_change is not None:
            self._on_change()

    def best(self) -> tuple[int, float] | None:
        """(trial_id, loss) of the current leader, or ``None`` if empty."""
        if not self._sorted:
            return None
        _, trial_id = self._sorted[0]
        return trial_id, self.losses[trial_id]
