"""The scheduler registry: name -> constructor, mirroring ``SEARCHERS``.

One canonical place maps the scheduler names accepted by
:func:`repro.tune.tune` (and recorded in study journals) to constructed
:class:`~repro.core.scheduler.Scheduler` instances.  ``tune`` delegates here
instead of carrying its own if/elif ladder, and
:meth:`repro.study.Study.resume` reconstructs the scheduler a journal was
recorded under from the registered name in the journal header.
"""

from __future__ import annotations

import numpy as np

from ..searchers.base import Searcher
from ..searchers.registry import SEARCHERS
from ..searchspace import SearchSpace
from .asha import ASHA
from .async_hyperband import AsyncHyperband
from .bohb import BOHB
from .hyperband import Hyperband
from .pbt import PBT
from .random_search import RandomSearch
from .scheduler import Scheduler
from .sha import SynchronousSHA
from .vizier import VizierGP

__all__ = ["SCHEDULERS", "build_scheduler", "default_bracket_size"]

#: Scheduler names accepted by :func:`build_scheduler` (``"vizier"`` aliases
#: ``"gp"``).
SCHEDULERS = ("asha", "sha", "hyperband", "async_hyperband", "bohb", "random", "pbt", "gp")


def default_bracket_size(min_resource: float, max_resource: float, eta: int) -> int:
    """Smallest ``n`` filling a full SHA bracket (one config reaching ``R``)."""
    rungs = np.floor(np.log(max_resource / min_resource) / np.log(eta))
    return max(int(eta**rungs), eta)


def build_scheduler(
    name: str,
    space: SearchSpace,
    rng: np.random.Generator,
    *,
    min_resource: float,
    max_resource: float,
    eta: int,
    kwargs: dict | None = None,
    searcher: Searcher | None = None,
) -> Scheduler:
    """Construct a registered scheduler by name.

    ``kwargs`` is consumed destructively (defaults are filled in), so pass a
    copy if the caller still needs it.
    """
    kwargs = {} if kwargs is None else kwargs
    if name == "vizier":
        name = "gp"
    if searcher is not None:
        if name in ("bohb", "pbt"):
            raise ValueError(
                f"scheduler {name!r} owns its own sampling and does not accept a "
                "searcher; use scheduler='sha' or 'asha' with searcher='kde' for "
                "the BOHB family"
            )
        kwargs.setdefault("searcher", searcher)
    if name == "asha":
        return ASHA(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "sha":
        kwargs.setdefault("n", default_bracket_size(min_resource, max_resource, eta))
        return SynchronousSHA(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "hyperband":
        return Hyperband(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "async_hyperband":
        return AsyncHyperband(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "bohb":
        kwargs.setdefault("n", default_bracket_size(min_resource, max_resource, eta))
        return BOHB(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "random":
        return RandomSearch(space, rng, max_resource=max_resource, **kwargs)
    if name == "pbt":
        kwargs.setdefault("interval", max_resource / 8.0)
        return PBT(space, rng, max_resource=max_resource, **kwargs)
    if name == "gp":
        return VizierGP(space, rng, max_resource=max_resource, **kwargs)
    raise KeyError(
        f"unknown scheduler {name!r}; scheduler options: {sorted(SCHEDULERS)}, "
        f"searcher options: {sorted(SEARCHERS)}"
    )
