"""Brackets: ladders of rungs parameterised by (r, R, eta, s).

A bracket fixes an early-stopping rate ``s`` and derives the rung geometry of
Algorithm 1 / Figure 1:

* ``s_max = floor(log_eta(R / r))``
* rung ``i`` (0-based) trains to cumulative resource ``r_i = r * eta**(i+s)``
* there are ``s_max - s + 1`` rungs, the top rung training to
  ``r * eta**s_max <= R``.

The same geometry object serves synchronous SHA, ASHA, both Hyperband
variants, and BOHB.  The infinite-horizon variant of ASHA (Section 3.3) is a
bracket with ``max_resource=None``: rungs are materialised on demand and
promotion is never capped.
"""

from __future__ import annotations

import math
from typing import Iterator

from .rung import Rung

__all__ = ["Bracket", "sha_rung_schedule"]


class Bracket:
    """Rung ladder for one early-stopping rate.

    Parameters
    ----------
    min_resource:
        ``r``, the paper's minimum resource per configuration.
    max_resource:
        ``R``; ``None`` selects the infinite-horizon setting where the rung
        ladder grows without bound.
    eta:
        Reduction factor (``eta >= 2``).
    early_stopping_rate:
        ``s``; the base rung trains to ``r * eta**s``, so larger ``s`` means
        less aggressive early stopping.
    """

    def __init__(
        self,
        min_resource: float,
        max_resource: float | None,
        eta: int,
        early_stopping_rate: int = 0,
    ):
        if min_resource <= 0:
            raise ValueError(f"min_resource must be positive, got {min_resource}")
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if early_stopping_rate < 0:
            raise ValueError(f"early_stopping_rate must be >= 0, got {early_stopping_rate}")
        self._s_max: int | None = None
        if max_resource is not None:
            if max_resource < min_resource:
                raise ValueError(
                    f"max_resource ({max_resource}) must be >= min_resource ({min_resource})"
                )
            s_max = int(math.floor(round(math.log(max_resource / min_resource, eta), 10)))
            if early_stopping_rate > s_max:
                raise ValueError(
                    f"early_stopping_rate ({early_stopping_rate}) exceeds s_max ({s_max})"
                )
            # The geometry is immutable, so derive it once: ``num_rungs`` is
            # consulted on every promotion scan and recomputing the log was
            # measurable at 500-worker scale.
            self._s_max = s_max
        # Derived geometry, precomputed: the promotion scan and per-report
        # bookkeeping consult these ~100k times per benchmark run, and even
        # the arithmetic behind the properties showed up in profiles.
        self._num_rungs: int | None = (
            None if self._s_max is None else self._s_max - early_stopping_rate + 1
        )
        self._top_rung: int | None = None if self._num_rungs is None else self._num_rungs - 1
        self.min_resource = min_resource
        self.max_resource = max_resource
        self.eta = eta
        self.s = early_stopping_rate
        self._rungs: list[Rung] = []
        # Cached result of the last promotion scan, refreshed incrementally.
        # ``find_promotion`` is polled once (or twice, via ``is_done`` +
        # ``next_job``) per free worker, but a mutation in rung ``k`` can
        # only change rung ``k``'s best candidate — so each rung's
        # ``first_promotable`` answer is cached separately
        # (``_rung_candidates``) and only rungs whose leaderboard or
        # promoted set actually changed (``_dirty_rungs``) are re-queried.
        # In the steady state of the 100k-job benchmark every report lands
        # in one rung, so a poll re-scans one rung instead of the ladder.
        self._promotion_cache: tuple[int, int] | None = None
        self._promotion_cache_valid = False
        self._rung_candidates: list[int | None] = []
        self._dirty_rungs: set[int] = set()
        # Materialise the full ladder up front in the finite horizon so that
        # num_rungs is well-defined; infinite horizon grows on demand.
        if max_resource is not None:
            for i in range(self.num_rungs):
                self._rungs.append(
                    Rung(
                        index=i,
                        resource=self.rung_resource(i),
                        on_change=self._invalidate_promotions,
                    )
                )
                self._rung_candidates.append(None)

    # ----------------------------------------------------------- geometry

    @property
    def s_max(self) -> int:
        """``floor(log_eta(R / r))``; raises in the infinite horizon."""
        if self._s_max is None:
            raise ValueError("s_max undefined for the infinite horizon")
        return self._s_max

    @property
    def num_rungs(self) -> int:
        """Number of rungs; raises in the infinite horizon."""
        if self._num_rungs is None:
            raise ValueError("s_max undefined for the infinite horizon")
        return self._num_rungs

    @property
    def top_rung_index(self) -> int | None:
        """Index of the final rung, or ``None`` in the infinite horizon."""
        return self._top_rung

    def rung_resource(self, i: int) -> float:
        """Cumulative resource for rung ``i``: ``r * eta**(i+s)``."""
        if i < 0:
            raise ValueError(f"rung index must be >= 0, got {i}")
        return self.min_resource * self.eta ** (i + self.s)

    def rung(self, i: int) -> Rung:
        """The :class:`Rung` at index ``i``, created on demand if infinite."""
        if self._s_max is not None and i >= self.num_rungs:
            raise IndexError(f"rung {i} out of range for {self.num_rungs}-rung bracket")
        while len(self._rungs) <= i:
            index = len(self._rungs)
            self._rungs.append(
                Rung(
                    index=index,
                    resource=self.rung_resource(index),
                    on_change=self._invalidate_promotions,
                )
            )
            self._rung_candidates.append(None)
            # A newly materialised rung widens the infinite-horizon scan.
            self._promotion_cache_valid = False
        return self._rungs[i]

    @property
    def rungs(self) -> list[Rung]:
        """All rungs materialised so far (all rungs, in the finite horizon)."""
        return list(self._rungs)

    def __iter__(self) -> Iterator[Rung]:
        return iter(self._rungs)

    # ---------------------------------------------------------- promotion

    def record(self, rung_index: int, trial_id: int, loss: float) -> None:
        """File a result into rung ``rung_index``."""
        self.rung(rung_index).record(trial_id, loss)

    def _invalidate_promotions(self, rung_index: int) -> None:
        """Forget rung ``rung_index``'s cached candidate (its state changed)."""
        self._promotion_cache_valid = False
        self._dirty_rungs.add(rung_index)

    def find_promotion(self) -> tuple[int, int] | None:
        """ASHA's promotion scan (Algorithm 2, lines 13-19).

        Scans rungs from the highest promotable one down to the base rung and
        returns ``(trial_id, target_rung)`` for the best promotable
        configuration found, or ``None`` if no promotion is possible.  In the
        finite horizon the top rung never promotes; in the infinite horizon
        every materialised rung may promote (growing the ladder).

        The scan result is cached and invalidated incrementally: recording a
        result, (un)marking a promotion, or materialising a rung resets it.
        ASHA polls this both from ``next_job`` and ``is_done`` on every free
        worker, so repeated polls between state changes cost O(1) instead of
        a full rescan of every rung.
        """
        if self._promotion_cache_valid:
            return self._promotion_cache
        candidates = self._rung_candidates
        dirty = self._dirty_rungs
        if dirty:
            # Only rungs that mutated since the last scan are re-queried;
            # ``first_promotable`` is a pure function of the rung's state,
            # so every other cached candidate is still exact.
            rungs = self._rungs
            eta = self.eta
            for k in dirty:
                candidates[k] = rungs[k].first_promotable(eta)
            dirty.clear()
        if self._num_rungs is not None:
            highest = self._num_rungs - 2  # top rung does not promote
        else:
            highest = len(self._rungs) - 1  # any materialised rung may promote
        found: tuple[int, int] | None = None
        for k in range(highest, -1, -1):
            candidate = candidates[k]
            if candidate is not None:
                found = (candidate, k + 1)
                break
        self._promotion_cache = found
        self._promotion_cache_valid = True
        return found

    def promote(self, trial_id: int, from_rung: int) -> None:
        """Mark ``trial_id`` promoted out of ``from_rung``."""
        self.rung(from_rung).mark_promoted(trial_id)

    # ------------------------------------------------------------ snapshots

    def state(self) -> dict:
        """JSON-safe snapshot of every materialised rung's leaderboard."""
        return {"rungs": [rung.state() for rung in self._rungs]}

    def load(self, state: dict) -> None:
        """Restore :meth:`state` output into this (geometry-identical) bracket.

        Finite-horizon brackets have all rungs materialised at construction;
        infinite-horizon ladders regrow on demand here.  Rung loads fire
        ``on_change``, so the promotion cache ends up invalidated.
        """
        rung_states = state["rungs"]
        if self._s_max is not None and len(rung_states) != self.num_rungs:
            raise ValueError(
                f"snapshot has {len(rung_states)} rungs, bracket has {self.num_rungs}"
            )
        for i, rung_state in enumerate(rung_states):
            self.rung(i).load(rung_state)
        self._promotion_cache_valid = False

    # ------------------------------------------------------------- totals

    def total_budget(self, n: int) -> float:
        """Total resource consumed by synchronous SHA on ``n`` configurations.

        Matches the "total budget" column of Figure 1 (right): each rung ``i``
        trains ``floor(n / eta**i)`` configurations to ``r_i`` from scratch,
        i.e. without checkpoint reuse across rungs.
        """
        total = 0.0
        for i in range(self.num_rungs):
            total += (n // self.eta**i) * self.rung_resource(i)
        return total

    def __repr__(self) -> str:
        horizon = "inf" if self.max_resource is None else self.max_resource
        return (
            f"Bracket(r={self.min_resource}, R={horizon}, eta={self.eta}, s={self.s}, "
            f"rungs={len(self._rungs)})"
        )


def sha_rung_schedule(
    n: int, min_resource: float, max_resource: float, eta: int, s: int = 0
) -> list[dict]:
    """The promotion-scheme table of Figure 1 (right) for one bracket.

    Returns one row per rung with keys ``rung``, ``n_i``, ``r_i`` and
    ``total`` (= ``n_i * r_i``, the per-rung budget, which Figure 1 notes is
    constant across rungs when ``n = eta**(s_max - s)``).
    """
    bracket = Bracket(min_resource, max_resource, eta, s)
    rows = []
    for i in range(bracket.num_rungs):
        n_i = n // eta**i
        r_i = bracket.rung_resource(i)
        rows.append({"rung": i, "n_i": n_i, "r_i": r_i, "total": n_i * r_i})
    return rows
