"""Asynchronous Hyperband: loop ASHA brackets over early-stopping rates.

Section 3.2: "we can asynchronously parallelize Hyperband by either running
multiple brackets of ASHA or looping through brackets of ASHA sequentially as
is done in the original Hyperband. We employ the latter looping scheme."

Section 4.1 adds the switching rule: brackets are switched "when a budget
corresponding to a hypothetical bracket of SHA would be depleted."  We track
the resource dispatched into the current ASHA bracket and move to the next
early-stopping rate once it reaches the total budget a synchronous SHA
bracket with ``n_s`` configurations would have consumed.  Unlike the
synchronous version there is no barrier: switching happens mid-flight, and
results for earlier brackets keep arriving and keep triggering promotions
within their own rung ladders.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..searchers.base import Searcher
from ..searchspace import SearchSpace
from .asha import ASHA
from .bracket import Bracket
from .hyperband import hyperband_bracket_sizes
from .scheduler import Scheduler
from .types import Job

__all__ = ["AsyncHyperband"]


class AsyncHyperband(Scheduler):
    """Loop through ASHA brackets ``s = 0, ..., s_max`` by budget depletion.

    Parameters
    ----------
    min_resource, max_resource, eta:
        Geometry shared by every bracket (finite horizon required).
    brackets:
        How many early-stopping rates to loop over, starting at ``s = 0``;
        defaults to all ``s_max + 1`` rates.  Section 4.3 loops
        ``s = 0, 1, 2, 3``.
    from_checkpoint:
        Whether promotions resume from checkpoints.
    searcher:
        Optional shared :class:`~repro.searchers.base.Searcher`: every ASHA
        ladder proposes through it and feeds it every result, so the model
        pools observations across early-stopping rates.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        min_resource: float,
        max_resource: float,
        eta: int = 4,
        brackets: int | None = None,
        from_checkpoint: bool = True,
        searcher: Searcher | None = None,
    ):
        super().__init__(space, rng, searcher=searcher)
        if max_resource is None:
            raise ValueError("AsyncHyperband requires a finite max_resource")
        sizes = hyperband_bracket_sizes(min_resource, max_resource, eta)
        if brackets is not None:
            if not 1 <= brackets <= len(sizes):
                raise ValueError(f"brackets must be in [1, {len(sizes)}], got {brackets}")
            sizes = sizes[:brackets]
        self.eta = eta
        self._ashas: list[ASHA] = []
        self._budgets: list[float] = []
        for s, n_s in enumerate(sizes):
            asha = ASHA(
                space,
                rng,
                min_resource=min_resource,
                max_resource=max_resource,
                eta=eta,
                early_stopping_rate=s,
                from_checkpoint=from_checkpoint,
                searcher=searcher,
            )
            # Share the trial table / id allocators for globally unique ids.
            asha.trials = self.trials
            asha._trial_ids = self._trial_ids
            asha._job_ids = self._job_ids
            self._ashas.append(asha)
            geometry = Bracket(min_resource, max_resource, eta, s)
            self._budgets.append(geometry.total_budget(n_s))
        self._current = 0
        self._spent = 0.0
        self._bracket_of_trial: dict[int, int] = {}

    # ----------------------------------------------------------------- API

    def attach_telemetry(self, hub):
        """Propagate the hub to every inner ASHA ladder (shared trial table)."""
        super().attach_telemetry(hub)
        for asha in self._ashas:
            asha.telemetry = hub
        return self

    def next_job(self) -> Job | None:
        job = self._ashas[self._current].next_job()
        if job is None:  # only possible for trial-capped ASHA; not used here
            return None
        self._bracket_of_trial.setdefault(job.trial_id, self._current)
        owner = self._bracket_of_trial[job.trial_id]
        self._spent += job.delta_resource
        if self._spent >= self._budgets[self._current]:
            self._current = (self._current + 1) % len(self._ashas)
            self._spent = 0.0
        return dataclasses.replace(job, bracket=owner)

    def report(self, job: Job, loss: float) -> None:
        self._ashas[self._bracket_of_trial[job.trial_id]].report(job, loss)

    def on_job_failed(self, job: Job) -> None:
        self._ashas[self._bracket_of_trial[job.trial_id]].on_job_failed(job)

    def on_trial_abandoned(self, job: Job) -> None:
        self._ashas[self._bracket_of_trial[job.trial_id]].on_trial_abandoned(job)

    # ------------------------------------------------------------ insight

    @property
    def current_bracket(self) -> int:
        """Early-stopping rate of the bracket currently receiving budget."""
        return self._current

    def rung_sizes(self) -> list[list[int]]:
        """Rung occupancy per bracket (diagnostics)."""
        return [a.rung_sizes() for a in self._ashas]
