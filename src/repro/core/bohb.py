"""BOHB [Falkner et al., 2018]: synchronous SHA + model-based sampling.

"BOHB uses SHA to perform early-stopping and differs only in how
configurations are sampled; while SHA uses random sampling, BOHB uses
Bayesian optimization to adaptively sample new configurations"
(Section 4.1).  That sentence is now literally the implementation: BOHB is
:class:`~repro.core.sha.SynchronousSHA` driving a
:class:`~repro.searchers.kde.KDESearcher` (one TPE-style KDE per rung,
proposals from the highest rung with enough observations, a fixed fraction
kept uniformly random).  There is no sampling code in this module — only
the composition.

Two variants are provided:

* :class:`BOHB` — the paper's comparator: synchronous SHA promotion (and
  therefore the same straggler sensitivity, which is why ASHA beats it on
  benchmark 2 in Section 4.2).
* :class:`AsyncBOHB` — an extension the paper's conclusion gestures at
  ("combining ASHA with adaptive selection methods"): the identical sampler
  plugged into ASHA's asynchronous promotion scheme.
"""

from __future__ import annotations

import numpy as np

from ..searchers.kde import KDESearcher
from ..searchspace import SearchSpace
from .asha import ASHA
from .sha import SynchronousSHA

__all__ = ["BOHB", "AsyncBOHB"]


class BOHB(SynchronousSHA):
    """Synchronous SHA with TPE-style adaptive sampling.

    Accepts every :class:`~repro.core.sha.SynchronousSHA` parameter plus the
    sampler knobs below.  Run "with default settings and the same eta and
    early-stopping rate as ASHA" to match Section 4.2.

    Parameters
    ----------
    gamma, num_candidates, random_fraction:
        See :class:`repro.models.kde.TPESampler` (BOHB defaults).
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        gamma: float = 0.15,
        num_candidates: int = 24,
        random_fraction: float = 1.0 / 3.0,
        **sha_kwargs,
    ):
        super().__init__(
            space,
            rng,
            searcher=KDESearcher(
                gamma=gamma,
                num_candidates=num_candidates,
                random_fraction=random_fraction,
                record_origin=False,
            ),
            **sha_kwargs,
        )


class AsyncBOHB(ASHA):
    """ASHA promotion + BOHB sampling (the paper's future-work combination)."""

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        gamma: float = 0.15,
        num_candidates: int = 24,
        random_fraction: float = 1.0 / 3.0,
        **asha_kwargs,
    ):
        super().__init__(
            space,
            rng,
            searcher=KDESearcher(
                gamma=gamma,
                num_candidates=num_candidates,
                random_fraction=random_fraction,
                record_origin=False,
            ),
            **asha_kwargs,
        )
