"""BOHB [Falkner et al., 2018]: synchronous SHA + model-based sampling.

"BOHB uses SHA to perform early-stopping and differs only in how
configurations are sampled; while SHA uses random sampling, BOHB uses
Bayesian optimization to adaptively sample new configurations"
(Section 4.1).  Following the original, one TPE-style KDE model is kept per
rung ("budget") and proposals come from the model of the *highest* rung that
has enough observations; a fixed fraction of proposals stays uniformly
random.

Two variants are provided:

* :class:`BOHB` — the paper's comparator: synchronous SHA promotion (and
  therefore the same straggler sensitivity, which is why ASHA beats it on
  benchmark 2 in Section 4.2).
* :class:`AsyncBOHB` — an extension the paper's conclusion gestures at
  ("combining ASHA with adaptive selection methods"): the identical sampler
  plugged into ASHA's asynchronous promotion scheme.
"""

from __future__ import annotations

import numpy as np

from ..models.kde import TPESampler
from ..searchspace import SearchSpace, UnitCubeEncoder
from .asha import ASHA
from .sha import SynchronousSHA
from .types import Config, Job

__all__ = ["BOHB", "AsyncBOHB"]


class _RungModels:
    """Per-rung TPE models + highest-ready-rung proposal rule (shared logic)."""

    def __init__(
        self,
        space: SearchSpace,
        gamma: float,
        num_candidates: int,
        random_fraction: float,
    ):
        self.encoder = UnitCubeEncoder(space)
        self.gamma = gamma
        self.num_candidates = num_candidates
        self.random_fraction = random_fraction
        self.models: dict[int, TPESampler] = {}

    def observe(self, rung: int, config: Config, loss: float) -> None:
        model = self.models.get(rung)
        if model is None:
            model = self.models[rung] = TPESampler(
                self.encoder.dim,
                gamma=self.gamma,
                num_candidates=self.num_candidates,
                random_fraction=self.random_fraction,
            )
        model.observe(self.encoder.encode(config), loss)

    def propose(self, rng: np.random.Generator) -> Config:
        for rung in sorted(self.models, reverse=True):
            if self.models[rung].model_ready():
                return self.encoder.decode(self.models[rung].propose(rng))
        return self.encoder.decode(rng.random(self.encoder.dim))


class BOHB(SynchronousSHA):
    """Synchronous SHA with TPE-style adaptive sampling.

    Accepts every :class:`~repro.core.sha.SynchronousSHA` parameter plus the
    sampler knobs below.  Run "with default settings and the same eta and
    early-stopping rate as ASHA" to match Section 4.2.

    Parameters
    ----------
    gamma, num_candidates, random_fraction:
        See :class:`repro.models.kde.TPESampler` (BOHB defaults).
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        gamma: float = 0.15,
        num_candidates: int = 24,
        random_fraction: float = 1.0 / 3.0,
        **sha_kwargs,
    ):
        self._models = _RungModels(space, gamma, num_candidates, random_fraction)
        super().__init__(space, rng, sampler=self._models.propose, **sha_kwargs)

    def report(self, job: Job, loss: float) -> None:
        self._models.observe(job.rung, job.config, loss)
        super().report(job, loss)


class AsyncBOHB(ASHA):
    """ASHA promotion + BOHB sampling (the paper's future-work combination)."""

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        gamma: float = 0.15,
        num_candidates: int = 24,
        random_fraction: float = 1.0 / 3.0,
        **asha_kwargs,
    ):
        self._models = _RungModels(space, gamma, num_candidates, random_fraction)
        super().__init__(space, rng, sampler=self._models.propose, **asha_kwargs)

    def report(self, job: Job, loss: float) -> None:
        self._models.observe(job.rung, job.config, loss)
        super().report(job, loss)
