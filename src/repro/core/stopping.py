"""Standalone early-stopping rules (extension features).

The paper's conclusion points at "incorporating meta-learning to inform
early-stopping" and compares against Vizier's (buggy, hence omitted)
performance-curve rule.  This module provides two classic rules that can be
composed with any scheduler through :class:`StoppingWrapper`:

* :class:`MedianStoppingRule` — stop a trial whose running-average loss at
  resource ``r`` is worse than the median of other trials' running averages
  at the same resource (the rule Vizier ships; Golovin et al. 2017, §3.2).
* :class:`CurveExtrapolationRule` — fit a power-law ``a + b * r**-c`` to the
  trial's observed curve and stop when the extrapolated loss at ``R`` is
  worse than the current best observed final loss (in the spirit of Domhan
  et al. 2015, with least-squares point estimates instead of MCMC).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict

import numpy as np
from scipy.optimize import least_squares

from .scheduler import Scheduler
from .types import Job, TrialStatus

__all__ = ["StoppingRule", "MedianStoppingRule", "CurveExtrapolationRule", "StoppingWrapper"]


class StoppingRule(ABC):
    """Decides whether a trial should be terminated early."""

    @abstractmethod
    def observe(self, trial_id: int, resource: float, loss: float) -> None:
        """Record a measurement."""

    @abstractmethod
    def should_stop(self, trial_id: int) -> bool:
        """Whether the trial should not receive further resource."""


class MedianStoppingRule(StoppingRule):
    """Stop a trial below the median of running averages at equal resource.

    Parameters
    ----------
    grace_resource:
        Trials are never stopped before consuming this much resource.
    min_peers:
        Minimum number of other trials measured at a comparable resource
        before the rule activates.
    """

    def __init__(self, grace_resource: float = 0.0, min_peers: int = 5):
        self.grace_resource = grace_resource
        self.min_peers = min_peers
        self._history: dict[int, list[tuple[float, float]]] = defaultdict(list)

    def observe(self, trial_id: int, resource: float, loss: float) -> None:
        self._history[trial_id].append((resource, loss))

    def running_average(self, trial_id: int, up_to: float) -> float | None:
        points = [loss for r, loss in self._history[trial_id] if r <= up_to]
        finite = [loss for loss in points if np.isfinite(loss)]
        if not points:
            return None
        if not finite:
            return np.inf
        return float(np.mean(finite))

    def should_stop(self, trial_id: int) -> bool:
        history = self._history.get(trial_id)
        if not history:
            return False
        resource = max(r for r, _ in history)
        if resource < self.grace_resource:
            return False
        mine = self.running_average(trial_id, resource)
        peers = []
        for other_id in self._history:
            if other_id == trial_id:
                continue
            avg = self.running_average(other_id, resource)
            if avg is not None:
                peers.append(avg)
        if len(peers) < self.min_peers:
            return False
        return mine is not None and mine > float(np.median(peers))


class CurveExtrapolationRule(StoppingRule):
    """Stop when the extrapolated final loss cannot beat the incumbent.

    Fits ``loss(r) = a + b * r**-c`` by robust least squares once a trial has
    ``min_points`` measurements, extrapolates to ``max_resource``, and stops
    the trial if the prediction exceeds ``margin`` times the best *final*
    loss observed anywhere so far.
    """

    def __init__(self, max_resource: float, min_points: int = 4, margin: float = 1.0):
        if max_resource <= 0:
            raise ValueError("max_resource must be positive")
        self.max_resource = max_resource
        self.min_points = min_points
        self.margin = margin
        self._history: dict[int, list[tuple[float, float]]] = defaultdict(list)
        self._best_final = np.inf

    def observe(self, trial_id: int, resource: float, loss: float) -> None:
        self._history[trial_id].append((resource, loss))
        if resource >= self.max_resource and np.isfinite(loss):
            self._best_final = min(self._best_final, loss)

    def extrapolate(self, trial_id: int) -> float | None:
        """Predicted loss at ``max_resource``, or ``None`` if unfittable."""
        points = [
            (r, loss) for r, loss in self._history.get(trial_id, []) if np.isfinite(loss) and r > 0
        ]
        if len(points) < self.min_points:
            return None
        r = np.array([p[0] for p in points])
        losses = np.array([p[1] for p in points])

        def residuals(theta):
            a, b, c = theta
            return a + b * r ** (-np.exp(c)) - losses

        start = np.array(
            [losses.min(), max(losses[0] - losses.min(), 1e-3), np.log(0.5)]
        )
        try:
            sol = least_squares(residuals, start, loss="soft_l1", max_nfev=200)
        except Exception:
            return None
        a, b, c = sol.x
        return float(a + b * self.max_resource ** (-np.exp(c)))

    def should_stop(self, trial_id: int) -> bool:
        if not np.isfinite(self._best_final):
            return False
        predicted = self.extrapolate(trial_id)
        if predicted is None:
            return False
        return predicted > self.margin * self._best_final


class StoppingWrapper(Scheduler):
    """Compose a stopping rule with any inner scheduler.

    Jobs flow through unchanged; results are shown to the rule first, and
    when the rule votes to stop a trial the wrapper reports an *infinite*
    loss to the inner scheduler instead — which any loss-ranking scheduler
    (every one in this library) interprets as "never promote / never exploit
    this configuration", terminating it without special cases.
    """

    def __init__(self, inner: Scheduler, rule: StoppingRule):
        # Deliberately do NOT call super().__init__: this wrapper aliases the
        # inner scheduler's state so trackers see a single trial table.
        self.inner = inner
        self.rule = rule
        self.space = inner.space
        self.rng = inner.rng
        self.trials = inner.trials
        self.telemetry = inner.telemetry
        self.stopped_early: set[int] = set()

    def attach_telemetry(self, hub):
        """Forward the hub to the wrapped scheduler (events come from it)."""
        self.telemetry = hub
        self.inner.attach_telemetry(hub)
        return self

    @property
    def searcher(self):
        """The wrapped scheduler's searcher (contract-checker visibility)."""
        return self.inner.searcher

    def next_job(self) -> Job | None:
        return self.inner.next_job()

    def report(self, job: Job, loss: float) -> None:
        self.rule.observe(job.trial_id, job.resource, loss)
        if self.rule.should_stop(job.trial_id):
            self.stopped_early.add(job.trial_id)
            self.inner.report(job, np.inf)
            self.trials[job.trial_id].status = TrialStatus.STOPPED
        else:
            self.inner.report(job, loss)

    def on_job_failed(self, job: Job) -> None:
        self.inner.on_job_failed(job)

    def on_job_requeued(self, job: Job) -> None:
        self.inner.on_job_requeued(job)

    def on_trial_abandoned(self, job: Job) -> None:
        self.inner.on_trial_abandoned(job)

    def is_done(self) -> bool:
        return self.inner.is_done()

    def best_trial(self):
        return self.inner.best_trial()

    @property
    def num_trials(self) -> int:
        return self.inner.num_trials

    def state_dict(self) -> dict:
        """Delegate to the wrapped scheduler.

        The rule's observation history and the ``stopped_early`` set are not
        serialized: a restored study re-observes measurements as replay
        feeds them back through :meth:`report`, and journal replay re-runs
        the rule's votes deterministically.  A bare snapshot-restore resets
        the rule — documented in ``docs/study.md``.
        """
        return self.inner.state_dict()

    def load_state(self, state: dict) -> None:
        self.inner.load_state(state)
        self.stopped_early.clear()
