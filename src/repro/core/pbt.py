"""Population Based Training [Jaderberg et al., 2017], as configured in A.3.

PBT trains a population of models in lock-step-ish intervals.  After each
interval a member in the bottom ``exploit_fraction`` of the population is
replaced by a copy (weights *and* hyperparameters) of a uniformly sampled
member from the top fraction, whose hyperparameters then pass through an
explore step: with probability 3/4 each is perturbed by a factor of 0.8 or
1.2 (adjacent choice for discrete domains), with probability 1/4 it is
resampled uniformly.

Implementation notes matching Appendix A.3:

* **Truncation selection** with 20% fractions.
* **Lag bound**: configurations are kept "trained within ``max_lag``
  iterations of each other" so exploit comparisons are fair; a member whose
  next interval would exceed the bound over the population minimum waits.
* **Architecture freezing**: hyperparameters named in ``frozen`` are exempt
  from the explore step (inherited weights would be invalid otherwise).
* **Worker efficiency**: when no member of any existing population can run
  (all blocked by the lag bound or complete), a brand-new population is
  spawned — "we spawn new populations of 25 whenever a job is not available
  from existing populations".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..searchspace import SearchSpace
from ..telemetry import EventKind
from .scheduler import Scheduler
from .types import Job, Measurement, Trial, TrialStatus

__all__ = ["PBT"]


@dataclass
class _Member:
    """One slot of a population: points at its current trial."""

    trial_id: int
    busy: bool = False

    def resource(self, trials: dict[int, Trial]) -> float:
        return trials[self.trial_id].resource

    def last_loss(self, trials: dict[int, Trial]) -> float | None:
        return trials[self.trial_id].last_loss


class _Population:
    def __init__(self, members: list[_Member]):
        self.members = members

    def min_resource(self, trials: dict[int, Trial]) -> float:
        return min(m.resource(trials) for m in self.members)

    def done(self, trials: dict[int, Trial], max_resource: float) -> bool:
        return all(m.resource(trials) >= max_resource for m in self.members)


class PBT(Scheduler):
    """Population Based Training with truncation selection.

    Parameters
    ----------
    max_resource:
        Training stops for a member once it reaches this resource.
    interval:
        Resource trained per round between exploit/explore decisions
        (1000 iterations in Section 4.1/4.2; 8 epochs in Section 4.3.1).
    population_size:
        Members per population (25 in Section 4.1/4.2, 20 in Section 4.3.1).
    exploit_fraction:
        Truncation fraction for both the bottom (replaced) and top (donors).
    resample_probability, perturb_factors:
        Explore-step parameters.
    frozen:
        Hyperparameter names exempt from exploration (architecture knobs).
    max_lag:
        Maximum allowed resource spread within a population; defaults to
        ``2 * interval`` (the paper's "within 2000 iterations" with 1000-step
        intervals).
    spawn_populations:
        Spawn a fresh population when no job is available (keeps workers at
        100% utilisation in distributed settings).  With ``False`` the search
        ends when the single population completes.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        max_resource: float,
        interval: float,
        population_size: int = 25,
        exploit_fraction: float = 0.2,
        resample_probability: float = 0.25,
        perturb_factors: tuple[float, float] = (0.8, 1.2),
        frozen: frozenset[str] | set[str] = frozenset(),
        max_lag: float | None = None,
        spawn_populations: bool = True,
    ):
        super().__init__(space, rng)
        if interval <= 0 or max_resource <= 0:
            raise ValueError("interval and max_resource must be positive")
        if interval > max_resource:
            raise ValueError(f"interval ({interval}) exceeds max_resource ({max_resource})")
        if not 0 < exploit_fraction < 0.5:
            raise ValueError(f"exploit_fraction must be in (0, 0.5), got {exploit_fraction}")
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        self.max_resource = max_resource
        self.interval = interval
        self.population_size = population_size
        self.exploit_fraction = exploit_fraction
        self.resample_probability = resample_probability
        self.perturb_factors = perturb_factors
        self.frozen = frozenset(frozen)
        self.max_lag = max_lag if max_lag is not None else 2 * interval
        if self.max_lag < interval:
            raise ValueError(f"max_lag ({self.max_lag}) must be >= interval ({interval})")
        self.spawn_populations = spawn_populations
        self.populations: list[_Population] = []
        self._member_of_trial: dict[int, _Member] = {}
        self._population_of_trial: dict[int, _Population] = {}

    # ----------------------------------------------------------------- API

    def next_job(self) -> Job | None:
        job = self._dispatch_from_existing()
        if job is not None:
            return job
        if not self.populations or (
            self.spawn_populations
            and all(
                p.done(self.trials, self.max_resource) or self._fully_busy_or_blocked(p)
                for p in self.populations
            )
        ):
            if self.populations and not self.spawn_populations:
                return None
            self._spawn_population()
            return self._dispatch_from_existing()
        return None

    def report(self, job: Job, loss: float) -> None:
        self.note_result(job, loss)
        trial = self.trials[job.trial_id]
        member = self._member_of_trial[job.trial_id]
        population = self._population_of_trial[job.trial_id]
        member.busy = False
        trial.metadata.pop("clone_pending", None)
        if trial.resource >= self.max_resource:
            trial.status = TrialStatus.COMPLETED
        else:
            trial.status = TrialStatus.PAUSED
        self._maybe_exploit(member, population)

    def on_job_failed(self, job: Job) -> None:
        """A crashed member is resampled from scratch (slot is never lost)."""
        super().on_job_failed(job)
        member = self._member_of_trial[job.trial_id]
        population = self._population_of_trial[job.trial_id]
        member.busy = False
        fresh = self.new_trial(self.space.sample(self.rng))
        self._rebind(member, population, fresh.trial_id)

    def is_done(self) -> bool:
        if self.spawn_populations or not self.populations:
            return False
        return all(p.done(self.trials, self.max_resource) for p in self.populations)

    # ------------------------------------------------------- exploit logic

    def _maybe_exploit(self, member: _Member, population: _Population) -> None:
        """Truncation selection on interval completion (async, member-local)."""
        trial = self.trials[member.trial_id]
        if trial.resource >= self.max_resource:
            return
        losses = [
            (m, m.last_loss(self.trials))
            for m in population.members
            if m.last_loss(self.trials) is not None
        ]
        if len(losses) < len(population.members):
            return  # rank only fully-measured populations (fair comparison)
        ranked = sorted(losses, key=lambda pair: _loss_key(pair[1]))
        k = max(1, int(len(ranked) * self.exploit_fraction))
        bottom = {id(m) for m, _ in ranked[-k:]}
        if id(member) not in bottom:
            return
        # A clone that has not trained since inheriting has no checkpoint of
        # its own yet, so it cannot serve as a weight donor.
        top = [
            m
            for m, _ in ranked[:k]
            if m is not member and not self.trials[m.trial_id].metadata.get("clone_pending")
        ]
        if not top:
            return
        donor = top[self.rng.integers(len(top))]
        donor_trial = self.trials[donor.trial_id]
        explored = self.space.perturb(
            donor_trial.config,
            self.rng,
            resample_probability=self.resample_probability,
            factors=self.perturb_factors,
            frozen=self.frozen,
        )
        clone = self.new_trial(explored)
        clone.resource = donor_trial.resource  # weights (state) copied at dispatch
        clone.metadata["inherit_from"] = donor.trial_id
        clone.metadata["clone_pending"] = True  # cleared at its first report
        # The clone's model *is* the donor's model right now, so it enters
        # the ranking with the donor's loss until its own interval reports.
        if donor_trial.measurements:
            last = donor_trial.measurements[-1]
            clone.record(Measurement(clone.trial_id, last.resource, last.loss))
        if self.telemetry:
            # PBT's exploit is its promotion analogue: the slot advances by
            # adopting a top member's weights and (explored) hyperparameters.
            self.telemetry.emit(
                EventKind.PROMOTION,
                trial_id=clone.trial_id,
                mechanism="exploit",
                donor=donor.trial_id,
                replaced=member.trial_id,
            )
        self.trials[member.trial_id].status = TrialStatus.STOPPED
        self._rebind(member, population, clone.trial_id)

    # ------------------------------------------------------------- helpers

    def _spawn_population(self) -> None:
        members = []
        for _ in range(self.population_size):
            trial = self.new_trial(self.space.sample(self.rng))
            member = _Member(trial_id=trial.trial_id)
            self._member_of_trial[trial.trial_id] = member
            members.append(member)
        population = _Population(members)
        for m in members:
            self._population_of_trial[m.trial_id] = population
        self.populations.append(population)

    def _dispatch_from_existing(self) -> Job | None:
        for population in self.populations:
            floor = population.min_resource(self.trials)
            for member in population.members:
                if member.busy:
                    continue
                trial = self.trials[member.trial_id]
                donor = trial.metadata.get("inherit_from")
                if donor is not None:
                    # The donor may have kept training since the exploit
                    # decision; the clone continues from the donor's *current*
                    # checkpoint, so refresh before computing the target.
                    trial.resource = max(trial.resource, self.trials[donor].resource)
                if trial.resource >= self.max_resource:
                    continue
                target = min(trial.resource + self.interval, self.max_resource)
                if target - floor > self.max_lag:
                    continue  # would run too far ahead of the stragglers
                member.busy = True
                job = self.make_job(trial, target)
                if trial.metadata.pop("inherit_from", None) is not None:
                    job = replace(job, inherit_from=donor)
                return job
        return None

    def _fully_busy_or_blocked(self, population: _Population) -> bool:
        floor = population.min_resource(self.trials)
        for member in population.members:
            if member.busy:
                continue
            trial = self.trials[member.trial_id]
            if trial.resource >= self.max_resource:
                continue
            target = min(trial.resource + self.interval, self.max_resource)
            if target - floor <= self.max_lag:
                return False
        return True

    def _rebind(self, member: _Member, population: _Population, new_trial_id: int) -> None:
        del self._member_of_trial[member.trial_id]
        del self._population_of_trial[member.trial_id]
        member.trial_id = new_trial_id
        self._member_of_trial[new_trial_id] = member
        self._population_of_trial[new_trial_id] = population


def _loss_key(loss: float) -> tuple[int, float]:
    """NaN losses rank worst."""
    is_nan = loss != loss
    return (1 if is_nan else 0, 0.0 if is_nan else loss)
