"""Stand-in for Vizier's default algorithm: batched GP-EI Bayesian optimisation.

Golovin et al. [2017] describe Vizier's default tuner as a Gaussian-process
bandit using expected improvement; Section 4.3 compares against it "without
the performance curve early-stopping rule", i.e. every proposed
configuration trains to the full resource ``R``.  We reproduce that:

* a Matern-5/2 GP over unit-cube-encoded configurations, fit to final
  validation losses;
* expected improvement maximised over a fresh uniform candidate pool;
* constant-liar imputation of pending evaluations so hundreds of parallel
  workers receive de-duplicated proposals [Ginsbourger et al., 2010];
* optional loss capping (``loss_cap=1000`` reproduces the paper's attempted
  mitigation of PTB's heavy-tailed perplexities — which "still significantly
  hampered the performance of Vizier").

Engineering concessions for simulation speed (documented, behaviour-
preserving): the GP is refit every ``refit_every`` dispatches rather than on
every proposal, and is conditioned on a subsample of the observation history
once it exceeds ``max_fit_points`` (best points always kept).
"""

from __future__ import annotations

import numpy as np

from ..models.acquisition import expected_improvement
from ..models.gp import GaussianProcess
from ..models.kernels import Matern52
from ..searchspace import SearchSpace, UnitCubeEncoder
from .scheduler import Scheduler
from .types import Job, TrialStatus

__all__ = ["VizierGP"]


class VizierGP(Scheduler):
    """Batched GP-EI tuner training every configuration to ``R``.

    Parameters
    ----------
    max_resource:
        Resource every proposal trains to (no early stopping).
    num_init:
        Uniformly random configurations before the model activates.
    num_candidates:
        Uniform candidate pool size per proposal.
    loss_cap:
        If set, observed losses are clipped to this value before fitting.
    refit_every, max_fit_points:
        Refit cadence and observation-subsample cap (speed knobs).
    max_trials:
        Optional cap on total proposals.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        max_resource: float,
        num_init: int = 10,
        num_candidates: int = 256,
        loss_cap: float | None = None,
        refit_every: int = 10,
        max_fit_points: int = 400,
        max_trials: int | None = None,
    ):
        super().__init__(space, rng)
        if max_resource <= 0:
            raise ValueError(f"max_resource must be positive, got {max_resource}")
        self.max_resource = max_resource
        self.num_init = num_init
        self.num_candidates = num_candidates
        self.loss_cap = loss_cap
        self.refit_every = refit_every
        self.max_fit_points = max_fit_points
        self.max_trials = max_trials
        self.encoder = UnitCubeEncoder(space)
        self._x: list[np.ndarray] = []
        self._y: list[float] = []
        self._pending: dict[int, np.ndarray] = {}
        self._gp: GaussianProcess | None = None
        self._dispatches_since_fit = 0

    # ----------------------------------------------------------------- API

    def next_job(self) -> Job | None:
        if self.max_trials is not None and self.num_trials >= self.max_trials:
            return None
        if len(self._x) < self.num_init:
            config = self.space.sample(self.rng)
        else:
            config = self._propose()
        trial = self.new_trial(config)
        self._pending[trial.trial_id] = self.encoder.encode(config)
        return self.make_job(trial, self.max_resource)

    def report(self, job: Job, loss: float) -> None:
        self.note_result(job, loss)
        self.trials[job.trial_id].status = TrialStatus.COMPLETED
        x = self._pending.pop(job.trial_id, None)
        if x is None:
            x = self.encoder.encode(job.config)
        self._x.append(x)
        self._y.append(self._clean(loss))
        self._gp = None  # force refit at next proposal window

    def on_job_failed(self, job: Job) -> None:
        super().on_job_failed(job)
        self._pending.pop(job.trial_id, None)

    def is_done(self) -> bool:
        if self.max_trials is None or self.num_trials < self.max_trials:
            return False
        return not any(t.status == TrialStatus.RUNNING for t in self.trials.values())

    # ------------------------------------------------------------- model

    def _clean(self, loss: float) -> float:
        if not np.isfinite(loss):
            loss = self.loss_cap if self.loss_cap is not None else 1e12
        if self.loss_cap is not None:
            loss = min(loss, self.loss_cap)
        return float(loss)

    def _propose(self):
        gp = self._fit_if_needed()
        candidates = self.encoder.sample_unit(self.num_candidates, self.rng)
        mean, std = gp.predict(candidates)
        finite = [y for y in self._y if np.isfinite(y)]
        best = min(finite) if finite else 0.0
        scores = expected_improvement(mean, std, best)
        return self.encoder.decode(candidates[int(np.argmax(scores))])

    def _fit_if_needed(self) -> GaussianProcess:
        self._dispatches_since_fit += 1
        if self._gp is not None and self._dispatches_since_fit < self.refit_every:
            return self._gp
        self._dispatches_since_fit = 0
        x = np.stack(self._x)
        y = np.asarray(self._y)
        if len(y) > self.max_fit_points:
            # Uniform subsample plus the current best observation.  Keeping a
            # *best-biased* subsample here would quietly filter out the
            # heavy-tailed losses Section 4.3 shows degrading model-based
            # methods, changing the algorithm under study.
            keep = self.rng.choice(len(y), size=self.max_fit_points - 1, replace=False)
            keep = np.append(keep, int(np.argmin(y)))
            x, y = x[keep], y[keep]
        # Constant-liar imputation of pending points (batch parallelism).
        if self._pending:
            pend = list(self._pending.values())
            if len(pend) > 100:
                idx = self.rng.choice(len(pend), size=100, replace=False)
                pend = [pend[i] for i in idx]
            lie = float(np.min(y)) if len(y) else 0.0
            x = np.vstack([x, np.stack(pend)])
            y = np.concatenate([y, np.full(len(pend), lie)])
        gp = GaussianProcess(kernel=Matern52(), noise=1e-3)
        # Small marginal-likelihood grid: the fit happens inside a 500-worker
        # dispatch loop, and three length scales cover the unit cube well.
        gp.fit_tuned(x, y, length_scales=(0.15, 0.3, 0.6), variances=(1.0,))
        self._gp = gp
        return gp
