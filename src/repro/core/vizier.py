"""Stand-in for Vizier's default algorithm: batched GP-EI Bayesian optimisation.

Golovin et al. [2017] describe Vizier's default tuner as a Gaussian-process
bandit using expected improvement; Section 4.3 compares against it "without
the performance curve early-stopping rule", i.e. every proposed
configuration trains to the full resource ``R``.  The scheduler side of
that is trivial — dispatch every proposal at ``R`` — so this module is now
exactly that: a full-budget scheduler whose proposals come from a
:class:`~repro.searchers.gp.GPEISearcher` (Matern-5/2 GP, expected
improvement over a uniform candidate pool, constant-liar imputation of
pending evaluations, optional loss capping).  Seeded trial streams match
the pre-refactor monolithic implementation byte for byte.
"""

from __future__ import annotations

import numpy as np

from ..searchers.base import Searcher
from ..searchers.gp import GPEISearcher
from ..searchspace import SearchSpace
from .scheduler import Scheduler
from .types import Job, TrialStatus

__all__ = ["VizierGP"]


class VizierGP(Scheduler):
    """Batched GP-EI tuner training every configuration to ``R``.

    Parameters
    ----------
    max_resource:
        Resource every proposal trains to (no early stopping).
    num_init:
        Uniformly random configurations before the model activates.
    num_candidates:
        Uniform candidate pool size per proposal.
    loss_cap:
        If set, observed losses are clipped to this value before fitting.
    refit_every, max_fit_points:
        Refit cadence and observation-subsample cap (speed knobs).
    max_trials:
        Optional cap on total proposals.
    searcher:
        Override the proposal strategy entirely (any
        :class:`~repro.searchers.base.Searcher`); the GP knobs above are
        then ignored.  Default: a :class:`~repro.searchers.gp.GPEISearcher`
        built from them.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        max_resource: float,
        num_init: int = 10,
        num_candidates: int = 256,
        loss_cap: float | None = None,
        refit_every: int = 10,
        max_fit_points: int = 400,
        max_trials: int | None = None,
        searcher: Searcher | None = None,
    ):
        if max_resource <= 0:
            raise ValueError(f"max_resource must be positive, got {max_resource}")
        if searcher is None:
            searcher = GPEISearcher(
                num_init=num_init,
                num_candidates=num_candidates,
                loss_cap=loss_cap,
                refit_every=refit_every,
                max_fit_points=max_fit_points,
                record_origin=False,
            )
        super().__init__(space, rng, searcher=searcher)
        self.max_resource = max_resource
        self.max_trials = max_trials

    # ----------------------------------------------------------------- API

    def next_job(self) -> Job | None:
        if self.max_trials is not None and self.num_trials >= self.max_trials:
            return None
        if self.searcher_exhausted():
            return None
        config, origin = self.propose_config()
        trial = self.new_trial(config, origin=origin)
        return self.make_job(trial, self.max_resource)

    def report(self, job: Job, loss: float) -> None:
        self.note_result(job, loss)
        trial = self.trials[job.trial_id]
        trial.status = TrialStatus.COMPLETED
        if self.searcher is not None:
            self.searcher.on_result(trial, job.resource, loss)
            self.searcher.on_trial_complete(trial, loss)

    def on_job_failed(self, job: Job) -> None:
        super().on_job_failed(job)
        if self.searcher is not None:
            self.searcher.on_trial_error(self.trials[job.trial_id])

    def is_done(self) -> bool:
        capped = self.max_trials is not None and self.num_trials >= self.max_trials
        if not capped and not self.searcher_exhausted():
            return False
        return not any(t.status == TrialStatus.RUNNING for t in self.trials.values())
