"""Random search: the no-early-stopping baseline.

Every configuration is trained straight to the maximum resource ``R``.  This
is the embarrassingly parallel baseline the paper's figures label "Random";
it anchors the value of early stopping in Figures 3 and 9.
"""

from __future__ import annotations

import numpy as np

from ..searchspace import SearchSpace
from .scheduler import Scheduler
from .types import Job, TrialStatus

__all__ = ["RandomSearch"]


class RandomSearch(Scheduler):
    """Train uniformly sampled configurations to completion.

    Parameters
    ----------
    max_resource:
        Resource every trial is trained to.
    max_trials:
        Optional cap on the number of configurations; ``None`` keeps sampling
        for as long as the backend runs.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        max_resource: float,
        max_trials: int | None = None,
    ):
        super().__init__(space, rng)
        if max_resource <= 0:
            raise ValueError(f"max_resource must be positive, got {max_resource}")
        self.max_resource = max_resource
        self.max_trials = max_trials

    def next_job(self) -> Job | None:
        if self.max_trials is not None and self.num_trials >= self.max_trials:
            return None
        trial = self.new_trial(self.space.sample(self.rng))
        return self.make_job(trial, self.max_resource)

    def report(self, job: Job, loss: float) -> None:
        self.note_result(job, loss)
        self.trials[job.trial_id].status = TrialStatus.COMPLETED

    def is_done(self) -> bool:
        if self.max_trials is None or self.num_trials < self.max_trials:
            return False
        return not any(t.status == TrialStatus.RUNNING for t in self.trials.values())
