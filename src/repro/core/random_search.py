"""Random search: the no-early-stopping baseline.

Every configuration is trained straight to the maximum resource ``R``.  This
is the embarrassingly parallel baseline the paper's figures label "Random";
it anchors the value of early stopping in Figures 3 and 9.

With a :class:`~repro.searchers.base.Searcher` attached the same scheduler
doubles as the full-budget sequential-model-based baseline family: every
proposal routes through the searcher and every final loss feeds back into
it (``GPEISearcher`` here is a lean Vizier, ``GridSearcher`` classic grid
search).
"""

from __future__ import annotations

import numpy as np

from ..searchers.base import Searcher
from ..searchspace import SearchSpace
from .scheduler import Scheduler
from .types import Job, TrialStatus

__all__ = ["RandomSearch"]


class RandomSearch(Scheduler):
    """Train uniformly sampled configurations to completion.

    Parameters
    ----------
    max_resource:
        Resource every trial is trained to.
    max_trials:
        Optional cap on the number of configurations; ``None`` keeps sampling
        for as long as the backend runs.
    searcher:
        Optional proposal strategy; ``None`` (the default) samples uniformly.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        max_resource: float,
        max_trials: int | None = None,
        searcher: Searcher | None = None,
    ):
        super().__init__(space, rng, searcher=searcher)
        if max_resource <= 0:
            raise ValueError(f"max_resource must be positive, got {max_resource}")
        self.max_resource = max_resource
        self.max_trials = max_trials

    def next_job(self) -> Job | None:
        if self.max_trials is not None and self.num_trials >= self.max_trials:
            return None
        if self.searcher_exhausted():
            return None
        config, origin = self.propose_config()
        trial = self.new_trial(config, origin=origin)
        return self.make_job(trial, self.max_resource)

    def report(self, job: Job, loss: float) -> None:
        self.note_result(job, loss)
        trial = self.trials[job.trial_id]
        trial.status = TrialStatus.COMPLETED
        if self.searcher is not None:
            self.searcher.on_result(trial, job.resource, loss)
            self.searcher.on_trial_complete(trial, loss)

    def on_job_failed(self, job: Job) -> None:
        super().on_job_failed(job)
        if self.searcher is not None:
            self.searcher.on_trial_error(self.trials[job.trial_id])

    def is_done(self) -> bool:
        capped = self.max_trials is not None and self.num_trials >= self.max_trials
        if not capped and not self.searcher_exhausted():
            return False
        return not any(t.status == TrialStatus.RUNNING for t in self.trials.values())
