"""Tuning algorithms: ASHA and everything the paper compares it against."""

from .asha import ASHA
from .async_hyperband import AsyncHyperband
from .bohb import AsyncBOHB, BOHB
from .bracket import Bracket, sha_rung_schedule
from .contract import ContractChecker, ContractViolation
from .doubling import DoublingSHA
from .fabolas import Fabolas
from .grid_search import GridSearch
from .hyperband import Hyperband, hyperband_bracket_sizes
from .parallel_hyperband import ParallelAsyncHyperband
from .pbt import PBT
from .random_search import RandomSearch
from .registry import SCHEDULERS, build_scheduler, default_bracket_size
from .rung import Rung
from .scheduler import Scheduler
from .sha import SynchronousSHA
from .stopping import (
    CurveExtrapolationRule,
    MedianStoppingRule,
    StoppingRule,
    StoppingWrapper,
)
from .types import Config, Job, Measurement, Trial, TrialStatus
from .vizier import VizierGP

__all__ = [
    "ASHA",
    "AsyncBOHB",
    "AsyncHyperband",
    "BOHB",
    "Bracket",
    "Config",
    "ContractChecker",
    "ContractViolation",
    "CurveExtrapolationRule",
    "DoublingSHA",
    "Fabolas",
    "GridSearch",
    "Hyperband",
    "Job",
    "Measurement",
    "MedianStoppingRule",
    "PBT",
    "ParallelAsyncHyperband",
    "RandomSearch",
    "Rung",
    "SCHEDULERS",
    "Scheduler",
    "StoppingRule",
    "StoppingWrapper",
    "SynchronousSHA",
    "Trial",
    "TrialStatus",
    "VizierGP",
    "build_scheduler",
    "default_bracket_size",
    "hyperband_bracket_sizes",
    "sha_rung_schedule",
]
