"""Stand-in for Fabolas [Klein et al., 2017]: multi-task GP over
(configuration, dataset fraction).

Fabolas models validation loss as a function of both the hyperparameters and
the fraction of the training set used, then picks cheap subset evaluations
that are maximally informative about the optimum at the *full* dataset size.
Our stand-in keeps that structure with a simpler acquisition (documented
substitution, see DESIGN.md):

* one GP over ``[0, 1]^(d+1)`` — the encoded configuration plus the
  log-scaled dataset fraction;
* candidate configurations are scored by expected improvement of their
  *predicted loss at the full dataset*;
* the evaluation fidelity is then chosen cost-aware: each allowed fraction
  ``f`` is scored by ``EI_full(config) * std(config, f) / cost(f)``, so cheap
  fidelities win while they remain informative, and the full dataset wins
  once the subsets are resolved — the qualitative behaviour Klein et al.
  report.

The incumbent, following the paper's evaluation framework (Appendix A.2), is
the configuration with the lowest *predicted* loss at the full dataset; the
experiment runner performs the offline validation step.
"""

from __future__ import annotations

import math

import numpy as np

from ..models.acquisition import expected_improvement
from ..models.gp import GaussianProcess
from ..models.kernels import Matern52
from ..searchspace import SearchSpace, UnitCubeEncoder
from .scheduler import Scheduler
from .types import Config, Job, TrialStatus

__all__ = ["Fabolas"]


class Fabolas(Scheduler):
    """Cost-aware multi-fidelity Bayesian optimisation over dataset fractions.

    Parameters
    ----------
    max_resource:
        Resource corresponding to the full dataset.
    fractions:
        Allowed dataset fractions, ascending, ending at 1.0.  Defaults to
        the geometric ladder (1/64, 1/16, 1/4, 1).
    num_init:
        Initial random configurations, each evaluated at the two smallest
        fractions (Fabolas's initial design).
    num_candidates:
        Random candidate configurations scored per proposal.
    refit_every, max_fit_points:
        Speed knobs as in :class:`repro.core.vizier.VizierGP`.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        max_resource: float,
        fractions: tuple[float, ...] = (1 / 64, 1 / 16, 1 / 4, 1.0),
        num_init: int = 8,
        num_candidates: int = 256,
        refit_every: int = 5,
        max_fit_points: int = 400,
        max_trials: int | None = None,
        incumbent_every: int = 5,
    ):
        super().__init__(space, rng)
        if max_resource <= 0:
            raise ValueError(f"max_resource must be positive, got {max_resource}")
        if sorted(fractions) != list(fractions) or fractions[-1] != 1.0:
            raise ValueError("fractions must be ascending and end at 1.0")
        if any(f <= 0 for f in fractions):
            raise ValueError("fractions must be positive")
        self.max_resource = max_resource
        self.fractions = tuple(fractions)
        self.num_init = num_init
        self.num_candidates = num_candidates
        self.refit_every = refit_every
        self.max_fit_points = max_fit_points
        self.max_trials = max_trials
        self.encoder = UnitCubeEncoder(space)
        self._x: list[np.ndarray] = []  # (config encoding, fraction encoding)
        self._y: list[float] = []
        self._init_queue: list[tuple[Config, float]] = []
        init_fracs = self.fractions[: min(2, len(self.fractions))]
        for _ in range(num_init):
            config = self.space.sample(rng)
            for f in init_fracs:
                self._init_queue.append((config, f))
        self._gp: GaussianProcess | None = None
        self._dispatches_since_fit = 0
        self.incumbent_every = incumbent_every
        self._num_reports = 0
        #: (report count, predicted-best config) snapshots — the Figure 9
        #: bench maps these to backend time and validates them offline.
        self.incumbent_history: list[tuple[int, Config]] = []

    # ----------------------------------------------------------------- API

    def next_job(self) -> Job | None:
        if self.max_trials is not None and self.num_trials >= self.max_trials:
            return None
        if self._init_queue:
            config, fraction = self._init_queue.pop(0)
        else:
            config, fraction = self._propose()
        trial = self.new_trial(config)
        trial.metadata["fraction"] = fraction
        return self.make_job(trial, fraction * self.max_resource, from_checkpoint=False)

    def report(self, job: Job, loss: float) -> None:
        self.note_result(job, loss)
        trial = self.trials[job.trial_id]
        trial.status = TrialStatus.COMPLETED
        fraction = trial.metadata["fraction"]
        self._x.append(self._encode(job.config, fraction))
        self._y.append(float(loss) if np.isfinite(loss) else max(self._finite_y(), default=1.0))
        self._gp = None
        self._num_reports += 1
        if self._num_reports % self.incumbent_every == 0:
            best = self.incumbent()
            if best is not None:
                self.incumbent_history.append((self._num_reports, best))

    def is_done(self) -> bool:
        if self.max_trials is None or self.num_trials < self.max_trials:
            return False
        return not any(t.status == TrialStatus.RUNNING for t in self.trials.values())

    def incumbent(self) -> Config | None:
        """Config with the lowest predicted loss at the full dataset.

        This is the Fabolas incumbent rule from Appendix A.2 ("the
        configuration with the lowest predicted validation loss on the full
        dataset"); its true quality is measured offline by the runner.
        """
        if not self._x:
            return None
        gp = self._gp if self._gp is not None else self._fit_if_needed(force=True, tune=False)
        observed = np.stack(self._x)
        # Long runs accumulate tens of thousands of observations; ranking all
        # of them per incumbent probe is O(n_fit x n) — restrict the probe to
        # the lowest-loss observations plus the most recent ones.
        if len(observed) > 512:
            order = np.argsort(np.asarray(self._y))
            tail = np.arange(len(observed) - 256, len(observed))
            keep = np.unique(np.concatenate([order[:256], tail]))
            observed = observed[keep]
        at_full = observed.copy()
        at_full[:, -1] = 1.0
        mean, _ = gp.predict(at_full)
        best = int(np.argmin(mean))
        return self.encoder.decode(observed[best, :-1])

    # ------------------------------------------------------------- model

    def _encode(self, config: Config, fraction: float) -> np.ndarray:
        return np.concatenate([self.encoder.encode(config), [self._encode_fraction(fraction)]])

    def _finite_y(self) -> list[float]:
        return [y for y in self._y if np.isfinite(y)]

    def _propose(self) -> tuple[Config, float]:
        gp = self._fit_if_needed()
        configs = self.encoder.sample_unit(self.num_candidates, self.rng)
        at_full = np.hstack([configs, np.ones((len(configs), 1))])
        mean_full, std_full = gp.predict(at_full)
        full_obs = [y for x, y in zip(self._x, self._y) if x[-1] == 1.0 and np.isfinite(y)]
        best = min(full_obs) if full_obs else min(self._finite_y(), default=0.0)
        ei = expected_improvement(mean_full, std_full, best)
        pick = int(np.argmax(ei))
        config_vec = configs[pick]
        # Fidelity choice: informative-per-cost.
        best_score, best_fraction = -np.inf, 1.0
        for f in self.fractions:
            x = np.concatenate([config_vec, [self._encode_fraction(f)]])[None, :]
            _, std = gp.predict(x)
            score = float(ei[pick]) * float(std[0]) / f
            if score > best_score:
                best_score, best_fraction = score, f
        return self.encoder.decode(config_vec), best_fraction

    def _encode_fraction(self, fraction: float) -> float:
        if self.fractions[0] >= 1:
            return 1.0
        return math.log(fraction / self.fractions[0]) / math.log(1.0 / self.fractions[0])

    def _fit_if_needed(self, force: bool = False, tune: bool = True) -> GaussianProcess:
        self._dispatches_since_fit += 1
        if not force and self._gp is not None and self._dispatches_since_fit < self.refit_every:
            return self._gp
        self._dispatches_since_fit = 0
        x = np.stack(self._x)
        y = np.asarray(self._y)
        if len(y) > self.max_fit_points:
            order = np.argsort(y)
            keep = np.concatenate(
                [
                    order[: self.max_fit_points // 2],
                    self.rng.choice(
                        order[self.max_fit_points // 2 :],
                        size=self.max_fit_points // 2,
                        replace=False,
                    ),
                ]
            )
            x, y = x[keep], y[keep]
        gp = GaussianProcess(kernel=Matern52(), noise=1e-3)
        if tune:
            gp.fit_tuned(x, y)
        else:
            gp.fit(x, y)
        self._gp = gp
        return gp
