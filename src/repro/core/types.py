"""Core value types shared by every scheduler and backend.

The vocabulary follows the paper:

* a **trial** is one hyperparameter configuration together with everything
  observed about it so far;
* a **job** is one unit of work handed to a worker — "train trial ``t`` until
  cumulative resource ``r``";
* a **measurement** is the validation loss observed when a job completes.

Resources are abstract non-negative numbers (SGD iterations, epochs, dataset
fractions — Section 3.1 lists the options); schedulers never interpret them
beyond ordering and arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

Config = dict[str, Any]

__all__ = ["Config", "Job", "Measurement", "Trial", "TrialStatus"]


class TrialStatus(enum.Enum):
    """Lifecycle of a trial."""

    PENDING = "pending"  # created, never run
    RUNNING = "running"  # a job for it is on a worker
    PAUSED = "paused"  # partially trained, awaiting possible promotion
    COMPLETED = "completed"  # trained to the maximum resource
    FAILED = "failed"  # its last job was dropped or raised
    STOPPED = "stopped"  # terminated early by a stopping rule / PBT exploit

    def is_terminal(self) -> bool:
        return self in (TrialStatus.COMPLETED, TrialStatus.FAILED, TrialStatus.STOPPED)


@dataclass(frozen=True, slots=True)
class Measurement:
    """One observed (resource, loss) point for a trial."""

    trial_id: int
    resource: float
    loss: float
    time: float = 0.0  # backend clock when observed


@dataclass(slots=True)
class Trial:
    """A hyperparameter configuration and its observation history."""

    trial_id: int
    config: Config
    status: TrialStatus = TrialStatus.PENDING
    resource: float = 0.0  # cumulative resource trained so far
    measurements: list[Measurement] = field(default_factory=list)
    rung: int = 0  # highest rung this trial occupies (SHA-family schedulers)
    bracket: int = 0  # bracket index (Hyperband-family schedulers)
    metadata: dict[str, Any] = field(default_factory=dict)

    def record(self, measurement: Measurement) -> None:
        """Append a measurement and advance the cumulative resource."""
        self.measurements.append(measurement)
        self.resource = max(self.resource, measurement.resource)

    @property
    def last_loss(self) -> float | None:
        """Most recently observed loss, or ``None`` if never measured."""
        return self.measurements[-1].loss if self.measurements else None

    @property
    def best_loss(self) -> float | None:
        """Lowest loss observed at any resource, or ``None``."""
        if not self.measurements:
            return None
        return min(m.loss for m in self.measurements)

    def loss_at(self, resource: float) -> float | None:
        """Loss observed at exactly ``resource``, or ``None``."""
        for m in reversed(self.measurements):
            if m.resource == resource:
                return m.loss
        return None


@dataclass(frozen=True, slots=True)
class Job:
    """A unit of work: train ``trial_id`` from its checkpoint up to ``resource``.

    ``resource`` is cumulative, so the incremental work for a checkpointed
    objective is ``resource - checkpoint_resource``.  ``rung`` and ``bracket``
    tag where the result should be filed by SHA-family schedulers; other
    schedulers leave them at their defaults.

    ``inherit_from`` asks the backend to seed this trial's training state
    from another trial's checkpoint before running — PBT's exploit step
    ("both weights and hyperparameters are copied over", Appendix A.3).
    """

    job_id: int
    trial_id: int
    config: Config
    resource: float
    checkpoint_resource: float = 0.0
    rung: int = 0
    bracket: int = 0
    inherit_from: int | None = None

    @property
    def delta_resource(self) -> float:
        """Incremental resource this job must pay for when checkpointing."""
        return self.resource - self.checkpoint_resource


class IdAllocator:
    """Monotonic id source for trials and jobs (deterministic, no globals).

    Backed by a plain integer so the allocation cursor can be captured in a
    :meth:`~repro.study.Study.snapshot` and restored exactly.
    """

    def __init__(self) -> None:
        self._next = 0

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    def state(self) -> int:
        """The next id that would be handed out."""
        return self._next

    def load(self, value: int) -> None:
        """Restore the allocation cursor captured by :meth:`state`."""
        self._next = int(value)
