"""Infinite-horizon SHA via the doubling trick (Section 3.3's foil).

Section 3.3 contrasts ASHA's smooth infinite-horizon generalisation with
synchronous SHA, which "relies on the doubling trick and must rerun
brackets with larger budgets to increase the maximum resource".  This module
implements that foil faithfully so the latency comparison can actually be
run: each completed bracket is followed by a fresh bracket whose maximum
resource is ``eta`` times larger (so budgets double in the ``eta = 2``
case that names the trick), with ``n`` scaled to keep Algorithm 1's
``n >= eta**s_max`` requirement satisfied.

The consequence the paper calls out is measurable here: the interval
between outputs doubles from bracket to bracket, whereas infinite-horizon
ASHA emits progressively deeper results continuously (see
``tests/core/test_doubling.py`` and the latency ablation bench).
"""

from __future__ import annotations

import numpy as np

from ..searchspace import SearchSpace
from .bracket import Bracket
from .scheduler import Scheduler
from .sha import SynchronousSHA
from .types import Job

__all__ = ["DoublingSHA"]


class DoublingSHA(Scheduler):
    """Synchronous SHA with geometrically growing maximum resource.

    Parameters
    ----------
    min_resource:
        ``r``; fixed across brackets.
    initial_max_resource:
        ``R`` of the first bracket; bracket ``k`` uses ``R * eta**k``.
    eta:
        Reduction factor (and the budget growth factor between brackets).
    n:
        Configurations in the *first* bracket; bracket ``k`` samples
        ``n * eta**k`` so every rung keeps its occupancy ratios.
    max_brackets:
        Optional cap on how many brackets to run (``None`` = unbounded).
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        min_resource: float,
        initial_max_resource: float,
        eta: int = 2,
        n: int | None = None,
        max_brackets: int | None = None,
    ):
        super().__init__(space, rng)
        if initial_max_resource < min_resource:
            raise ValueError("initial_max_resource must be >= min_resource")
        probe = Bracket(min_resource, initial_max_resource, eta, 0)
        min_n = eta**probe.s_max
        self.min_resource = min_resource
        self.initial_max_resource = initial_max_resource
        self.eta = eta
        self.initial_n = n if n is not None else min_n
        if self.initial_n < min_n:
            raise ValueError(f"n must be >= eta**s_max = {min_n}")
        self.max_brackets = max_brackets
        self.bracket_index = 0
        #: (bracket index, winner trial id, resource) per completed bracket —
        #: the "outputs" whose inter-arrival interval doubles.
        self.outputs: list[tuple[int, int, float]] = []
        self._current: SynchronousSHA | None = None

    # ----------------------------------------------------------------- API

    def next_job(self) -> Job | None:
        if self._current is None:
            if self.max_brackets is not None and self.bracket_index >= self.max_brackets:
                return None
            self._current = self._make_bracket()
        job = self._current.next_job()
        if job is None and self._current.is_done():
            self._finish_bracket()
            return self.next_job()
        return job

    def report(self, job: Job, loss: float) -> None:
        assert self._current is not None
        self._current.report(job, loss)
        if self._current.is_done():
            self._finish_bracket()

    def on_job_failed(self, job: Job) -> None:
        assert self._current is not None
        self._current.on_job_failed(job)
        if self._current.is_done():
            self._finish_bracket()

    def on_trial_abandoned(self, job: Job) -> None:
        assert self._current is not None
        self._current.on_trial_abandoned(job)
        if self._current.is_done():
            self._finish_bracket()

    def is_done(self) -> bool:
        return (
            self.max_brackets is not None
            and self.bracket_index >= self.max_brackets
            and self._current is None
        )

    # ------------------------------------------------------------- helpers

    def current_max_resource(self) -> float:
        """``R`` of the bracket currently running (or next to run)."""
        return self.initial_max_resource * self.eta**self.bracket_index

    def _make_bracket(self) -> SynchronousSHA:
        sha = SynchronousSHA(
            self.space,
            self.rng,
            n=self.initial_n * self.eta**self.bracket_index,
            min_resource=self.min_resource,
            max_resource=self.current_max_resource(),
            eta=self.eta,
            grow_brackets=False,
        )
        sha.trials = self.trials
        sha._trial_ids = self._trial_ids
        sha._job_ids = self._job_ids
        return sha

    def _finish_bracket(self) -> None:
        assert self._current is not None
        top = self._current.runs[0].bracket.rung(
            self._current.runs[0].bracket.top_rung_index
        )
        winner = top.best()
        if winner is not None:
            self.outputs.append(
                (self.bracket_index, winner[0], self.current_max_resource())
            )
        self._current = None
        self.bracket_index += 1
