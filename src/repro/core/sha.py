"""Synchronous Successive Halving (Algorithm 1) and its parallelisation.

SHA evaluates ``n`` configurations at the base rung, keeps the top ``1/eta``,
multiplies the per-configuration budget by ``eta``, and repeats until the
maximum resource ``R`` is reached.  Promotions are *synchronous*: every job
in a rung must complete before any configuration advances, which makes the
algorithm sensitive to stragglers and dropped jobs (Section 3.1).

For distributed execution we implement the parallelisation scheme the paper
attributes to Falkner et al. [2018]: the surviving configurations of each
rung are trained in parallel, and **a new bracket is started whenever no job
is available in existing brackets** (``grow_brackets=True``).  With one
worker and ``grow_brackets=False`` this degrades exactly to sequential SHA.

Configurations are sampled lazily, one at a time, as base-rung jobs are
dispatched.  This is observationally identical to sampling ``n`` up front
(line 4 of Algorithm 1) for random sampling, and it is what allows BOHB
(:mod:`repro.core.bohb`) to reuse this class with a model-based sampler.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..searchers.base import Searcher
from ..searchers.random import FunctionSearcher
from ..searchspace import SearchSpace
from ..telemetry import EventKind
from .bracket import Bracket
from .scheduler import Scheduler
from .types import Config, Job, Measurement, TrialStatus

__all__ = ["SynchronousSHA"]


class _BracketRun:
    """One in-flight synchronous bracket: rung-by-rung elimination state."""

    def __init__(self, n: int, bracket: Bracket, owner: "SynchronousSHA", index: int):
        self.n = n
        self.bracket = bracket
        self.owner = owner  # for telemetry; rung barriers are events too
        self.index = index
        self.rung_index = 0
        # Trials not yet dispatched at the current rung.  Rung 0 entries are
        # placeholders (None) that the scheduler replaces with fresh samples.
        self.pending: deque[int | None] = deque([None] * n)
        self.outstanding: set[int] = set()
        self.done = False

    @property
    def blocked(self) -> bool:
        """True while the rung barrier is waiting on outstanding jobs."""
        return not self.pending and bool(self.outstanding) and not self.done

    def survivors_target(self) -> int:
        """``n_{i+1} = floor(n * eta**-(i+1))`` from the original ``n``."""
        return self.n // self.bracket.eta ** (self.rung_index + 1)

    def maybe_advance(self) -> None:
        """Close the rung if complete: promote the top ``1/eta`` survivors."""
        if self.pending or self.outstanding or self.done:
            return
        rung = self.bracket.rung(self.rung_index)
        telemetry = self.owner.telemetry
        if self.rung_index == self.bracket.top_rung_index:
            self.done = True
            if telemetry:
                telemetry.emit(
                    EventKind.RUNG_COMPLETED,
                    rung=self.rung_index,
                    bracket=self.index,
                    size=len(rung),
                    promoted=0,
                )
            return
        k = min(self.survivors_target(), len(rung))
        survivors = rung.top_k(k)
        if telemetry:
            telemetry.emit(
                EventKind.RUNG_COMPLETED,
                rung=self.rung_index,
                bracket=self.index,
                size=len(rung),
                promoted=len(survivors),
            )
        if not survivors:
            # Every job in the rung was dropped; nothing can advance.
            self.done = True
            return
        for trial_id in survivors:
            rung.mark_promoted(trial_id)
            if telemetry:
                telemetry.emit(
                    EventKind.PROMOTION,
                    trial_id=trial_id,
                    rung=self.rung_index + 1,
                    bracket=self.index,
                    from_rung=self.rung_index,
                )
        self.rung_index += 1
        self.pending.extend(survivors)


class SynchronousSHA(Scheduler):
    """Synchronous SHA with optional bracket growth for parallel settings.

    Parameters
    ----------
    n:
        Number of configurations per bracket (Algorithm 1's ``n``); must be at
        least ``eta**(s_max - s)`` so one configuration reaches ``R``.
    min_resource, max_resource, eta, early_stopping_rate:
        Bracket geometry; see :class:`~repro.core.bracket.Bracket`.  The
        finite horizon is required (``max_resource`` must be set).
    grow_brackets:
        If true, start a new bracket whenever no job is available in existing
        brackets (the paper's "synchronous SHA" in distributed settings).  If
        false, run exactly one bracket and finish.
    from_checkpoint:
        Whether promoted configurations resume from their checkpoint (pay the
        resource increment) or retrain from scratch.
    searcher:
        Optional :class:`~repro.searchers.base.Searcher` proposing base-rung
        configurations and receiving every rung result — ``KDESearcher``
        here *is* BOHB.  Default ``None``: uniform random sampling.
    sampler:
        Legacy escape hatch: a bare ``sampler(rng) -> config`` callable,
        wrapped in a feedback-less searcher.  Mutually exclusive with
        ``searcher``.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        n: int,
        min_resource: float,
        max_resource: float,
        eta: int = 4,
        early_stopping_rate: int = 0,
        grow_brackets: bool = False,
        from_checkpoint: bool = True,
        searcher: Searcher | None = None,
        sampler: Callable[[np.random.Generator], Config] | None = None,
    ):
        if sampler is not None:
            if searcher is not None:
                raise ValueError("pass either searcher= or the legacy sampler=, not both")
            searcher = FunctionSearcher(sampler)
        super().__init__(space, rng, searcher=searcher)
        if max_resource is None:
            raise ValueError("synchronous SHA requires a finite max_resource")
        probe = Bracket(min_resource, max_resource, eta, early_stopping_rate)
        required = eta ** (probe.s_max - early_stopping_rate)
        if n < required:
            raise ValueError(
                f"n={n} too small: need n >= eta**(s_max - s) = {required} so that "
                "at least one configuration is allocated R (Algorithm 1, line 3)"
            )
        self.n = n
        self.min_resource = min_resource
        self.max_resource = max_resource
        self.eta = eta
        self.early_stopping_rate = early_stopping_rate
        self.grow_brackets = grow_brackets
        self.from_checkpoint = from_checkpoint
        self.runs: list[_BracketRun] = []
        self._run_of_trial: dict[int, _BracketRun] = {}

    # ----------------------------------------------------------------- API

    def next_job(self) -> Job | None:
        job = self._dispatch_from_existing()
        if job is not None:
            return job
        if self.searcher_exhausted():
            return None
        if not self.runs or (self.grow_brackets and all(r.blocked or r.done for r in self.runs)):
            if self.runs and all(r.done for r in self.runs) and not self.grow_brackets:
                return None
            self._start_run()
            return self._dispatch_from_existing()
        return None

    def report(self, job: Job, loss: float) -> None:
        self.note_result(job, loss)
        trial = self.trials[job.trial_id]
        if self.searcher is not None:
            self.searcher.on_result(trial, job.resource, loss, rung=job.rung)
        run = self._run_of_trial[job.trial_id]
        run.outstanding.discard(job.trial_id)
        run.bracket.record(job.rung, job.trial_id, loss)
        if job.rung == run.bracket.top_rung_index:
            trial.status = TrialStatus.COMPLETED
            if self.searcher is not None:
                self.searcher.on_trial_complete(trial, loss)
        else:
            trial.status = TrialStatus.PAUSED
        run.maybe_advance()

    def report_batch(self, results: list[tuple[Job, float]]) -> None:
        """Batched :meth:`report` with the table lookups hoisted.

        Rung records and barrier advances stay strictly per-result (a rung
        may close mid-batch, and its telemetry must interleave exactly as
        the single-call path emits it); only the attribute chases and the
        searcher-absence branch are amortised.
        """
        if self.searcher is not None:
            for job, loss in results:
                self.report(job, loss)
            return
        trials = self.trials
        run_of_trial = self._run_of_trial
        for job, loss in results:
            trial_id = job.trial_id
            trial = trials[trial_id]
            trial.record(Measurement(trial_id=trial_id, resource=job.resource, loss=loss))
            run = run_of_trial[trial_id]
            run.outstanding.discard(trial_id)
            run.bracket.record(job.rung, trial_id, loss)
            if job.rung == run.bracket.top_rung_index:
                trial.status = TrialStatus.COMPLETED
            else:
                trial.status = TrialStatus.PAUSED
            run.maybe_advance()

    def on_job_failed(self, job: Job) -> None:
        """Drop the configuration from its rung so the barrier can still close.

        The configuration's result never enters the rung, so it cannot be
        promoted; the rung completes over the surviving jobs.  This is the
        lenient interpretation — the damage dropped jobs do to synchronous
        SHA (Appendix A.1) happens even so, because top performers are lost
        and rung completion is delayed by the remaining stragglers.
        """
        super().on_job_failed(job)
        if self.searcher is not None:
            self.searcher.on_trial_error(self.trials[job.trial_id])
        run = self._run_of_trial[job.trial_id]
        run.outstanding.discard(job.trial_id)
        run.maybe_advance()

    def is_done(self) -> bool:
        if not self.runs:
            return self.searcher_exhausted()
        if not all(r.done for r in self.runs):
            return False
        return not self.grow_brackets or self.searcher_exhausted()

    # ------------------------------------------------------------ snapshots

    def _state_extra(self) -> dict:
        return {
            "runs": [
                {
                    "rung_index": run.rung_index,
                    "pending": list(run.pending),
                    "outstanding": sorted(run.outstanding),
                    "done": run.done,
                    "bracket": run.bracket.state(),
                }
                for run in self.runs
            ],
            "run_of_trial": {str(tid): run.index for tid, run in self._run_of_trial.items()},
        }

    def _load_extra(self, extra: dict) -> None:
        self.runs = []
        for run_state in extra["runs"]:
            self._start_run()
            run = self.runs[-1]
            run.rung_index = int(run_state["rung_index"])
            run.pending = deque(None if e is None else int(e) for e in run_state["pending"])
            run.outstanding = {int(tid) for tid in run_state["outstanding"]}
            run.done = bool(run_state["done"])
            run.bracket.load(run_state["bracket"])
        self._run_of_trial = {
            int(tid): self.runs[index] for tid, index in extra["run_of_trial"].items()
        }

    # ------------------------------------------------------------- helpers

    def _start_run(self) -> None:
        bracket = Bracket(self.min_resource, self.max_resource, self.eta, self.early_stopping_rate)
        self.runs.append(_BracketRun(self.n, bracket, self, len(self.runs)))

    def _dispatch_from_existing(self) -> Job | None:
        for run_index, run in enumerate(self.runs):
            if not run.pending:
                continue
            entry = run.pending.popleft()
            if entry is None:
                if self.searcher_exhausted():
                    # No more proposals: drop this bracket's unfilled base-rung
                    # slots and let the rung barrier close over what exists.
                    run.pending = deque(e for e in run.pending if e is not None)
                    run.maybe_advance()
                    continue
                config, origin = self.propose_config()
                trial = self.new_trial(config, origin=origin)
                self._run_of_trial[trial.trial_id] = run
            else:
                trial = self.trials[entry]
            run.outstanding.add(trial.trial_id)
            trial.rung = run.rung_index
            trial.bracket = run_index
            return self.make_job(
                trial,
                run.bracket.rung_resource(run.rung_index),
                rung=run.rung_index,
                bracket=run_index,
                from_checkpoint=self.from_checkpoint,
            )
        return None

    # ------------------------------------------------------------ insight

    def completed_brackets(self) -> int:
        return sum(1 for r in self.runs if r.done)
