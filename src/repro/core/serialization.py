"""Deterministic state (de)serialization helpers for schedulers and searchers.

Everything a :class:`~repro.study.Study` snapshot or journal replay needs to
reconstruct boils down to three primitives:

* **rng state** — numpy ``Generator`` objects expose their bit generator's
  full state as a JSON-able dict of (big) integers; restoring it resumes the
  exact draw sequence.
* **trial state** — configs are canonicalised through the same
  :func:`~repro.objectives.base.config_payload` codec the objectives use to
  seed noise, so a config that round-trips through JSON hashes (and therefore
  trains) identically.
* **id cursors** — :class:`~repro.core.types.IdAllocator` is a plain integer.

These helpers are deliberately dependency-free: they produce plain dicts of
JSON-safe values, leaving the actual encoding to the journal/snapshot layer.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from ..objectives.base import config_payload
from .types import Measurement, Trial, TrialStatus

__all__ = [
    "config_state",
    "rng_state",
    "set_rng_state",
    "trial_from_state",
    "trial_state",
]


# Decoded canonical forms, interned by config identity like the payload
# cache in objectives.base: the same config is re-stated at every rung's
# ask record, in trial snapshots, and in trial-started telemetry.  Treat
# returned dicts as immutable — they are shared.
_STATE_CACHE: dict[int, tuple[dict[str, Any], dict[str, Any]]] = {}
_STATE_CACHE_CAP = 65536
_PLAIN_TYPES = frozenset((str, int, float, bool, type(None)))


def config_state(config: dict[str, Any]) -> dict[str, Any]:
    """Canonical JSON-safe form of a config (numpy scalars unwrapped).

    Interned per config object, and configs of plain Python scalars — the
    overwhelmingly common case, every ``space.sample`` draw — skip the
    JSON round-trip entirely: encode-then-decode of plain scalars is the
    identity (canonical encoders re-sort keys themselves, so key order is
    immaterial).  Exact ``type`` checks keep numpy scalars (which subclass
    Python's ``float``/``int``) on the canonicalising path.
    """
    key = id(config)
    hit = _STATE_CACHE.get(key)
    if hit is not None and hit[0] is config:
        return hit[1]
    for value in config.values():
        if type(value) not in _PLAIN_TYPES:
            state = json.loads(config_payload(config))
            break
    else:
        state = dict(config)
    if len(_STATE_CACHE) >= _STATE_CACHE_CAP:
        _STATE_CACHE.clear()
    _STATE_CACHE[key] = (config, state)
    return state


def rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """Capture a generator's bit-generator state (JSON-safe: ints and strs)."""
    return {
        "bit_generator": type(rng.bit_generator).__name__,
        "state": rng.bit_generator.state,
    }


def set_rng_state(rng: np.random.Generator, state: dict[str, Any]) -> None:
    """Restore a state captured by :func:`rng_state` into ``rng``.

    The bit generator type must match — silently feeding PCG64 state into a
    Philox generator would corrupt the stream instead of resuming it.
    """
    expected = state["bit_generator"]
    actual = type(rng.bit_generator).__name__
    if expected != actual:
        raise ValueError(f"rng state is for bit generator {expected!r}, generator has {actual!r}")
    rng.bit_generator.state = state["state"]


def trial_state(trial: Trial) -> dict[str, Any]:
    """Serialize one trial row: config, status, and measurement history."""
    return {
        "trial_id": trial.trial_id,
        "config": config_state(trial.config),
        "status": trial.status.value,
        "resource": trial.resource,
        "measurements": [[m.resource, m.loss, m.time] for m in trial.measurements],
        "rung": trial.rung,
        "bracket": trial.bracket,
        "metadata": dict(trial.metadata),
    }


def trial_from_state(state: dict[str, Any]) -> Trial:
    """Rebuild a :class:`Trial` from :func:`trial_state` output."""
    trial_id = int(state["trial_id"])
    trial = Trial(
        trial_id=trial_id,
        config=dict(state["config"]),
        status=TrialStatus(state["status"]),
        resource=float(state["resource"]),
        rung=int(state["rung"]),
        bracket=int(state["bracket"]),
        metadata=dict(state["metadata"]),
    )
    trial.measurements = [
        Measurement(trial_id=trial_id, resource=resource, loss=loss, time=time)
        for resource, loss, time in state["measurements"]
    ]
    return trial
