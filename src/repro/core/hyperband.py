"""Synchronous Hyperband: loop SHA brackets over early-stopping rates.

Hyperband [Li et al., 2018] hedges over the early-stopping rate by running
one SHA bracket for every rate ``s`` in ``{0, ..., s_max}`` and looping.  Per
the classic budget-balancing rule, bracket ``s`` evaluates

    ``n_s = ceil((s_max + 1) / (num_rungs_s) * eta**(s_max - s))``

configurations so every bracket consumes roughly the same total resource.
The experiments in Appendix A.3 loop through 5 brackets, from the most
aggressive (``s = 0``, ``r = R/256``) to plain random search at scale ``R``
(``s = 4``).

The scheduler exposes :attr:`completed_brackets` so the analysis layer can
implement both incumbent-accounting schemes from Appendix A.2 ("by rung"
vs "by bracket").
"""

from __future__ import annotations

import math

import numpy as np

from ..searchers.base import Searcher
from ..searchspace import SearchSpace
from .bracket import Bracket
from .scheduler import Scheduler
from .sha import SynchronousSHA
from .types import Job

__all__ = ["Hyperband", "hyperband_bracket_sizes"]


def hyperband_bracket_sizes(min_resource: float, max_resource: float, eta: int) -> list[int]:
    """Number of configurations ``n_s`` for each bracket ``s = 0..s_max``."""
    probe = Bracket(min_resource, max_resource, eta, 0)
    s_max = probe.s_max
    sizes = []
    for s in range(s_max + 1):
        num_rungs = s_max - s + 1
        n_s = math.ceil((s_max + 1) / num_rungs * eta ** (s_max - s))
        # Algorithm 1 line 3: at least one configuration must reach R.
        sizes.append(max(n_s, eta ** (s_max - s)))
    return sizes


class Hyperband(Scheduler):
    """Loop synchronous SHA brackets ``s = 0, 1, ..., s_max, 0, 1, ...``.

    Parameters
    ----------
    min_resource, max_resource, eta:
        Geometry shared by every bracket.
    from_checkpoint:
        Whether promotions within a bracket resume from checkpoints.
    max_loops:
        Optional number of full passes over all brackets; ``None`` loops
        forever (the backend's time budget terminates the search).
    searcher:
        Optional shared :class:`~repro.searchers.base.Searcher`: every SHA
        bracket proposes through it and feeds it every result, so the model
        accumulates observations across brackets.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng: np.random.Generator,
        *,
        min_resource: float,
        max_resource: float,
        eta: int = 4,
        from_checkpoint: bool = True,
        max_loops: int | None = None,
        searcher: Searcher | None = None,
    ):
        super().__init__(space, rng, searcher=searcher)
        self.min_resource = min_resource
        self.max_resource = max_resource
        self.eta = eta
        self.from_checkpoint = from_checkpoint
        self.max_loops = max_loops
        self.bracket_sizes = hyperband_bracket_sizes(min_resource, max_resource, eta)
        self.s_max = len(self.bracket_sizes) - 1
        self.completed_brackets = 0
        self._current: SynchronousSHA | None = None
        self._current_s = 0
        self._loops = 0

    # ----------------------------------------------------------------- API

    def next_job(self) -> Job | None:
        if self._current is None:
            if self.max_loops is not None and self._loops >= self.max_loops:
                return None
            self._current = self._make_bracket(self._current_s)
        job = self._current.next_job()
        if job is None and self._current.is_done():
            self._advance_bracket()
            return self.next_job()
        return job

    def next_job_batch(self, k: int) -> list[Job]:
        """Fill from the active SHA bracket in one call, rolling over on completion.

        Delegates to the inner bracket's ``next_job_batch`` and advances to
        the next bracket exactly where the single-call path would recurse,
        so the dispatched sequence is identical job for job.
        """
        jobs: list[Job] = []
        while len(jobs) < k:
            if self._current is None:
                if self.max_loops is not None and self._loops >= self.max_loops:
                    break
                self._current = self._make_bracket(self._current_s)
            current = self._current
            jobs.extend(current.next_job_batch(k - len(jobs)))
            if len(jobs) >= k:
                break
            if current.is_done():
                self._advance_bracket()
                continue
            break  # blocked on a rung barrier: a longer batch is not coming
        return jobs

    def report(self, job: Job, loss: float) -> None:
        sha = self._owner_of(job)
        sha.report(job, loss)
        if sha.is_done() and sha is self._current:
            self._advance_bracket()

    def on_job_failed(self, job: Job) -> None:
        sha = self._owner_of(job)
        sha.on_job_failed(job)
        if sha.is_done() and sha is self._current:
            self._advance_bracket()

    def on_trial_abandoned(self, job: Job) -> None:
        sha = self._owner_of(job)
        sha.on_trial_abandoned(job)
        if sha.is_done() and sha is self._current:
            self._advance_bracket()

    def is_done(self) -> bool:
        return (
            self.max_loops is not None
            and self._loops >= self.max_loops
            and self._current is None
        )

    # ------------------------------------------------------------ snapshots

    def _state_extra(self) -> dict:
        # The inner SHA shares this scheduler's trial table, id allocators,
        # rng and searcher, so only its bracket-local extra is serialized —
        # duplicating the shared tables would desync them on load.
        return {
            "completed_brackets": self.completed_brackets,
            "current_s": self._current_s,
            "loops": self._loops,
            "current": None if self._current is None else self._current._state_extra(),
        }

    def _load_extra(self, extra: dict) -> None:
        self.completed_brackets = int(extra["completed_brackets"])
        self._current_s = int(extra["current_s"])
        self._loops = int(extra["loops"])
        if extra["current"] is None:
            self._current = None
        else:
            self._current = self._make_bracket(self._current_s)
            self._current._load_extra(extra["current"])

    # ------------------------------------------------------------- helpers

    def _make_bracket(self, s: int) -> SynchronousSHA:
        sha = SynchronousSHA(
            self.space,
            self.rng,
            n=self.bracket_sizes[s],
            min_resource=self.min_resource,
            max_resource=self.max_resource,
            eta=self.eta,
            early_stopping_rate=s,
            grow_brackets=False,
            from_checkpoint=self.from_checkpoint,
            searcher=self.searcher,
        )
        # Share the trial table and id allocators so ids are globally unique
        # and the analysis layer sees one coherent history.
        sha.trials = self.trials
        sha._trial_ids = self._trial_ids
        sha._job_ids = self._job_ids
        sha.telemetry = self.telemetry
        return sha

    def attach_telemetry(self, hub):
        super().attach_telemetry(hub)
        if self._current is not None:
            self._current.telemetry = hub
        return self

    def _advance_bracket(self) -> None:
        if self._current is not None and self._current.is_done():
            self.completed_brackets += 1
        self._current = None
        self._current_s += 1
        if self._current_s > self.s_max:
            self._current_s = 0
            self._loops += 1

    def _owner_of(self, job: Job) -> SynchronousSHA:
        if self._current is None or job.trial_id not in self._current._run_of_trial:
            raise KeyError(f"job {job.job_id} does not belong to the active bracket")
        return self._current
