"""Protocol contract checker for schedulers (testing utility).

Wrap any scheduler in :class:`ContractChecker` and it asserts the
scheduler/backend protocol invariants on every interaction:

* every reported/failed job was previously dispatched and not yet resolved;
* a trial never trains backwards (job target >= its checkpoint);
* at most one in-flight job per trial (no scheduler in this library ever
  double-books a configuration);
* ``is_done()`` never flips back to ``False`` once ``True``;
* requeued jobs (retry policies) are genuinely in flight, and abandoned
  trials are never requeued or dispatched again.

When the wrapped scheduler has a :class:`~repro.searchers.base.Searcher`
attached, the searcher protocol is audited too:

* every reported loss is forwarded to ``on_result`` exactly once;
* ``suggest`` is never called after the searcher reports ``is_done()``.

Used by the integration suite, and handy when developing new schedulers.
"""

from __future__ import annotations

from ..searchers.base import Searcher
from .scheduler import Scheduler
from .types import Job

__all__ = ["ContractChecker", "ContractViolation"]


class ContractViolation(AssertionError):
    """A scheduler broke the dispatch/report protocol."""


class ContractChecker(Scheduler):
    """Transparent scheduler wrapper asserting protocol invariants."""

    def __init__(self, inner: Scheduler):
        # Alias the inner scheduler's state; do not call super().__init__.
        self.inner = inner
        self.space = inner.space
        self.rng = inner.rng
        self.trials = inner.trials
        self.telemetry = inner.telemetry
        self._outstanding: dict[int, Job] = {}
        self._in_flight_trials: set[int] = set()
        self._abandoned_trials: set[int] = set()
        self._was_done = False
        self.jobs_seen = 0

    def attach_telemetry(self, hub):
        """Forward the hub to the wrapped scheduler (events come from it)."""
        self.telemetry = hub
        self.inner.attach_telemetry(hub)
        return self

    # ----------------------------------------------------------------- API

    @property
    def searcher(self) -> Searcher | None:
        return self.inner.searcher

    def next_job(self) -> Job | None:
        searcher = self.inner.searcher
        if searcher is not None:
            was_exhausted = searcher.is_done()
            suggestions_before = searcher.num_suggestions
        job = self.inner.next_job()
        if searcher is not None and was_exhausted:
            if searcher.num_suggestions != suggestions_before:
                raise ContractViolation(
                    f"{type(self.inner).__name__} called suggest() on an "
                    f"exhausted {type(searcher).__name__} (is_done() was True)"
                )
        if job is None:
            return None
        self.jobs_seen += 1
        if job.job_id in self._outstanding:
            raise ContractViolation(f"job id {job.job_id} dispatched twice")
        if job.trial_id in self._in_flight_trials:
            raise ContractViolation(
                f"trial {job.trial_id} double-booked (already has an in-flight job)"
            )
        if job.trial_id in self._abandoned_trials:
            raise ContractViolation(
                f"trial {job.trial_id} dispatched again after being abandoned"
            )
        if job.resource < job.checkpoint_resource:
            raise ContractViolation(
                f"job {job.job_id} trains backwards: "
                f"{job.checkpoint_resource} -> {job.resource}"
            )
        if job.resource <= 0:
            raise ContractViolation(f"job {job.job_id} has non-positive target resource")
        self._outstanding[job.job_id] = job
        self._in_flight_trials.add(job.trial_id)
        return job

    def report(self, job: Job, loss: float) -> None:
        self._resolve(job)
        searcher = self.inner.searcher
        if searcher is not None:
            results_before = searcher.num_results
        self.inner.report(job, loss)
        if searcher is not None:
            forwarded = searcher.num_results - results_before
            if forwarded != 1:
                raise ContractViolation(
                    f"{type(self.inner).__name__} forwarded the loss of job "
                    f"{job.job_id} to on_result {forwarded} times (must be exactly 1)"
                )

    def on_job_failed(self, job: Job) -> None:
        self._resolve(job)
        self.inner.on_job_failed(job)

    def on_job_requeued(self, job: Job) -> None:
        # The job stays in flight: the backend will re-dispatch it verbatim,
        # so it is NOT resolved here — the eventual report/failure is.
        if job.job_id not in self._outstanding:
            raise ContractViolation(
                f"job {job.job_id} requeued but never dispatched (or already resolved)"
            )
        if job.trial_id in self._abandoned_trials:
            raise ContractViolation(
                f"trial {job.trial_id} requeued after being abandoned"
            )
        self.inner.on_job_requeued(job)

    def on_trial_abandoned(self, job: Job) -> None:
        self._resolve(job)
        self._abandoned_trials.add(job.trial_id)
        self.inner.on_trial_abandoned(job)

    def is_done(self) -> bool:
        done = self.inner.is_done()
        if self._was_done and not done:
            raise ContractViolation("is_done() flipped from True back to False")
        self._was_done = self._was_done or done
        return done

    def best_trial(self):
        return self.inner.best_trial()

    @property
    def num_trials(self) -> int:
        return self.inner.num_trials

    def state_dict(self) -> dict:
        """Delegate to the wrapped scheduler.

        The checker's own audit tables (outstanding jobs, in-flight trials,
        monotonic-done latch) describe the *run*, not the algorithm; a
        restored study starts a fresh audit over the resumed interactions.
        """
        return self.inner.state_dict()

    def load_state(self, state: dict) -> None:
        self.inner.load_state(state)
        self._outstanding.clear()
        self._in_flight_trials.clear()
        self._abandoned_trials.clear()
        self._was_done = False

    # ------------------------------------------------------------- helpers

    def _resolve(self, job: Job) -> None:
        if job.job_id not in self._outstanding:
            raise ContractViolation(f"job {job.job_id} resolved but never dispatched")
        del self._outstanding[job.job_id]
        self._in_flight_trials.discard(job.trial_id)

    @property
    def outstanding_jobs(self) -> int:
        return len(self._outstanding)
