"""Journal-backed studies: the crash-safe ask/tell core behind every backend.

See ``docs/study.md`` for the full tour.  The short version::

    from repro.study import Study

    study = Study(scheduler, journal="run.jsonl")
    while not study.is_done():
        job = study.ask()
        if job is None:
            break
        loss = train(job.config, job.resource)
        study.tell(job, loss)

    resumed = Study.resume("run.jsonl")   # after a crash
"""

from .journal import (
    JOURNAL_VERSION,
    Journal,
    JournalError,
    JournalWriter,
    encode_record,
    read_journal,
    read_wal,
)
from .multiplex import MultiplexResult, StudyMultiplexer
from .spec import build_spec, decode_space, encode_space, scheduler_from_spec
from .study import JournalReplayError, Study

__all__ = [
    "JOURNAL_VERSION",
    "Journal",
    "JournalError",
    "JournalReplayError",
    "JournalWriter",
    "MultiplexResult",
    "Study",
    "StudyMultiplexer",
    "build_spec",
    "decode_space",
    "encode_record",
    "encode_space",
    "read_journal",
    "read_wal",
    "scheduler_from_spec",
]
