"""Study: the ask/tell core every backend drives, with a crash-safe journal.

A :class:`Study` owns a scheduler (its searcher, RNG, and trial table
included) and exposes the handful of interactions a backend needs — ``ask``
for the next job, ``tell`` for a finished one, and the three fault hooks —
while appending one typed record per interaction to a JSONL
:class:`~repro.study.journal.Journal`.  The ``tell`` append happens
*before* the scheduler sees the loss (write-ahead), so a crash can lose
work, but never a recorded result.

Two resume modes exist because the two kinds of backend differ in what can
be re-executed:

* ``mode="replay"`` (simulated clock: :class:`~repro.backend.SimulatedCluster`
  and :class:`~repro.backend.ProcessPoolBackend`) re-runs the experiment
  from t=0 against a freshly constructed scheduler/cluster/objective and
  *verifies* every interaction against the journal instead of re-appending
  it.  Training whose loss the journal already holds is skipped (the
  backends consult :meth:`cached_loss` / :meth:`has_cached_loss`), and once
  the cursor is exhausted the run continues live, appending to the same
  file — the resumed journal, telemetry stream, and trace are
  byte-identical to an uninterrupted run's.
* ``mode="restore"`` (wall-clock :class:`~repro.backend.ThreadPoolBackend`,
  whose timings cannot be reproduced) eagerly drives the scheduler through
  the journalled interactions once; jobs that were asked but never resolved
  are handed out again by the next :meth:`ask` calls.
"""

from __future__ import annotations

import os
from collections import deque
from time import perf_counter
from typing import Any, Iterable

from ..core.scheduler import Scheduler
from ..core.serialization import config_state
from ..core.types import Job, Trial
from ..searchers.base import Searcher
from ..telemetry.runtime import study_probes
from .journal import (
    JOURNAL_VERSION,
    Journal,
    JournalError,
    JournalWriter,
    encode_record,
    read_journal,
)
from .spec import scheduler_from_spec

__all__ = ["JournalReplayError", "Study"]


class JournalReplayError(JournalError):
    """Replay diverged from the journal (wrong scheduler, seed, or scenario)."""


class Study:
    """Ask/tell facade over a scheduler, with an optional write-ahead journal.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.core.Scheduler` (wrappers like
        :class:`~repro.core.ContractChecker` included).
    journal:
        ``None`` (no journaling), a path (a fresh :class:`Journal` is
        created there), or an already-open :class:`Journal`.
    spec:
        Header recipe recorded when ``journal`` is a path — see
        :func:`repro.study.spec.build_spec`.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        journal: Journal | str | os.PathLike[str] | None = None,
        spec: dict[str, Any] | None = None,
    ):
        self.scheduler = scheduler
        self.paused = False
        if journal is None or isinstance(journal, Journal):
            self.journal = journal
        else:
            self.journal = Journal(journal, spec=spec)
        # Replay cursor: records still to be verified against live re-execution.
        self._cursor: list[dict[str, Any]] = []
        self._cursor_pos = 0
        # job_id -> journalled loss for every tell the cursor has not consumed.
        self._replay_tells: dict[int, float] = {}
        # Restore-mode asks the crash left unresolved; re-dispatched by
        # ask() in journal order.  A deque: a restore can leave hundreds of
        # in-flight asks, and list.pop(0) made re-dispatch quadratic.
        self._orphaned: deque[Job] = deque()
        # None unless a runtime registry is installed (repro.telemetry.runtime).
        self._probes = study_probes()

    # ------------------------------------------------------------- ask/tell

    def ask(self) -> Job | None:
        """The next job to run, or ``None`` (paused, rung barrier, or done).

        Every job handed out is journalled as an ``ask`` record; a ``None``
        is not an event and never journalled.
        """
        if self.paused:
            return None
        if self._orphaned:
            # Restore mode: the crash left this job in flight.  Its ask
            # record is already on disk, so hand it out without journaling.
            return self._orphaned.popleft()
        job = self.scheduler.next_job()
        if job is None:
            return None
        if self.journal is not None or self._cursor_pos < len(self._cursor):
            # Unjournalled live studies skip building the record outright:
            # the config round-trip through canonical JSON dominated the
            # simulator's ask cost and the dict was thrown away unseen.
            self._record(self._ask_record(job))
        return job

    def ask_batch(self, k: int) -> list[Job]:
        """Up to ``k`` jobs in one call; short means blocked/paused/done.

        Equivalent to ``k`` :meth:`ask` calls with the trailing ``None``
        dropped — same jobs, same journal bytes — but the scheduler fills
        the batch through :meth:`~repro.core.Scheduler.next_job_batch` and
        the journal takes the ask records as one appended block.
        """
        if self.paused or k <= 0:
            return []
        jobs: list[Job] = []
        while self._orphaned and len(jobs) < k:
            jobs.append(self._orphaned.popleft())
        n_orphaned = len(jobs)
        if n_orphaned < k:
            jobs.extend(self.scheduler.next_job_batch(k - n_orphaned))
        fresh = jobs[n_orphaned:]
        if fresh:
            if self._cursor_pos < len(self._cursor):
                for job in fresh:
                    self._record(self._ask_record(job))
            elif self.journal is not None:
                self.journal.append_batch([self._ask_record(job) for job in fresh])
        if jobs and self._probes is not None:
            self._probes.ask_batch_jobs.observe(float(len(jobs)))
        return jobs

    def _ask_record(self, job: Job) -> dict[str, Any]:
        return {
            "kind": "ask",
            "job_id": job.job_id,
            "trial_id": job.trial_id,
            "config": config_state(job.config),
            "resource": job.resource,
            "checkpoint_resource": job.checkpoint_resource,
            "rung": job.rung,
            "bracket": job.bracket,
            "inherit_from": job.inherit_from,
        }

    def tell(self, job: Job, loss: float, *, time: float = 0.0) -> None:
        """Report a finished job's loss.

        The journal append precedes ``scheduler.report`` (write-ahead): a
        crash between the two re-applies the tell on resume instead of
        losing it.
        """
        probes = self._probes
        started = 0.0 if probes is None else perf_counter()
        if self.journal is not None or self._cursor_pos < len(self._cursor):
            self._record(self._tell_record(job, loss, time))
        self.scheduler.report(job, loss)
        if probes is not None:
            probes.tell_batch_results.observe(1.0)
            probes.tell_seconds.observe(perf_counter() - started)

    def tell_batch(
        self, results: Iterable[tuple[Job, float]], *, time: float = 0.0
    ) -> None:
        """Report a batch of finished jobs' losses, in order.

        Journal bytes and scheduler effects are identical to sequential
        :meth:`tell` calls; the write-ahead property extends to the whole
        batch (every record lands before any loss reaches the scheduler,
        so a crash mid-batch re-applies the journalled tells on resume),
        and the journal takes the block with a single flush.
        """
        results = list(results)
        if not results:
            return
        probes = self._probes
        started = 0.0 if probes is None else perf_counter()
        if self._cursor_pos < len(self._cursor):
            for job, loss in results:
                self._record(self._tell_record(job, loss, time))
        elif self.journal is not None:
            self.journal.append_batch(
                [self._tell_record(job, loss, time) for job, loss in results]
            )
        self.scheduler.report_batch(results)
        if probes is not None:
            probes.tell_batch_results.observe(float(len(results)))
            probes.tell_seconds.observe(perf_counter() - started)

    def _tell_record(self, job: Job, loss: float, time: float) -> dict[str, Any]:
        return {
            "kind": "tell",
            "job_id": job.job_id,
            "trial_id": job.trial_id,
            "loss": loss,
            "resource": job.resource,
            "time": time,
        }

    def on_job_failed(self, job: Job) -> None:
        """A job crashed with no retry policy — the attempt is forfeited."""
        self._record({"kind": "fail", "job_id": job.job_id, "trial_id": job.trial_id})
        self.scheduler.on_job_failed(job)

    def on_job_requeued(self, job: Job) -> None:
        """A failed job will be re-dispatched verbatim after backoff."""
        self._record({"kind": "requeue", "job_id": job.job_id, "trial_id": job.trial_id})
        self.scheduler.on_job_requeued(job)

    def on_trial_abandoned(self, job: Job) -> None:
        """A trial exhausted its retry budget and is quarantined."""
        self._record({"kind": "abandon", "job_id": job.job_id, "trial_id": job.trial_id})
        self.scheduler.on_trial_abandoned(job)

    def _record(self, record: dict[str, Any]) -> None:
        """Verify against the replay cursor, or append live."""
        if self._cursor_pos < len(self._cursor):
            expected = self._cursor[self._cursor_pos]
            if encode_record(record) != encode_record(expected):
                raise JournalReplayError(
                    f"replay diverged at journal line {self._cursor_pos + 2}: "
                    f"journal has {encode_record(expected)}, "
                    f"re-execution produced {encode_record(record)}; "
                    "was the study reconstructed with the same scheduler, "
                    "seed, and backend scenario?"
                )
            self._cursor_pos += 1
            if record["kind"] == "tell":
                self._replay_tells.pop(record["job_id"], None)
            return
        if self.journal is not None:
            self.journal.append(record)

    # --------------------------------------------------------- replay peeks

    @property
    def replaying(self) -> bool:
        """Whether a resume cursor is still verifying against the journal."""
        return self._cursor_pos < len(self._cursor)

    def cached_loss(self, job: Job) -> float | None:
        """The journalled loss for ``job`` iff its tell is the next record.

        Backends call this when a job completes during replay: a hit means
        training can be skipped outright and the recorded loss reported.
        """
        if self._cursor_pos < len(self._cursor):
            nxt = self._cursor[self._cursor_pos]
            if nxt.get("kind") == "tell" and nxt.get("job_id") == job.job_id:
                return float(nxt["loss"])
        return None

    def has_cached_loss(self, job_id: int) -> bool:
        """Whether the journal still holds a result for this job (peek-ahead).

        Used at *dispatch* time: a job whose result is anywhere later in
        the journal need not be trained speculatively.
        """
        return job_id in self._replay_tells

    # ------------------------------------------------------ snapshot/resume

    def snapshot(self) -> dict[str, Any]:
        """Deterministically serializable study state (JSON-compatible)."""
        return {
            "version": JOURNAL_VERSION,
            "scheduler": self.scheduler.state_dict(),
            "paused": self.paused,
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict[str, Any],
        *,
        scheduler: Scheduler,
        journal: Journal | str | os.PathLike[str] | None = None,
        spec: dict[str, Any] | None = None,
    ) -> Study:
        """Rebuild a study from :meth:`snapshot` onto a same-shape scheduler."""
        scheduler.load_state(snapshot["scheduler"])
        study = cls(scheduler, journal=journal, spec=spec)
        study.paused = bool(snapshot.get("paused", False))
        return study

    @classmethod
    def resume(
        cls,
        journal_path: str | os.PathLike[str],
        *,
        scheduler: Scheduler | None = None,
        mode: str = "replay",
        journal_writer: "JournalWriter | None" = None,
    ) -> Study:
        """Reopen a journal and bring a scheduler back to its recorded state.

        The journal's torn tail (if the previous process died mid-append)
        is healed in place.  With ``scheduler=None`` the scheduler is
        reconstructed from the recipe in the journal header, which exists
        whenever the study was built from registered names.

        ``mode="replay"`` arms the verification cursor and returns
        immediately; hand the study to the same simulated backend and the
        run re-executes deterministically, skipping journalled training.
        ``mode="restore"`` drives the scheduler through the records eagerly
        (for the wall-clock thread backend, whose timings cannot replay).

        ``journal_writer`` switches the reopened journal into group-commit
        mode (see :class:`~repro.study.journal.JournalWriter`), so a crashed
        study can resume *inside* a :class:`~repro.study.StudyMultiplexer`.
        """
        if mode not in ("replay", "restore"):
            raise ValueError(f"mode must be 'replay' or 'restore', got {mode!r}")
        records, _, _ = read_journal(journal_path)
        if not records or records[0].get("kind") != "journal_header":
            raise JournalError(f"{os.fspath(journal_path)}: missing journal header")
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{os.fspath(journal_path)}: journal version "
                f"{header.get('version')!r} not supported (expected {JOURNAL_VERSION})"
            )
        if scheduler is None:
            spec = header.get("spec")
            if spec is None:
                raise JournalError(
                    f"{os.fspath(journal_path)}: journal header has no scheduler "
                    "recipe; pass the reconstructed scheduler explicitly"
                )
            scheduler = scheduler_from_spec(spec)
        body = records[1:]
        # Opening in append mode truncates the torn tail on disk, so `body`
        # is exactly what remains in the file.
        journal = Journal(journal_path, mode="a", writer=journal_writer)
        study = cls(scheduler, journal=journal)
        if mode == "replay":
            study._cursor = body
            study._replay_tells = {
                int(record["job_id"]): float(record["loss"])
                for record in body
                if record.get("kind") == "tell"
            }
        else:
            study._restore(body)
        return study

    def _restore(self, body: list[dict[str, Any]]) -> None:
        """Eagerly re-drive the scheduler through the journalled records."""
        outstanding: dict[int, Job] = {}

        def resolve(record: dict[str, Any], index: int, *, keep: bool = False) -> Job:
            job = outstanding.get(record["job_id"]) if keep else outstanding.pop(
                record["job_id"], None
            )
            if job is None:
                raise JournalReplayError(
                    f"restore diverged at journal line {index + 2}: "
                    f"{record['kind']} for job {record['job_id']} which is not in flight"
                )
            return job

        for i, record in enumerate(body):
            kind = record.get("kind")
            if kind == "ask":
                job = self.scheduler.next_job()
                if job is None or job.job_id != record["job_id"]:
                    produced = "nothing" if job is None else f"job {job.job_id}"
                    raise JournalReplayError(
                        f"restore diverged at journal line {i + 2}: journal asked "
                        f"job {record['job_id']}, scheduler produced {produced}"
                    )
                outstanding[job.job_id] = job
            elif kind == "tell":
                self.scheduler.report(resolve(record, i), float(record["loss"]))
            elif kind == "fail":
                self.scheduler.on_job_failed(resolve(record, i))
            elif kind == "requeue":
                self.scheduler.on_job_requeued(resolve(record, i, keep=True))
            elif kind == "abandon":
                self.scheduler.on_trial_abandoned(resolve(record, i))
            else:
                raise JournalError(f"unknown journal record kind {kind!r} on line {i + 2}")
        self._orphaned = deque(outstanding.values())

    @property
    def orphaned_jobs(self) -> list[Job]:
        """Restore-mode jobs asked before the crash but never resolved."""
        return list(self._orphaned)

    # ------------------------------------------------------------ lifecycle

    def pause(self) -> None:
        """Stop handing out jobs; in-flight results are still accepted."""
        self.paused = True

    def unpause(self) -> None:
        """Resume handing out jobs."""
        self.paused = False

    def finalize(self) -> None:
        """Make the journal durable (flush + fsync); call at end of run."""
        if self.journal is not None:
            self.journal.finalize()

    def close(self) -> None:
        """Close the journal file (the study itself stays usable unjournalled)."""
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    # ---------------------------------------------------------- passthrough

    def is_done(self) -> bool:
        """Whether the scheduler will never produce another job."""
        return self.scheduler.is_done()

    @property
    def telemetry(self):
        return self.scheduler.telemetry

    def attach_telemetry(self, hub) -> Study:
        """Forward the hub to the scheduler (events come from it)."""
        self.scheduler.attach_telemetry(hub)
        return self

    @property
    def searcher(self) -> Searcher | None:
        return self.scheduler.searcher

    @property
    def space(self):
        return self.scheduler.space

    @property
    def rng(self):
        return self.scheduler.rng

    @property
    def trials(self) -> dict[int, Trial]:
        return self.scheduler.trials

    @property
    def num_trials(self) -> int:
        return self.scheduler.num_trials

    def best_trial(self) -> Trial | None:
        return self.scheduler.best_trial()

    def __repr__(self) -> str:
        journal = self.journal.path if self.journal is not None else None
        return (
            f"Study({type(self.scheduler).__name__}, journal={journal!r}, "
            f"trials={self.num_trials})"
        )
