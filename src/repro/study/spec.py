"""Journal-header specs: the recipe to rebuild a study's scheduler by name.

A journal can only bring a scheduler back to its recorded state if an
*identically constructed* scheduler exists to replay against.  When a study
is built from registered names (``tune(scheduler="asha", searcher="kde",
seed=7, ...)``) that construction is a pure function of JSON-serialisable
ingredients, so the journal header records them and
:meth:`repro.study.Study.resume` can reconstruct the scheduler unaided.
Anything bespoke — a custom :class:`~repro.searchspace.domains.Domain`
subclass, a pre-built searcher instance, non-JSON kwargs — yields a
``None`` spec, and resume then requires the caller to pass the
reconstructed scheduler explicitly.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from ..core.registry import build_scheduler
from ..core.scheduler import Scheduler
from ..searchers.registry import build_searcher
from ..searchspace import Choice, IntUniform, LogUniform, QUniform, SearchSpace, Uniform

__all__ = ["build_spec", "decode_space", "encode_space", "scheduler_from_spec"]


def encode_space(space: SearchSpace) -> dict[str, dict[str, Any]] | None:
    """JSON form of a search space, or ``None`` for unknown domain types."""
    out: dict[str, dict[str, Any]] = {}
    for name in space.names:
        dom = space[name]
        if isinstance(dom, Uniform):
            out[name] = {"type": "uniform", "low": dom.low, "high": dom.high}
        elif isinstance(dom, LogUniform):
            out[name] = {"type": "loguniform", "low": dom.low, "high": dom.high}
        elif isinstance(dom, IntUniform):
            out[name] = {"type": "intuniform", "low": dom.low, "high": dom.high}
        elif isinstance(dom, QUniform):
            out[name] = {"type": "quniform", "low": dom.low, "high": dom.high, "q": dom.q}
        elif isinstance(dom, Choice):
            values = list(dom.values)
            try:
                json.dumps(values)
            except TypeError:
                return None  # non-JSON categorical values (objects, ...)
            out[name] = {"type": "choice", "values": values}
        else:
            return None  # custom Domain subclass — not name-reconstructable
    return out


def decode_space(state: dict[str, dict[str, Any]]) -> SearchSpace:
    """Inverse of :func:`encode_space`."""
    domains: dict[str, Any] = {}
    for name, dom in state.items():
        kind = dom["type"]
        if kind == "uniform":
            domains[name] = Uniform(dom["low"], dom["high"])
        elif kind == "loguniform":
            domains[name] = LogUniform(dom["low"], dom["high"])
        elif kind == "intuniform":
            domains[name] = IntUniform(int(dom["low"]), int(dom["high"]))
        elif kind == "quniform":
            domains[name] = QUniform(dom["low"], dom["high"], dom["q"])
        elif kind == "choice":
            domains[name] = Choice(dom["values"])
        else:
            raise ValueError(f"unknown domain type {kind!r} in journal spec")
    return SearchSpace(domains)


def _strict_default(value: Any) -> Any:
    """Unwrap numpy scalars; refuse anything else (keeps specs honest)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON-serialisable: {value!r}")


def build_spec(
    *,
    scheduler: str,
    space: SearchSpace,
    seed: int,
    min_resource: float,
    max_resource: float,
    eta: int,
    scheduler_kwargs: dict[str, Any] | None = None,
    searcher: str | None = None,
    searcher_kwargs: dict[str, Any] | None = None,
) -> dict[str, Any] | None:
    """The journal-header recipe for a name-built scheduler, or ``None``.

    ``None`` means some ingredient cannot round-trip through JSON; the
    journal then carries no recipe and resume needs an explicit scheduler.
    """
    encoded = encode_space(space)
    if encoded is None:
        return None
    spec = {
        "scheduler": scheduler,
        "space": encoded,
        "seed": seed,
        "min_resource": min_resource,
        "max_resource": max_resource,
        "eta": eta,
        "scheduler_kwargs": dict(scheduler_kwargs or {}),
        "searcher": searcher,
        "searcher_kwargs": dict(searcher_kwargs or {}),
    }
    try:
        return json.loads(json.dumps(spec, default=_strict_default))
    except (TypeError, ValueError):
        return None


def scheduler_from_spec(spec: dict[str, Any]) -> Scheduler:
    """Reconstruct the exact scheduler a journal was recorded under.

    Mirrors the construction order in :func:`repro.tune.tune`: the RNG is
    seeded first, the searcher built from its name, then the scheduler from
    the registry — so a replayed run draws the identical random stream.
    """
    space = decode_space(spec["space"])
    rng = np.random.default_rng(spec["seed"])
    searcher = None
    if spec.get("searcher"):
        searcher = build_searcher(spec["searcher"], dict(spec.get("searcher_kwargs") or {}))
    return build_scheduler(
        spec["scheduler"],
        space,
        rng,
        min_resource=spec["min_resource"],
        max_resource=spec["max_resource"],
        eta=int(spec["eta"]),
        kwargs=dict(spec.get("scheduler_kwargs") or {}),
        searcher=searcher,
    )
