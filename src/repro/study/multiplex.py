"""StudyMultiplexer: thousands of concurrent studies in one driver loop.

The paper's system is a *service*: many users' tuning workloads share one
deployment, and per-study overhead is what caps how many studies a single
process can host.  PR 7/8 built the per-study substrate (journal-backed
ask/tell :class:`~repro.study.Study`, batched ``ask_batch``/``tell_batch``,
the calendar-queue :class:`~repro.backend.events.EventQueue`); the
multiplexer amortises the remaining O(studies) costs across one shared
loop:

* **one simulated clock** — every study's events land on one shared
  calendar queue, tagged with their owning run, and a single event loop
  (:func:`repro.backend.simulation.drive_runs`) delivers them in global
  time order;
* **cross-study batched dispatch** — free worker capacity is filled by
  round-robin ``ask_batch`` across ready studies, with a per-round
  ``fair_share`` cap so one hot study cannot starve the rest;
* **group-commit journaling** — all study journals share one
  :class:`~repro.study.journal.JournalWriter`; appends buffer per study
  and flush in one sweep every ``commit_interval`` ticks instead of one
  write+flush per append per study (and no fd is held per journal, so
  study count is not bounded by the process fd limit).

The invariant everything hangs on: **a study multiplexed with ten
thousand others behaves byte-for-byte as if it ran alone** — same journal
bytes, same :class:`~repro.backend.trial_runner.BackendResult` records,
same telemetry stream.  Studies share no mutable state (each keeps its own
cluster physics RNG, worker pool, and checkpoint store); the shared queue's
(time, seq) FIFO tie-break preserves each study's private event order; and
cross-study interleaving only happens *between* events, at identical
simulated instants, where no study can observe it.  ``tests/study/
test_multiplex.py`` pins this against solo runs.

See ``docs/service.md`` for the architecture tour and the path from this
in-process multiplexer to the ask/tell daemon.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from ..telemetry.runtime import mux_probes
from .journal import JournalWriter

if TYPE_CHECKING:  # imported lazily at runtime: backend.simulation imports study
    from ..backend.simulation import SimRun, SimulatedCluster
    from ..backend.trial_runner import BackendResult

__all__ = ["MultiplexResult", "StudyMultiplexer"]


@dataclass
class MultiplexResult:
    """Per-study results plus the shared-loop counters.

    Indexing, iteration and ``len`` delegate to ``results`` (one
    :class:`~repro.backend.trial_runner.BackendResult` per added study, in
    add order), so existing single-study result-handling code ports over
    unchanged.
    """

    results: "list[BackendResult]" = field(default_factory=list)
    #: Events delivered by the shared loop.
    ticks: int = 0
    #: Group-commit sweeps performed by the shared journal writer.
    journal_commits: int = 0

    def __iter__(self) -> "Iterator[BackendResult]":
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> "BackendResult":
        return self.results[index]


class StudyMultiplexer:
    """Drive N studies from a single loop over shared machinery.

    Parameters
    ----------
    fair_share:
        Maximum jobs one study dispatches per fill round before every
        other study waiting for workers gets a turn (``None`` — no cap,
        each study fills all its free workers at once; the fairness
        difference is only *within* one simulated instant, so results are
        unaffected either way — this knob matters for latency fairness
        once asks carry real cost, e.g. expensive search strategies).
    commit_interval:
        Loop ticks (delivered events) between group-commit sweeps of the
        shared :class:`~repro.study.journal.JournalWriter`.  1 commits
        every tick (tightest durability window); larger values coalesce
        more appends per file open.  Journals are always committed and
        fsynced at the end of the run regardless.
    wal_path:
        Optional shared write-ahead log.  When set, every commit sweep
        makes its window *crash-durable* with one fsync of this single
        file (database-style group commit) instead of relying on page
        cache, and the per-journal files become replayable caches —
        :func:`repro.study.journal.read_wal` rebuilds them after a crash.
        This is the knob that makes durable journaling affordable at
        thousands of studies; without it, durability is end-of-run only
        (per-journal fsync at finalize), exactly as in a solo run.
    scraper:
        Optional :class:`~repro.telemetry.runtime.RuntimeScraper`: its
        ``on_tick`` rides the shared loop, appending periodic registry
        snapshots to JSONL on the simulated clock.  The multiplexer calls
        ``scraper.close()`` (which writes a final snapshot) when the run
        finishes.  Install the runtime registry *before* constructing the
        multiplexer and its studies so their probes resolve.

    Usage::

        mux = StudyMultiplexer()
        for seed in range(10_000):
            scheduler = make_scheduler(seed)
            study = Study(scheduler, journal=Journal(path(seed), writer=mux.journal_writer))
            mux.add(study, objective, cluster=SimulatedCluster(4, seed=seed),
                    time_limit=100.0)
        results = mux.run()

    Each study needs its *own* cluster instance — the cluster holds the
    failure-physics RNG, and sharing one would entangle the studies' draw
    sequences (breaking solo byte-identity).  ``add`` enforces this.
    """

    def __init__(
        self,
        *,
        fair_share: int | None = None,
        commit_interval: int = 64,
        wal_path: "str | None" = None,
        scraper=None,
    ):
        if fair_share is not None and fair_share < 1:
            raise ValueError(f"fair_share must be >= 1, got {fair_share}")
        if commit_interval < 1:
            raise ValueError(f"commit_interval must be >= 1, got {commit_interval}")
        self.fair_share = fair_share
        self.commit_interval = commit_interval
        self.scraper = scraper
        #: Shared group-commit coordinator; pass as ``Journal(..., writer=...)``
        #: when building the studies' journals.
        self.journal_writer = JournalWriter(wal_path=wal_path)
        self._runs: "list[SimRun]" = []
        self._clusters: set[int] = set()
        self._queue = None
        self._ran = False

    def __len__(self) -> int:
        return len(self._runs)

    @property
    def studies(self) -> list[Any]:
        """The added studies, in add order."""
        return [run.study for run in self._runs]

    def add(
        self,
        scheduler,
        objective,
        *,
        cluster: "SimulatedCluster",
        time_limit: float,
        max_resource: float | None = None,
        max_measurements: int | None = None,
        stop_on_first_completion: bool = False,
        telemetry=None,
        retry_policy=None,
        trace: bool = False,
    ) -> None:
        """Register one study; arguments mirror :meth:`SimulatedCluster.run`.

        ``scheduler`` may be a bare scheduler or a (possibly journal-backed,
        possibly resume-armed) :class:`~repro.study.Study`, exactly as with
        a solo run.
        """
        from ..backend.events import EventQueue
        from ..backend.simulation import SimRun

        if self._ran:
            raise RuntimeError("StudyMultiplexer.run() already called")
        if id(cluster) in self._clusters:
            raise ValueError(
                "each study needs its own SimulatedCluster instance: sharing one "
                "would entangle the studies' failure-physics RNG draws"
            )
        self._clusters.add(id(cluster))
        if self._queue is None:
            self._queue = EventQueue()
        self._runs.append(
            SimRun(
                cluster,
                scheduler,
                objective,
                queue=self._queue,
                time_limit=time_limit,
                max_resource=max_resource,
                max_measurements=max_measurements,
                stop_on_first_completion=stop_on_first_completion,
                telemetry=telemetry,
                retry_policy=retry_policy,
                trace=trace,
                fill_cap=self.fair_share,
            )
        )

    def run(self) -> MultiplexResult:
        """Drive every added study to completion over the shared clock.

        Single-use: the studies' event state is consumed by the run.
        Returns per-study results in add order.
        """
        from ..backend.simulation import drive_runs

        if self._ran:
            raise RuntimeError("StudyMultiplexer.run() already called")
        if not self._runs:
            raise ValueError("no studies added")
        self._ran = True
        out = MultiplexResult()
        writer = self.journal_writer
        interval = self.commit_interval
        ticks = 0
        pending = 0

        probes = mux_probes(self)
        scraper = self.scraper
        if probes is not None or scraper is not None:
            # Instrumented tick: advance the shared-clock tick box (the
            # basis of the starvation-age gauges), count, and let the
            # scraper sample on its cadence.  Built only when observability
            # is on, so the disabled loop body is byte-for-byte the old one.
            if probes is not None:
                for run in self._runs:
                    run.obs = probes
            tick_box = probes.tick_box if probes is not None else [0]
            tick_counter = probes.ticks if probes is not None else None

            def on_tick() -> None:
                nonlocal ticks, pending
                ticks += 1
                tick_box[0] = ticks
                if tick_counter is not None:
                    tick_counter.inc()
                pending += 1
                if pending >= interval:
                    pending = 0
                    writer.commit()
                if scraper is not None:
                    scraper.on_tick()

        else:

            def on_tick() -> None:
                nonlocal ticks, pending
                ticks += 1
                pending += 1
                if pending >= interval:
                    pending = 0
                    writer.commit()

        # Same gc scope the solo runner uses, paid once for all N studies
        # instead of once per study.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            drive_runs(self._queue, self._runs, on_tick=on_tick)
        finally:
            if gc_was_enabled:
                gc.enable()
            for run in self._runs:
                # Commits any buffered journal tail and fsyncs (via
                # Study.finalize -> Journal.finalize), then tears down the
                # execution strategy.
                run.close()
            if writer.wal_path is not None:
                # WAL mode defers every journal's tail to here: one final
                # group commit (one fsync total) covers them all.
                writer.finalize_all()
            if scraper is not None:
                scraper.close()
        out.results = [run.finish() for run in self._runs]
        out.ticks = ticks
        out.journal_commits = writer.commits
        return out
