"""Crash-safe JSONL journals: the write-ahead log behind :class:`repro.study.Study`.

A journal is a plain JSONL file.  The first line is a header record
(``kind="journal_header"``) carrying the format version and, when the study
was built from registered names, the recipe needed to reconstruct its
scheduler.  Every line after that is one typed study interaction (``ask``,
``tell``, ``fail``, ``requeue``, ``abandon``) in the exact order it
happened.

Durability model:

* :meth:`Journal.append` encodes canonically (sorted keys, fixed
  separators, numpy scalars unwrapped) and flushes after every line, so a
  crash loses at most the interaction that was mid-write.
* :meth:`Journal.finalize` additionally ``fsync``\\ s, making a *completed*
  run's log durable against power loss.
* Re-opening with ``mode="a"`` self-heals the torn tail a crash can leave:
  the file is truncated back to its last fully-parseable record (and the
  trailing newline restored if the final flush lost it), after which
  appends continue in place.

Corruption anywhere *before* the tail is not recoverable and raises
:class:`JournalError` — a mid-file scribble means the log can no longer
vouch for the run.
"""

from __future__ import annotations

import json
import os
from typing import IO, Any

__all__ = ["JOURNAL_VERSION", "Journal", "JournalError", "encode_record", "read_journal"]

#: Format version written into every journal header.
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file is malformed beyond the recoverable torn tail."""


def _json_default(value: Any) -> Any:
    """Serialise numpy scalars (config values) without importing numpy here."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def encode_record(record: dict[str, Any]) -> str:
    """Canonical one-line encoding: sorted keys, no spaces, numpy unwrapped.

    The canonical form is what makes journals byte-comparable: a seeded run
    and its resumed twin must produce identical bytes, and replay
    verification compares records by their encodings (which also makes NaN
    losses compare equal — Python's ``json`` round-trips them as literals).
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"), default=_json_default)


def read_journal(path: str | os.PathLike[str]) -> tuple[list[dict[str, Any]], int, bool]:
    """Parse a journal, tolerating a torn tail.

    Returns ``(records, valid_bytes, terminated)``: the parsed records, how
    many leading bytes of the file they occupy (where crash recovery should
    truncate to), and whether the last accepted record ended with a
    newline.  A *final* line that does not parse is dropped — it is the
    append a crash interrupted.  An unparseable line anywhere before the
    tail raises :class:`JournalError`.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    records: list[dict[str, Any]] = []
    valid = 0
    terminated = True
    lines = raw.split(b"\n")
    last = len(lines) - 1
    offset = 0
    for i, line in enumerate(lines):
        if i == last:
            # Bytes after the final newline: empty when the file is cleanly
            # terminated, otherwise a tail whose trailing newline (or more)
            # never reached the disk.
            if not line:
                break
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break  # torn tail — the interrupted final append
            records.append(record)
            valid = offset + len(line)
            terminated = False
            break
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise JournalError(
                f"{os.fspath(path)}: unparseable record on line {i + 1} "
                "(only the final line of a journal may be torn)"
            ) from exc
        records.append(record)
        offset += len(line) + 1
        valid = offset
    return records, valid, terminated


class Journal:
    """An append-only JSONL record stream with crash recovery.

    Parameters
    ----------
    path:
        Journal file; parent directories are created.
    mode:
        ``"w"`` truncates and writes a fresh header.  ``"a"`` reopens an
        existing journal for continued appends, healing any torn tail in
        place first (a missing file falls back to ``"w"`` behaviour).
    spec:
        Optional JSON-serialisable scheduler recipe recorded in the header
        of a fresh journal (see :func:`repro.study.spec.build_spec`), used
        by :meth:`repro.study.Study.resume` to rebuild the scheduler.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        mode: str = "w",
        *,
        spec: dict[str, Any] | None = None,
    ):
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self.path = os.fspath(path)
        self._closed = False
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if mode == "a" and os.path.exists(self.path):
            _, valid, terminated = read_journal(self.path)
            with open(self.path, "r+b") as fh:
                fh.truncate(valid)
                if valid and not terminated:
                    fh.seek(0, os.SEEK_END)
                    fh.write(b"\n")
            self._file: IO[str] = open(self.path, "a", encoding="utf-8")
        else:
            self._file = open(self.path, "w", encoding="utf-8")
            self.append({"kind": "journal_header", "version": JOURNAL_VERSION, "spec": spec})

    def append(self, record: dict[str, Any]) -> None:
        """Write one record and flush — the study's write-ahead guarantee."""
        if self._closed:
            raise ValueError("Journal is closed")
        self._file.write(encode_record(record) + "\n")
        self._file.flush()

    def append_batch(self, records: list[dict[str, Any]]) -> None:
        """Write a block of records with a single flush.

        The on-disk bytes are exactly those of per-record :meth:`append`
        calls — one canonical-encoded line each — but the block becomes
        OS-visible in one write+flush instead of one per record, which is
        what makes batched ask/tell pay off under journaling.  Crash
        mid-block tears at most the final line, which reopening heals like
        any torn tail.
        """
        if self._closed:
            raise ValueError("Journal is closed")
        if not records:
            return
        self._file.write("".join(encode_record(record) + "\n" for record in records))
        self._file.flush()

    def finalize(self) -> None:
        """End-of-run durability: flush and fsync the journal to disk."""
        if self._closed:
            return
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except (OSError, ValueError):
            pass  # not a real file descriptor (tests passing pipes, ...)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        self._file.close()
