"""Crash-safe JSONL journals: the write-ahead log behind :class:`repro.study.Study`.

A journal is a plain JSONL file.  The first line is a header record
(``kind="journal_header"``) carrying the format version and, when the study
was built from registered names, the recipe needed to reconstruct its
scheduler.  Every line after that is one typed study interaction (``ask``,
``tell``, ``fail``, ``requeue``, ``abandon``) in the exact order it
happened.

Durability model:

* :meth:`Journal.append` encodes canonically (sorted keys, fixed
  separators, numpy scalars unwrapped) and flushes after every line, so a
  crash loses at most the interaction that was mid-write.
* :meth:`Journal.finalize` additionally ``fsync``\\ s, making a *completed*
  run's log durable against power loss.
* Re-opening with ``mode="a"`` self-heals the torn tail a crash can leave:
  the file is truncated back to its last fully-parseable record (and the
  trailing newline restored if the final flush lost it), after which
  appends continue in place.

Corruption anywhere *before* the tail is not recoverable and raises
:class:`JournalError` — a mid-file scribble means the log can no longer
vouch for the run.
"""

from __future__ import annotations

import json
import os
from time import perf_counter
from typing import IO, Any

from ..canonical import encode_canonical
from ..telemetry.runtime import journal_probes, runtime_registry, wal_probes

__all__ = [
    "JOURNAL_VERSION",
    "Journal",
    "JournalError",
    "JournalWriter",
    "encode_record",
    "read_journal",
]

#: Format version written into every journal header.
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file is malformed beyond the recoverable torn tail."""


def encode_record(record: dict[str, Any]) -> str:
    """Canonical one-line encoding: sorted keys, no spaces, numpy unwrapped.

    The canonical form is what makes journals byte-comparable: a seeded run
    and its resumed twin must produce identical bytes, and replay
    verification compares records by their encodings (which also makes NaN
    losses compare equal — json round-trips them as literals).  Encoding
    goes through the hand-rolled fast path in :mod:`repro.canonical`, which
    is byte-identical to the historical ``json.dumps`` call.
    """
    return encode_canonical(record)


def read_journal(path: str | os.PathLike[str]) -> tuple[list[dict[str, Any]], int, bool]:
    """Parse a journal, tolerating a torn tail.

    Returns ``(records, valid_bytes, terminated)``: the parsed records, how
    many leading bytes of the file they occupy (where crash recovery should
    truncate to), and whether the last accepted record ended with a
    newline.  A *final* line that does not parse is dropped — it is the
    append a crash interrupted.  An unparseable line anywhere before the
    tail raises :class:`JournalError`.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    records: list[dict[str, Any]] = []
    valid = 0
    terminated = True
    lines = raw.split(b"\n")
    last = len(lines) - 1
    offset = 0
    for i, line in enumerate(lines):
        if i == last:
            # Bytes after the final newline: empty when the file is cleanly
            # terminated, otherwise a tail whose trailing newline (or more)
            # never reached the disk.
            if not line:
                break
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break  # torn tail — the interrupted final append
            records.append(record)
            valid = offset + len(line)
            terminated = False
            break
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise JournalError(
                f"{os.fspath(path)}: unparseable record on line {i + 1} "
                "(only the final line of a journal may be torn)"
            ) from exc
        records.append(record)
        offset += len(line) + 1
        valid = offset
    return records, valid, terminated


class Journal:
    """An append-only JSONL record stream with crash recovery.

    Parameters
    ----------
    path:
        Journal file; parent directories are created.
    mode:
        ``"w"`` truncates and writes a fresh header.  ``"a"`` reopens an
        existing journal for continued appends, healing any torn tail in
        place first (a missing file falls back to ``"w"`` behaviour).
    spec:
        Optional JSON-serialisable scheduler recipe recorded in the header
        of a fresh journal (see :func:`repro.study.spec.build_spec`), used
        by :meth:`repro.study.Study.resume` to rebuild the scheduler.
    writer:
        Optional :class:`JournalWriter` switching the journal into
        group-commit mode: appends accumulate in a per-journal buffer and
        reach the file only at :meth:`commit` (driven by the writer), with
        no file descriptor held between commits.  The on-disk bytes are
        identical to immediate mode; only the durability cadence changes —
        see :class:`JournalWriter`.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        mode: str = "w",
        *,
        spec: dict[str, Any] | None = None,
        writer: "JournalWriter | None" = None,
    ):
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self.path = os.fspath(path)
        self._closed = False
        # None unless a runtime registry is installed (repro.telemetry.runtime).
        self._probes = journal_probes()
        # Set by a JournalWriter carrying a write-ahead log: every committed
        # byte is already fsynced in the WAL, so this file is a replayable
        # cache and finalize can skip its own (expensive) per-file fsync.
        self._wal_durable = False
        # In group-commit mode lines buffer here and ``_file`` stays None:
        # holding one fd per journal caps concurrent studies at the
        # process's fd limit (1024 soft on CI runners), so commits
        # open-append-close instead.
        self._pending: list[str] | None = [] if writer is not None else None
        self._file: IO[str] | None = None
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if mode == "a" and os.path.exists(self.path):
            _, valid, terminated = read_journal(self.path)
            with open(self.path, "r+b") as fh:
                fh.truncate(valid)
                if valid and not terminated:
                    fh.seek(0, os.SEEK_END)
                    fh.write(b"\n")
            if writer is None:
                self._file = open(self.path, "a", encoding="utf-8")
        else:
            if writer is None:
                self._file = open(self.path, "w", encoding="utf-8")
            else:
                open(self.path, "wb").close()  # truncate; header buffers below
            self.append({"kind": "journal_header", "version": JOURNAL_VERSION, "spec": spec})
        if writer is not None:
            writer._register(self)

    def append(self, record: dict[str, Any]) -> None:
        """Write one record and flush — the study's write-ahead guarantee.

        In group-commit mode the line buffers in memory instead; it becomes
        OS-visible at the writer's next :meth:`commit`.
        """
        if self._closed:
            raise ValueError("Journal is closed")
        line = encode_record(record) + "\n"
        if self._probes is not None:
            self._probes.bytes.inc(len(line))
        if self._pending is not None:
            self._pending.append(line)
            return
        assert self._file is not None
        self._file.write(line)
        self._file.flush()

    def append_batch(self, records: list[dict[str, Any]]) -> None:
        """Write a block of records with a single flush.

        The on-disk bytes are exactly those of per-record :meth:`append`
        calls — one canonical-encoded line each — but the block becomes
        OS-visible in one write+flush instead of one per record, which is
        what makes batched ask/tell pay off under journaling.  Crash
        mid-block tears at most the final line, which reopening heals like
        any torn tail.
        """
        if self._closed:
            raise ValueError("Journal is closed")
        if not records:
            return
        block = "".join(encode_record(record) + "\n" for record in records)
        if self._probes is not None:
            self._probes.bytes.inc(len(block))
        if self._pending is not None:
            self._pending.append(block)
            return
        assert self._file is not None
        self._file.write(block)
        self._file.flush()

    def commit(self) -> None:
        """Flush buffered lines to the file (group-commit mode).

        One ``open("ab") / write / close`` per call, and only when there is
        something pending — an idle journal costs nothing.  In immediate
        mode this is a no-op (every append already flushed).
        """
        if self._pending:
            data = "".join(self._pending).encode("utf-8")
            self._pending.clear()
            with open(self.path, "ab") as fh:
                fh.write(data)

    def _take_pending(self) -> bytes:
        """Drain the pending buffer as bytes (WAL-backed group commit)."""
        if not self._pending:
            return b""
        data = "".join(self._pending).encode("utf-8")
        self._pending.clear()
        return data

    def finalize(self) -> None:
        """End-of-run durability: flush and fsync the journal to disk.

        When the journal rides a WAL-backed :class:`JournalWriter`, every
        committed byte is already fsynced in the shared log, so the per-file
        fsync — the expensive part at thousands of journals — is skipped.
        """
        if self._closed:
            return
        if self._pending is not None:
            if self._wal_durable:
                # Leave the tail in the buffer: the writer's finalize_all
                # groups every journal's tail into one WAL commit (one
                # fsync total) instead of draining here per file.
                return
            data = "".join(self._pending).encode("utf-8")
            self._pending.clear()
            with open(self.path, "ab") as fh:
                if data:
                    fh.write(data)
                fh.flush()
                started = 0.0 if self._probes is None else perf_counter()
                try:
                    os.fsync(fh.fileno())
                except OSError:
                    pass
                if self._probes is not None:
                    self._probes.fsyncs.inc()
                    self._probes.fsync_seconds.observe(perf_counter() - started)
            return
        assert self._file is not None
        self._file.flush()
        started = 0.0 if self._probes is None else perf_counter()
        try:
            os.fsync(self._file.fileno())
        except (OSError, ValueError):
            pass  # not a real file descriptor (tests passing pipes, ...)
        if self._probes is not None:
            self._probes.fsyncs.inc()
            self._probes.fsync_seconds.observe(perf_counter() - started)

    def close(self) -> None:
        if self._closed:
            return
        self.commit()
        self._closed = True
        if self._file is not None:
            self._file.flush()
            self._file.close()


#: Frame header magic for the group-commit write-ahead log.
_WAL_MAGIC = b"=wal "


def read_wal(path: str | os.PathLike[str]) -> dict[str, bytes]:
    """Replay a :class:`JournalWriter` write-ahead log.

    Returns ``{journal_path: bytes}`` — for each journal, the concatenation
    of every durably committed block, i.e. exactly the bytes its file held
    at the last WAL fsync.  Crash recovery truncates each journal file to
    (or rebuilds it from) its entry here, then heals any remaining torn
    tail via :func:`read_journal` as usual.  A torn final frame (the commit
    a crash interrupted) is dropped; corruption anywhere earlier raises
    :class:`JournalError`.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    out: dict[str, bytearray] = {}
    pos = 0
    frame = 0
    while pos < len(raw):
        end = raw.find(b"\n", pos, pos + 64)
        if end < 0:
            break  # torn frame header
        header = raw[pos:end]
        if not header.startswith(_WAL_MAGIC):
            raise JournalError(
                f"{os.fspath(path)}: bad WAL frame header at byte {pos} (frame {frame}): "
                f"expected magic {_WAL_MAGIC!r}, found {header[: len(_WAL_MAGIC)]!r}"
            )
        try:
            name_len, data_len = map(int, header[len(_WAL_MAGIC) :].split())
        except ValueError as exc:
            raise JournalError(
                f"{os.fspath(path)}: unparseable WAL frame header at byte {pos} "
                f"(frame {frame}): {header[len(_WAL_MAGIC):]!r} is not '<name_len> <data_len>'"
            ) from exc
        start = end + 1
        if start + name_len + data_len > len(raw):
            break  # torn frame body — the commit a crash interrupted
        name = raw[start : start + name_len].decode("utf-8")
        out.setdefault(name, bytearray()).extend(
            raw[start + name_len : start + name_len + data_len]
        )
        pos = start + name_len + data_len
        frame += 1
    return {name: bytes(data) for name, data in out.items()}


class JournalWriter:
    """Group-commit coordinator for many journals sharing one driver loop.

    Each registered journal buffers its appends privately (so its file
    stays byte-identical to a solo run — same lines, same order) and the
    writer flushes every dirty buffer in one :meth:`commit` sweep, which
    the multiplexer calls once per loop tick instead of once per append
    per study.  Between commits no file descriptors are held, so one
    process can host far more journals than its fd limit.

    Durability contract: group-commit trades the per-append write-ahead
    flush for a bounded window — a crash loses at most the interactions
    buffered since the last commit, and reopening heals any torn tail
    exactly as in immediate mode.  That is safe here because the journal's
    consumers (:meth:`repro.study.Study.resume`) replay deterministically:
    a journal truncated at any record boundary is a valid shorter run.
    :meth:`finalize_all` gives the usual end-of-run flush + fsync to every
    journal.

    With ``wal_path`` set, commits additionally write every dirty block to
    one shared write-ahead log and fsync *that single file* — the classic
    database group commit.  Each commit window then costs one fsync total
    instead of one per dirty journal, and the per-journal files become
    replayable caches (:func:`read_wal` rebuilds them), so
    :meth:`finalize_all` skips their per-file fsyncs entirely.  This is
    what makes crash-durable journaling affordable at thousands of
    concurrent studies.
    """

    def __init__(self, wal_path: str | os.PathLike[str] | None = None) -> None:
        self._journals: list[Journal] = []
        #: Commit sweeps performed (observability for tests and benchmarks).
        self.commits = 0
        self._probes = wal_probes()
        self.wal_path = os.fspath(wal_path) if wal_path is not None else None
        self._wal: IO[bytes] | None = None
        if self.wal_path is not None:
            directory = os.path.dirname(self.wal_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._wal = open(self.wal_path, "wb")

    def _register(self, journal: Journal) -> None:
        self._journals.append(journal)
        if self._wal is not None:
            journal._wal_durable = True

    def __len__(self) -> int:
        return len(self._journals)

    def commit(self) -> None:
        """Flush every journal's pending buffer (dirty journals only).

        In WAL mode the dirty blocks hit the shared log first — one write,
        one fsync — and only then their journal files; a crash between the
        two leaves stale files that :func:`read_wal` rebuilds.
        """
        probes = self._probes
        if probes is None and runtime_registry() is not None:
            # The writer outlives registry installs that happen after its
            # construction (the multiplexer builds it in __init__); commits
            # are cold, so the late re-resolve costs nothing measurable.
            probes = self._probes = wal_probes()
        if self._wal is None:
            for journal in self._journals:
                journal.commit()
            self.commits += 1
            if probes is not None:
                probes.commits.inc()
            return
        dirty: list[tuple[Journal, bytes]] = []
        frames: list[bytes] = []
        for journal in self._journals:
            data = journal._take_pending()
            if data:
                name = journal.path.encode("utf-8")
                frames.append(b"%s%d %d\n%s%s" % (_WAL_MAGIC, len(name), len(data), name, data))
                dirty.append((journal, data))
        if dirty:
            blob = b"".join(frames)
            self._wal.write(blob)
            self._wal.flush()
            started = 0.0 if probes is None else perf_counter()
            try:
                os.fsync(self._wal.fileno())
            except OSError:
                pass
            if probes is not None:
                probes.fsyncs.inc()
                probes.fsync_seconds.observe(perf_counter() - started)
                probes.commit_bytes.observe(float(len(blob)))
                probes.commit_journals.observe(float(len(dirty)))
            for journal, data in dirty:
                with open(journal.path, "ab") as fh:
                    fh.write(data)
        self.commits += 1
        if probes is not None:
            probes.commits.inc()

    def finalize_all(self) -> None:
        """Commit and fsync every registered journal (end-of-run durability).

        In WAL mode the final commit's single fsync already covers every
        journal, so the per-file finalize sweep is write-only.
        """
        self.commit()
        for journal in self._journals:
            journal.finalize()
        if self._wal is not None:
            self._wal.close()
            self._wal = None
