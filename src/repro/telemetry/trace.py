"""CLI: rebuild a trace from a telemetry JSONL export.

``python -m repro.telemetry.trace events.jsonl --chrome trace.json --report``

Reads an event file written by :class:`~repro.telemetry.JSONLSink` (e.g. via
``python -m repro.experiments run fig7 --telemetry-out DIR`` or a
``tune(telemetry=...)`` run), reconstructs the span/timeline trace, and:

* ``--chrome OUT.json`` — writes a Chrome trace-event file; open it in
  ``chrome://tracing`` or https://ui.perfetto.dev;
* ``--report`` — prints the text run report (critical path, stragglers,
  utilisation);
* ``--trial ID`` — attributes the critical path of a specific trial
  instead of the incumbent;
* ``--validate`` — schema-checks the Chrome export (sorted ``ts``, matched
  begin/end events) and exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys

from .tracing import TraceBuilder, validate_chrome_trace

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.trace",
        description="Reconstruct spans/timelines from a telemetry JSONL export.",
    )
    parser.add_argument("events", help="JSONL event file written by JSONLSink")
    parser.add_argument("--chrome", metavar="OUT.json",
                        help="write a Chrome trace-event (Perfetto) file")
    parser.add_argument("--report", action="store_true",
                        help="print the run report (critical path, stragglers)")
    parser.add_argument("--trial", type=int, default=None,
                        help="critical-path trial id (default: the incumbent)")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the Chrome export; exit 1 on violations")
    args = parser.parse_args(argv)

    trace = TraceBuilder.from_jsonl(args.events).build()

    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            handle.write(trace.chrome_trace_json())
        print(f"wrote {args.chrome}", file=sys.stderr)

    if args.validate:
        violations = validate_chrome_trace(trace.to_chrome_trace())
        if violations:
            for violation in violations:
                print(f"chrome-trace violation: {violation}", file=sys.stderr)
            return 1
        print("chrome trace schema: ok", file=sys.stderr)

    if args.report:
        print(trace.render_report())
        if args.trial is not None:
            path = trace.critical_path(args.trial)
            print(f"critical path of trial {args.trial} "
                  f"(latency {path.total_latency:g}):")
            print(json.dumps(path.breakdown(), indent=2, sort_keys=True))
    elif not args.chrome and not args.validate:
        # Nothing asked for: at least summarise what was loaded.
        print(trace.render_report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
