"""The emission fan-out: :class:`TelemetryHub` and its no-op null object.

Design constraints, in order:

1. **Zero cost when off.**  Schedulers and backends hold a hub reference
   unconditionally, but every emission site is guarded by a truthiness
   check — ``if self.telemetry: self.telemetry.emit(...)`` — and the
   :class:`NullHub` is falsy, so the disabled path is a single branch with
   no event construction, no locking, no sink calls.  Determinism tests and
   scheduler hot paths are unaffected by the subsystem existing.
2. **Determinism when on.**  Events carry the backend clock and a
   monotonically increasing sequence number; nothing about emission order
   depends on wall time, so a seeded simulation run produces an identical
   event stream every time.
3. **Thread safety.**  :class:`~repro.backend.threaded.ThreadPoolBackend`
   emits from worker threads; the hub serialises ``emit`` with a lock so
   sinks never need their own.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Any

from .events import EventKind, TelemetryEvent
from .metrics import MetricsCollector, MetricsReport
from .sinks import TelemetrySink

__all__ = ["TelemetryHub", "NullHub", "NULL_HUB"]


class TelemetryHub:
    """Collects lifecycle events from schedulers/backends and fans them out.

    Parameters
    ----------
    sinks:
        Consumers of the event stream (see :mod:`repro.telemetry.sinks`).
        More can be attached later with :meth:`add_sink`.
    wall_clock:
        Absolute-timestamp source for :attr:`TelemetryEvent.wall_time`;
        injectable for tests.
    """

    def __init__(
        self,
        sinks: list[TelemetrySink] | tuple[TelemetrySink, ...] = (),
        *,
        wall_clock=None,
    ):
        self.sinks: list[TelemetrySink] = list(sinks)
        self._wall_clock = wall_clock if wall_clock is not None else _time.time
        self._time = 0.0
        self._seq = 0
        self._lock = threading.Lock()

    @classmethod
    def with_metrics(cls, *extra_sinks: TelemetrySink) -> "TelemetryHub":
        """A hub pre-loaded with a :class:`MetricsCollector` (the common case)."""
        return cls([MetricsCollector(), *extra_sinks])

    # ------------------------------------------------------------- emission

    def __bool__(self) -> bool:
        return True

    def set_time(self, now: float) -> None:
        """Advance the backend clock; subsequent events are stamped ``now``.

        Single-threaded backends (the simulator) call this once per event
        loop step; multi-threaded backends pass explicit ``time=`` to
        :meth:`emit` instead.
        """
        self._time = now

    def emit(
        self,
        kind: EventKind,
        *,
        time: float | None = None,
        trial_id: int | None = None,
        job_id: int | None = None,
        worker_id: int | None = None,
        rung: int | None = None,
        bracket: int | None = None,
        **data: Any,
    ) -> TelemetryEvent:
        """Build one event and hand it to every sink (thread-safe)."""
        with self._lock:
            event = TelemetryEvent(
                seq=self._seq,
                kind=kind,
                time=self._time if time is None else time,
                wall_time=self._wall_clock(),
                trial_id=trial_id,
                job_id=job_id,
                worker_id=worker_id,
                rung=rung,
                bracket=bracket,
                data=data,
            )
            self._seq += 1
            for sink in self.sinks:
                sink.write(event)
        return event

    # ------------------------------------------------------------ lifecycle

    def add_sink(self, sink: TelemetrySink) -> None:
        with self._lock:
            self.sinks.append(sink)

    @property
    def metrics(self) -> MetricsCollector | None:
        """The first attached :class:`MetricsCollector`, if any."""
        for sink in self.sinks:
            if isinstance(sink, MetricsCollector):
                return sink
        return None

    def finalize(self, *, elapsed: float, num_workers: int) -> MetricsReport | None:
        """Close out a run: finalize collectors, flush sinks, return the report.

        Backends call this once at the end of ``run``; the returned report
        (``None`` if no collector is attached) is what lands on
        :attr:`repro.backend.trial_runner.BackendResult.telemetry`.  Any sink
        exposing a ``finalize(elapsed=, num_workers=)`` method (trace
        builders, live summaries) learns the run horizon the same way.
        """
        report = None
        with self._lock:
            for sink in self.sinks:
                fin = getattr(sink, "finalize", None)
                if callable(fin):
                    fin(elapsed=elapsed, num_workers=num_workers)
                if isinstance(sink, MetricsCollector) and report is None:
                    report = sink.report()
                sink.flush()
        return report

    def close(self) -> None:
        """Flush and close every sink (idempotent)."""
        with self._lock:
            for sink in self.sinks:
                sink.flush()
                sink.close()

    def __enter__(self) -> "TelemetryHub":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullHub:
    """Falsy no-op hub: the default wired into every scheduler and backend.

    Emission sites guard with ``if self.telemetry:``, so none of these
    methods run on the hot path; they exist so unguarded calls are still
    harmless.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set_time(self, now: float) -> None:
        pass

    def emit(self, kind: EventKind, **kwargs: Any) -> None:
        pass

    def finalize(self, **kwargs: Any) -> None:
        pass

    def close(self) -> None:
        pass

    @property
    def metrics(self) -> None:
        return None


#: Shared singleton; there is never a reason to hold a second NullHub.
NULL_HUB = NullHub()
