"""Trial-lifecycle telemetry: observe a search while it runs.

The paper's headline claims are *systems* claims — linear speedups,
robustness to stragglers and dropped jobs, high worker utilisation
(Sections 4-5).  This package makes the quantities behind those claims
first-class observable state instead of after-the-fact aggregates:

* :class:`TelemetryHub` — typed lifecycle events (:class:`EventKind`) with
  backend-clock and wall-clock timestamps, fanned out to sinks;
* :class:`MetricsCollector` — counters/gauges/histograms deriving rung
  occupancy, promotion latency, queue wait, failure rate and per-worker
  utilisation from the stream;
* sinks — :class:`InMemorySink` for tests, :class:`JSONLSink` for
  byte-stable offline export, :class:`LiveSummarySink` for an ASCII
  dashboard built on :mod:`repro.analysis.ascii_chart`.

The hub is optional everywhere: schedulers and backends default to the
falsy :data:`NULL_HUB`, so hot paths pay a single branch when telemetry is
off and deterministic behaviour is untouched.  Enable it per run::

    from repro.telemetry import TelemetryHub, JSONLSink

    hub = TelemetryHub.with_metrics(JSONLSink("events.jsonl"))
    result = cluster.run(scheduler, objective, time_limit=1000, telemetry=hub)
    print(result.telemetry.rung_occupancy)

See ``docs/telemetry.md`` for the event schema and metric definitions.
"""

from .events import EventKind, TelemetryEvent
from .hub import NULL_HUB, NullHub, TelemetryHub
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    MetricsReport,
)
from .runtime import (
    NULL_PROBE,
    NullProbe,
    RuntimeRegistry,
    RuntimeScraper,
    install_runtime_registry,
    render_prometheus,
    runtime_registry,
    uninstall_runtime_registry,
    validate_exposition,
)
from .sinks import InMemorySink, JSONLSink, LiveSummarySink, TelemetrySink, render_summary
from .tracing import (
    AttemptSpan,
    CriticalPath,
    Trace,
    TraceBuilder,
    TrialTrace,
    WorkerTimeline,
    validate_chrome_trace,
)

__all__ = [
    "AttemptSpan",
    "Counter",
    "CriticalPath",
    "EventKind",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JSONLSink",
    "LiveSummarySink",
    "MetricsCollector",
    "MetricsRegistry",
    "MetricsReport",
    "NULL_HUB",
    "NULL_PROBE",
    "NullHub",
    "NullProbe",
    "RuntimeRegistry",
    "RuntimeScraper",
    "install_runtime_registry",
    "render_prometheus",
    "runtime_registry",
    "uninstall_runtime_registry",
    "validate_exposition",
    "TelemetryEvent",
    "TelemetryHub",
    "TelemetrySink",
    "Trace",
    "TraceBuilder",
    "TrialTrace",
    "WorkerTimeline",
    "render_summary",
    "validate_chrome_trace",
]
