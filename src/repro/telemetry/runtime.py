"""Runtime probe layer: observe the service internals, not just the search.

The telemetry package (PR 1) watches the *scheduling domain* — trials,
rungs, promotions.  Everything underneath it — the calendar-queue
:class:`~repro.backend.events.EventQueue`, the WAL group commit in
:class:`~repro.study.journal.JournalWriter`, the
:class:`~repro.study.multiplex.StudyMultiplexer` fair-share dispatcher,
the thread/process backends — was a black box.  This module makes those
internals observable without making them slower when nobody is looking:

* :class:`RuntimeRegistry` — a :class:`~repro.telemetry.MetricsRegistry`
  that adds Prometheus-style *labelled* instruments
  (``registry.counter("wal_fsync_total", labels={"backend": "wal"})``),
  per-family help/type metadata, and scrape-time *collectors* (callbacks
  that compute gauges such as queue occupancy on demand instead of on
  every operation).
* A process-global install point — :func:`install_runtime_registry` /
  :func:`uninstall_runtime_registry` / :func:`runtime_registry` — plus the
  falsy :data:`NULL_PROBE` default.  Instrumented hot paths resolve their
  probe bundle once at construction; with no registry installed the bundle
  is ``None`` and every call site pays a single attribute load + branch.
* :func:`render_prometheus` — byte-stable Prometheus text exposition
  (sorted families, sorted samples, stable float formatting) — and
  :func:`validate_exposition`, a strict parser returning violations.
* :class:`RuntimeScraper` — a shared-clock snapshot scraper: hook its
  :meth:`~RuntimeScraper.on_tick` into ``drive_runs`` (the
  ``StudyMultiplexer(scraper=...)`` argument does this for you) and it
  appends a canonical-JSON registry snapshot to a JSONL file every N
  simulated ticks.
* An ops CLI: ``python -m repro.telemetry.runtime snapshots.jsonl
  --watch/--prom/--report`` renders a live multiplexer health table,
  the full metric report, or the Prometheus text of the last snapshot.

Install order matters: probes are resolved when the instrumented object is
*constructed*, so install the registry before building studies, queues,
multiplexers or backends::

    from repro.telemetry.runtime import RuntimeScraper, install_runtime_registry

    registry = install_runtime_registry()
    mux = StudyMultiplexer(wal_path=..., scraper=RuntimeScraper(registry, "snap.jsonl"))
    ...
    print(render_prometheus(registry))

Wall-clock readings (fsync latency, tell latency) live only in the
registry — never in records, journals or traces — so enabled probes keep
every byte-identity guarantee of the unprobed system.

See ``docs/observability.md`` for the probe catalogue and the overhead
budget (CI-gated by the ``observability_overhead`` benchmark).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import sys
import time as _time
import weakref
from typing import Any, Callable

from ..canonical import encode_canonical
from .metrics import DEFAULT_SERIES_BOUND, Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "NULL_PROBE",
    "NullProbe",
    "RuntimeRegistry",
    "RuntimeScraper",
    "install_runtime_registry",
    "uninstall_runtime_registry",
    "runtime_registry",
    "render_prometheus",
    "validate_exposition",
    "render_report",
    "main",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Per-study labelled gauges are emitted for at most this many studies;
#: beyond the cap only the aggregate gauges (``mux_starvation_age_max_ticks``,
#: ``mux_pending_asks_cluster``) are kept, so a 10k-study multiplexer does
#: not explode the exposition's cardinality.
MUX_STUDY_LABEL_CAP = 64


class NullProbe:
    """Falsy no-op instrument: the default when no registry is installed.

    Mirrors :class:`~repro.telemetry.hub.NullHub` — supports the union of
    the :class:`Counter`/:class:`Gauge`/:class:`Histogram` write APIs so a
    call site holding :data:`NULL_PROBE` never branches on metric kind.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float, *, time: float | None = None) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_PROBE = NullProbe()


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _series_key(name: str, labels: dict[str, Any] | None) -> str:
    """Mangle ``name`` + sorted labels into the registry key / sample name."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def _split_series_key(key: str) -> tuple[str, str]:
    """Inverse of :func:`_series_key`: ``(base name, inner label string)``."""
    if key.endswith("}"):
        brace = key.find("{")
        if brace >= 0:
            return key[:brace], key[brace + 1 : -1]
    return key, ""


_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')


def _parse_label_string(inner: str) -> dict[str, str]:
    return {match.group(1): match.group(2) for match in _LABEL_PAIR_RE.finditer(inner)}


def _format_value(value: float) -> str:
    """Stable float formatting: integers bare, else shortest round-trip."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class RuntimeRegistry(MetricsRegistry):
    """Metrics registry with labels, family metadata and scrape collectors.

    ``counter``/``gauge``/``histogram`` gain optional ``help`` and
    ``labels`` keyword arguments; each base name becomes an exposition
    *family* with a type, help text and the union of observed label names.
    Collectors registered via :meth:`add_collector` run at snapshot time
    (so occupancy-style gauges cost nothing per operation); a collector
    that returns ``False`` is pruned — the idiom for weakref'd subjects
    that have been garbage-collected.
    """

    def __init__(self, *, gauge_series_bound: int | None = DEFAULT_SERIES_BOUND) -> None:
        super().__init__(gauge_series_bound=gauge_series_bound)
        #: base name -> {"type", "help", "labels": sorted label names}
        self._families: dict[str, dict[str, Any]] = {}
        self._collectors: list[Callable[[], Any]] = []
        #: Shared probe bundles (``journal_probes()`` etc.) keyed by kind:
        #: bundle construction does label mangling and family registration,
        #: which a 10k-study multiplexer must not repeat per study.
        self._probe_cache: dict[str, Any] = {}

    # ------------------------------------------------------------- families

    def _register_family(
        self,
        kind: str,
        name: str,
        help: str | None,
        labels: dict[str, Any] | None,
    ) -> str:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = sorted(labels) if labels else []
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        family = self._families.get(name)
        if family is None:
            self._families[name] = {"type": kind, "help": help or "", "labels": label_names}
        else:
            if family["type"] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family['type']}, not {kind}"
                )
            if help and not family["help"]:
                family["help"] = help
            merged = set(family["labels"]).union(label_names)
            family["labels"] = sorted(merged)
        return _series_key(name, labels)

    # ----------------------------------------------------- labelled lookups

    def counter(
        self,
        name: str,
        *,
        help: str | None = None,
        labels: dict[str, Any] | None = None,
    ) -> Counter:
        return super().counter(self._register_family("counter", name, help, labels))

    def gauge(
        self,
        name: str,
        *,
        help: str | None = None,
        labels: dict[str, Any] | None = None,
    ) -> Gauge:
        return super().gauge(self._register_family("gauge", name, help, labels))

    def histogram(
        self,
        name: str,
        *,
        help: str | None = None,
        labels: dict[str, Any] | None = None,
    ) -> Histogram:
        return super().histogram(self._register_family("histogram", name, help, labels))

    # ----------------------------------------------------------- collectors

    def add_collector(self, collector: Callable[[], Any]) -> None:
        """Register a scrape-time callback; return ``False`` to be pruned."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every collector, pruning the ones that report themselves dead."""
        if not self._collectors:
            return
        self._collectors = [c for c in self._collectors if c() is not False]

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> dict[str, Any]:
        self.collect()
        snap = super().snapshot()
        snap["families"] = {
            name: {"type": fam["type"], "help": fam["help"], "labels": list(fam["labels"])}
            for name, fam in sorted(self._families.items())
        }
        return snap


# --------------------------------------------------------------------------
# Process-global install point
# --------------------------------------------------------------------------

_REGISTRY: RuntimeRegistry | None = None


def install_runtime_registry(registry: RuntimeRegistry | None = None) -> RuntimeRegistry:
    """Install ``registry`` (or a fresh one) as the process-global registry.

    Instrumented classes resolve their probes at construction, so install
    *before* building queues, studies, multiplexers or backends.  Returns
    the installed registry.
    """
    global _REGISTRY
    if registry is None:
        registry = RuntimeRegistry()
    _REGISTRY = registry
    return registry


def uninstall_runtime_registry() -> None:
    """Remove the process-global registry; new call sites go back to no-ops."""
    global _REGISTRY
    _REGISTRY = None


def runtime_registry() -> RuntimeRegistry | None:
    """The installed registry, or ``None`` when probing is off."""
    return _REGISTRY


# --------------------------------------------------------------------------
# Probe bundles (one per instrumented subsystem)
# --------------------------------------------------------------------------
#
# Each bundle is a slotted struct of pre-resolved instruments.  The
# accessor returns ``None`` when no registry is installed, so the hot-path
# contract everywhere is::
#
#     probes = self._probes          # resolved once, at construction
#     if probes is not None:
#         probes.pushes.inc()
#
# Label resolution, name mangling and dict lookups all happen here, once.


class QueueProbes:
    """Throughput counters for one :class:`~repro.backend.events.EventQueue`."""

    __slots__ = ("pushes", "pops", "resizes")

    pushes: Counter
    pops: Counter
    resizes: Counter


def instrument_queue(queue: Any) -> QueueProbes | None:
    """Probes + an occupancy collector for a calendar ``EventQueue``.

    Occupancy (events held, bucket-ring size, bucket width) is computed by
    a scrape-time collector over a weak reference, so ``push``/``pop`` pay
    only a counter increment.  With several live queues the occupancy
    gauges reflect the most recently constructed one (the multiplexer has
    exactly one shared queue, which is the case that matters).
    """
    registry = _REGISTRY
    if registry is None:
        return None
    probes = QueueProbes()
    probes.pushes = registry.counter(
        "event_queue_pushes_total", help="Events pushed onto the calendar queue."
    )
    probes.pops = registry.counter(
        "event_queue_pops_total", help="Events popped off the calendar queue."
    )
    probes.resizes = registry.counter(
        "event_queue_resizes_total", help="Bucket-ring rebuilds (adaptive width resizes)."
    )
    ref = weakref.ref(queue)

    def collect() -> bool:
        live = ref()
        if live is None:
            return False
        registry.gauge(
            "event_queue_depth", help="Events currently held by the calendar queue."
        ).set(float(len(live)))
        registry.gauge(
            "event_queue_buckets", help="Occupied buckets in the calendar ring."
        ).set(float(len(live._buckets)))
        registry.gauge(
            "event_queue_bucket_width", help="Current adaptive bucket width (sim time units)."
        ).set(float(live._width))
        return True

    registry.add_collector(collect)
    return probes


class JournalProbes:
    """Per-journal write/fsync instruments (shared by all journals)."""

    __slots__ = ("bytes", "fsyncs", "fsync_seconds")

    bytes: Counter
    fsyncs: Counter
    fsync_seconds: Histogram


def journal_probes() -> JournalProbes | None:
    registry = _REGISTRY
    if registry is None:
        return None
    cached = registry._probe_cache.get("journal")
    if cached is not None:
        return cached
    probes = JournalProbes()
    probes.bytes = registry.counter(
        "journal_bytes_total", help="Payload bytes appended to study journals."
    )
    probes.fsyncs = registry.counter(
        "journal_fsync_total",
        help="Journal-file fsyncs (finalize / non-WAL durability).",
        labels={"target": "journal"},
    )
    probes.fsync_seconds = registry.histogram(
        "journal_fsync_seconds",
        help="Journal-file fsync latency in seconds.",
        labels={"target": "journal"},
    )
    registry._probe_cache["journal"] = probes
    return probes


class WalProbes:
    """Group-commit instruments for :class:`~repro.study.journal.JournalWriter`."""

    __slots__ = ("commits", "commit_bytes", "commit_journals", "fsyncs", "fsync_seconds")

    commits: Counter
    commit_bytes: Histogram
    commit_journals: Histogram
    fsyncs: Counter
    fsync_seconds: Histogram


def wal_probes() -> WalProbes | None:
    registry = _REGISTRY
    if registry is None:
        return None
    cached = registry._probe_cache.get("wal")
    if cached is not None:
        return cached
    probes = WalProbes()
    probes.commits = registry.counter(
        "wal_commits_total", help="Group-commit windows flushed through the shared WAL."
    )
    probes.commit_bytes = registry.histogram(
        "wal_commit_bytes", help="Bytes written to the WAL per commit window."
    )
    probes.commit_journals = registry.histogram(
        "wal_commit_window_journals", help="Dirty journals drained per commit window."
    )
    probes.fsyncs = registry.counter(
        "journal_fsync_total",
        help="WAL fsyncs (one per dirty commit window).",
        labels={"target": "wal"},
    )
    probes.fsync_seconds = registry.histogram(
        "journal_fsync_seconds",
        help="WAL fsync latency in seconds.",
        labels={"target": "wal"},
    )
    registry._probe_cache["wal"] = probes
    return probes


class StudyProbes:
    """Ask/tell batch-size and tell-latency instruments for ``Study``."""

    __slots__ = ("ask_batch_jobs", "tell_batch_results", "tell_seconds")

    ask_batch_jobs: Histogram
    tell_batch_results: Histogram
    tell_seconds: Histogram


def study_probes() -> StudyProbes | None:
    registry = _REGISTRY
    if registry is None:
        return None
    cached = registry._probe_cache.get("study")
    if cached is not None:
        return cached
    probes = StudyProbes()
    probes.ask_batch_jobs = registry.histogram(
        "study_ask_batch_jobs", help="Jobs returned per Study.ask_batch call."
    )
    probes.tell_batch_results = registry.histogram(
        "study_tell_batch_results", help="Results ingested per Study.tell/tell_batch call."
    )
    probes.tell_seconds = registry.histogram(
        "study_tell_seconds", help="Wall-clock latency of Study.tell/tell_batch in seconds."
    )
    registry._probe_cache["study"] = probes
    return probes


class BackendProbes:
    """Dispatch/collect depth and retry counters for one backend kind."""

    __slots__ = ("dispatches", "collects", "retries", "in_flight")

    dispatches: Counter
    collects: Counter
    retries: Counter
    in_flight: Gauge


def backend_probes(backend: str) -> BackendProbes | None:
    """Labelled probes for a worker backend (``threads`` / ``processes``)."""
    registry = _REGISTRY
    if registry is None:
        return None
    cached = registry._probe_cache.get(f"backend:{backend}")
    if cached is not None:
        return cached
    labels = {"backend": backend}
    probes = BackendProbes()
    probes.dispatches = registry.counter(
        "backend_dispatch_total", help="Jobs handed to backend workers.", labels=labels
    )
    probes.collects = registry.counter(
        "backend_collect_total", help="Job results collected from backend workers.", labels=labels
    )
    probes.retries = registry.counter(
        "backend_retries_total",
        help="Backend-level retries (re-dispatches, inline recomputes after pool loss).",
        labels=labels,
    )
    probes.in_flight = registry.gauge(
        "backend_in_flight", help="Jobs currently dispatched and not yet collected.", labels=labels
    )
    registry._probe_cache[f"backend:{backend}"] = probes
    return probes


class MuxProbes:
    """Shared-clock instruments for :class:`~repro.study.multiplex.StudyMultiplexer`.

    ``tick_box`` is a one-element list holding the current tick count; the
    multiplexer's ``on_tick`` advances it and ``SimRun.fill_round`` reads it
    to stamp ``last_dispatch_tick`` — the basis of the starvation-age
    gauges, which are computed by a scrape-time collector.
    """

    __slots__ = ("tick_box", "ticks", "throttles", "dispatches")

    tick_box: list[int]
    ticks: Counter
    throttles: Counter
    dispatches: Counter


def mux_probes(mux: Any) -> MuxProbes | None:
    registry = _REGISTRY
    if registry is None:
        return None
    probes = MuxProbes()
    probes.tick_box = [0]
    probes.ticks = registry.counter(
        "mux_ticks_total", help="Shared-clock ticks driven by the multiplexer."
    )
    probes.throttles = registry.counter(
        "mux_throttle_total", help="Fill rounds cut short by the fair_share cap."
    )
    probes.dispatches = registry.counter(
        "mux_dispatched_jobs_total", help="Jobs dispatched across all multiplexed studies."
    )
    mux_ref = weakref.ref(mux)
    tick_box = probes.tick_box

    def collect() -> bool:
        live = mux_ref()
        if live is None:
            return False
        now = tick_box[0]
        max_age = 0
        total_pending = 0
        active = 0
        for index, run in enumerate(live._runs):
            # A run that drained naturally is finished without being
            # budget-retired (`run.done`); ask its study, so completed
            # studies never read as starving.
            done = run.done or run.study.is_done()
            pending = 0 if done else len(run.free_ids)
            # A study is starving only while it *wants* to dispatch: free
            # workers and not finished.  Busy or completed studies read 0.
            age = max(now - run.last_dispatch_tick, 0) if pending and not done else 0
            if not done:
                active += 1
            total_pending += pending
            if age > max_age:
                max_age = age
            if index < MUX_STUDY_LABEL_CAP:
                study = {"study": str(index)}
                registry.gauge(
                    "mux_pending_asks",
                    help="Free worker slots waiting for a job, per study.",
                    labels=study,
                ).set(float(pending))
                registry.gauge(
                    "mux_starvation_age_ticks",
                    help="Ticks since a study with pending demand last dispatched.",
                    labels=study,
                ).set(float(age))
        registry.gauge(
            "mux_studies_active", help="Multiplexed studies not yet finished."
        ).set(float(active))
        registry.gauge(
            "mux_pending_asks_cluster", help="Free worker slots across all studies."
        ).set(float(total_pending))
        registry.gauge(
            "mux_starvation_age_max_ticks",
            help="Worst starvation age across all studies (incl. beyond the label cap).",
        ).set(float(max_age))
        return True

    registry.add_collector(collect)
    return probes


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------

_TYPE_BY_SECTION = {"counters": "counter", "gauges": "gauge", "histograms": "histogram"}
_EXPO_TYPE = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}


def render_prometheus(source: Any) -> str:
    """Byte-stable Prometheus text exposition of a registry (or snapshot).

    ``source`` is a :class:`RuntimeRegistry` (``snapshot()`` is taken, which
    runs collectors) or an already-taken snapshot dict — the form the
    :class:`RuntimeScraper` writes to JSONL, which is how the CLI renders
    ``--prom`` offline.  Families are emitted in sorted order, samples in
    sorted order within each family, histograms as Prometheus *summaries*
    (``quantile`` samples plus ``_sum``/``_count``).  Rendering the same
    run twice produces identical bytes.
    """
    snap = source.snapshot() if hasattr(source, "snapshot") else source
    families_meta = snap.get("families", {})

    # family base name -> {"type", "help", "samples": [(sort key, line)]}
    families: dict[str, dict[str, Any]] = {}

    def family_for(base: str, section: str) -> dict[str, Any]:
        family = families.get(base)
        if family is None:
            meta = families_meta.get(base)
            if meta is None:
                meta = {"type": _TYPE_BY_SECTION[section], "help": ""}
            families[base] = family = {
                "type": meta["type"],
                "help": meta.get("help", ""),
                "samples": [],
            }
        return family

    for section in ("counters", "gauges"):
        for key, value in snap.get(section, {}).items():
            base, _ = _split_series_key(key)
            family = family_for(base, section)
            family["samples"].append((key, f"{key} {_format_value(value)}"))

    for key, summary in snap.get("histograms", {}).items():
        base, inner = _split_series_key(key)
        family = family_for(base, "histograms")
        labels = _parse_label_string(inner)
        count = summary.get("count", 0)
        if count:
            for rank, quantile in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
                qkey = _series_key(base, {**labels, "quantile": quantile})
                family["samples"].append(
                    (f"{key}~0q{quantile}", f"{qkey} {_format_value(summary[rank])}")
                )
        total = summary.get("sum", 0.0)
        sum_key = _series_key(f"{base}_sum", labels or None)
        count_key = _series_key(f"{base}_count", labels or None)
        family["samples"].append((f"{key}~1sum", f"{sum_key} {_format_value(total)}"))
        family["samples"].append((f"{key}~2count", f"{count_key} {_format_value(count)}"))

    lines: list[str] = []
    for base in sorted(families):
        family = families[base]
        if family["help"]:
            lines.append(f"# HELP {base} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {base} {_EXPO_TYPE[family['type']]}")
        for _, line in sorted(family["samples"]):
            lines.append(line)
    return "\n".join(lines) + "\n" if lines else ""


_VALID_EXPO_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\")"
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\")*)?\})?"  # optional labels
    r" (\S+)$"  # value
)


def validate_exposition(text: str) -> list[str]:
    """Strictly parse Prometheus text exposition; return a list of violations.

    Checks the invariants :func:`render_prometheus` promises: every sample
    belongs to a ``# TYPE``-declared family, families appear exactly once
    and in sorted order, label strings are well-formed, values parse,
    counters are non-negative, no sample name (labels included) repeats,
    and the text ends with a newline.  An empty list means the exposition
    is valid.
    """
    violations: list[str] = []
    if not text:
        return ["empty exposition"]
    if not text.endswith("\n"):
        violations.append("exposition must end with a newline")
    typed: dict[str, str] = {}
    last_family: str | None = None
    current_family: str | None = None
    seen_samples: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            violations.append(f"line {lineno}: blank line")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                violations.append(f"line {lineno}: malformed TYPE line")
                continue
            _, _, name, kind = parts
            if not _METRIC_NAME_RE.match(name):
                violations.append(f"line {lineno}: invalid family name {name!r}")
            if kind not in _VALID_EXPO_TYPES:
                violations.append(f"line {lineno}: invalid type {kind!r} for {name}")
            if name in typed:
                violations.append(f"line {lineno}: duplicate TYPE for family {name}")
            if last_family is not None and name <= last_family:
                violations.append(
                    f"line {lineno}: family {name} out of sorted order (after {last_family})"
                )
            typed[name] = kind
            last_family = name
            current_family = name
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _METRIC_NAME_RE.match(parts[2]):
                violations.append(f"line {lineno}: malformed HELP line")
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            violations.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name, _, value = match.groups()
        try:
            parsed = float(value)
        except ValueError:
            violations.append(f"line {lineno}: unparseable value {value!r}")
            continue
        family = current_family
        if family is None:
            violations.append(f"line {lineno}: sample {name} before any # TYPE")
            continue
        base_ok = name == family or (
            typed.get(family) in ("summary", "histogram")
            and name in (f"{family}_sum", f"{family}_count", f"{family}_bucket")
        )
        if not base_ok:
            violations.append(
                f"line {lineno}: sample {name} does not belong to family {family}"
            )
            continue
        sample_key = line.rsplit(" ", 1)[0]
        if sample_key in seen_samples:
            violations.append(f"line {lineno}: duplicate sample {sample_key}")
        seen_samples.add(sample_key)
        if typed.get(family) == "counter" and not math.isnan(parsed) and parsed < 0:
            violations.append(f"line {lineno}: counter {name} is negative ({value})")
    return violations


# --------------------------------------------------------------------------
# Shared-clock snapshot scraper
# --------------------------------------------------------------------------


class RuntimeScraper:
    """Append registry snapshots to JSONL on a simulated-clock cadence.

    Hook :meth:`on_tick` into ``drive_runs`` (``StudyMultiplexer`` accepts
    the scraper directly): every ``every`` ticks it appends one canonical
    JSON line ``{"schema": 1, "tick": ..., "wall_time": ..., "snapshot":
    {...}}``.  ``close()`` writes a final snapshot so short runs always
    produce at least one line.  Wall time is recorded for rate computation
    in the CLI — it lives only in the scrape output, never in run records.
    """

    SCHEMA = 1

    def __init__(self, registry: RuntimeRegistry, path: str | os.PathLike[str],
                 *, every: int = 64):
        if every < 1:
            raise ValueError(f"scrape cadence must be >= 1 tick, got {every}")
        self.registry = registry
        self.path = os.fspath(path)
        self.every = every
        self.ticks = 0
        self.snapshots_written = 0
        self._handle: Any = open(self.path, "w", encoding="utf-8")

    def on_tick(self) -> None:
        self.ticks += 1
        if self.ticks % self.every == 0:
            self.snapshot()

    def snapshot(self) -> None:
        """Force a snapshot now (collectors run via ``registry.snapshot()``)."""
        if self._handle is None:
            raise ValueError(f"scraper for {self.path} is closed")
        record = {
            "schema": self.SCHEMA,
            "tick": self.ticks,
            "wall_time": _time.time(),
            "snapshot": self.registry.snapshot(),
        }
        self._handle.write(encode_canonical(record) + "\n")
        self._handle.flush()
        self.snapshots_written += 1

    def close(self) -> None:
        if self._handle is None:
            return
        self.snapshot()
        self._handle.close()
        self._handle = None


# --------------------------------------------------------------------------
# Ops CLI
# --------------------------------------------------------------------------


def _load_snapshots(path: str) -> list[dict[str, Any]]:
    snapshots = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                snapshots.append(json.loads(line))
    return snapshots


def _study_table(gauges: dict[str, float]) -> list[str]:
    """The per-study multiplexer health table, from labelled gauges."""
    studies: dict[str, dict[str, float]] = {}
    for key, value in gauges.items():
        base, inner = _split_series_key(key)
        if base not in ("mux_pending_asks", "mux_starvation_age_ticks"):
            continue
        study = _parse_label_string(inner).get("study")
        if study is not None:
            studies.setdefault(study, {})[base] = value
    if not studies:
        return []
    rows = [("study", "pending_asks", "starvation_age")]
    ordered = sorted(studies.items(), key=lambda item: (len(item[0]), item[0]))
    shown = ordered[:16]
    for study, values in shown:
        rows.append(
            (
                study,
                _format_value(values.get("mux_pending_asks", 0.0)),
                _format_value(values.get("mux_starvation_age_ticks", 0.0)),
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(3)]
    lines = ["multiplexer health:"]
    lines.append("  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(rows[0])))
    for row in rows[1:]:
        lines.append("  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if len(ordered) > len(shown):
        lines.append(f"  ... {len(ordered) - len(shown)} more studies")
    return lines


def render_report(snapshots: list[dict[str, Any]]) -> str:
    """Human-readable health report from a scraped snapshot sequence.

    Counters show their value plus the rate over the observed wall-clock
    window; gauges show their latest value; histograms show count and tail
    percentiles.  When per-study multiplexer gauges are present a compact
    health table (pending asks, starvation age) leads the report.
    """
    if not snapshots:
        return "no snapshots"
    first, last = snapshots[0], snapshots[-1]
    snap = last.get("snapshot", {})
    window = float(last.get("wall_time", 0.0)) - float(first.get("wall_time", 0.0))
    lines = [
        f"runtime report: {len(snapshots)} snapshot(s), "
        f"tick {last.get('tick', 0)}, window {max(window, 0.0):.2f}s"
    ]
    lines.extend(_study_table(snap.get("gauges", {})))

    rows: list[tuple[str, str, str]] = []
    base_counters = first.get("snapshot", {}).get("counters", {})
    for name, value in snap.get("counters", {}).items():
        if len(snapshots) > 1 and window > 0:
            rate = f"{(value - base_counters.get(name, 0.0)) / window:.1f}/s"
        else:
            rate = "-"
        rows.append((name, _format_value(value), rate))
    for name, value in snap.get("gauges", {}).items():
        rows.append((name, _format_value(value), "-"))
    for name, summary in snap.get("histograms", {}).items():
        count = int(summary.get("count", 0))
        if count:
            detail = (
                f"n={count} p50={summary['p50']:.4g} "
                f"p99={summary['p99']:.4g} max={summary['max']:.4g}"
            )
        else:
            detail = "n=0"
        rows.append((name, detail, "-"))
    if rows:
        header = ("metric", "value", "rate")
        widths = [
            max(len(header[col]), max(len(row[col]) for row in rows)) for col in range(3)
        ]
        lines.append("  ".join(header[col].ljust(widths[col]) for col in range(3)))
        lines.append("  ".join("-" * widths[col] for col in range(3)))
        for row in rows:
            lines.append("  ".join(row[col].ljust(widths[col]) for col in range(3)))
    return "\n".join(lines)


def _watch(path: str, interval: float) -> int:
    """Re-render the report as the file grows; exit once it stops growing."""
    last_size = -1
    stable = 0
    while stable < 2:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size == last_size:
            stable += 1
        else:
            stable = 0
            snapshots = _load_snapshots(path) if size else []
            print(f"--- {path} ({size} bytes) ---")
            print(render_report(snapshots))
            sys.stdout.flush()
        last_size = size
        _time.sleep(interval)
    print("(file stopped growing)", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.runtime",
        description="Inspect runtime-probe snapshots scraped by RuntimeScraper.",
    )
    parser.add_argument("snapshots", help="JSONL snapshot file written by RuntimeScraper")
    parser.add_argument("--report", action="store_true",
                        help="print the health report for the last snapshot")
    parser.add_argument("--prom", action="store_true",
                        help="print the last snapshot as Prometheus text exposition")
    parser.add_argument("--watch", action="store_true",
                        help="re-render the report as the file grows; exit when it stops")
    parser.add_argument("--validate", action="store_true",
                        help="validate the Prometheus exposition; exit 1 on violations")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="--watch poll interval in seconds (default 1.0)")
    args = parser.parse_args(argv)

    if args.watch:
        return _watch(args.snapshots, args.interval)

    snapshots = _load_snapshots(args.snapshots)
    if not snapshots:
        print(f"{args.snapshots}: no snapshots", file=sys.stderr)
        return 1

    status = 0
    if args.prom or args.validate:
        exposition = render_prometheus(snapshots[-1]["snapshot"])
        if args.prom:
            sys.stdout.write(exposition)
        if args.validate:
            violations = validate_exposition(exposition)
            for violation in violations:
                print(f"exposition violation: {violation}", file=sys.stderr)
            if violations:
                status = 1
            else:
                print("exposition: ok", file=sys.stderr)
    if args.report or not (args.prom or args.validate):
        print(render_report(snapshots))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
