"""Trace reconstruction: spans, timelines and critical paths from events.

The telemetry layer answers "what happened"; this module answers **"where
did the time go?"** — the question behind every timing claim in the paper
(linear speedups, high utilisation, straggler robustness; Sections 4-5,
Figures 7-8).  A :class:`TraceBuilder` consumes the flat
:class:`~repro.telemetry.events.TelemetryEvent` stream — live, as a sink on
a :class:`~repro.telemetry.TelemetryHub`, or offline from a JSONL export —
and reconstructs:

* **per-trial span trees** — a :class:`TrialTrace` per trial: its sampled
  config, every dispatch as an :class:`AttemptSpan` (worker attribution,
  outcome, loss), retry/backoff intervals, promotions and rung residency;
* **per-worker timelines** — a :class:`WorkerTimeline` per worker with
  busy/idle segmentation derived from the attempts it executed;
* **a Chrome trace-event export** (:meth:`Trace.to_chrome_trace`) that
  loads in ``chrome://tracing`` / Perfetto: workers as rows, jobs as
  duration events, promotions/failures/timeouts as instant events;
* **critical-path attribution** (:meth:`Trace.critical_path`) — the
  incumbent trial's end-to-end latency decomposed into contiguous segments
  (compute, queue wait, retry backoff, straggler delay, failure loss) that
  sum exactly to the observed latency;
* **straggler and utilisation reports** (:meth:`Trace.straggler_report`,
  :meth:`Trace.utilization_report`) — per-worker slowdown factors echoing
  Figure 7, and busy/idle-gap accounting.

Everything is a pure fold over the event stream: replaying a recorded JSONL
file yields the identical trace (and byte-identical Chrome JSON) as the
live run that produced it.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import IO, Any, Iterable

from .events import EventKind, TelemetryEvent

__all__ = [
    "AttemptSpan",
    "TrialTrace",
    "WorkerSegment",
    "WorkerTimeline",
    "CriticalPathSegment",
    "CriticalPath",
    "WorkerStats",
    "Trace",
    "TraceBuilder",
    "events_from_jsonl",
    "validate_chrome_trace",
]

#: Segment kinds a critical path is decomposed into.  ``compute`` is time a
#: worker spent producing a result the trial kept; ``straggler_delay`` is
#: time burnt on attempts killed by a deadline (a straggling or hung
#: worker); ``failure_lost`` covers attempts lost to drops/churn/crashes;
#: ``retry_backoff`` is policy-imposed waiting between a failure and its
#: re-dispatch becoming eligible; ``queue_wait`` is everything else the
#: trial spent waiting for a worker (including rung-promotion waits).
CRITICAL_PATH_KINDS = (
    "compute",
    "queue_wait",
    "retry_backoff",
    "straggler_delay",
    "failure_lost",
)

_FAILURE_KINDS = (EventKind.JOB_FAILED, EventKind.JOB_TIMEOUT)


@dataclass
class AttemptSpan:
    """One dispatch of one job: worker-attributed, with its outcome.

    ``outcome`` is ``"completed"`` for a successful report, the failure
    reason (``"dropped"``, ``"churn"``, ``"exception"``, ``"timeout"``) for
    a failed attempt, and ``"running"`` for a dispatch still in flight when
    the stream ended (its ``end`` is then the run horizon).
    """

    trial_id: int
    job_id: int
    attempt: int
    start: float
    end: float | None = None
    worker_id: int | None = None
    rung: int | None = None
    bracket: int | None = None
    outcome: str = "running"
    loss: float | None = None
    resource: float | None = None
    checkpoint_resource: float | None = None
    error: str | None = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def completed(self) -> bool:
        return self.outcome == "completed"


@dataclass
class TrialTrace:
    """Span tree of one trial: lifetime, attempts, promotions, backoffs."""

    trial_id: int
    #: When the scheduler sampled the configuration (``trial_started``);
    #: ``None`` when the stream starts mid-run.
    sampled_at: float | None = None
    config: dict[str, Any] | None = None
    attempts: list[AttemptSpan] = field(default_factory=list)
    #: ``(time, from_rung, to_rung)`` per promotion event (``to_rung`` is
    #: ``None`` for PBT-style exploits, which have no rung ladder).
    promotions: list[tuple[float, int | None, int | None]] = field(default_factory=list)
    #: Retry backoff windows ``(failed_at, ready_at)`` imposed by the policy.
    backoffs: list[tuple[float, float]] = field(default_factory=list)
    abandoned_at: float | None = None
    checkpoint_restores: int = 0

    @property
    def start(self) -> float:
        """Trial birth: sampling time, else first dispatch."""
        if self.sampled_at is not None:
            return self.sampled_at
        return self.attempts[0].start if self.attempts else 0.0

    @property
    def end(self) -> float:
        """Last closed span edge the trial owns."""
        times = [a.end for a in self.attempts if a.end is not None]
        times.extend(t for t, _, _ in self.promotions)
        if self.abandoned_at is not None:
            times.append(self.abandoned_at)
        return max(times) if times else self.start

    @property
    def end_to_end_latency(self) -> float:
        return self.end - self.start

    def last_report_time(self) -> float | None:
        """Time of the trial's final successful report, if any."""
        done = [a.end for a in self.attempts if a.completed and a.end is not None]
        return max(done) if done else None

    def best_loss(self) -> float | None:
        losses = [a.loss for a in self.attempts if a.completed and a.loss is not None]
        return min(losses) if losses else None

    def rung_residency(self) -> list[tuple[int, float, float]]:
        """``(rung, enter, exit)`` segments: time spent working each rung.

        A trial enters a rung at its first dispatch there and leaves it when
        a dispatch at a higher rung starts (or at its last span edge).
        Attempts without a rung (e.g. PBT) contribute nothing.
        """
        rung_first: dict[int, float] = {}
        for a in self.attempts:
            if a.rung is None:
                continue
            if a.rung not in rung_first or a.start < rung_first[a.rung]:
                rung_first[a.rung] = a.start
        if not rung_first:
            return []
        ordered = sorted(rung_first.items(), key=lambda item: item[1])
        out: list[tuple[int, float, float]] = []
        for i, (rung, enter) in enumerate(ordered):
            leave = ordered[i + 1][1] if i + 1 < len(ordered) else self.end
            out.append((rung, enter, leave))
        return out


@dataclass(frozen=True)
class WorkerSegment:
    """One contiguous busy or idle stretch on a worker's timeline."""

    start: float
    end: float
    state: str  # "busy" | "idle"
    trial_id: int | None = None
    job_id: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class WorkerTimeline:
    """Busy/idle segmentation of one worker over the run horizon.

    Workers present from the start are measured over ``[0, horizon]``;
    workers that joined later (churn replacements) over
    ``[first dispatch, horizon]``.
    """

    worker_id: int
    segments: list[WorkerSegment] = field(default_factory=list)

    @property
    def busy_time(self) -> float:
        return sum(s.duration for s in self.segments if s.state == "busy")

    @property
    def idle_time(self) -> float:
        return sum(s.duration for s in self.segments if s.state == "idle")

    @property
    def span(self) -> float:
        return self.busy_time + self.idle_time

    def utilization(self) -> float:
        return self.busy_time / self.span if self.span > 0 else 0.0

    def idle_gaps(self) -> list[WorkerSegment]:
        return [s for s in self.segments if s.state == "idle"]


@dataclass(frozen=True)
class CriticalPathSegment:
    """One contiguous slice of a trial's end-to-end latency."""

    start: float
    end: float
    kind: str  # one of CRITICAL_PATH_KINDS
    job_id: int | None = None
    attempt: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """Where one trial's end-to-end latency went, segment by segment.

    Segments are contiguous and partition ``[start, end]``, so their
    durations sum to :attr:`total_latency` exactly (up to float
    associativity) — the invariant the acceptance test pins.
    """

    trial_id: int
    start: float
    end: float
    segments: list[CriticalPathSegment] = field(default_factory=list)

    @property
    def total_latency(self) -> float:
        return self.end - self.start

    def breakdown(self) -> dict[str, float]:
        """Summed duration per segment kind (every kind always present)."""
        out = {kind: 0.0 for kind in CRITICAL_PATH_KINDS}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.duration
        return out


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker straggler statistics (echoing Figure 7's slowdowns)."""

    worker_id: int
    attempts: int
    busy_time: float
    #: Mean time this worker took per unit of resource trained.
    mean_rate: float
    #: ``mean_rate`` over the cluster-median rate: > 1 means a straggler.
    slowdown: float


class Trace:
    """The reconstructed run: trial span trees + worker timelines + reports."""

    def __init__(
        self,
        trials: dict[int, TrialTrace],
        workers: dict[int, WorkerTimeline],
        *,
        elapsed: float,
        num_workers: int,
        events_consumed: int,
    ):
        self.trials = trials
        self.workers = workers
        self.elapsed = elapsed
        self.num_workers = num_workers
        self.events_consumed = events_consumed

    # ----------------------------------------------------------- incumbent

    def incumbent(self) -> int | None:
        """Trial id with the best (lowest) successfully reported loss."""
        best_id: int | None = None
        best_loss = math.inf
        for trial_id in sorted(self.trials):
            loss = self.trials[trial_id].best_loss()
            if loss is not None and loss < best_loss:
                best_loss = loss
                best_id = trial_id
        return best_id

    # -------------------------------------------------------- critical path

    def critical_path(self, trial_id: int | None = None) -> CriticalPath:
        """Decompose a trial's end-to-end latency into attributed segments.

        Defaults to the incumbent trial.  The path runs from the trial's
        birth (sampling) to its final successful report (falling back to its
        last span edge for trials that never completed); every instant in
        between lands in exactly one :class:`CriticalPathSegment`.
        """
        if trial_id is None:
            trial_id = self.incumbent()
        if trial_id is None or trial_id not in self.trials:
            raise ValueError(f"no such trial to attribute: {trial_id!r}")
        trial = self.trials[trial_id]
        start = trial.start
        end = trial.last_report_time()
        if end is None:
            end = trial.end
        segments: list[CriticalPathSegment] = []
        cursor = start
        attempts = sorted(
            (a for a in trial.attempts if a.end is not None and a.start < end),
            key=lambda a: (a.start, a.job_id, a.attempt),
        )
        backoffs = sorted(trial.backoffs)
        for a in attempts:
            if a.start > cursor:
                segments.extend(self._classify_gap(cursor, a.start, backoffs))
                cursor = a.start
            seg_end = min(a.end if a.end is not None else end, end)
            if seg_end > cursor:
                if a.completed:
                    kind = "compute"
                elif a.outcome == "timeout":
                    kind = "straggler_delay"
                else:
                    kind = "failure_lost"
                segments.append(
                    CriticalPathSegment(
                        start=cursor, end=seg_end, kind=kind,
                        job_id=a.job_id, attempt=a.attempt,
                    )
                )
                cursor = seg_end
        if cursor < end:
            segments.extend(self._classify_gap(cursor, end, backoffs))
        return CriticalPath(trial_id=trial_id, start=start, end=end, segments=segments)

    @staticmethod
    def _classify_gap(
        start: float, end: float, backoffs: list[tuple[float, float]]
    ) -> list[CriticalPathSegment]:
        """Split an idle gap into retry-backoff and queue-wait slices."""
        out: list[CriticalPathSegment] = []
        cursor = start
        for failed_at, ready_at in backoffs:
            if ready_at <= cursor or failed_at >= end:
                continue
            boff_start = max(failed_at, cursor)
            boff_end = min(ready_at, end)
            if boff_start > cursor:
                out.append(CriticalPathSegment(cursor, boff_start, "queue_wait"))
            out.append(CriticalPathSegment(boff_start, boff_end, "retry_backoff"))
            cursor = boff_end
            if cursor >= end:
                break
        if cursor < end:
            out.append(CriticalPathSegment(cursor, end, "queue_wait"))
        return out

    # -------------------------------------------------------------- reports

    def straggler_report(self) -> list[WorkerStats]:
        """Per-worker slowdown factors, sorted slowest first.

        Each completed attempt contributes its duration per unit of resource
        trained; a worker's slowdown is its mean rate over the cluster-wide
        median rate.  Only workers with at least one completed attempt
        appear (a worker that only ran killed jobs has no clean rate).
        """
        rates: dict[int, list[float]] = {}
        for trial in self.trials.values():
            for a in trial.attempts:
                if not a.completed or a.worker_id is None or a.end is None:
                    continue
                trained = (a.resource or 0.0) - (a.checkpoint_resource or 0.0)
                if trained <= 0:
                    continue
                rates.setdefault(a.worker_id, []).append(a.duration / trained)
        if not rates:
            return []
        all_rates = sorted(r for worker in rates.values() for r in worker)
        median = all_rates[len(all_rates) // 2]
        out = []
        for worker_id, worker_rates in rates.items():
            mean_rate = sum(worker_rates) / len(worker_rates)
            timeline = self.workers.get(worker_id)
            out.append(
                WorkerStats(
                    worker_id=worker_id,
                    attempts=len(worker_rates),
                    busy_time=timeline.busy_time if timeline else 0.0,
                    mean_rate=mean_rate,
                    slowdown=mean_rate / median if median > 0 else math.nan,
                )
            )
        out.sort(key=lambda s: (-s.slowdown, s.worker_id))
        return out

    def utilization_report(self) -> dict[str, Any]:
        """Cluster busy/idle accounting plus the largest idle gaps."""
        per_worker = {
            w: timeline.utilization() for w, timeline in sorted(self.workers.items())
        }
        busy = sum(t.busy_time for t in self.workers.values())
        span = sum(t.span for t in self.workers.values())
        gaps = [
            (t.worker_id, gap.start, gap.end)
            for t in self.workers.values()
            for gap in t.idle_gaps()
        ]
        gaps.sort(key=lambda g: (g[1] - g[2], g[0], g[1]))  # longest first
        return {
            "elapsed": self.elapsed,
            "num_workers": self.num_workers,
            "busy_time": busy,
            "idle_time": span - busy,
            "cluster_utilization": busy / span if span > 0 else 0.0,
            "worker_utilization": per_worker,
            "largest_idle_gaps": gaps[:10],
        }

    # --------------------------------------------------------- chrome trace

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event (Perfetto-compatible) JSON object.

        Workers are rows (pid 0, one tid per worker), every attempt is a
        complete (``"X"``) duration event, and promotions / failures /
        timeouts / abandonments are instant (``"i"``) events.  One backend
        time unit maps to one trace millisecond (``ts`` is microseconds).
        Event order is metadata first, then strictly ``ts``-sorted — the
        invariant :func:`validate_chrome_trace` checks.
        """

        def us(t: float) -> float:
            return round(t * 1000.0, 6)  # 1 time unit -> 1 ms, ts in us

        meta: list[dict[str, Any]] = [
            {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
             "args": {"name": "workers"}},
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": "scheduler"}},
        ]
        for worker_id in sorted(self.workers):
            meta.append(
                {"ph": "M", "pid": 0, "tid": worker_id, "name": "thread_name",
                 "args": {"name": f"worker {worker_id}"}}
            )
            meta.append(
                {"ph": "M", "pid": 0, "tid": worker_id, "name": "thread_sort_index",
                 "args": {"sort_index": worker_id}}
            )
        events: list[dict[str, Any]] = []
        for trial_id in sorted(self.trials):
            trial = self.trials[trial_id]
            for a in trial.attempts:
                if a.worker_id is None or a.end is None:
                    continue
                args: dict[str, Any] = {
                    "trial_id": a.trial_id, "job_id": a.job_id,
                    "attempt": a.attempt, "outcome": a.outcome,
                }
                if a.loss is not None:
                    args["loss"] = a.loss
                if a.resource is not None:
                    args["resource"] = a.resource
                name = f"trial {a.trial_id}"
                if a.rung is not None:
                    name += f" rung {a.rung}"
                events.append(
                    {"ph": "X", "pid": 0, "tid": a.worker_id, "ts": us(a.start),
                     "dur": us(a.end) - us(a.start),
                     "name": name,
                     "cat": "job" if a.completed else "job,failed",
                     "args": args}
                )
                if not a.completed and a.outcome != "running":
                    events.append(
                        {"ph": "i", "s": "t", "pid": 0, "tid": a.worker_id,
                         "ts": us(a.end),
                         "name": f"{a.outcome}: trial {a.trial_id}",
                         "cat": "fault",
                         "args": {"trial_id": a.trial_id, "job_id": a.job_id,
                                  "attempt": a.attempt}}
                    )
            for time, from_rung, to_rung in trial.promotions:
                events.append(
                    {"ph": "i", "s": "p", "pid": 1, "tid": 0, "ts": us(time),
                     "name": f"promote trial {trial_id}"
                             + (f" -> rung {to_rung}" if to_rung is not None else ""),
                     "cat": "promotion",
                     "args": {"trial_id": trial_id, "from_rung": from_rung,
                              "to_rung": to_rung}}
                )
            if trial.abandoned_at is not None:
                events.append(
                    {"ph": "i", "s": "p", "pid": 1, "tid": 0,
                     "ts": us(trial.abandoned_at),
                     "name": f"abandon trial {trial_id}", "cat": "fault",
                     "args": {"trial_id": trial_id}}
                )
        events.sort(key=lambda e: e["ts"])
        return {"displayTimeUnit": "ms", "traceEvents": meta + events}

    def chrome_trace_json(self) -> str:
        """Canonical (sorted-keys, compact) serialisation — byte-stable."""
        return json.dumps(
            self.to_chrome_trace(), sort_keys=True, separators=(",", ":")
        )

    # --------------------------------------------------------------- report

    def render_report(self) -> str:
        """Plain-text run report: spans, critical path, stragglers, idle."""
        lines = [
            f"trace: {len(self.trials)} trials, {len(self.workers)} workers, "
            f"{self.events_consumed} events, horizon {self.elapsed:g}",
        ]
        incumbent = self.incumbent()
        if incumbent is not None:
            path = self.critical_path(incumbent)
            lines.append(
                f"incumbent: trial {incumbent} "
                f"(loss {self.trials[incumbent].best_loss():g}), "
                f"end-to-end latency {path.total_latency:g}"
            )
            lines.append("critical path:")
            for kind, total in path.breakdown().items():
                if path.total_latency > 0:
                    share = 100.0 * total / path.total_latency
                    lines.append(f"  {kind:<16} {total:>10.4g}  ({share:5.1f}%)")
                else:
                    lines.append(f"  {kind:<16} {total:>10.4g}")
        util = self.utilization_report()
        lines.append(
            f"utilisation: {util['cluster_utilization']:.1%} "
            f"(busy {util['busy_time']:g}, idle {util['idle_time']:g})"
        )
        stragglers = self.straggler_report()
        if stragglers:
            lines.append("slowest workers (slowdown vs median rate):")
            for stats in stragglers[:5]:
                lines.append(
                    f"  worker {stats.worker_id:>3}  x{stats.slowdown:.2f}  "
                    f"({stats.attempts} jobs, busy {stats.busy_time:g})"
                )
        return "\n".join(lines)


class TraceBuilder:
    """Fold a telemetry event stream into a :class:`Trace`.

    Usable three ways, all producing identical traces for the same stream:

    * as a live sink: ``hub.add_sink(builder)`` (or ``trace=True`` on a
      backend ``run``, which does this for you);
    * replaying recorded events: ``TraceBuilder.from_events(sink.events)``;
    * offline from a JSONL export: ``TraceBuilder.from_jsonl(path)``.

    Call :meth:`build` once the stream is complete.  ``finalize`` (invoked
    by :meth:`TelemetryHub.finalize` like any collector) pins the run
    horizon so in-flight attempts and trailing idle time are bounded.
    """

    def __init__(self) -> None:
        self._trials: dict[int, TrialTrace] = {}
        #: Open attempt per job id (retried jobs reuse their id serially).
        self._open: dict[int, AttemptSpan] = {}
        self._last_time = 0.0
        self._events = 0
        self._elapsed: float | None = None
        self._num_workers: int | None = None

    # ------------------------------------------------------------ ingestion

    @classmethod
    def from_events(cls, events: Iterable[TelemetryEvent]) -> "TraceBuilder":
        builder = cls()
        for event in events:
            builder.write(event)
        return builder

    @classmethod
    def from_jsonl(cls, path: str | os.PathLike[str] | IO[str]) -> "TraceBuilder":
        return cls.from_events(events_from_jsonl(path))

    # ----------------------------------------------------------------- sink

    def write(self, event: TelemetryEvent) -> None:
        self._events += 1
        self._last_time = max(self._last_time, event.time)
        handler = self._HANDLERS.get(event.kind)
        if handler is not None:
            handler(self, event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def finalize(self, *, elapsed: float, num_workers: int) -> None:
        """Pin the run horizon (called by the hub at end of run)."""
        self._elapsed = elapsed
        self._num_workers = num_workers

    # ------------------------------------------------------------- handlers

    def _trial(self, trial_id: int) -> TrialTrace:
        trace = self._trials.get(trial_id)
        if trace is None:
            trace = self._trials[trial_id] = TrialTrace(trial_id=trial_id)
        return trace

    def _on_trial_started(self, event: TelemetryEvent) -> None:
        assert event.trial_id is not None
        trial = self._trial(event.trial_id)
        trial.sampled_at = event.time
        config = event.data.get("config")
        if config is not None:
            # Live events carry the scheduler's interned canonical config;
            # share it rather than copying (the builder only reads it).
            # JSONL-sourced events decode a fresh dict per line anyway.
            trial.config = config

    def _on_job_started(self, event: TelemetryEvent) -> None:
        if event.trial_id is None or event.job_id is None:
            return
        stale = self._open.pop(event.job_id, None)
        if stale is not None:  # defensive: close a dangling prior dispatch
            stale.end = event.time
            stale.outcome = "lost"
        span = AttemptSpan(
            trial_id=event.trial_id,
            job_id=event.job_id,
            attempt=int(event.data.get("attempt", 1)),
            start=event.time,
            worker_id=event.worker_id,
            rung=event.rung,
            bracket=event.bracket,
            resource=event.data.get("resource"),
            checkpoint_resource=event.data.get("checkpoint_resource"),
        )
        self._open[event.job_id] = span
        self._trial(event.trial_id).attempts.append(span)

    def _close(self, event: TelemetryEvent, outcome: str) -> AttemptSpan | None:
        if event.job_id is None:
            return None
        span = self._open.pop(event.job_id, None)
        if span is None:
            return None
        span.end = event.time
        span.outcome = outcome
        return span

    def _on_report(self, event: TelemetryEvent) -> None:
        span = self._close(event, "completed")
        if span is not None:
            span.loss = event.data.get("loss", span.loss)
            if event.data.get("resource") is not None:
                span.resource = event.data["resource"]

    def _on_job_failed(self, event: TelemetryEvent) -> None:
        span = self._close(event, str(event.data.get("reason", "failed")))
        if span is not None:
            span.error = event.data.get("error")

    def _on_job_retried(self, event: TelemetryEvent) -> None:
        if event.trial_id is None:
            return
        ready_at = event.data.get("retry_at")
        if ready_at is None:
            ready_at = event.time + float(event.data.get("delay", 0.0))
        self._trial(event.trial_id).backoffs.append((event.time, float(ready_at)))

    def _on_trial_abandoned(self, event: TelemetryEvent) -> None:
        if event.trial_id is not None:
            self._trial(event.trial_id).abandoned_at = event.time

    def _on_promotion(self, event: TelemetryEvent) -> None:
        if event.trial_id is None:
            return
        self._trial(event.trial_id).promotions.append(
            (event.time, event.data.get("from_rung"), event.rung)
        )

    def _on_checkpoint_restored(self, event: TelemetryEvent) -> None:
        if event.trial_id is not None:
            self._trial(event.trial_id).checkpoint_restores += 1

    _HANDLERS = {
        EventKind.TRIAL_STARTED: _on_trial_started,
        EventKind.JOB_STARTED: _on_job_started,
        EventKind.REPORT: _on_report,
        EventKind.JOB_FAILED: _on_job_failed,
        EventKind.JOB_TIMEOUT: _on_job_failed,
        EventKind.JOB_RETRIED: _on_job_retried,
        EventKind.TRIAL_ABANDONED: _on_trial_abandoned,
        EventKind.PROMOTION: _on_promotion,
        EventKind.CHECKPOINT_RESTORED: _on_checkpoint_restored,
    }

    # ---------------------------------------------------------------- build

    def build(self) -> Trace:
        """Assemble the immutable :class:`Trace` from everything ingested."""
        elapsed = self._elapsed if self._elapsed is not None else self._last_time
        # Close attempts still in flight at the horizon.
        for span in self._open.values():
            span.end = elapsed
            span.outcome = "running"
        # Worker timelines from worker-attributed attempts.
        by_worker: dict[int, list[AttemptSpan]] = {}
        for trial in self._trials.values():
            for a in trial.attempts:
                if a.worker_id is not None and a.end is not None:
                    by_worker.setdefault(a.worker_id, []).append(a)
        initial = self._num_workers if self._num_workers is not None else 0
        workers: dict[int, WorkerTimeline] = {}
        worker_ids = set(by_worker) | set(range(initial))
        for worker_id in sorted(worker_ids):
            attempts = sorted(by_worker.get(worker_id, []), key=lambda a: a.start)
            # Initial workers exist from t=0; churn replacements from their
            # first dispatch (their birth is not in the event stream).
            cursor = 0.0 if worker_id < initial or not attempts else attempts[0].start
            segments: list[WorkerSegment] = []
            for a in attempts:
                if a.start > cursor:
                    segments.append(WorkerSegment(cursor, a.start, "idle"))
                assert a.end is not None
                segments.append(
                    WorkerSegment(a.start, a.end, "busy", a.trial_id, a.job_id)
                )
                cursor = max(cursor, a.end)
            if cursor < elapsed:
                segments.append(WorkerSegment(cursor, elapsed, "idle"))
            workers[worker_id] = WorkerTimeline(worker_id=worker_id, segments=segments)
        return Trace(
            dict(sorted(self._trials.items())),
            workers,
            elapsed=elapsed,
            num_workers=self._num_workers if self._num_workers is not None else len(workers),
            events_consumed=self._events,
        )


def events_from_jsonl(path: str | os.PathLike[str] | IO[str]) -> list[TelemetryEvent]:
    """Parse a :class:`~repro.telemetry.JSONLSink` export back into events."""
    if hasattr(path, "read"):
        lines = path.read().splitlines()
    else:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    events: list[TelemetryEvent] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        events.append(
            TelemetryEvent(
                seq=int(raw["seq"]),
                kind=EventKind(raw["kind"]),
                time=float(raw["time"]),
                wall_time=float(raw.get("wall_time", 0.0)),
                trial_id=raw.get("trial_id"),
                job_id=raw.get("job_id"),
                worker_id=raw.get("worker_id"),
                rung=raw.get("rung"),
                bracket=raw.get("bracket"),
                data=raw.get("data", {}),
            )
        )
    events.sort(key=lambda e: e.seq)
    return events


#: Phase values the validator accepts (the subset the exporter may emit
#: plus begin/end pairs, so hand-written traces validate too).
_VALID_PHASES = {"X", "B", "E", "i", "I", "M", "C"}


def validate_chrome_trace(trace: dict[str, Any]) -> list[str]:
    """Schema-check a Chrome trace-event object; returns violations.

    Checks the invariants the exporter guarantees (and Perfetto relies on):
    a ``traceEvents`` list, known phases, numeric non-negative ``ts``/
    ``dur``, ``ts`` sorted non-decreasing across timed events, and strictly
    matched ``B``/``E`` pairs per ``(pid, tid)`` stack.
    """
    violations: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    last_ts: float | None = None
    stacks: dict[tuple[Any, Any], list[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            violations.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            violations.append(f"event {i}: unknown phase {ph!r}")
            continue
        if "name" not in event:
            violations.append(f"event {i}: missing name")
        if "pid" not in event or "tid" not in event:
            violations.append(f"event {i}: missing pid/tid")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            violations.append(f"event {i}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            violations.append(f"event {i}: ts {ts} out of order (prev {last_ts})")
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                violations.append(f"event {i}: X event with bad dur {dur!r}")
        elif ph == "B":
            stacks.setdefault((event.get("pid"), event.get("tid")), []).append(
                str(event.get("name"))
            )
        elif ph == "E":
            stack = stacks.setdefault((event.get("pid"), event.get("tid")), [])
            if not stack:
                violations.append(f"event {i}: E without matching B")
            else:
                stack.pop()
    for (pid, tid), stack in stacks.items():
        if stack:
            violations.append(
                f"unclosed B events on pid={pid} tid={tid}: {stack!r}"
            )
    return violations
