"""Typed trial-lifecycle events.

The paper's systems claims — linear speedups, straggler robustness, high
worker utilisation (Sections 4-5) — are claims about *when things happen*
inside a running search.  Each :class:`TelemetryEvent` is one timestamped
fact about the scheduler/backend interaction; the stream of them is the raw
material every telemetry metric is computed from.

Two clocks appear on every event:

* ``time`` — the **backend clock**: simulated time units under
  :class:`~repro.backend.simulation.SimulatedCluster`, wall-clock seconds
  since run start under :class:`~repro.backend.threaded.ThreadPoolBackend`.
  Deterministic for seeded simulation runs.
* ``wall_time`` — an absolute wall-clock stamp (``time.time()``), for
  correlating with logs from outside the process.  Excluded from the JSONL
  export by default so that seeded runs serialise byte-identically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "TelemetryEvent"]


class EventKind(enum.Enum):
    """Every lifecycle event the telemetry layer knows about."""

    #: A scheduler registered a brand-new trial (configuration sampled).
    TRIAL_STARTED = "trial_started"
    #: A backend handed a job to a worker.
    JOB_STARTED = "job_started"
    #: A job completed and its loss was reported to the scheduler.
    REPORT = "report"
    #: A scheduler moved a trial up a rung (or PBT exploited into a clone).
    PROMOTION = "promotion"
    #: A synchronous rung barrier closed (SHA / Hyperband brackets only).
    RUNG_COMPLETED = "rung_completed"
    #: A job was dropped, crashed, or its worker churned away.
    JOB_FAILED = "job_failed"
    #: A job exceeded its deadline and was killed by the backend
    #: (:class:`~repro.backend.faults.RetryPolicy` timeouts).
    JOB_TIMEOUT = "job_timeout"
    #: A failed/timed-out job was scheduled for re-dispatch under a
    #: :class:`~repro.backend.faults.RetryPolicy` (carries attempt + delay).
    JOB_RETRIED = "job_retried"
    #: A trial exhausted its retry budget and was quarantined for good.
    TRIAL_ABANDONED = "trial_abandoned"
    #: A job resumed training from an existing checkpoint.
    CHECKPOINT_RESTORED = "checkpoint_restored"
    #: A free worker asked for work and the scheduler had none (idling).
    WORKER_IDLE = "worker_idle"


@dataclass(frozen=True)
class TelemetryEvent:
    """One timestamped lifecycle fact.

    ``trial_id`` / ``job_id`` / ``worker_id`` / ``rung`` / ``bracket`` are
    ``None`` when the event kind has no such notion (e.g. ``worker_idle``
    has no trial).  ``data`` carries kind-specific payload — losses,
    resources, failure reasons — documented per kind in
    ``docs/telemetry.md``.
    """

    seq: int
    kind: EventKind
    time: float
    wall_time: float
    trial_id: int | None = None
    job_id: int | None = None
    worker_id: int | None = None
    rung: int | None = None
    bracket: int | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self, *, include_wall_time: bool = False) -> dict[str, Any]:
        """Plain-dict form used by the JSONL sink.

        ``None`` fields are omitted so lines stay compact; ``wall_time`` is
        opt-in to keep seeded simulation exports byte-identical.
        """
        out: dict[str, Any] = {"seq": self.seq, "kind": self.kind.value, "time": self.time}
        if include_wall_time:
            out["wall_time"] = self.wall_time
        for key in ("trial_id", "job_id", "worker_id", "rung", "bracket"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.data:
            out["data"] = self.data
        return out
